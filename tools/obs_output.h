// Shared --trace / --metrics handling for the CLI tools (scenario_runner,
// sweep_runner).
//
// Either flag opts the process into the observability layer
// (obs::SetEnabled) before any work runs; at exit the tool writes the
// Chrome-trace and/or metrics-snapshot artifacts and *re-parses each file
// through io::Json* -- a truncated or malformed artifact fails the run with
// a diagnostic instead of silently poisoning downstream tooling (Perfetto,
// CI validators).  Without the flags nothing here runs, so plain
// invocations keep the disabled near-zero-cost path.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/status.h"
#include "io/json.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace decaylib::tools {

// Arms metrics (and, with a trace path, event capture) before the measured
// work starts.  No-op when both paths are empty.
inline void EnableObservability(const std::string& trace_path,
                                const std::string& metrics_path) {
  if (trace_path.empty() && metrics_path.empty()) return;
  obs::SetEnabled(true);
  if (!trace_path.empty()) obs::TraceSink::Global().Start();
}

// Re-parses a just-written artifact with the strict JSON parser.
inline bool ValidateJsonFile(const char* flag, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot re-open %s\n", flag, path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const core::StatusOr<io::Json> parsed = io::Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s is not valid JSON: %s\n", flag, path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  return true;
}

// Writes the requested artifacts; false (after a stderr diagnostic) when a
// file cannot be written or fails to re-parse.
inline bool WriteObservabilityFiles(const std::string& trace_path,
                                    const std::string& metrics_path) {
  if (!trace_path.empty()) {
    obs::TraceSink& sink = obs::TraceSink::Global();
    sink.Stop();
    if (const core::Status status = sink.WriteFile(trace_path);
        !status.ok()) {
      std::fprintf(stderr, "--trace: %s\n", status.ToString().c_str());
      return false;
    }
    if (!ValidateJsonFile("--trace", trace_path)) return false;
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                sink.EventCount());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "--metrics: cannot write %s\n",
                   metrics_path.c_str());
      return false;
    }
    out << obs::Registry::Global().ToJson().Dump() << "\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "--metrics: write to %s failed\n",
                   metrics_path.c_str());
      return false;
    }
    out.close();
    if (!ValidateJsonFile("--metrics", metrics_path)) return false;
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return true;
}

}  // namespace decaylib::tools
