// Strict numeric flag parsing shared by the CLI tools (scenario_runner,
// sweep_runner).
//
// The tools originally used std::atoi, which silently maps garbage and
// out-of-range text to 0 -- so "--threads x" or "--threads -2" fell through
// the <= 0 default and quietly became "hardware concurrency".  These
// helpers reject anything that is not a whole base-10 integer (ParseInt)
// or a finite decimal number (ParseDouble) inside the caller's range, and
// print a diagnostic naming the flag.  "--alpha x", "--alpha ''" and
// "--alpha nan" are usage errors, not silent zeros.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

namespace decaylib::tools {

// Parses a whole base-10 integer in [min_value, max_value]; rejects empty
// text, trailing junk, and overflow.
inline bool ParseInt(const char* text, long long min_value,
                     long long max_value, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

// Parses the value of an int flag, printing a diagnostic on failure.
inline bool ParseIntFlag(const char* flag, const char* text,
                         long long min_value, long long max_value, int* out) {
  long long value = 0;
  if (!ParseInt(text, min_value, max_value, &value)) {
    std::fprintf(stderr, "%s: expected an integer in [%lld, %lld], got '%s'\n",
                 flag, min_value, max_value, text == nullptr ? "" : text);
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

// Parses a finite decimal double in [min_value, max_value]; rejects empty
// text, trailing junk, overflow, and NaN/inf (the range comparison is
// written so NaN fails it).
inline bool ParseDouble(const char* text, double min_value, double max_value,
                        double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (!(value >= min_value && value <= max_value)) return false;
  *out = value;
  return true;
}

// Parses the value of a double flag, printing a diagnostic on failure.
inline bool ParseDoubleFlag(const char* flag, const char* text,
                            double min_value, double max_value, double* out) {
  double value = 0.0;
  if (!ParseDouble(text, min_value, max_value, &value)) {
    std::fprintf(stderr, "%s: expected a number in [%g, %g], got '%s'\n",
                 flag, min_value, max_value, text == nullptr ? "" : text);
    return false;
  }
  *out = value;
  return true;
}

// Parses the value of a fixed-choice string flag (e.g. a scheduler name),
// writing the matched index into `out` and printing a diagnostic that lists
// the valid choices on failure.
inline bool ParseChoiceFlag(const char* flag, const char* text,
                            std::span<const char* const> choices, int* out) {
  if (text != nullptr) {
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (std::strcmp(text, choices[i]) == 0) {
        *out = static_cast<int>(i);
        return true;
      }
    }
  }
  std::fprintf(stderr, "%s: expected one of", flag);
  for (const char* choice : choices) std::fprintf(stderr, " %s", choice);
  std::fprintf(stderr, ", got '%s'\n", text == nullptr ? "" : text);
  return false;
}

// Matches a string-valued flag at argv[*index] in either of its two
// spellings: "--flag value" (value in the next argv slot; *index advances
// past it) or "--flag=value".  Returns false when argv[*index] is not this
// flag at all -- the caller's flag loop falls through to its next match.
// Returns true when the flag matched; a missing or empty value prints a
// diagnostic and clears *ok, so "--trace" at the end of the command line or
// "--trace=" is a usage error, not a silent no-op.
inline bool MatchStringFlag(const char* flag, int argc, char* const* argv,
                            int* index, std::string* out, bool* ok) {
  const char* arg = argv[*index];
  const std::size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    *out = arg + flag_len + 1;
    if (out->empty()) {
      std::fprintf(stderr, "%s: expected a non-empty value\n", flag);
      *ok = false;
    }
    return true;
  }
  if (arg[flag_len] != '\0') return false;  // a longer flag, e.g. --tracer
  if (*index + 1 >= argc) {
    std::fprintf(stderr, "%s: expected a value\n", flag);
    *ok = false;
    return true;
  }
  *out = argv[++*index];
  if (out->empty()) {
    std::fprintf(stderr, "%s: expected a non-empty value\n", flag);
    *ok = false;
  }
  return true;
}

// Non-negative 64-bit flag (seeds).
inline bool ParseSeedFlag(const char* flag, const char* text,
                          std::uint64_t* out) {
  long long value = 0;
  if (!ParseInt(text, 0, INT64_MAX, &value)) {
    std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                 flag, text == nullptr ? "" : text);
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

}  // namespace decaylib::tools
