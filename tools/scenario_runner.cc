// scenario_runner: run declarative deployment scenarios through the batched
// multi-instance engine.
//
//   $ scenario_runner --list
//   $ scenario_runner --smoke [--json] [--trace F] [--metrics F]
//   $ scenario_runner [--scenario NAME] [--links N] [--instances K]
//                     [--alpha A] [--beta B] [--lambda L] [--scheduler S]
//                     [--set FIELD=VALUE] [--threads T] [--seed S] [--json]
//                     [--trace FILE] [--metrics FILE]
//
// --set writes any sweepable field (sweep::SweepableFields(): links,
// instances, alpha, ..., lambda, regret_penalty, farfield_epsilon) into the
// selected specs, plus the non-numeric kernel_mode (dense | farfield,
// engine::ParseKernelMode) selecting the dense O(n^2) kernel or the
// certified far-field tier; unknown fields or out-of-range values are clean
// CLI errors listing the valid fields, and the final specs are validated
// (engine::ValidateScenarioSpec) before anything runs.
//
// Without --scenario, every builtin scenario runs.  --links / --instances /
// --alpha / --beta / --seed override the preset's values; --lambda (in
// [0, 1]) and --scheduler (lqf | greedy | random) override the dynamics
// knobs the queue task consumes; --threads sizes
// the worker pool (>= 1; when absent the pool uses hardware concurrency).
// Numeric flags are parsed strictly (tool_args.h): garbage, empty or
// out-of-range values -- including non-finite doubles -- are usage errors
// rather than silently becoming defaults, and --scheduler rejects unknown
// scheduler names.  --json
// writes BENCH_SCENARIO.json in the working directory (the bench_util.h
// record format plus a "scenarios" aggregate array; see docs/scenarios.md).
//
// --trace FILE captures stage spans (geometry / kernel / per-task, per
// worker thread) and writes Chrome trace_event JSON viewable in Perfetto;
// --metrics FILE dumps the obs::Registry snapshot.  Both accept --flag VALUE
// and --flag=VALUE, both are re-parsed through io::Json before exit, and
// either enables the otherwise-inert observability layer (results are
// bit-identical on or off; docs/observability.md).
//
// --smoke is the CI entry point: it shrinks every builtin to a small size,
// runs the batch once single-threaded and once multi-threaded, and fails
// (exit 1) unless the two deterministic aggregate reports are bit-identical
// -- a fast end-to-end check of the whole engine stack.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "dynamics/queue_system.h"
#include "engine/batch_runner.h"
#include "engine/report.h"
#include "engine/scenario.h"
#include "obs_output.h"
#include "sweep/sweep.h"
#include "tool_args.h"

using namespace decaylib;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--smoke] [--scenario NAME] [--links N]\n"
               "          [--instances K] [--alpha A] [--beta B] [--lambda L]\n"
               "          [--scheduler lqf|greedy|random] [--set FIELD=VALUE]\n"
               "          [--threads T] [--seed S] [--json]\n"
               "          [--trace FILE] [--metrics FILE]\n",
               argv0);
  return 2;
}

void ListSweepableFields(std::FILE* out) {
  std::fprintf(out, "settable fields:");
  for (const std::string& field : sweep::SweepableFields()) {
    std::fprintf(out, " %s", field.c_str());
  }
  std::fprintf(out, " kernel_mode(dense|farfield)\n");
}

// Splits "FIELD=VALUE" textually; value parsing and semantic checks happen
// when the binding is applied (kernel_mode takes a name, the sweepable
// fields take numbers).
bool ParseSetFlag(const char* text, std::pair<std::string, std::string>* out) {
  const std::string arg = text == nullptr ? "" : text;
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
    std::fprintf(stderr, "--set: expected FIELD=VALUE, got '%s'\n",
                 arg.c_str());
    return false;
  }
  *out = {arg.substr(0, eq), arg.substr(eq + 1)};
  return true;
}

int ListScenarios() {
  std::printf("registered topologies:");
  for (const std::string& name : engine::RegisteredTopologies()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\nbuiltin scenarios:\n");
  for (const engine::ScenarioSpec& spec : engine::BuiltinScenarios()) {
    std::printf(
        "  %-22s topology=%-9s links=%d instances=%d alpha=%.2g "
        "sigma_db=%.2g tau=%.2g zeta=%s\n",
        spec.name.c_str(), spec.topology.c_str(), spec.links, spec.instances,
        spec.alpha, spec.sigma_db, spec.power_tau,
        spec.zeta > 0.0  ? std::to_string(spec.zeta).c_str()
        : spec.zeta == 0 ? "alpha"
                         : "measured");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool smoke = false;
  bool json = false;
  std::string scenario;
  int links = 0;       // 0 = keep the preset's value
  int instances = 0;   // 0 = keep the preset's value
  int threads = 0;     // 0 = hardware concurrency (explicit values >= 1)
  double alpha = 0.0;  // 0 = keep the preset's value (explicit values > 0)
  double beta = 0.0;   // 0 = keep the preset's value (explicit values > 0)
  double lambda = -1.0;    // < 0 = keep the preset's value
  int scheduler = -1;      // < 0 = keep; else index into SchedulerNames()
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::vector<std::pair<std::string, std::string>> set_bindings;
  std::string trace_path;
  std::string metrics_path;

  bool flag_ok = true;  // set false by MatchStringFlag on a missing value
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (tools::MatchStringFlag("--scenario", argc, argv, &i, &scenario,
                                      &flag_ok)) {
      if (!flag_ok) return Usage(argv[0]);
    } else if (tools::MatchStringFlag("--trace", argc, argv, &i, &trace_path,
                                      &flag_ok)) {
      if (!flag_ok) return Usage(argv[0]);
    } else if (tools::MatchStringFlag("--metrics", argc, argv, &i,
                                      &metrics_path, &flag_ok)) {
      if (!flag_ok) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--links") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--links", argv[++i], 1, 1 << 20, &links)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--instances") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--instances", argv[++i], 1, 1 << 20,
                               &instances)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--threads", argv[++i], 1, 1 << 16, &threads)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--alpha") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--alpha", argv[++i], 1e-3, 64.0, &alpha)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--beta") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--beta", argv[++i], 1e-6, 1e6, &beta)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--lambda") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--lambda", argv[++i], 0.0, 1.0, &lambda)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--scheduler") == 0 && i + 1 < argc) {
      if (!tools::ParseChoiceFlag("--scheduler", argv[++i],
                                  dynamics::SchedulerNames(), &scheduler)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--set") == 0 && i + 1 < argc) {
      std::pair<std::string, std::string> binding;
      if (!ParseSetFlag(argv[++i], &binding)) return Usage(argv[0]);
      set_bindings.push_back(std::move(binding));
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      if (!tools::ParseSeedFlag("--seed", argv[++i], &seed)) {
        return Usage(argv[0]);
      }
      seed_set = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (list) return ListScenarios();
  // The smoke determinism gate runs the builtins at canonical small sizes;
  // decay-model overrides would silently change what the gate certifies
  // (same policy as sweep_runner --smoke: a usage error, not a drop).
  if (smoke && (alpha > 0.0 || beta > 0.0 || lambda >= 0.0 ||
                scheduler >= 0 || !set_bindings.empty())) {
    std::fprintf(stderr,
                 "--smoke runs the canonical decay and traffic models; it "
                 "does not take --alpha/--beta/--lambda/--scheduler/--set\n");
    return 2;
  }

  std::vector<engine::ScenarioSpec> specs;
  if (!scenario.empty()) {
    auto found = engine::FindBuiltinScenario(scenario);
    if (!found) {
      std::fprintf(stderr, "unknown scenario '%s'; try --list\n",
                   scenario.c_str());
      return 2;
    }
    specs.push_back(*std::move(found));
  } else {
    specs = engine::BuiltinScenarios();
  }
  for (engine::ScenarioSpec& spec : specs) {
    if (smoke) {
      spec.links = 24;
      spec.instances = 4;
    }
    if (links > 0) spec.links = links;
    if (instances > 0) spec.instances = instances;
    if (alpha > 0.0) spec.alpha = alpha;
    if (beta > 0.0) spec.beta = beta;
    if (lambda >= 0.0) spec.dynamics.lambda = lambda;
    if (scheduler >= 0) {
      spec.dynamics.scheduler = static_cast<dynamics::Scheduler>(scheduler);
    }
    if (seed_set) spec.seed = seed;
    // --set bindings go through the sweep layer's field table, so the same
    // validation (and the same field names) back both tools.  kernel_mode is
    // the one non-numeric binding and routes through ParseKernelMode.
    for (const auto& [field, value] : set_bindings) {
      if (field == "kernel_mode") {
        const auto mode = engine::ParseKernelMode(value);
        if (!mode) {
          std::fprintf(stderr,
                       "--set kernel_mode=%s: unknown kernel mode (dense | "
                       "farfield)\n",
                       value.c_str());
          return 2;
        }
        spec.kernel_mode = *mode;
        continue;
      }
      double numeric = 0.0;
      if (!tools::ParseDouble(value.c_str(), -1e300, 1e300, &numeric)) {
        std::fprintf(stderr, "--set %s: unparseable value '%s'\n",
                     field.c_str(), value.c_str());
        ListSweepableFields(stderr);
        return 2;
      }
      const core::Status status = sweep::ApplyAxisValue(spec, field, numeric);
      if (!status.ok()) {
        std::fprintf(stderr, "--set %s=%g: %s\n", field.c_str(), numeric,
                     status.message().c_str());
        ListSweepableFields(stderr);
        return 2;
      }
    }
    // Final gate: the composed spec must be valid before anything runs; an
    // out-of-range combination exits cleanly instead of aborting a worker.
    if (const core::Status status = engine::ValidateScenarioSpec(spec);
        !status.ok()) {
      std::fprintf(stderr, "scenario '%s': %s\n", spec.name.c_str(),
                   status.message().c_str());
      return 2;
    }
  }

  engine::BatchConfig config;
  config.threads = threads;
  // In smoke mode the pooled side is pinned to >= 4 workers so the
  // determinism gate below compares genuinely different interleavings even
  // on single-core runners (where hardware_concurrency() would make both
  // runs serial and the check vacuous).
  if (smoke && config.threads < 4) config.threads = 4;
  const engine::BatchRunner runner(config);
  tools::EnableObservability(trace_path, metrics_path);
  std::vector<engine::ScenarioResult> results;
  try {
    results = runner.Run(specs);
  } catch (const core::StatusError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  engine::PrintReport(results);

  if (smoke) {
    // Health gate: any infeasible set or invalid schedule fails the smoke
    // even when it is perfectly deterministic.
    if (engine::ViolationCount(results) != 0) {
      std::fprintf(stderr,
                   "FAIL: feasibility/validation violations in smoke run\n");
      return 1;
    }
    // Determinism gate: the deterministic aggregate must not depend on the
    // thread count.  Compare the pooled run against a single-threaded one.
    engine::BatchConfig serial = config;
    serial.threads = 1;
    const std::vector<engine::ScenarioResult> reference =
        engine::BatchRunner(serial).Run(specs);
    if (engine::AggregateSignature(results) !=
        engine::AggregateSignature(reference)) {
      std::fprintf(stderr,
                   "FAIL: aggregate report differs between thread counts\n");
      return 1;
    }
    std::printf("smoke: aggregates bit-identical across thread counts\n");
  }

  if (json && !engine::WriteJsonReport("SCENARIO", results)) return 1;
  if (!tools::WriteObservabilityFiles(trace_path, metrics_path)) return 1;
  return 0;
}
