// sweep_runner: run parameter-grid sweeps through the batch engine over
// shared kernel arenas.
//
//   $ sweep_runner --list
//   $ sweep_runner --smoke [--json] [--trace F] [--metrics F]
//   $ sweep_runner [--sweep NAME] [--instances K] [--alpha A] [--beta B]
//                  [--lambda L] [--scheduler S] [--threads T] [--no-arena]
//                  [--no-geometry-cache] [--geometry-generations G]
//                  [--axis FIELD=V1,V2,...]
//                  [--checkpoint PATH] [--resume] [--retries K] [--strict]
//                  [--halt-after N] [--fail-cell I] [--fail-attempts K]
//                  [--csv] [--json] [--trace FILE] [--metrics FILE]
//
// Without --sweep, every builtin sweep runs.  --instances overrides the
// per-cell batch size, --alpha / --beta the base spec's decay exponent
// and SINR threshold, and --lambda (in [0, 1]) / --scheduler (lqf | greedy
// | random) the dynamics knobs the queue task consumes (strict parses via
// tool_args.h: garbage, empty or non-finite values -- and unknown scheduler
// names -- are usage errors); --threads sizes the per-cell worker
// pool (>= 1); --no-arena disables cross-instance kernel-arena reuse and
// --no-geometry-cache disables cross-cell geometry reuse (both for A/B
// timing; results are bit-identical either way);
// --geometry-generations G deepens the geometry cache's LRU to G key
// generations (default 1; engine::GeometryCache), which turns interleaved
// geometry keys into warm hits without changing any result.  --csv writes
// SWEEP_<name>.csv per sweep (io/csv table format, one row per cell);
// --json writes BENCH_SWEEP.json over all cells (engine report format).
//
// Robustness flags (docs/robustness.md):
//  * --axis FIELD=V1,V2,... appends an axis to every selected sweep; an
//    unknown field or out-of-range value is a clean CLI error listing the
//    sweepable fields (validation via sweep::ValidateSweepSpec), not an
//    abort;
//  * --checkpoint PATH persists completed cells; with --resume, a partial
//    sidecar restores them bit-exactly and only the remainder runs;
//  * --retries K sets attempts per cell (default 2); failed cells are
//    isolated, reported, and exit non-zero only under --strict;
//  * --halt-after N stops after N fresh cells (simulated kill, for resume
//    drills); --fail-cell I / --fail-attempts K arm the deterministic
//    fault-injection plan (K = -1 fails every attempt).
//
// Observability flags (docs/observability.md; both accept --flag VALUE and
// --flag=VALUE): --trace FILE captures stage spans for the whole run and
// writes Chrome trace_event JSON (load in Perfetto); --metrics FILE dumps
// the obs::Registry snapshot.  Both artifacts are re-parsed through
// io::Json before the tool exits -- a malformed file is a run failure.
// Either flag enables the otherwise-inert observability layer; results are
// bit-identical on or off (the --smoke gate below proves it every CI run).
//
// --smoke is the CI entry point, two fixed grids:
//  * a tiny 2x2x2 capacity grid (links x alpha x beta; the trailing beta
//    axis is non-geometric, so it exercises geometry reuse) runs pooled,
//    single-threaded, arena-less, geometry-cache-less and sort-paired, and
//    the run fails (exit 1) unless all five deterministic sweep signatures
//    are bit-identical and no feasibility/validation violations occurred;
//  * a 2x2 dynamics grid (alpha x lambda, TaskKind::kQueue + kRegret) runs
//    pooled vs single-threaded vs geometry-cache-less, gating that the
//    queue/regret task statistics are thread-count deterministic and that
//    every cell actually produced them;
//  * a 2x2 LRU grid with the *geometric* axis fastest (keys interleave, the
//    worst case for a single-generation cache) runs at depth 1 vs depth 2,
//    gating that deeper generations change nothing but the hit/evict
//    accounting;
//  * a 2x2 far-field grid (links x alpha, the tasks with far-field
//    pipelines) gates the certified kernel tier: kernel_mode=farfield at
//    epsilon=0 must reproduce the dense sweep signature bit-exactly, and at
//    epsilon=1e-3 every aggregate must agree with dense within the
//    certified bound (docs/performance.md, "scaling past dense").
// Together they are a fast end-to-end check of the sweep -> batch ->
// geometry-cache -> kernel-arena stack, dynamics tasks and the far-field
// kernel tier included.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "dynamics/queue_system.h"
#include "engine/report.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs_output.h"
#include "sweep/checkpoint.h"
#include "sweep/sweep.h"
#include "sweep/sweep_report.h"
#include "sweep/sweep_runner.h"
#include "tool_args.h"

using namespace decaylib;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--smoke] [--sweep NAME] [--instances K]\n"
               "          [--alpha A] [--beta B] [--lambda L]\n"
               "          [--scheduler lqf|greedy|random] [--threads T]\n"
               "          [--no-arena] [--no-geometry-cache]\n"
               "          [--geometry-generations G]\n"
               "          [--axis FIELD=V1,V2,...] [--checkpoint PATH]\n"
               "          [--resume] [--retries K] [--strict]\n"
               "          [--halt-after N] [--fail-cell I]\n"
               "          [--fail-attempts K] [--csv] [--json]\n"
               "          [--trace FILE] [--metrics FILE]\n",
               argv0);
  return 2;
}

// Parses "FIELD=V1,V2,..." into an axis.  Field/value *semantics* are
// checked later by ValidateSweepSpec; this only splits the syntax.
bool ParseAxisFlag(const char* text, sweep::SweepAxis* out) {
  const std::string arg = text == nullptr ? "" : text;
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size()) {
    std::fprintf(stderr, "--axis: expected FIELD=V1,V2,..., got '%s'\n",
                 arg.c_str());
    return false;
  }
  out->field = arg.substr(0, eq);
  out->values.clear();
  std::size_t start = eq + 1;
  while (start <= arg.size()) {
    std::size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(start, comma - start);
    double value = 0.0;
    if (!tools::ParseDouble(token.c_str(), -1e300, 1e300, &value)) {
      std::fprintf(stderr, "--axis: unparseable value '%s' in '%s'\n",
                   token.c_str(), arg.c_str());
      return false;
    }
    out->values.push_back(value);
    start = comma + 1;
  }
  return true;
}

// Clean-CLI-error wrapper: validation failures list the sweepable fields
// so a typo'd --axis is self-diagnosing.
bool ValidateOrComplain(const sweep::SweepSpec& spec) {
  const core::Status status = sweep::ValidateSweepSpec(spec);
  if (status.ok()) return true;
  std::fprintf(stderr, "sweep '%s': %s\n", spec.name.c_str(),
               status.message().c_str());
  std::fprintf(stderr, "sweepable fields:");
  for (const std::string& field : sweep::SweepableFields()) {
    std::fprintf(stderr, " %s", field.c_str());
  }
  std::fprintf(stderr, "\n");
  return false;
}

int ListSweeps() {
  std::printf("sweepable fields:");
  for (const std::string& field : sweep::SweepableFields()) {
    std::printf(" %s", field.c_str());
  }
  std::printf("\n\nbuiltin sweeps:\n");
  for (const sweep::SweepSpec& spec : sweep::BuiltinSweeps()) {
    std::printf("  %-20s base=%s cells=%lld axes:", spec.name.c_str(),
                spec.base.topology.c_str(), sweep::GridSize(spec));
    for (const sweep::SweepAxis& axis : spec.axes) {
      std::printf(" %s[%zu]", axis.field.c_str(), axis.values.size());
    }
    std::printf("\n");
  }
  return 0;
}

// The --smoke grid: tiny, fixed, and axis-diverse enough to cross cell
// shapes (two link counts force the arenas to re-grow mid-sweep) *and*
// geometry generations (the trailing beta axis is non-geometric, so every
// links x alpha geometry is reused across its beta pair when the cache is
// on).
sweep::SweepSpec SmokeSweep() {
  sweep::SweepSpec spec;
  spec.name = "smoke";
  spec.base.name = "smoke";
  spec.base.topology = "uniform";
  spec.base.links = 12;
  spec.base.instances = 3;
  spec.base.seed = 9901;
  spec.axes = {{"links", {10, 14}}, {"alpha", {2.5, 3.0}}, {"beta", {1.0, 1.5}}};
  return spec;
}

// The --smoke dynamics grid: alpha x lambda with the queue + regret tasks,
// small enough to stay fast in CI yet crossing a geometry boundary (alpha)
// and an arrival-rate row (lambda, non-geometric).
sweep::SweepSpec SmokeDynamicsSweep() {
  sweep::SweepSpec spec;
  spec.name = "smoke_dynamics";
  spec.base.name = "smoke_dynamics";
  spec.base.topology = "uniform";
  spec.base.links = 10;
  spec.base.instances = 2;
  spec.base.seed = 9902;
  spec.base.dynamics.queue_slots = 150;
  spec.base.dynamics.regret_rounds = 150;
  spec.axes = {{"alpha", {2.5, 3.0}}, {"lambda", {0.05, 0.3}}};
  spec.tasks = {engine::TaskKind::kQueue, engine::TaskKind::kRegret};
  return spec;
}

// Dynamics determinism gate: queue/regret statistics must be bit-identical
// across thread counts and geometry-cache modes, and every cell must have
// actually produced them (a silently skipped task would pass a pure
// signature comparison).
int RunDynamicsSmoke(const sweep::SweepConfig& pooled,
                     sweep::SweepResult* out) {
  const sweep::SweepSpec spec = SmokeDynamicsSweep();
  sweep::SweepConfig serial = pooled;
  serial.threads = 1;
  sweep::SweepConfig no_geometry = pooled;
  no_geometry.reuse_geometry = false;

  const sweep::SweepResult a = sweep::SweepRunner(pooled).Run(spec);
  const sweep::SweepResult b = sweep::SweepRunner(serial).Run(spec);
  const sweep::SweepResult c = sweep::SweepRunner(no_geometry).Run(spec);
  sweep::PrintSweepReport(a);

  const std::string sig = sweep::SweepSignature(a);
  if (sig != sweep::SweepSignature(b)) {
    std::fprintf(stderr,
                 "FAIL: dynamics sweep signature differs between thread "
                 "counts\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(c)) {
    std::fprintf(stderr,
                 "FAIL: dynamics sweep signature differs with the geometry "
                 "cache disabled\n");
    return 1;
  }
  for (const sweep::SweepCellResult& cell : a.cells) {
    for (const char* metric : {"queue_throughput", "queue_unstable",
                               "regret_successes"}) {
      const engine::MetricSummary* m =
          engine::FindAggregateMetric(cell.result, metric);
      if (m == nullptr ||
          m->count != static_cast<long long>(cell.result.instances.size())) {
        std::fprintf(stderr,
                     "FAIL: cell %d did not produce %s for every instance\n",
                     cell.cell.index, metric);
        return 1;
      }
    }
  }
  std::printf(
      "smoke: dynamics sweep signatures bit-identical across thread counts "
      "and geometry cache on/off (%zu cells, queue + regret tasks)\n",
      a.cells.size());
  *out = a;
  return 0;
}

// The --smoke LRU grid: the geometric axis (alpha) varies *fastest*, so
// the geometry-key sequence interleaves K1 K2 K1 K2 -- a single-generation
// cache thrashes (every Prepare evicts), while depth 2 turns every revisit
// into a warm generation hit.
sweep::SweepSpec SmokeLruSweep() {
  sweep::SweepSpec spec;
  spec.name = "smoke_lru";
  spec.base.name = "smoke_lru";
  spec.base.topology = "uniform";
  spec.base.links = 10;
  spec.base.instances = 2;
  spec.base.seed = 9903;
  spec.axes = {{"beta", {1.0, 1.5}}, {"alpha", {2.5, 3.0}}};
  spec.tasks = {engine::TaskKind::kAlgorithm1,
                engine::TaskKind::kGreedyBaseline};
  return spec;
}

// LRU-depth gate: deeper geometry generations must be invisible in the
// results and visible in the accounting (hits up, builds and evictions
// down) on an interleaved-key grid.
int RunLruSmoke(const sweep::SweepConfig& pooled) {
  const sweep::SweepSpec spec = SmokeLruSweep();
  sweep::SweepConfig deep = pooled;
  deep.geometry_generations = 2;
  const sweep::SweepResult shallow = sweep::SweepRunner(pooled).Run(spec);
  const sweep::SweepResult warm = sweep::SweepRunner(deep).Run(spec);
  if (sweep::SweepSignature(shallow) != sweep::SweepSignature(warm)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs between geometry LRU depths\n");
    return 1;
  }
  if (warm.geometry_generation_hits < 2 || warm.geometry_evictions != 0 ||
      warm.geometry_builds >= shallow.geometry_builds ||
      shallow.geometry_evictions < 3) {
    std::fprintf(stderr,
                 "FAIL: geometry LRU accounting (depth 2: %lld hits / %lld "
                 "evictions / %lld builds; depth 1: %lld evictions / %lld "
                 "builds)\n",
                 warm.geometry_generation_hits, warm.geometry_evictions,
                 warm.geometry_builds, shallow.geometry_evictions,
                 shallow.geometry_builds);
    return 1;
  }
  std::printf(
      "smoke: geometry LRU depth 2 bit-identical to depth 1 on interleaved "
      "keys (%lld generation hits, %lld -> %lld builds)\n",
      warm.geometry_generation_hits, shallow.geometry_builds,
      warm.geometry_builds);
  return 0;
}

// The --smoke far-field grid: small capacity cells through the three tasks
// with far-field pipelines.  Uniform topology, no shadowing, uniform power
// -- the preconditions kernel_mode=farfield validates.
sweep::SweepSpec SmokeFarFieldSweep() {
  sweep::SweepSpec spec;
  spec.name = "smoke_farfield";
  spec.base.name = "smoke_farfield";
  spec.base.topology = "uniform";
  spec.base.links = 12;
  spec.base.instances = 2;
  spec.base.seed = 9904;
  spec.axes = {{"links", {10, 14}}, {"alpha", {2.5, 3.0}}};
  spec.tasks = {engine::TaskKind::kAlgorithm1,
                engine::TaskKind::kGreedyBaseline,
                engine::TaskKind::kSchedule};
  return spec;
}

// |x - y| within a relative tolerance (absolute 1e-12 floor for zeros).
bool CloseEnough(double x, double y, double tol) {
  if (x == y) return true;  // covers the +-inf sentinels of empty summaries
  return std::abs(x - y) <=
         tol * std::max(std::abs(x), std::abs(y)) + 1e-12;
}

// Far-field kernel gate: kernel_mode=farfield must reproduce the dense
// sweep bit-exactly at epsilon = 0, and every deterministic aggregate must
// agree with dense within the certified epsilon otherwise.
int RunFarFieldSmoke(const sweep::SweepConfig& pooled) {
  sweep::SweepSpec spec = SmokeFarFieldSweep();
  const sweep::SweepResult dense = sweep::SweepRunner(pooled).Run(spec);
  if (sweep::SweepViolationCount(dense) != 0) {
    std::fprintf(stderr, "FAIL: violations in the dense far-field grid\n");
    return 1;
  }

  spec.base.kernel_mode = engine::KernelMode::kFarField;
  spec.base.farfield_epsilon = 0.0;
  const sweep::SweepResult exact = sweep::SweepRunner(pooled).Run(spec);
  if (sweep::SweepSignature(exact) != sweep::SweepSignature(dense)) {
    std::fprintf(stderr,
                 "FAIL: kernel_mode=farfield at epsilon=0 is not "
                 "bit-identical to the dense sweep\n");
    return 1;
  }

  const double eps = 1e-3;
  spec.base.farfield_epsilon = eps;
  const sweep::SweepResult approx = sweep::SweepRunner(pooled).Run(spec);
  if (sweep::SweepViolationCount(approx) != 0 ||
      approx.cells.size() != dense.cells.size()) {
    std::fprintf(stderr,
                 "FAIL: certified far-field grid lost cells or produced "
                 "violations\n");
    return 1;
  }
  for (std::size_t i = 0; i < dense.cells.size(); ++i) {
    const auto& da = dense.cells[i].result.aggregate;
    const auto& fa = approx.cells[i].result.aggregate;
    if (da.size() != fa.size()) {
      std::fprintf(stderr,
                   "FAIL: cell %d aggregate shape differs dense vs "
                   "far-field\n",
                   dense.cells[i].cell.index);
      return 1;
    }
    for (std::size_t j = 0; j < da.size(); ++j) {
      const auto& [name, ds] = da[j];
      const auto& [fname, fs] = fa[j];
      if (name != fname || ds.count != fs.count ||
          !CloseEnough(ds.sum, fs.sum, eps) ||
          !CloseEnough(ds.min, fs.min, eps) ||
          !CloseEnough(ds.max, fs.max, eps)) {
        std::fprintf(stderr,
                     "FAIL: cell %d metric %s disagrees beyond the "
                     "certified epsilon (dense sum=%.17g count=%lld "
                     "min=%.17g max=%.17g; far-field sum=%.17g count=%lld "
                     "min=%.17g max=%.17g)\n",
                     dense.cells[i].cell.index, name.c_str(), ds.sum,
                     ds.count, ds.min, ds.max, fs.sum, fs.count, fs.min,
                     fs.max);
        return 1;
      }
    }
  }
  std::printf(
      "smoke: far-field kernel bit-identical to dense at epsilon=0 and "
      "within the certified epsilon=%g at every aggregate (%zu cells, "
      "alg1 + greedy + schedule)\n",
      eps, dense.cells.size());
  return 0;
}

int RunSmoke(int threads, bool json) {
  const sweep::SweepSpec spec = SmokeSweep();

  // Baselines run with observability off even under --trace / --metrics,
  // so the inertness gate below genuinely compares off vs on.  Restored on
  // the success path; failures exit the process.
  const bool obs_was_enabled = obs::Enabled();
  obs::SetEnabled(false);

  // Pin the pooled side to >= 4 workers so the determinism gate compares
  // genuinely different interleavings even on single-core runners.
  sweep::SweepConfig pooled;
  pooled.threads = threads >= 4 ? threads : 4;
  sweep::SweepConfig serial = pooled;
  serial.threads = 1;
  sweep::SweepConfig no_arena = pooled;
  no_arena.reuse_arena = false;
  sweep::SweepConfig no_geometry = pooled;
  no_geometry.reuse_geometry = false;
  sweep::SweepConfig sort_paired = pooled;
  sort_paired.pairing = engine::PairingMode::kSortGreedy;

  const sweep::SweepResult a = sweep::SweepRunner(pooled).Run(spec);
  const sweep::SweepResult b = sweep::SweepRunner(serial).Run(spec);
  const sweep::SweepResult c = sweep::SweepRunner(no_arena).Run(spec);
  const sweep::SweepResult d = sweep::SweepRunner(no_geometry).Run(spec);
  const sweep::SweepResult e = sweep::SweepRunner(sort_paired).Run(spec);
  sweep::PrintSweepReport(a);

  if (sweep::SweepViolationCount(a) != 0) {
    std::fprintf(stderr,
                 "FAIL: feasibility/validation violations in smoke sweep\n");
    return 1;
  }
  const std::string sig = sweep::SweepSignature(a);
  if (sig != sweep::SweepSignature(b)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs between thread counts\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(c)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs with arena reuse disabled\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(d)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs with the geometry cache "
                 "disabled\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(e)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs between grid/MNN and "
                 "sort-greedy pairing\n");
    return 1;
  }
  // The gate must actually exercise the cache: the beta axis guarantees
  // one warm generation per links x alpha coordinate.
  if (a.geometry_reuses <= 0 || d.geometry_reuses != 0) {
    std::fprintf(stderr,
                 "FAIL: geometry cache accounting (reuses on=%lld off=%lld)\n",
                 a.geometry_reuses, d.geometry_reuses);
    return 1;
  }
  std::printf(
      "smoke: sweep signatures bit-identical across thread counts, arena "
      "reuse, geometry cache on/off and pairing modes (%lld kernels through "
      "arenas, %lld geometries built / %lld reused)\n",
      a.arena_rebuilds, a.geometry_builds, a.geometry_reuses);

  // Observability-inertness gate: with metrics and tracing live the grid
  // must reproduce the obs-off signature bit-for-bit, pooled and serial --
  // and must actually capture events (a dead layer would pass the equality
  // vacuously).
  {
    obs::TraceSink& sink = obs::TraceSink::Global();
    const bool sink_was_active = sink.active();
    obs::SetEnabled(true);
    if (!sink_was_active) sink.Start();
    const sweep::SweepResult ta = sweep::SweepRunner(pooled).Run(spec);
    const sweep::SweepResult tb = sweep::SweepRunner(serial).Run(spec);
    const std::size_t events = sink.EventCount();
    if (!sink_was_active) sink.Stop();
    obs::SetEnabled(false);
    if (sweep::SweepSignature(ta) != sig ||
        sweep::SweepSignature(tb) != sig) {
      std::fprintf(stderr,
                   "FAIL: sweep signature differs with metrics/tracing "
                   "enabled\n");
      return 1;
    }
    if (events == 0) {
      std::fprintf(stderr,
                   "FAIL: observability gate captured no trace events\n");
      return 1;
    }
    std::printf(
        "smoke: metrics + tracing inert (signatures bit-identical with "
        "observability on, %zu trace events captured)\n",
        events);
  }

  // Robustness gate 1 -- failure isolation: a cell that fails every
  // attempt is recorded failed while every other cell still matches the
  // clean run bit-for-bit.
  {
    sweep::SweepConfig faulty = pooled;
    faulty.fault.fail_cell = 2;
    faulty.fault.fail_attempts = -1;  // exhaust the retry budget
    const sweep::SweepResult f = sweep::SweepRunner(faulty).Run(spec);
    if (f.cells.size() != a.cells.size() || f.cells_failed != 1) {
      std::fprintf(stderr,
                   "FAIL: fault isolation (cells=%zu of %zu, failed=%d)\n",
                   f.cells.size(), a.cells.size(), f.cells_failed);
      return 1;
    }
    for (std::size_t i = 0; i < f.cells.size(); ++i) {
      const sweep::SweepCellResult& cell = f.cells[i];
      if (cell.cell.index == 2) {
        if (cell.outcome.ok) {
          std::fprintf(stderr, "FAIL: injected-fault cell completed\n");
          return 1;
        }
        continue;
      }
      if (!cell.outcome.ok ||
          engine::AggregateSignature(std::span(&cell.result, 1)) !=
              engine::AggregateSignature(std::span(&a.cells[i].result, 1))) {
        std::fprintf(stderr,
                     "FAIL: cell %d diverged from the clean run under a "
                     "fault in cell 2\n",
                     cell.cell.index);
        return 1;
      }
    }
  }

  // Robustness gate 2 -- retry: a cell that fails only its first attempt
  // recovers transparently; the whole-grid signature equals the clean one.
  {
    sweep::SweepConfig flaky = pooled;
    flaky.fault.fail_cell = 2;
    flaky.fault.fail_attempts = 1;
    const sweep::SweepResult f = sweep::SweepRunner(flaky).Run(spec);
    if (f.cells_failed != 0 || f.cells_retried != 1 ||
        sweep::SweepSignature(f) != sig) {
      std::fprintf(stderr,
                   "FAIL: retry recovery (failed=%d retried=%d, signature %s)"
                   "\n",
                   f.cells_failed, f.cells_retried,
                   sweep::SweepSignature(f) == sig ? "equal" : "differs");
      return 1;
    }
  }

  // Robustness gate 3 -- checkpoint/resume: halt after half the grid, then
  // resume; the resumed run's signature must equal the uninterrupted one,
  // including at a different thread count.
  {
    const std::string ckpt = "SWEEP_smoke_checkpoint.json";
    std::remove(ckpt.c_str());
    sweep::SweepConfig half = pooled;
    half.checkpoint_path = ckpt;
    half.halt_after_cells = 4;
    const sweep::SweepResult partial = sweep::SweepRunner(half).Run(spec);
    if (partial.cells.size() >= a.cells.size()) {
      std::fprintf(stderr, "FAIL: halt-after did not truncate the grid\n");
      std::remove(ckpt.c_str());
      return 1;
    }
    // A completed resume rewrites the sidecar to the full grid; snapshot
    // the half-grid document so every iteration resumes the same kill.
    core::StatusOr<sweep::SweepCheckpoint> half_doc =
        sweep::LoadCheckpoint(ckpt);
    if (!half_doc.ok() || half_doc->cells.size() != 4) {
      std::fprintf(stderr, "FAIL: halt-after checkpoint unreadable or not "
                           "4 cells\n");
      std::remove(ckpt.c_str());
      return 1;
    }
    bool ok = true;
    for (const int resume_threads : {pooled.threads, 1}) {
      if (!sweep::SaveCheckpoint(ckpt, *half_doc).ok()) {
        std::fprintf(stderr, "FAIL: cannot rewrite smoke checkpoint\n");
        ok = false;
        break;
      }
      sweep::SweepConfig resumed = pooled;
      resumed.threads = resume_threads;
      resumed.checkpoint_path = ckpt;
      resumed.resume = true;
      const sweep::SweepResult r = sweep::SweepRunner(resumed).Run(spec);
      if (r.cells_resumed != 4 || r.cells_failed != 0 ||
          sweep::SweepSignature(r) != sig) {
        std::fprintf(stderr,
                     "FAIL: resume at %d threads (resumed=%d failed=%d, "
                     "signature %s)\n",
                     resume_threads, r.cells_resumed, r.cells_failed,
                     sweep::SweepSignature(r) == sig ? "equal" : "differs");
        ok = false;
        break;
      }
    }
    std::remove(ckpt.c_str());
    if (!ok) return 1;
  }
  std::printf(
      "smoke: fault isolation, retry recovery and checkpoint/resume "
      "reproduce the clean signature bit-exactly\n");

  if (const int lru_rc = RunLruSmoke(pooled); lru_rc != 0) return lru_rc;
  if (const int ff_rc = RunFarFieldSmoke(pooled); ff_rc != 0) return ff_rc;

  std::printf("\n");
  sweep::SweepResult dynamics;
  if (const int dynamics_rc = RunDynamicsSmoke(pooled, &dynamics);
      dynamics_rc != 0) {
    return dynamics_rc;
  }

  // Both smoke grids land in the artifact: the capacity cells and the
  // dynamics (queue/regret) cells.
  const sweep::SweepResult results[] = {a, std::move(dynamics)};
  if (json && !sweep::WriteSweepJsonReport("SWEEP", results)) return 1;
  obs::SetEnabled(obs_was_enabled);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool smoke = false;
  bool csv = false;
  bool json = false;
  bool no_arena = false;
  bool no_geometry_cache = false;
  int geometry_generations = 0;  // 0 = keep SweepConfig's default (1)
  std::string sweep_name;
  int instances = 0;   // 0 = keep each sweep's value
  int threads = 0;     // 0 = hardware concurrency (explicit values >= 1)
  double alpha = 0.0;  // 0 = keep each sweep's base value (explicit > 0)
  double beta = 0.0;   // 0 = keep each sweep's base value (explicit > 0)
  double lambda = -1.0;  // < 0 = keep each sweep's base value
  int scheduler = -1;    // < 0 = keep; else index into SchedulerNames()
  std::vector<sweep::SweepAxis> extra_axes;
  std::string checkpoint_path;
  bool resume = false;
  bool strict = false;
  int retries = 0;      // 0 = keep SweepConfig's default
  int halt_after = 0;   // 0 = run the whole grid
  int fail_cell = -1;   // fault plan: < 0 = disarmed
  int fail_attempts = 1;
  std::string trace_path;
  std::string metrics_path;

  bool flag_ok = true;  // set false by MatchStringFlag on a missing value
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--no-arena") == 0) {
      no_arena = true;
    } else if (std::strcmp(arg, "--no-geometry-cache") == 0) {
      no_geometry_cache = true;
    } else if (std::strcmp(arg, "--geometry-generations") == 0 &&
               i + 1 < argc) {
      if (!tools::ParseIntFlag("--geometry-generations", argv[++i], 1, 1 << 20,
                               &geometry_generations)) {
        return Usage(argv[0]);
      }
    } else if (tools::MatchStringFlag("--sweep", argc, argv, &i, &sweep_name,
                                      &flag_ok)) {
      if (!flag_ok) return Usage(argv[0]);
    } else if (tools::MatchStringFlag("--trace", argc, argv, &i, &trace_path,
                                      &flag_ok)) {
      if (!flag_ok) return Usage(argv[0]);
    } else if (tools::MatchStringFlag("--metrics", argc, argv, &i,
                                      &metrics_path, &flag_ok)) {
      if (!flag_ok) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--instances") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--instances", argv[++i], 1, 1 << 20,
                               &instances)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--threads", argv[++i], 1, 1 << 16, &threads)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--alpha") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--alpha", argv[++i], 1e-3, 64.0, &alpha)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--beta") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--beta", argv[++i], 1e-6, 1e6, &beta)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--lambda") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--lambda", argv[++i], 0.0, 1.0, &lambda)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--scheduler") == 0 && i + 1 < argc) {
      if (!tools::ParseChoiceFlag("--scheduler", argv[++i],
                                  dynamics::SchedulerNames(), &scheduler)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--axis") == 0 && i + 1 < argc) {
      sweep::SweepAxis axis;
      if (!ParseAxisFlag(argv[++i], &axis)) return Usage(argv[0]);
      extra_axes.push_back(std::move(axis));
    } else if (tools::MatchStringFlag("--checkpoint", argc, argv, &i,
                                      &checkpoint_path, &flag_ok)) {
      if (!flag_ok) return Usage(argv[0]);
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(arg, "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(arg, "--retries") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--retries", argv[++i], 1, 100, &retries)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--halt-after") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--halt-after", argv[++i], 1, 1 << 30,
                               &halt_after)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--fail-cell") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--fail-cell", argv[++i], 0, 1 << 30,
                               &fail_cell)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--fail-attempts") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--fail-attempts", argv[++i], -1, 100,
                               &fail_attempts)) {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }
  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume needs --checkpoint PATH\n");
    return 2;
  }

  if (list) return ListSweeps();
  if (smoke) {
    // The smoke grid is fixed (it IS the determinism gate); flags that
    // would alter it are a usage error, not something to silently drop.
    if (csv || no_arena || no_geometry_cache || geometry_generations > 0 ||
        instances > 0 ||
        alpha > 0.0 || beta > 0.0 || lambda >= 0.0 || scheduler >= 0 ||
        !sweep_name.empty() || !extra_axes.empty() ||
        !checkpoint_path.empty() || resume || strict || retries > 0 ||
        halt_after > 0 || fail_cell >= 0) {
      std::fprintf(stderr,
                   "--smoke runs a fixed grid; it takes only --threads, "
                   "--json, --trace and --metrics\n");
      return 2;
    }
    tools::EnableObservability(trace_path, metrics_path);
    const int rc = RunSmoke(threads, json);
    if (rc != 0) return rc;
    return tools::WriteObservabilityFiles(trace_path, metrics_path) ? 0 : 1;
  }

  std::vector<sweep::SweepSpec> sweeps;
  if (!sweep_name.empty()) {
    auto found = sweep::FindBuiltinSweep(sweep_name);
    if (!found) {
      std::fprintf(stderr, "unknown sweep '%s'; try --list\n",
                   sweep_name.c_str());
      return 2;
    }
    sweeps.push_back(*std::move(found));
  } else {
    sweeps = sweep::BuiltinSweeps();
  }
  for (sweep::SweepSpec& spec : sweeps) {
    if (instances > 0) spec.base.instances = instances;
    // Base overrides for swept fields would be silently erased by the axis
    // values in every cell; per this tool's flag policy that is a usage
    // error, not something to drop.
    const struct {
      const char* flag;
      bool overridden;
    } base_overrides[] = {{"alpha", alpha > 0.0},
                          {"beta", beta > 0.0},
                          {"lambda", lambda >= 0.0}};
    for (const auto& [flag, overridden] : base_overrides) {
      if (!overridden) continue;
      for (const sweep::SweepAxis& axis : spec.axes) {
        if (axis.field == flag) {
          std::fprintf(stderr,
                       "--%s: sweep '%s' sweeps %s as an axis; the base "
                       "override would have no effect\n",
                       flag, spec.name.c_str(), flag);
          return 2;
        }
      }
    }
    if (alpha > 0.0) spec.base.alpha = alpha;
    if (beta > 0.0) spec.base.beta = beta;
    if (lambda >= 0.0) spec.base.dynamics.lambda = lambda;
    if (scheduler >= 0) {
      spec.base.dynamics.scheduler =
          static_cast<dynamics::Scheduler>(scheduler);
    }
    for (const sweep::SweepAxis& axis : spec.axes) {
      for (const sweep::SweepAxis& extra : extra_axes) {
        if (axis.field == extra.field) {
          std::fprintf(stderr,
                       "--axis %s: sweep '%s' already sweeps that field\n",
                       extra.field.c_str(), spec.name.c_str());
          return 2;
        }
      }
    }
    spec.axes.insert(spec.axes.end(), extra_axes.begin(), extra_axes.end());
    // Unknown fields / out-of-range values become a clean exit here (the
    // runner would reject them too, but via an exception).
    if (!ValidateOrComplain(spec)) return 2;
  }
  if (!checkpoint_path.empty() && sweeps.size() > 1) {
    std::fprintf(stderr,
                 "--checkpoint tracks one grid; select one with --sweep\n");
    return 2;
  }

  sweep::SweepConfig config;
  config.threads = threads;
  config.reuse_arena = !no_arena;
  config.reuse_geometry = !no_geometry_cache;
  if (geometry_generations > 0) {
    config.geometry_generations = geometry_generations;
  }
  if (retries > 0) config.max_attempts = retries;
  config.checkpoint_path = checkpoint_path;
  config.resume = resume;
  config.halt_after_cells = halt_after;
  config.fault.fail_cell = fail_cell;
  config.fault.fail_attempts = fail_attempts;
  const sweep::SweepRunner runner(config);
  tools::EnableObservability(trace_path, metrics_path);

  std::vector<sweep::SweepResult> results;
  try {
    results = runner.RunAll(sweeps);
  } catch (const core::StatusError& e) {
    // Whole-sweep failures (bad input, unusable checkpoint) are clean CLI
    // errors, not aborts.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  int failed_cells = 0;
  bool first = true;
  for (const sweep::SweepResult& result : results) {
    if (!first) std::printf("\n");
    first = false;
    sweep::PrintSweepReport(result);
    failed_cells += result.cells_failed;
    if (sweep::SweepViolationCount(result) != 0) {
      std::fprintf(stderr, "FAIL: violations in sweep %s\n",
                   result.spec.name.c_str());
      return 1;
    }
    if (csv &&
        !sweep::WriteSweepCsvFile(result, "SWEEP_" + result.spec.name +
                                              ".csv")) {
      return 1;
    }
  }
  if (json && !sweep::WriteSweepJsonReport("SWEEP", results)) return 1;
  if (!tools::WriteObservabilityFiles(trace_path, metrics_path)) return 1;
  if (failed_cells > 0) {
    std::fprintf(stderr, "%d cell%s failed (isolated; rest of the grid "
                         "completed)\n",
                 failed_cells, failed_cells == 1 ? "" : "s");
    if (strict) return 1;
  }
  return 0;
}
