// sweep_runner: run parameter-grid sweeps through the batch engine over
// shared kernel arenas.
//
//   $ sweep_runner --list
//   $ sweep_runner --smoke [--json]
//   $ sweep_runner [--sweep NAME] [--instances K] [--threads T]
//                  [--no-arena] [--csv] [--json]
//
// Without --sweep, every builtin sweep runs.  --instances overrides the
// per-cell batch size; --threads sizes the per-cell worker pool (>= 1,
// strict parse via tool_args.h; when absent the pool uses hardware
// concurrency); --no-arena disables cross-instance kernel-arena reuse (for
// A/B timing; results are bit-identical either way).  --csv writes
// SWEEP_<name>.csv per sweep (io/csv table format, one row per cell);
// --json writes BENCH_SWEEP.json over all cells (engine report format).
//
// --smoke is the CI entry point: a tiny 2x2 grid (links x alpha) runs
// pooled, single-threaded, and arena-less, and the run fails (exit 1)
// unless all three deterministic sweep signatures are bit-identical and no
// feasibility/validation violations occurred -- a fast end-to-end check of
// the sweep -> batch -> kernel-arena stack.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sweep/sweep.h"
#include "sweep/sweep_report.h"
#include "sweep/sweep_runner.h"
#include "tool_args.h"

using namespace decaylib;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--smoke] [--sweep NAME] [--instances K]\n"
               "          [--threads T] [--no-arena] [--csv] [--json]\n",
               argv0);
  return 2;
}

int ListSweeps() {
  std::printf("sweepable fields:");
  for (const std::string& field : sweep::SweepableFields()) {
    std::printf(" %s", field.c_str());
  }
  std::printf("\n\nbuiltin sweeps:\n");
  for (const sweep::SweepSpec& spec : sweep::BuiltinSweeps()) {
    std::printf("  %-20s base=%s cells=%lld axes:", spec.name.c_str(),
                spec.base.topology.c_str(), sweep::GridSize(spec));
    for (const sweep::SweepAxis& axis : spec.axes) {
      std::printf(" %s[%zu]", axis.field.c_str(), axis.values.size());
    }
    std::printf("\n");
  }
  return 0;
}

// The --smoke grid: tiny, fixed, and axis-diverse enough to cross cell
// shapes (two link counts force the arenas to re-grow mid-sweep).
sweep::SweepSpec SmokeSweep() {
  sweep::SweepSpec spec;
  spec.name = "smoke";
  spec.base.name = "smoke";
  spec.base.topology = "uniform";
  spec.base.links = 12;
  spec.base.instances = 3;
  spec.base.seed = 9901;
  spec.axes = {{"links", {10, 14}}, {"alpha", {2.5, 3.0}}};
  return spec;
}

int RunSmoke(int threads, bool json) {
  const sweep::SweepSpec spec = SmokeSweep();

  // Pin the pooled side to >= 4 workers so the determinism gate compares
  // genuinely different interleavings even on single-core runners.
  sweep::SweepConfig pooled;
  pooled.threads = threads >= 4 ? threads : 4;
  sweep::SweepConfig serial = pooled;
  serial.threads = 1;
  sweep::SweepConfig no_arena = pooled;
  no_arena.reuse_arena = false;

  const sweep::SweepResult a = sweep::SweepRunner(pooled).Run(spec);
  const sweep::SweepResult b = sweep::SweepRunner(serial).Run(spec);
  const sweep::SweepResult c = sweep::SweepRunner(no_arena).Run(spec);
  sweep::PrintSweepReport(a);

  if (sweep::SweepViolationCount(a) != 0) {
    std::fprintf(stderr,
                 "FAIL: feasibility/validation violations in smoke sweep\n");
    return 1;
  }
  const std::string sig = sweep::SweepSignature(a);
  if (sig != sweep::SweepSignature(b)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs between thread counts\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(c)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs with arena reuse disabled\n");
    return 1;
  }
  std::printf(
      "smoke: sweep signatures bit-identical across thread counts and "
      "arena reuse (%lld kernels through arenas)\n",
      a.arena_rebuilds);

  if (json && !sweep::WriteSweepJsonReport("SWEEP", {&a, 1})) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool smoke = false;
  bool csv = false;
  bool json = false;
  bool no_arena = false;
  std::string sweep_name;
  int instances = 0;  // 0 = keep each sweep's value
  int threads = 0;    // 0 = hardware concurrency (explicit values >= 1)

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--no-arena") == 0) {
      no_arena = true;
    } else if (std::strcmp(arg, "--sweep") == 0 && i + 1 < argc) {
      sweep_name = argv[++i];
    } else if (std::strcmp(arg, "--instances") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--instances", argv[++i], 1, 1 << 20,
                               &instances)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--threads", argv[++i], 1, 1 << 16, &threads)) {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }

  if (list) return ListSweeps();
  if (smoke) {
    // The smoke grid is fixed (it IS the determinism gate); flags that
    // would alter it are a usage error, not something to silently drop.
    if (csv || no_arena || instances > 0 || !sweep_name.empty()) {
      std::fprintf(stderr,
                   "--smoke runs a fixed grid; it takes only --threads and "
                   "--json\n");
      return 2;
    }
    return RunSmoke(threads, json);
  }

  std::vector<sweep::SweepSpec> sweeps;
  if (!sweep_name.empty()) {
    auto found = sweep::FindBuiltinSweep(sweep_name);
    if (!found) {
      std::fprintf(stderr, "unknown sweep '%s'; try --list\n",
                   sweep_name.c_str());
      return 2;
    }
    sweeps.push_back(*std::move(found));
  } else {
    sweeps = sweep::BuiltinSweeps();
  }
  for (sweep::SweepSpec& spec : sweeps) {
    if (instances > 0) spec.base.instances = instances;
  }

  sweep::SweepConfig config;
  config.threads = threads;
  config.reuse_arena = !no_arena;
  const sweep::SweepRunner runner(config);

  std::vector<sweep::SweepResult> results = runner.RunAll(sweeps);
  bool first = true;
  for (const sweep::SweepResult& result : results) {
    if (!first) std::printf("\n");
    first = false;
    sweep::PrintSweepReport(result);
    if (sweep::SweepViolationCount(result) != 0) {
      std::fprintf(stderr, "FAIL: violations in sweep %s\n",
                   result.spec.name.c_str());
      return 1;
    }
    if (csv &&
        !sweep::WriteSweepCsvFile(result, "SWEEP_" + result.spec.name +
                                              ".csv")) {
      return 1;
    }
  }
  if (json && !sweep::WriteSweepJsonReport("SWEEP", results)) return 1;
  return 0;
}
