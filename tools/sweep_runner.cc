// sweep_runner: run parameter-grid sweeps through the batch engine over
// shared kernel arenas.
//
//   $ sweep_runner --list
//   $ sweep_runner --smoke [--json]
//   $ sweep_runner [--sweep NAME] [--instances K] [--alpha A] [--beta B]
//                  [--lambda L] [--scheduler S] [--threads T] [--no-arena]
//                  [--no-geometry-cache] [--csv] [--json]
//
// Without --sweep, every builtin sweep runs.  --instances overrides the
// per-cell batch size, --alpha / --beta the base spec's decay exponent
// and SINR threshold, and --lambda (in [0, 1]) / --scheduler (lqf | greedy
// | random) the dynamics knobs the queue task consumes (strict parses via
// tool_args.h: garbage, empty or non-finite values -- and unknown scheduler
// names -- are usage errors); --threads sizes the per-cell worker
// pool (>= 1); --no-arena disables cross-instance kernel-arena reuse and
// --no-geometry-cache disables cross-cell geometry reuse (both for A/B
// timing; results are bit-identical either way).  --csv writes
// SWEEP_<name>.csv per sweep (io/csv table format, one row per cell);
// --json writes BENCH_SWEEP.json over all cells (engine report format).
//
// --smoke is the CI entry point, two fixed grids:
//  * a tiny 2x2x2 capacity grid (links x alpha x beta; the trailing beta
//    axis is non-geometric, so it exercises geometry reuse) runs pooled,
//    single-threaded, arena-less, geometry-cache-less and sort-paired, and
//    the run fails (exit 1) unless all five deterministic sweep signatures
//    are bit-identical and no feasibility/validation violations occurred;
//  * a 2x2 dynamics grid (alpha x lambda, TaskKind::kQueue + kRegret) runs
//    pooled vs single-threaded vs geometry-cache-less, gating that the
//    queue/regret task statistics are thread-count deterministic and that
//    every cell actually produced them.
// Together they are a fast end-to-end check of the sweep -> batch ->
// geometry-cache -> kernel-arena stack, dynamics tasks included.
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dynamics/queue_system.h"
#include "engine/report.h"
#include "sweep/sweep.h"
#include "sweep/sweep_report.h"
#include "sweep/sweep_runner.h"
#include "tool_args.h"

using namespace decaylib;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--smoke] [--sweep NAME] [--instances K]\n"
               "          [--alpha A] [--beta B] [--lambda L]\n"
               "          [--scheduler lqf|greedy|random] [--threads T]\n"
               "          [--no-arena] [--no-geometry-cache] [--csv] [--json]\n",
               argv0);
  return 2;
}

int ListSweeps() {
  std::printf("sweepable fields:");
  for (const std::string& field : sweep::SweepableFields()) {
    std::printf(" %s", field.c_str());
  }
  std::printf("\n\nbuiltin sweeps:\n");
  for (const sweep::SweepSpec& spec : sweep::BuiltinSweeps()) {
    std::printf("  %-20s base=%s cells=%lld axes:", spec.name.c_str(),
                spec.base.topology.c_str(), sweep::GridSize(spec));
    for (const sweep::SweepAxis& axis : spec.axes) {
      std::printf(" %s[%zu]", axis.field.c_str(), axis.values.size());
    }
    std::printf("\n");
  }
  return 0;
}

// The --smoke grid: tiny, fixed, and axis-diverse enough to cross cell
// shapes (two link counts force the arenas to re-grow mid-sweep) *and*
// geometry generations (the trailing beta axis is non-geometric, so every
// links x alpha geometry is reused across its beta pair when the cache is
// on).
sweep::SweepSpec SmokeSweep() {
  sweep::SweepSpec spec;
  spec.name = "smoke";
  spec.base.name = "smoke";
  spec.base.topology = "uniform";
  spec.base.links = 12;
  spec.base.instances = 3;
  spec.base.seed = 9901;
  spec.axes = {{"links", {10, 14}}, {"alpha", {2.5, 3.0}}, {"beta", {1.0, 1.5}}};
  return spec;
}

// The --smoke dynamics grid: alpha x lambda with the queue + regret tasks,
// small enough to stay fast in CI yet crossing a geometry boundary (alpha)
// and an arrival-rate row (lambda, non-geometric).
sweep::SweepSpec SmokeDynamicsSweep() {
  sweep::SweepSpec spec;
  spec.name = "smoke_dynamics";
  spec.base.name = "smoke_dynamics";
  spec.base.topology = "uniform";
  spec.base.links = 10;
  spec.base.instances = 2;
  spec.base.seed = 9902;
  spec.base.dynamics.queue_slots = 150;
  spec.base.dynamics.regret_rounds = 150;
  spec.axes = {{"alpha", {2.5, 3.0}}, {"lambda", {0.05, 0.3}}};
  spec.tasks = {engine::TaskKind::kQueue, engine::TaskKind::kRegret};
  return spec;
}

// Dynamics determinism gate: queue/regret statistics must be bit-identical
// across thread counts and geometry-cache modes, and every cell must have
// actually produced them (a silently skipped task would pass a pure
// signature comparison).
int RunDynamicsSmoke(const sweep::SweepConfig& pooled,
                     sweep::SweepResult* out) {
  const sweep::SweepSpec spec = SmokeDynamicsSweep();
  sweep::SweepConfig serial = pooled;
  serial.threads = 1;
  sweep::SweepConfig no_geometry = pooled;
  no_geometry.reuse_geometry = false;

  const sweep::SweepResult a = sweep::SweepRunner(pooled).Run(spec);
  const sweep::SweepResult b = sweep::SweepRunner(serial).Run(spec);
  const sweep::SweepResult c = sweep::SweepRunner(no_geometry).Run(spec);
  sweep::PrintSweepReport(a);

  const std::string sig = sweep::SweepSignature(a);
  if (sig != sweep::SweepSignature(b)) {
    std::fprintf(stderr,
                 "FAIL: dynamics sweep signature differs between thread "
                 "counts\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(c)) {
    std::fprintf(stderr,
                 "FAIL: dynamics sweep signature differs with the geometry "
                 "cache disabled\n");
    return 1;
  }
  for (const sweep::SweepCellResult& cell : a.cells) {
    for (const char* metric : {"queue_throughput", "queue_unstable",
                               "regret_successes"}) {
      const engine::MetricSummary* m =
          engine::FindAggregateMetric(cell.result, metric);
      if (m == nullptr ||
          m->count != static_cast<long long>(cell.result.instances.size())) {
        std::fprintf(stderr,
                     "FAIL: cell %d did not produce %s for every instance\n",
                     cell.cell.index, metric);
        return 1;
      }
    }
  }
  std::printf(
      "smoke: dynamics sweep signatures bit-identical across thread counts "
      "and geometry cache on/off (%zu cells, queue + regret tasks)\n",
      a.cells.size());
  *out = a;
  return 0;
}

int RunSmoke(int threads, bool json) {
  const sweep::SweepSpec spec = SmokeSweep();

  // Pin the pooled side to >= 4 workers so the determinism gate compares
  // genuinely different interleavings even on single-core runners.
  sweep::SweepConfig pooled;
  pooled.threads = threads >= 4 ? threads : 4;
  sweep::SweepConfig serial = pooled;
  serial.threads = 1;
  sweep::SweepConfig no_arena = pooled;
  no_arena.reuse_arena = false;
  sweep::SweepConfig no_geometry = pooled;
  no_geometry.reuse_geometry = false;
  sweep::SweepConfig sort_paired = pooled;
  sort_paired.pairing = engine::PairingMode::kSortGreedy;

  const sweep::SweepResult a = sweep::SweepRunner(pooled).Run(spec);
  const sweep::SweepResult b = sweep::SweepRunner(serial).Run(spec);
  const sweep::SweepResult c = sweep::SweepRunner(no_arena).Run(spec);
  const sweep::SweepResult d = sweep::SweepRunner(no_geometry).Run(spec);
  const sweep::SweepResult e = sweep::SweepRunner(sort_paired).Run(spec);
  sweep::PrintSweepReport(a);

  if (sweep::SweepViolationCount(a) != 0) {
    std::fprintf(stderr,
                 "FAIL: feasibility/validation violations in smoke sweep\n");
    return 1;
  }
  const std::string sig = sweep::SweepSignature(a);
  if (sig != sweep::SweepSignature(b)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs between thread counts\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(c)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs with arena reuse disabled\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(d)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs with the geometry cache "
                 "disabled\n");
    return 1;
  }
  if (sig != sweep::SweepSignature(e)) {
    std::fprintf(stderr,
                 "FAIL: sweep signature differs between grid/MNN and "
                 "sort-greedy pairing\n");
    return 1;
  }
  // The gate must actually exercise the cache: the beta axis guarantees
  // one warm generation per links x alpha coordinate.
  if (a.geometry_reuses <= 0 || d.geometry_reuses != 0) {
    std::fprintf(stderr,
                 "FAIL: geometry cache accounting (reuses on=%lld off=%lld)\n",
                 a.geometry_reuses, d.geometry_reuses);
    return 1;
  }
  std::printf(
      "smoke: sweep signatures bit-identical across thread counts, arena "
      "reuse, geometry cache on/off and pairing modes (%lld kernels through "
      "arenas, %lld geometries built / %lld reused)\n",
      a.arena_rebuilds, a.geometry_builds, a.geometry_reuses);

  std::printf("\n");
  sweep::SweepResult dynamics;
  if (const int dynamics_rc = RunDynamicsSmoke(pooled, &dynamics);
      dynamics_rc != 0) {
    return dynamics_rc;
  }

  // Both smoke grids land in the artifact: the capacity cells and the
  // dynamics (queue/regret) cells.
  const sweep::SweepResult results[] = {a, std::move(dynamics)};
  if (json && !sweep::WriteSweepJsonReport("SWEEP", results)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool smoke = false;
  bool csv = false;
  bool json = false;
  bool no_arena = false;
  bool no_geometry_cache = false;
  std::string sweep_name;
  int instances = 0;   // 0 = keep each sweep's value
  int threads = 0;     // 0 = hardware concurrency (explicit values >= 1)
  double alpha = 0.0;  // 0 = keep each sweep's base value (explicit > 0)
  double beta = 0.0;   // 0 = keep each sweep's base value (explicit > 0)
  double lambda = -1.0;  // < 0 = keep each sweep's base value
  int scheduler = -1;    // < 0 = keep; else index into SchedulerNames()

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--no-arena") == 0) {
      no_arena = true;
    } else if (std::strcmp(arg, "--no-geometry-cache") == 0) {
      no_geometry_cache = true;
    } else if (std::strcmp(arg, "--sweep") == 0 && i + 1 < argc) {
      sweep_name = argv[++i];
    } else if (std::strcmp(arg, "--instances") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--instances", argv[++i], 1, 1 << 20,
                               &instances)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      if (!tools::ParseIntFlag("--threads", argv[++i], 1, 1 << 16, &threads)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--alpha") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--alpha", argv[++i], 1e-3, 64.0, &alpha)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--beta") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--beta", argv[++i], 1e-6, 1e6, &beta)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--lambda") == 0 && i + 1 < argc) {
      if (!tools::ParseDoubleFlag("--lambda", argv[++i], 0.0, 1.0, &lambda)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--scheduler") == 0 && i + 1 < argc) {
      if (!tools::ParseChoiceFlag("--scheduler", argv[++i],
                                  dynamics::SchedulerNames(), &scheduler)) {
        return Usage(argv[0]);
      }
    } else {
      return Usage(argv[0]);
    }
  }

  if (list) return ListSweeps();
  if (smoke) {
    // The smoke grid is fixed (it IS the determinism gate); flags that
    // would alter it are a usage error, not something to silently drop.
    if (csv || no_arena || no_geometry_cache || instances > 0 ||
        alpha > 0.0 || beta > 0.0 || lambda >= 0.0 || scheduler >= 0 ||
        !sweep_name.empty()) {
      std::fprintf(stderr,
                   "--smoke runs a fixed grid; it takes only --threads and "
                   "--json\n");
      return 2;
    }
    return RunSmoke(threads, json);
  }

  std::vector<sweep::SweepSpec> sweeps;
  if (!sweep_name.empty()) {
    auto found = sweep::FindBuiltinSweep(sweep_name);
    if (!found) {
      std::fprintf(stderr, "unknown sweep '%s'; try --list\n",
                   sweep_name.c_str());
      return 2;
    }
    sweeps.push_back(*std::move(found));
  } else {
    sweeps = sweep::BuiltinSweeps();
  }
  for (sweep::SweepSpec& spec : sweeps) {
    if (instances > 0) spec.base.instances = instances;
    // Base overrides for swept fields would be silently erased by the axis
    // values in every cell; per this tool's flag policy that is a usage
    // error, not something to drop.
    const struct {
      const char* flag;
      bool overridden;
    } base_overrides[] = {{"alpha", alpha > 0.0},
                          {"beta", beta > 0.0},
                          {"lambda", lambda >= 0.0}};
    for (const auto& [flag, overridden] : base_overrides) {
      if (!overridden) continue;
      for (const sweep::SweepAxis& axis : spec.axes) {
        if (axis.field == flag) {
          std::fprintf(stderr,
                       "--%s: sweep '%s' sweeps %s as an axis; the base "
                       "override would have no effect\n",
                       flag, spec.name.c_str(), flag);
          return 2;
        }
      }
    }
    if (alpha > 0.0) spec.base.alpha = alpha;
    if (beta > 0.0) spec.base.beta = beta;
    if (lambda >= 0.0) spec.base.dynamics.lambda = lambda;
    if (scheduler >= 0) {
      spec.base.dynamics.scheduler =
          static_cast<dynamics::Scheduler>(scheduler);
    }
  }

  sweep::SweepConfig config;
  config.threads = threads;
  config.reuse_arena = !no_arena;
  config.reuse_geometry = !no_geometry_cache;
  const sweep::SweepRunner runner(config);

  std::vector<sweep::SweepResult> results = runner.RunAll(sweeps);
  bool first = true;
  for (const sweep::SweepResult& result : results) {
    if (!first) std::printf("\n");
    first = false;
    sweep::PrintSweepReport(result);
    if (sweep::SweepViolationCount(result) != 0) {
      std::fprintf(stderr, "FAIL: violations in sweep %s\n",
                   result.spec.name.c_str());
      return 1;
    }
    if (csv &&
        !sweep::WriteSweepCsvFile(result, "SWEEP_" + result.spec.name +
                                              ".csv")) {
      return 1;
    }
  }
  if (json && !sweep::WriteSweepJsonReport("SWEEP", results)) return 1;
  return 0;
}
