// bench_compare: the perf-regression gate over BENCH v2 records.
//
// Usage:
//   bench_compare [options] <base> <current>
//
// <base> and <current> are each either a single BENCH v2 JSON file or a
// directory of them (BENCH_*.json, matched pairwise by filename).  Phases
// are matched by name and diffed with the noise-aware thresholds of
// obs/bench_compare.h; the output is one markdown delta table per matched
// file.  Exit codes: 0 all phases within noise (improvements included),
// 1 at least one regression (or a missing phase/file without
// --allow-missing), 2 usage or input error.
//
// Options:
//   --rel X            relative threshold (default 0.25 = 25%)
//   --k-sigma X        dispersion multiplier (default 3.0)
//   --min-abs-ms X     absolute floor in ms (default 0.5)
//   --allow-missing    phases/files present in base but absent from current
//                      are notes, not regressions (for partial reruns)
//
// A regression is flagged only when the delta clears *all three* bounds, so
// the thresholds compose: --rel guards against real-but-tiny ratios,
// --k-sigma against wide-variance phases, --min-abs-ms against microsecond
// phases whose ratio is all scheduler jitter.  CI runs this cross-machine
// (committed baselines vs fresh runner timings), so the workflow passes
// deliberately loose values; local runs on one machine can tighten them.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/bench_compare.h"
#include "obs/bench_harness.h"
#include "tool_args.h"

namespace {

namespace fs = std::filesystem;
using decaylib::obs::BenchReportData;
using decaylib::obs::CompareBenchReports;
using decaylib::obs::CompareMarkdownTable;
using decaylib::obs::CompareOptions;
using decaylib::obs::CompareResult;
using decaylib::obs::LoadBenchReport;

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare [--rel X] [--k-sigma X] [--min-abs-ms X]\n"
      "                     [--allow-missing] <base> <current>\n"
      "  <base>/<current>: a BENCH v2 JSON file or a directory of\n"
      "  BENCH_*.json files (matched pairwise by filename)\n");
  return 2;
}

// BENCH_*.json files directly inside `dir`, sorted by filename.
std::vector<fs::path> BenchFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  CompareOptions options;
  std::vector<std::string> positional;
  bool args_ok = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--rel") == 0 && i + 1 < argc) {
      args_ok &= decaylib::tools::ParseDoubleFlag(arg, argv[++i], 0.0, 1e6,
                                                  &options.rel_threshold);
    } else if (std::strcmp(arg, "--k-sigma") == 0 && i + 1 < argc) {
      args_ok &= decaylib::tools::ParseDoubleFlag(arg, argv[++i], 0.0, 1e6,
                                                  &options.k_sigma);
    } else if (std::strcmp(arg, "--min-abs-ms") == 0 && i + 1 < argc) {
      args_ok &= decaylib::tools::ParseDoubleFlag(arg, argv[++i], 0.0, 1e9,
                                                  &options.min_abs_ms);
    } else if (std::strcmp(arg, "--allow-missing") == 0) {
      options.allow_missing = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (!args_ok || positional.size() != 2) return Usage();

  const fs::path base_path = positional[0];
  const fs::path current_path = positional[1];
  std::vector<std::pair<fs::path, fs::path>> pairs;
  int missing_files = 0;
  if (fs::is_directory(base_path)) {
    if (!fs::is_directory(current_path)) {
      std::fprintf(stderr, "'%s' is a directory but '%s' is not\n",
                   base_path.c_str(), current_path.c_str());
      return 2;
    }
    const std::vector<fs::path> base_files = BenchFiles(base_path);
    if (base_files.empty()) {
      std::fprintf(stderr, "no BENCH_*.json files under '%s'\n",
                   base_path.c_str());
      return 2;
    }
    for (const fs::path& base_file : base_files) {
      const fs::path current_file = current_path / base_file.filename();
      if (!fs::exists(current_file)) {
        std::fprintf(stderr, "%s: no counterpart under '%s'%s\n",
                     base_file.filename().c_str(), current_path.c_str(),
                     options.allow_missing ? " (allowed)" : "");
        if (!options.allow_missing) ++missing_files;
        continue;
      }
      pairs.emplace_back(base_file, current_file);
    }
  } else {
    pairs.emplace_back(base_path, current_path);
  }

  int regressions = missing_files;
  bool input_error = false;
  for (const auto& [base_file, current_file] : pairs) {
    const auto base = LoadBenchReport(base_file.string());
    const auto current = LoadBenchReport(current_file.string());
    if (!base.ok() || !current.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!base.ok() ? base.status() : current.status())
                       .ToString()
                       .c_str());
      input_error = true;
      continue;
    }
    const CompareResult result = CompareBenchReports(*base, *current, options);
    std::fputs(CompareMarkdownTable(result, base->bench).c_str(), stdout);
    std::fputs("\n", stdout);
    regressions += result.regressions;
  }
  if (input_error) return 2;
  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d regression(s)\n", regressions);
    return 1;
  }
  return 0;
}
