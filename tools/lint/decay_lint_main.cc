// decay_lint CLI.
//
//   decay_lint --root src              lint every .h/.cc under src/
//   decay_lint src/engine/report.cc    lint specific files (labels = paths)
//   decay_lint --list-rules            print the rule catalogue
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.  This binary is a
// standalone tool, so unlike library code it is entitled to printf and exit
// codes; the library-side rules it enforces live in decay_lint.cc.
#include <cstdio>
#include <string>
#include <vector>

#include "decay_lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "decay_lint: --root needs a directory\n");
        return 2;
      }
      roots.push_back(argv[++i]);
    } else if (arg.rfind("--root=", 0) == 0) {
      roots.push_back(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: decay_lint [--root DIR]... [FILE]... [--list-rules]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "decay_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (list_rules) {
    for (const decaylint::RuleInfo& rule : decaylint::Rules()) {
      std::printf("%-20s %s\n", rule.id.c_str(), rule.summary.c_str());
    }
    return 0;
  }
  if (roots.empty() && files.empty()) {
    std::fprintf(stderr,
                 "decay_lint: nothing to lint (pass --root DIR or files)\n");
    return 2;
  }

  std::vector<decaylint::Finding> findings;
  std::string error;
  for (const std::string& root : roots) {
    if (!decaylint::LintTree(root, &findings, &error)) {
      std::fprintf(stderr, "decay_lint: %s\n", error.c_str());
      return 2;
    }
  }
  for (const std::string& file : files) {
    if (!decaylint::LintFile(file, file, &findings, &error)) {
      std::fprintf(stderr, "decay_lint: %s\n", error.c_str());
      return 2;
    }
  }

  for (const decaylint::Finding& f : findings) {
    std::printf("%s\n", decaylint::FormatFinding(f).c_str());
  }
  if (!findings.empty()) {
    std::printf("decay_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("decay_lint: clean\n");
  return 0;
}
