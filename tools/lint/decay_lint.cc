#include "decay_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace decaylint {

namespace {

// --- lexical preprocessing --------------------------------------------------

// One source line, split into the text the rules match against (`code`) and
// the text the suppression directives live in (`comment`).  Stripped regions
// are replaced by single spaces so tokens never merge across them.
struct LineView {
  std::string code;
  std::string comment;
};

// Strips //, /* */ comments and string/char literals (including basic raw
// strings) while tracking line structure.  The linter is lexical by design:
// everything it enforces is visible at token level, and this keeps it free
// of any compiler dependency.
std::vector<LineView> Preprocess(const std::string& content) {
  std::vector<LineView> lines(1);
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    if (c == '\n') {
      lines.emplace_back();
      continue;
    }
    LineView& line = lines.back();
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          // Line comment: the rest of the physical line is comment text.
          std::size_t j = i + 2;
          while (j < n && content[j] != '\n') {
            line.comment.push_back(content[j]);
            ++j;
          }
          i = j - 1;
        } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          line.code.push_back(' ');
          ++i;
        } else if (c == '"') {
          // Raw string?  Look back over the prefix for R (u8R, LR, ...).
          std::size_t back = i;
          bool raw = false;
          if (back > 0 && content[back - 1] == 'R') {
            const char before = back >= 2 ? content[back - 2] : ' ';
            if (!(std::isalnum(static_cast<unsigned char>(before)) ||
                  before == '_') ||
                before == '8' || before == 'u' || before == 'U' ||
                before == 'L') {
              raw = true;
            }
          }
          line.code.push_back(' ');
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < n && content[j] != '(') raw_delim.push_back(content[j++]);
            i = j;  // at '(' (or end)
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          line.code.push_back(' ');
          state = State::kChar;
        } else {
          line.code.push_back(c);
        }
        break;
      }
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          line.comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          i += close.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  return lines;
}

// --- rule table -------------------------------------------------------------

struct RuleDef {
  const char* id;
  const char* summary;
  // The rule never fires for labels starting with one of these...
  std::vector<std::string> allowed_prefixes;
  // ...or ending with one of these (designated homes for the construct).
  std::vector<std::string> allowed_suffixes;
};

const std::vector<RuleDef>& RuleTable() {
  static const std::vector<RuleDef> kRules = {
      {"exactness-pow",
       "std::pow/std::hypot belong to the physical-model layer "
       "(geom/sinr/spaces/env); algorithm and engine code must consume decay "
       "through DecaySpace/KernelCache so exact paths stay bit-identical",
       {"src/geom/", "src/sinr/", "src/spaces/", "src/env/", "src/core/",
        "src/measurement/"},
       {}},
      {"status-io",
       "no printf/cout/abort/exit in library code: recoverable errors travel "
       "as core::Status, programmer errors through DL_CHECK (core/check.h), "
       "human output through the designated report writers",
       {"src/core/check.h"},
       {"/report.cc", "_report.cc"}},
      {"unordered-iteration",
       "iterating an unordered container has implementation-defined order "
       "that leaks into signatures and reports; use an ordered container or "
       "sort before iterating",
       {},
       {}},
      {"naked-thread",
       "std::thread construction outside engine/batch_runner bypasses the "
       "one place where thread-count determinism is gated",
       {"src/engine/batch_runner"},
       {}},
      {"clock-read",
       "clock reads outside src/obs/ make checkpoint/resume and replay "
       "non-deterministic; timing surfaces elsewhere need an explicit "
       "decay-lint allow annotation",
       {"src/obs/"},
       {}},
  };
  return kRules;
}

bool RuleAppliesTo(const RuleDef& rule, const std::string& label) {
  for (const std::string& p : rule.allowed_prefixes) {
    if (label.rfind(p, 0) == 0) return false;
  }
  for (const std::string& s : rule.allowed_suffixes) {
    if (label.size() >= s.size() &&
        label.compare(label.size() - s.size(), s.size(), s) == 0) {
      return false;
    }
  }
  return true;
}

// --- matchers ---------------------------------------------------------------

const std::regex& PowRe() {
  static const std::regex re(
      R"((?:\bstd\s*::\s*)?\b(?:pow[fl]?|hypot[fl]?)\s*\()");
  return re;
}

const std::regex& StatusIoRe() {
  static const std::regex re(
      R"(\bstd\s*::\s*(?:printf|fprintf|puts|fputs|abort|exit|quick_exit|_Exit|cout|cerr)\b)"
      R"(|\b(?:printf|fprintf|vprintf|vfprintf|puts|perror|abort|exit|quick_exit)\s*\()");
  return re;
}

const std::regex& ThreadRe() {
  static const std::regex re(R"(\bstd\s*::\s*j?thread\b(?!\s*::))");
  return re;
}

const std::regex& ClockRe() {
  static const std::regex re(
      R"(\b(?:steady_clock|system_clock|high_resolution_clock)\b)"
      R"(|\b(?:clock_gettime|gettimeofday|localtime|gmtime|mktime)\b)"
      R"(|\bstd\s*::\s*time\b|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"
      R"(|\bclock\s*\(\s*\))");
  return re;
}

const std::regex& UnorderedDeclRe() {
  static const std::regex re(R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  return re;
}

// After an unordered_* declaration's template argument list closes, the next
// identifier (past &, *, whitespace) is the declared name.  Returns "" when
// the line is not a declaration (e.g. a using-directive or parameter pack we
// cannot see the end of).
std::string DeclaredName(const std::string& code, std::size_t angle_start) {
  std::size_t i = code.find('<', angle_start);
  if (i == std::string::npos) return "";
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>' && --depth == 0) break;
  }
  if (depth != 0) return "";
  ++i;
  while (i < code.size() &&
         (std::isspace(static_cast<unsigned char>(code[i])) || code[i] == '&' ||
          code[i] == '*')) {
    ++i;
  }
  std::string name;
  while (i < code.size() && (std::isalnum(static_cast<unsigned char>(code[i])) ||
                             code[i] == '_')) {
    name.push_back(code[i++]);
  }
  return name;
}

bool CommentAllows(const std::string& comment, const std::string& rule) {
  return comment.find("decay-lint: allow(" + rule + ")") != std::string::npos;
}

bool CommentAllowsFile(const std::string& comment, const std::string& rule) {
  return comment.find("decay-lint: allowlist-file(" + rule + ")") !=
         std::string::npos;
}

}  // namespace

std::vector<RuleInfo> Rules() {
  std::vector<RuleInfo> out;
  for (const RuleDef& r : RuleTable()) out.push_back({r.id, r.summary});
  return out;
}

std::vector<Finding> LintContent(const std::string& label,
                                 const std::string& content) {
  std::vector<LineView> lines = Preprocess(content);

  // A fixture (or an out-of-tree file) may pin the label the path-scoped
  // allowlists see.
  std::string effective = label;
  for (std::size_t i = 0; i < lines.size() && i < 10; ++i) {
    const std::string& c = lines[i].comment;
    const std::size_t pos = c.find("decay-lint-path:");
    if (pos != std::string::npos) {
      std::istringstream in(c.substr(pos + sizeof("decay-lint-path:") - 1));
      in >> effective;
      break;
    }
  }
  std::replace(effective.begin(), effective.end(), '\\', '/');

  // File-wide suppressions can sit on any comment line.
  std::set<std::string> file_allowed;
  for (const LineView& line : lines) {
    for (const RuleDef& rule : RuleTable()) {
      if (CommentAllowsFile(line.comment, rule.id)) file_allowed.insert(rule.id);
    }
  }

  std::vector<Finding> findings;
  auto suppressed = [&](std::size_t idx, const std::string& rule) {
    if (file_allowed.count(rule) != 0) return true;
    if (CommentAllows(lines[idx].comment, rule)) return true;
    return idx > 0 && CommentAllows(lines[idx - 1].comment, rule);
  };
  auto active = [&](const std::string& rule_id) {
    for (const RuleDef& rule : RuleTable()) {
      if (rule_id == rule.id) return RuleAppliesTo(rule, effective);
    }
    return false;
  };
  auto report = [&](std::size_t idx, const std::string& rule,
                    const std::string& message) {
    if (!active(rule) || suppressed(idx, rule)) return;
    findings.push_back(
        {effective, static_cast<int>(idx) + 1, rule, message});
  };

  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (code.empty()) continue;

    if (std::regex_search(code, PowRe())) {
      report(i, "exactness-pow",
             "std::pow/std::hypot outside the physical-model layer; use "
             "DecaySpace/KernelCache accessors (or geom helpers) instead");
    }
    if (std::regex_search(code, StatusIoRe())) {
      report(i, "status-io",
             "direct I/O or process exit in library code; return "
             "core::Status (runtime errors) or use DL_CHECK (programmer "
             "errors)");
    }
    if (std::regex_search(code, ThreadRe())) {
      report(i, "naked-thread",
             "std::thread outside engine/batch_runner; route pooled work "
             "through BatchRunner so thread-count determinism stays gated");
    }
    if (std::regex_search(code, ClockRe())) {
      report(i, "clock-read",
             "clock read outside src/obs/; wall time in algorithm code "
             "breaks checkpoint/resume replay determinism");
    }

    // unordered-iteration: remember declared names, then flag any loop or
    // begin()/end() walk over them (or over an inline unordered expression).
    std::smatch m;
    if (std::regex_search(code, m, UnorderedDeclRe())) {
      const std::string name =
          DeclaredName(code, static_cast<std::size_t>(m.position(0)));
      if (!name.empty()) unordered_names.insert(name);
    }
    static const std::regex kForRe(R"(\bfor\s*\()");
    const bool is_range_for =
        std::regex_search(code, kForRe) && code.find(':') != std::string::npos;
    if (is_range_for && code.find("unordered_") != std::string::npos &&
        !std::regex_search(code, m, UnorderedDeclRe())) {
      report(i, "unordered-iteration",
             "range-for over an unordered container; iteration order is "
             "implementation-defined and poisons signatures/reports");
    }
    for (const std::string& name : unordered_names) {
      const bool walks =
          code.find(name + ".begin()") != std::string::npos ||
          code.find(name + ".end()") != std::string::npos ||
          code.find(name + ".cbegin()") != std::string::npos;
      const bool ranged =
          is_range_for &&
          std::regex_search(code, std::regex(":\\s*" + name + "\\s*\\)"));
      if (walks || ranged) {
        report(i, "unordered-iteration",
               "iteration over unordered container '" + name +
                   "'; order is implementation-defined and poisons "
                   "signatures/reports");
        break;
      }
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

bool LintFile(const std::string& path, const std::string& label,
              std::vector<Finding>* findings, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<Finding> f = LintContent(label, buffer.str());
  findings->insert(findings->end(), f.begin(), f.end());
  return true;
}

bool LintTree(const std::string& root, std::vector<Finding>* findings,
              std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root_path(root);
  if (!fs::is_directory(root_path, ec)) {
    if (error != nullptr) *error = root + " is not a directory";
    return false;
  }
  const std::string base = root_path.filename().string();
  std::vector<std::pair<std::string, std::string>> files;  // path, label
  for (fs::recursive_directory_iterator it(root_path, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".hpp") continue;
    const std::string rel =
        fs::relative(it->path(), root_path).generic_string();
    files.emplace_back(it->path().string(), base + "/" + rel);
  }
  if (ec) {
    if (error != nullptr) *error = "walking " + root + ": " + ec.message();
    return false;
  }
  std::sort(files.begin(), files.end());
  for (const auto& [path, label] : files) {
    if (!LintFile(path, label, findings, error)) return false;
  }
  return true;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return out.str();
}

}  // namespace decaylint
