// decay-lint-path: src/distributed/legacy_pool.cc
// decay-lint: allowlist-file(naked-thread) -- fork-join scoped, joins before
// returning; predates BatchRunner (tracked for migration).
#include <thread>

void ForkJoin() {
  std::thread t([] {});
  t.join();
}
