// decay-lint-path: src/engine/cell_timing.cc
// Timing surfaces measured as plain clocks are a sanctioned exception; the
// annotation records the reviewed decision and its rationale in place.
#include <chrono>
#include <cmath>

double AttemptMs() {
  // decay-lint: allow(clock-read) -- timing surface only, never a signature
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             t0.time_since_epoch())
      .count();
}

double MirrorDecay(double d, double a) {
  return std::pow(d, a);  // decay-lint: allow(exactness-pow) -- mirrors space
}
