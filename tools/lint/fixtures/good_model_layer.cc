// decay-lint-path: src/geom/decay_helpers.cc
// The physical-model layer is the designated home for pow/hypot.  Comments
// mentioning std::pow or printf must never fire, nor must string literals.
#include <cmath>

double GeometricDecay(double d, double alpha) { return std::pow(d, alpha); }

const char* kBanner = "printf is fine inside a string literal";
