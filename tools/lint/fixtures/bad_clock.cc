// decay-lint-path: src/sweep/cell_timer.cc
// expect: clock-read @ 6
#include <chrono>

double CellStartSeconds() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
