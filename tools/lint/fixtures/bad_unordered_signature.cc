// decay-lint-path: src/sweep/cell_index.cc
// expect: unordered-iteration @ 10
// expect: unordered-iteration @ 14
#include <string>
#include <unordered_map>

int SignatureFeed() {
  std::unordered_map<std::string, int> index;
  int sum = 0;
  for (const auto& [key, value] : index) sum += value;
  return sum;
}

int Walk(std::unordered_map<int, int>& m) { return m.begin()->second; }
