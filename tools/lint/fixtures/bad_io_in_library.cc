// decay-lint-path: src/capacity/greedy_debug.cc
// expect: status-io @ 9
// expect: status-io @ 10
// expect: status-io @ 11
#include <cstdio>
#include <cstdlib>

void Debug(int n) {
  std::printf("n=%d\n", n);
  if (n < 0) std::abort();
  if (n > 9) exit(2);
}
