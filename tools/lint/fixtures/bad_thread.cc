// decay-lint-path: src/dynamics/pool.cc
// expect: naked-thread @ 9
#include <thread>
#include <vector>

void Spawn(std::vector<int>& out) {
  // A static query is fine; construction is not.
  const unsigned n = std::thread::hardware_concurrency();
  std::thread worker([&out, n] { out.push_back(static_cast<int>(n)); });
  worker.join();
}
