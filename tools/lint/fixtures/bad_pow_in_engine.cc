// decay-lint-path: src/engine/admission.cc
// expect: exactness-pow @ 8
#include <cmath>

namespace decaylib::engine {

double RingBound(double d, double alpha) {
  return std::pow(d, alpha);
}

}  // namespace decaylib::engine
