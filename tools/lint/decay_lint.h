// decay_lint: project-invariant linter for the decaylib source tree.
//
// Generic tools (clang-tidy, -Wconversion) cannot express the repo-specific
// disciplines this codebase's determinism and exactness claims rest on.
// decay_lint enforces those as mechanical rules over src/:
//
//   exactness-pow        std::pow/std::hypot only in the physical-model layer
//                        (src/geom/, src/sinr/, src/spaces/, src/env/,
//                        src/core/ [DecaySpace/fading/numerics primitives],
//                        src/measurement/ [simulated RSSI/PRR physics]).
//                        Algorithm/engine layers must consume decay through
//                        DecaySpace/KernelCache so exact paths stay
//                        bit-identical (PR 9 exactness discipline).
//   status-io            no printf/fprintf/cout/cerr/abort/exit in library
//                        code outside core/check.h and the designated report
//                        writers (*report.cc) -- recoverable errors travel as
//                        core::Status (PR 6 status discipline).
//   unordered-iteration  no iteration over std::unordered_{map,set,...}
//                        anywhere in src/: iteration order is
//                        implementation-defined and would leak into
//                        AggregateSignature/SweepSignature or report output
//                        (determinism discipline).
//   naked-thread         no std::thread/std::jthread construction outside
//                        engine/batch_runner -- all pooled execution goes
//                        through BatchRunner so thread-count determinism is
//                        gated in one place.  (std::thread::hardware_concurrency
//                        is a static query and stays legal.)
//   clock-read           no clock reads outside src/obs/: wall time observed
//                        inside algorithm code would make checkpoint/resume
//                        and replay non-deterministic.  Timing surfaces in
//                        the engine/sweep layers carry explicit annotations.
//
// Suppression works at two granularities, always inside comments:
//   // decay-lint: allow(<rule>) -- <reason>            same or previous line
//   // decay-lint: allowlist-file(<rule>) -- <reason>   whole file
// A fixture or out-of-tree file can pin the path the rules see with
//   // decay-lint-path: src/engine/whatever.cc
// in its first lines (used by the committed fixtures under
// tools/lint/fixtures/, which exercise every rule in both directions).
//
// The linter is deliberately lexical (comments and string literals are
// stripped before matching): it runs in milliseconds as a ctest test and a
// CI step, needs no compiler, and the disciplines it checks are all
// expressible at token level.  See docs/static_analysis.md.
#pragma once

#include <string>
#include <vector>

namespace decaylint {

struct Finding {
  std::string file;     // label the rules saw (normally repo-relative)
  int line = 0;         // 1-based
  std::string rule;     // rule id, e.g. "exactness-pow"
  std::string message;  // human explanation of this hit
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

// Catalogue of every rule, in reporting order.
std::vector<RuleInfo> Rules();

// Lint one file's contents.  `label` is the path the path-scoped allowlists
// match against; a `decay-lint-path:` directive inside the content overrides
// it.  Findings come back sorted by line.
std::vector<Finding> LintContent(const std::string& label,
                                 const std::string& content);

// Lint a file on disk (reads it, then LintContent with `label`).
// Returns false and sets `error` if the file cannot be read.
bool LintFile(const std::string& path, const std::string& label,
              std::vector<Finding>* findings, std::string* error);

// Recursively lint every .h/.cc under `root`.  Labels are formed as
// <basename(root)>/<relative path>, so passing ".../repo/src" yields the
// canonical "src/..." labels the allowlists expect.  Returns false on I/O
// errors (message in `error`).
bool LintTree(const std::string& root, std::vector<Finding>* findings,
              std::string* error);

// "file:line: [rule] message" -- one line, no trailing newline.
std::string FormatFinding(const Finding& f);

}  // namespace decaylint
