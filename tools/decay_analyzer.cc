// decay_analyzer: the paper's parameters for any measured decay matrix.
//
//   $ decay_analyzer matrix.csv [--r <sep>] [--exact-gamma]
//   $ some_producer | decay_analyzer -
//
// Reads a square CSV decay matrix (see io/csv.h) and prints the full health
// report: validity, symmetry, spread, metricity zeta with its witness
// triplet, variant phi, fading parameter gamma(r), Assouad-dimension
// estimate and independence dimension (small inputs only).  This is the
// operational entry point the paper implies: measure your deployment, feed
// the matrix here, read off which theory applies.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/dimensions.h"
#include "core/fading.h"
#include "core/metricity.h"
#include "io/csv.h"
#include "tool_args.h"

using namespace decaylib;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <matrix.csv | -> [--r <separation>] "
               "[--exact-gamma]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string path = argv[1];
  double r = 0.0;
  bool exact_gamma = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--r") == 0 && i + 1 < argc) {
      // Strict parse (tool_args.h): garbage or a non-positive separation is
      // a usage error, not a silent fall-through to the default r.
      if (!tools::ParseDoubleFlag("--r", argv[++i], 1e-300, 1e300, &r)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--exact-gamma") == 0) {
      exact_gamma = true;
    } else {
      return Usage(argv[0]);
    }
  }

  io::ParseResult parsed = path == "-" ? io::ReadDecayCsv(std::cin)
                                       : io::ReadDecayCsvFile(path);
  if (!parsed.space.has_value()) {
    std::fprintf(stderr, "error: %s\n", parsed.error.c_str());
    return 1;
  }
  const core::DecaySpace& space = *parsed.space;

  std::printf("decay space report (%d nodes)\n", space.size());
  const auto problem = space.Validate();
  std::printf("  valid:            %s\n",
              problem ? problem->c_str() : "yes");
  std::printf("  symmetric:        %s\n",
              space.IsSymmetric(1e-9) ? "yes" : "no");
  std::printf("  decay range:      [%.4g, %.4g]  (spread %.4g)\n",
              space.MinDecay(), space.MaxDecay(), space.DecaySpread());

  const core::MetricityResult zeta = core::ComputeMetricity(space);
  std::printf("  metricity zeta:   %.4f", zeta.zeta);
  if (zeta.arg_x >= 0) {
    std::printf("   (witness triplet x=%d y=%d z=%d)", zeta.arg_x, zeta.arg_y,
                zeta.arg_z);
  }
  std::printf("\n  zeta upper bound: %.4f  (lg of spread)\n",
              core::MetricityUpperBound(space));
  const core::PhiResult phi = core::ComputePhi(space);
  std::printf("  variant phi:      %.4f  (factor %.4g)\n", phi.phi,
              phi.phi_factor);

  if (r <= 0.0) {
    // Default separation: geometric mean of the decay range.
    r = std::sqrt(space.MinDecay() * space.MaxDecay());
  }
  const double gamma = core::FadingParameter(space, r, exact_gamma);
  std::printf("  gamma(r=%.4g):    %.4f  (%s)\n", r, gamma,
              exact_gamma ? "exact" : "greedy estimate");

  const std::vector<double> qs{4.0, 8.0, 16.0, 32.0};
  const core::AssouadEstimate assouad =
      core::EstimateAssouadDimension(space, qs);
  std::printf("  Assouad estimate: A ~ %.3f (C ~ %.2f)  -> %s\n",
              assouad.dimension, assouad.constant,
              assouad.dimension < 1.0 ? "fading space (Thm. 2 applies)"
                                      : "NOT a fading space");
  if (space.size() <= 32) {
    std::printf("  independence dim: %d\n",
                core::IndependenceDimension(space));
  } else {
    std::printf("  independence dim: skipped (n > 32)\n");
  }
  return 0;
}
