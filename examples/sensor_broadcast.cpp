// Sensor-field local broadcast: a field of battery nodes with an obstacle,
// running the randomized local-broadcast protocol whose analysis rests on
// the fading parameter (Sec. 3).
//
//   $ ./sensor_broadcast
#include <algorithm>
#include <cstdio>

#include "core/fading.h"
#include "core/metricity.h"
#include "distributed/local_broadcast.h"
#include "env/propagation.h"
#include "geom/samplers.h"

using namespace decaylib;

int main() {
  // 30 sensors on a 25m x 25m field with a long wall through the middle
  // (a warehouse rack, say).
  geom::Rng placement(2024);
  const auto pts = geom::SampleMinDistance(30, 25.0, 25.0, 2.0, placement);
  env::Environment field;
  const env::MaterialId rack = field.AddMaterial({"rack", 9.0, 0.4});
  field.AddWall({{12.5, 2.0}, {12.5, 23.0}}, rack);

  env::PropagationConfig config;
  config.alpha = 3.0;
  config.shadowing_sigma_db = 2.0;
  const core::DecaySpace space =
      env::BuildDecaySpace(field, config, env::PlaceIsotropic(pts));
  std::printf("sensor field: %zu nodes, zeta = %.3f\n", pts.size(),
              core::Metricity(space));

  // Neighborhood: decays up to the median 4th-nearest decay.
  std::vector<double> fourth;
  for (int v = 0; v < space.size(); ++v) {
    std::vector<double> decays;
    for (int u = 0; u < space.size(); ++u) {
      if (u != v) decays.push_back(space(v, u));
    }
    std::sort(decays.begin(), decays.end());
    fourth.push_back(decays[3]);
  }
  std::sort(fourth.begin(), fourth.end());
  const double r = fourth[fourth.size() / 2];
  std::printf("neighborhood decay radius r = %.1f, fading parameter "
              "gamma(r) ~ %.2f\n",
              r, core::FadingParameter(space, r, /*exact=*/false));

  const distributed::RoundSimulator sim(space, {1.0, 2.0, 1e-12});
  distributed::BroadcastConfig broadcast;
  broadcast.neighborhood_r = r;
  broadcast.max_rounds = 100000;

  for (const auto policy :
       {distributed::BroadcastPolicy::kContentionInverse,
        distributed::BroadcastPolicy::kFixedProbability}) {
    broadcast.policy = policy;
    // Give the fixed policy a deliberately aggressive probability so the two
    // policies actually differ (the contention policy caps itself lower).
    broadcast.probability =
        policy == distributed::BroadcastPolicy::kFixedProbability ? 0.3 : 0.1;
    geom::Rng rng(7);
    const auto result = distributed::RunLocalBroadcast(sim, broadcast, rng);
    std::printf(
        "%s: %s in %d rounds, %lld transmissions, %lld deliveries\n",
        policy == distributed::BroadcastPolicy::kContentionInverse
            ? "contention-inverse"
            : "fixed-probability ",
        result.completed ? "completed" : "TIMED OUT", result.rounds,
        result.transmissions, result.deliveries);
  }
  return 0;
}
