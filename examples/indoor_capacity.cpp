// Indoor capacity planning: a floor plan with mixed materials, directional
// access points, reflections -- the "realistic environment" the paper's
// introduction motivates -- driven end to end to capacity and scheduling.
//
//   $ ./indoor_capacity
#include <cstdio>

#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "core/metricity.h"
#include "env/antenna.h"
#include "env/propagation.h"
#include "scheduling/scheduler.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  // A 30m x 15m office: concrete shell, two drywall partitions with doors,
  // one glass meeting room.
  env::Environment office;
  const env::MaterialId concrete =
      office.AddMaterial({"concrete", 12.0, 0.5});
  const env::MaterialId glass = office.AddMaterial({"glass", 3.0, 0.65});
  office.AddRoom({0.0, 0.0}, {30.0, 15.0}, concrete);
  office.AddWall({{10.0, 0.0}, {10.0, 6.0}});
  office.AddWall({{10.0, 9.0}, {10.0, 15.0}});
  office.AddWall({{20.0, 0.0}, {20.0, 6.0}});
  office.AddWall({{20.0, 9.0}, {20.0, 15.0}});
  office.AddRoom({22.0, 10.0}, {28.0, 14.0}, glass);

  // Three sector APs along the spine, each serving a client; plus four
  // isotropic peer-to-peer links.
  const env::SectorAntenna sector(M_PI * 2.0 / 3.0, 0.05);
  std::vector<env::PlacedNode> nodes;
  std::vector<sinr::Link> links;
  auto add_link = [&](env::PlacedNode sender, env::PlacedNode receiver) {
    nodes.push_back(sender);
    nodes.push_back(receiver);
    links.push_back({static_cast<int>(nodes.size()) - 2,
                     static_cast<int>(nodes.size()) - 1});
  };
  add_link({{5.0, 13.0}, {0.0, -1.0}, &sector}, {{4.0, 3.0}});
  add_link({{15.0, 13.0}, {0.0, -1.0}, &sector}, {{15.5, 4.0}});
  add_link({{25.0, 13.0}, {0.0, -1.0}, &sector}, {{25.0, 11.5}});
  add_link({{2.0, 2.0}}, {{3.5, 2.5}});
  add_link({{12.0, 2.0}}, {{13.0, 3.0}});
  add_link({{22.0, 2.0}}, {{23.0, 2.0}});
  add_link({{27.0, 5.0}}, {{28.5, 5.5}});

  env::PropagationConfig config;
  config.alpha = 2.8;
  config.shadowing_sigma_db = 3.0;
  config.enable_reflections = true;
  const core::DecaySpace space = env::BuildDecaySpace(office, config, nodes);

  const double zeta = std::max(1.0, core::Metricity(space));
  std::printf("office decay space: %d nodes, zeta = %.3f (alpha %.1f), "
              "symmetric: %s\n",
              space.size(), zeta, config.alpha,
              space.IsSymmetric(1e-9) ? "yes" : "no (sector antennas)");

  const sinr::LinkSystem system(space, links, {2.0, 1e-13});
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  std::printf("\nper-link decay and standalone SNR margin:\n");
  for (int v = 0; v < system.NumLinks(); ++v) {
    std::printf("  link %d: decay %.3g, can overcome noise: %s\n", v,
                system.LinkDecay(v),
                system.CanOvercomeNoise(v, power) ? "yes" : "NO");
  }

  const auto chosen = capacity::RunAlgorithm1(system, zeta).selected;
  const auto greedy = capacity::GreedyFeasible(system);
  std::printf("\none-shot capacity: Algorithm 1 -> %zu links, greedy -> %zu "
              "links (of %d)\n",
              chosen.size(), greedy.size(), system.NumLinks());

  const auto schedule = scheduling::ScheduleLinks(
      system, zeta, scheduling::Extractor::kAlgorithm1);
  std::printf("full traffic schedule: %d slots\n", schedule.Length());
  for (int s = 0; s < schedule.Length(); ++s) {
    std::printf("  slot %d:", s);
    for (int v : schedule.slots[static_cast<std::size_t>(s)]) {
      std::printf(" link%d", v);
    }
    std::printf("\n");
  }
  return 0;
}
