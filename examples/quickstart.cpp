// Quickstart: build a decay space, inspect its parameters, run Algorithm 1.
//
//   $ ./quickstart
//
// Walks through the core API in ~60 lines:
//   1. make a decay space (here: measured-style, geometric + shadowing);
//   2. compute its metricity zeta and variant phi;
//   3. wrap links over it and check feasibility;
//   4. run the paper's Algorithm 1 and print the selected feasible set.
#include <cstdio>

#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "sinr/power.h"
#include "spaces/samplers.h"

using namespace decaylib;

int main() {
  // 1. A 12-link deployment in a 20m x 20m area; decays follow d^3 with
  //    2 dB lognormal shadowing -- the kind of matrix a measurement
  //    campaign would produce.
  geom::Rng rng(42);
  std::vector<geom::Vec2> points;
  std::vector<sinr::Link> links;
  const std::vector<geom::Vec2> senders =
      geom::SampleMinDistance(12, 24.0, 24.0, 4.0, rng);
  for (const geom::Vec2& sender : senders) {
    points.push_back(sender);
    points.push_back(sender + geom::Vec2{1.0, 0.0}.Rotated(
                                  rng.Uniform(0.0, 2.0 * M_PI)));
    const int id = static_cast<int>(points.size());
    links.push_back({id - 2, id - 1});
  }
  geom::Rng shadowing(7);
  const core::DecaySpace space =
      spaces::ShadowedGeometric(points, 3.0, 2.0, shadowing, true);

  // 2. The space's complexity parameters.
  const double zeta = core::Metricity(space);
  const core::PhiResult phi = core::ComputePhi(space);
  std::printf("decay space: %d nodes, spread %.1f\n", space.size(),
              space.DecaySpread());
  std::printf("metricity zeta = %.3f (geometric alpha was 3.0)\n", zeta);
  std::printf("variant phi    = %.3f (phi_factor %.2f)\n", phi.phi,
              phi.phi_factor);

  // 3. Links + SINR machinery (beta = 1.5, noiseless).
  const sinr::LinkSystem system(space, links, {1.5, 0.0});
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  const auto everyone = sinr::AllLinks(system);
  std::printf("all %d links at once feasible? %s\n", system.NumLinks(),
              system.IsFeasible(everyone, power) ? "yes" : "no");

  // 4. Algorithm 1 (Theorem 5): a zeta^{O(1)}-approximate feasible subset.
  //    Its separation test is deliberately conservative -- that is what buys
  //    the worst-case guarantee; the greedy baseline shows the typical-case
  //    headroom.
  const auto result = capacity::RunAlgorithm1(system, zeta);
  std::printf("Algorithm 1 selected %zu links:", result.selected.size());
  for (int v : result.selected) std::printf(" %d", v);
  std::printf("\nmax in-affectance of the selection: %.3f (must be <= 1)\n",
              system.MaxInAffectance(result.selected, power));
  const auto greedy = capacity::GreedyFeasible(system);
  std::printf("greedy baseline selected %zu links (no worst-case guarantee "
              "in decay spaces)\n",
              greedy.size());
  return 0;
}
