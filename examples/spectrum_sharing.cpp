// Spectrum sharing / admission control on a measured decay matrix.
//
//   $ ./spectrum_sharing
//
// A secondary-spectrum operator measures its deployment (RSSI campaign),
// reports the decay-space health metrics (zeta, phi, spread, censoring), and
// runs admission control: a primary set of links is protected, and
// secondary links are admitted while the combined set stays feasible --
// the capacity-as-admission-oracle pattern behind the spectrum-auction
// transfer results the paper lists (Sec. 2.3, [38, 37]).
#include <cstdio>

#include "core/metricity.h"
#include "env/propagation.h"
#include "geom/rng.h"
#include "measurement/rssi.h"
#include "sinr/power.h"

using namespace decaylib;

int main() {
  // Ground truth environment: a dense urban-ish space with shadowing.
  geom::Rng rng(99);
  std::vector<geom::Vec2> points;
  std::vector<sinr::Link> links;
  for (int i = 0; i < 14; ++i) {
    const geom::Vec2 s{rng.Uniform(0.0, 40.0), rng.Uniform(0.0, 40.0)};
    points.push_back(s);
    points.push_back(s + geom::Vec2{rng.Uniform(1.0, 2.0), 0.0}.Rotated(
                             rng.Uniform(0.0, 2 * M_PI)));
    links.push_back({2 * i, 2 * i + 1});
  }
  env::Environment city;
  city.AddWall({{20.0, 0.0}, {20.0, 28.0}});
  city.AddWall({{8.0, 32.0}, {36.0, 32.0}});
  env::PropagationConfig config;
  config.alpha = 3.2;
  config.shadowing_sigma_db = 6.0;
  const core::DecaySpace truth =
      env::BuildDecaySpace(city, config, env::PlaceIsotropic(points));

  // Measurement campaign: 1 dB RSSI registers, finite sensitivity.
  measurement::RssiConfig rssi;
  rssi.quantization_db = 1.0;
  rssi.noise_sigma_db = 0.5;
  rssi.readings_per_pair = 8;
  rssi.sensitivity_dbm = -110.0;
  geom::Rng mrng(7);
  const auto table = measurement::SimulateRssi(truth, rssi, mrng);
  const core::DecaySpace measured =
      measurement::InferDecayFromRssi(table, rssi);

  std::printf("measured decay space health report\n");
  std::printf("  nodes:           %d\n", measured.size());
  std::printf("  censored pairs:  %.1f%%\n",
              100.0 * measurement::CensoredFraction(table));
  std::printf("  decay spread:    %.2e\n", measured.DecaySpread());
  std::printf("  metricity zeta:  %.3f (free-space alpha %.1f)\n",
              core::Metricity(measured), config.alpha);
  std::printf("  variant phi:     %.3f\n",
              core::ComputePhi(measured).phi);

  // Admission control: links 0-4 are the protected primary; admit
  // secondaries in order of increasing decay while the union stays feasible
  // with a protection margin (K = 2 on the primaries).
  const sinr::LinkSystem system(measured, links, {2.0, 0.0});
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  std::vector<int> active{0, 1, 2, 3, 4};
  std::printf("\nprimary set {0..4} feasible: %s\n",
              system.IsFeasible(active, power) ? "yes" : "no");

  const auto order = system.OrderByDecay();
  int admitted = 0;
  for (int v : order) {
    if (v <= 4) continue;  // already primary
    active.push_back(v);
    const bool secondary_ok = system.IsFeasible(active, power);
    bool primary_protected = true;
    for (int p = 0; p <= 4; ++p) {
      if (system.InAffectance(active, p, power) > 0.5) {
        primary_protected = false;
      }
    }
    if (secondary_ok && primary_protected) {
      ++admitted;
      std::printf("  admit link %2d  (in-affectance headroom kept)\n", v);
    } else {
      active.pop_back();
      std::printf("  reject link %2d (%s)\n", v,
                  !primary_protected ? "would break primary protection"
                                     : "union infeasible");
    }
  }
  std::printf("\nadmitted %d of %d secondary links; final set of %zu "
              "links remains feasible: %s\n",
              admitted, system.NumLinks() - 5, active.size(),
              system.IsFeasible(active, power) ? "yes" : "no");
  return 0;
}
