#include "auction/auction.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::auction {

namespace {

// Deterministic tie-breaking: higher bid first, then lower id.
std::vector<int> BidOrder(std::span<const double> bids) {
  std::vector<int> order(bids.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return bids[static_cast<std::size_t>(a)] >
           bids[static_cast<std::size_t>(b)];
  });
  return order;
}

// The critical-value bisection, shared by the cached and naive paths so
// both produce the identical sequence of probes (and hence the identical
// rounded payment).  `wins_with(bid)` must answer whether `link` wins when
// bidding `bid`, holding the other bids fixed.
template <typename WinsWith>
double BisectCriticalBid(std::span<const double> bids, double tol,
                         WinsWith&& wins_with) {
  const double max_bid = *std::max_element(bids.begin(), bids.end()) + 1.0;
  if (!wins_with(2.0 * max_bid)) return 2.0 * max_bid;  // cannot win
  double lo = 0.0;
  double hi = 2.0 * max_bid;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (wins_with(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

// Winners + payments from any winner-determination / critical-bid pair;
// the accumulation order (sorted winners) is shared so welfare and revenue
// sums associate identically on every path.
template <typename Winners, typename Critical>
AuctionResult RunMechanism(std::span<const double> bids, Winners&& winners,
                           Critical&& critical) {
  AuctionResult result;
  result.winners = winners(bids);
  result.payments.assign(bids.size(), 0.0);
  for (int v : result.winners) {
    result.social_welfare += bids[static_cast<std::size_t>(v)];
    const double payment = critical(bids, v);
    result.payments[static_cast<std::size_t>(v)] = payment;
    result.revenue += payment;
  }
  return result;
}

}  // namespace

// --- cached path -------------------------------------------------------------

std::vector<int> DetermineWinners(const sinr::KernelCache& kernel,
                                  std::span<const double> bids) {
  DL_CHECK(static_cast<int>(bids.size()) == kernel.NumLinks(),
           "one bid per link");
  // Admission through the accumulator decides exactly as the naive
  // push-IsFeasible-pop loop (kernel.h): the candidate's in-affectance is
  // the running raw sum and each member's new total is its running sum
  // plus the candidate's row entry, associated in admission order.
  sinr::AffectanceAccumulator admitted(kernel);
  for (int v : BidOrder(bids)) {
    if (bids[static_cast<std::size_t>(v)] <= 0.0) continue;
    if (!kernel.CanOvercomeNoise(v)) continue;
    if (admitted.CanAddFeasibly(v)) admitted.Add(v);
  }
  std::vector<int> winners = admitted.members();
  std::sort(winners.begin(), winners.end());
  return winners;
}

double CriticalBidRescan(const sinr::KernelCache& kernel,
                         std::span<const double> bids, int link, double tol) {
  DL_CHECK(link >= 0 && link < kernel.NumLinks(), "link out of range");
  std::vector<double> trial(bids.begin(), bids.end());
  return BisectCriticalBid(bids, tol, [&](double bid) {
    trial[static_cast<std::size_t>(link)] = bid;
    const auto winners = DetermineWinners(kernel, trial);
    return std::binary_search(winners.begin(), winners.end(), link);
  });
}

double CriticalBid(const sinr::KernelCache& kernel,
                   std::span<const double> bids, int link, double tol) {
  DL_CHECK(link >= 0 && link < kernel.NumLinks(), "link out of range");
  // The others' relative order is fixed across probes: stable_sort keeps it
  // whatever the link bids, so the trial order is always `others` with the
  // link spliced in at position p(bid) = #others preceding it.  An other o
  // precedes the link at bid b iff bids[o] > b, or bids[o] == b and o has
  // the smaller id (stable tie-break on original index).  That predicate is
  // monotone along `others` (sorted by bid desc, ties by id asc), so p(bid)
  // is a partition point.
  std::vector<int> others = BidOrder(bids);
  others.erase(std::find(others.begin(), others.end(), link));
  const int m = static_cast<int>(others.size());

  // Forward-only admission snapshot over the first base_pos others.  A
  // winning probe at position p tells us every later probe sits at a
  // position >= p (the bisection only lowers the bid after a win), so the
  // snapshot can safely advance to p; a losing probe leaves it in place.
  sinr::AffectanceAccumulator base(kernel);
  sinr::AffectanceAccumulator probe(kernel);
  int base_pos = 0;
  int known_win = -1;    // largest position with a winning verdict
  int known_lose = m + 1;  // smallest position with a losing verdict

  // Replays DetermineWinners' loop body over others[from, to).
  const auto advance = [&](sinr::AffectanceAccumulator& acc, int from, int to) {
    for (int i = from; i < to; ++i) {
      const int o = others[static_cast<std::size_t>(i)];
      if (bids[static_cast<std::size_t>(o)] <= 0.0) continue;
      if (!kernel.CanOvercomeNoise(o)) continue;
      if (acc.CanAddFeasibly(o)) acc.Add(o);
    }
  };

  return BisectCriticalBid(bids, tol, [&](double bid) {
    // Same per-link skips DetermineWinners applies when it reaches the link.
    if (bid <= 0.0) return false;
    if (!kernel.CanOvercomeNoise(link)) return false;
    const int p = static_cast<int>(
        std::partition_point(others.begin(), others.end(),
                             [&](int o) {
                               const double ob =
                                   bids[static_cast<std::size_t>(o)];
                               return ob > bid || (ob == bid && o < link);
                             }) -
        others.begin());
    // The verdict is monotone in p: a later position only adds members, and
    // affectance sums only grow, so admission can only flip win -> lose.
    if (p <= known_win) return true;
    if (p >= known_lose) return false;
    probe = base;
    advance(probe, base_pos, p);
    const bool win = probe.CanAddFeasibly(link);
    if (win) {
      known_win = p;
      std::swap(base, probe);
      base_pos = p;
    } else {
      known_lose = p;
    }
    return win;
  });
}

AuctionResult RunAuction(const sinr::KernelCache& kernel,
                         std::span<const double> bids, double tol) {
  return RunMechanism(
      bids,
      [&](std::span<const double> b) { return DetermineWinners(kernel, b); },
      [&](std::span<const double> b, int v) {
        return CriticalBid(kernel, b, v, tol);
      });
}

// --- LinkSystem entry points (uniform power, one kernel build) ---------------

std::vector<int> DetermineWinners(const sinr::LinkSystem& system,
                                  std::span<const double> bids) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return DetermineWinners(kernel, bids);
}

double CriticalBid(const sinr::LinkSystem& system,
                   std::span<const double> bids, int link, double tol) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return CriticalBid(kernel, bids, link, tol);
}

AuctionResult RunAuction(const sinr::LinkSystem& system,
                         std::span<const double> bids, double tol) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return RunAuction(kernel, bids, tol);
}

// --- naive references --------------------------------------------------------

std::vector<int> DetermineWinnersNaive(const sinr::LinkSystem& system,
                                       std::span<const double> bids) {
  DL_CHECK(static_cast<int>(bids.size()) == system.NumLinks(),
           "one bid per link");
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  std::vector<int> winners;
  for (int v : BidOrder(bids)) {
    if (bids[static_cast<std::size_t>(v)] <= 0.0) continue;
    if (!system.CanOvercomeNoise(v, power)) continue;
    winners.push_back(v);
    if (!system.IsFeasible(winners, power)) winners.pop_back();
  }
  std::sort(winners.begin(), winners.end());
  return winners;
}

double CriticalBidNaive(const sinr::LinkSystem& system,
                        std::span<const double> bids, int link, double tol) {
  DL_CHECK(link >= 0 && link < system.NumLinks(), "link out of range");
  std::vector<double> trial(bids.begin(), bids.end());
  return BisectCriticalBid(bids, tol, [&](double bid) {
    trial[static_cast<std::size_t>(link)] = bid;
    const auto winners = DetermineWinnersNaive(system, trial);
    return std::binary_search(winners.begin(), winners.end(), link);
  });
}

AuctionResult RunAuctionNaive(const sinr::LinkSystem& system,
                              std::span<const double> bids, double tol) {
  return RunMechanism(
      bids,
      [&](std::span<const double> b) {
        return DetermineWinnersNaive(system, b);
      },
      [&](std::span<const double> b, int v) {
        return CriticalBidNaive(system, b, v, tol);
      });
}

}  // namespace decaylib::auction
