#include "auction/auction.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::auction {

namespace {

// Deterministic tie-breaking: higher bid first, then lower id.
std::vector<int> BidOrder(std::span<const double> bids) {
  std::vector<int> order(bids.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return bids[static_cast<std::size_t>(a)] >
           bids[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

std::vector<int> DetermineWinners(const sinr::LinkSystem& system,
                                  std::span<const double> bids) {
  DL_CHECK(static_cast<int>(bids.size()) == system.NumLinks(),
           "one bid per link");
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  std::vector<int> winners;
  for (int v : BidOrder(bids)) {
    if (bids[static_cast<std::size_t>(v)] <= 0.0) continue;
    if (!system.CanOvercomeNoise(v, power)) continue;
    winners.push_back(v);
    if (!system.IsFeasible(winners, power)) winners.pop_back();
  }
  std::sort(winners.begin(), winners.end());
  return winners;
}

double CriticalBid(const sinr::LinkSystem& system,
                   std::span<const double> bids, int link, double tol) {
  DL_CHECK(link >= 0 && link < system.NumLinks(), "link out of range");
  std::vector<double> trial(bids.begin(), bids.end());
  const double max_bid =
      *std::max_element(bids.begin(), bids.end()) + 1.0;

  auto wins_with = [&](double bid) {
    trial[static_cast<std::size_t>(link)] = bid;
    const auto winners = DetermineWinners(system, trial);
    return std::binary_search(winners.begin(), winners.end(), link);
  };

  if (!wins_with(2.0 * max_bid)) return 2.0 * max_bid;  // cannot win
  double lo = 0.0;
  double hi = 2.0 * max_bid;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (wins_with(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

AuctionResult RunAuction(const sinr::LinkSystem& system,
                         std::span<const double> bids, double tol) {
  AuctionResult result;
  result.winners = DetermineWinners(system, bids);
  result.payments.assign(bids.size(), 0.0);
  for (int v : result.winners) {
    result.social_welfare += bids[static_cast<std::size_t>(v)];
    const double critical = CriticalBid(system, bids, v, tol);
    result.payments[static_cast<std::size_t>(v)] = critical;
    result.revenue += critical;
  }
  return result;
}

}  // namespace decaylib::auction
