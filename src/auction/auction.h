// Secondary spectrum auctions over decay spaces (transfer list's [38, 37]).
//
// Bidders are links with private valuations; the auctioneer sells
// transmission rights subject to SINR feasibility.  Hoefer-Kesselheim-
// Vocking's mechanism is: run a monotone greedy winner-determination rule
// (an approximation to weighted capacity whose guarantee is charged to the
// inductive independence rho of the instance), then charge critical-value
// payments, which makes the mechanism truthful.  Everything is
// metric-parameter-only, so by Prop. 1 it transfers to decay spaces.
//
// This module implements the single-channel mechanism:
//   * winner determination: greedy by bid, admit while feasible (a monotone
//     allocation rule -- raising your bid can only help you);
//   * critical-value payments per winner, computed by re-running the rule
//     on the others' bids (binary search over the winner's bid);
//   * utilities / truthfulness checks used by tests and benches.
//
// The hot path runs on a sinr::KernelCache: winner determination admits
// through an AffectanceAccumulator (O(n) per admission instead of the
// naive O(|S| n) re-summation), and the payment bisection re-runs the rule
// ~50 times per winner against the *same* warm kernel, so the whole
// mechanism builds the O(n^2) kernels exactly once.  The LinkSystem entry
// points keep their historical uniform-power semantics by building one
// uniform-power kernel and delegating; the original per-query
// implementations survive as the *Naive references, and the cached path is
// bit-exact against them (the kernel admission test decides exactly as the
// naive push-IsFeasible-pop loop -- see kernel.h's bit-exactness contract
// -- so winner sets, critical bids and payments are identical doubles).
#pragma once

#include <span>
#include <vector>

#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::auction {

struct AuctionResult {
  std::vector<int> winners;        // link ids, sorted
  std::vector<double> payments;    // per link; 0 for losers
  double social_welfare = 0.0;     // sum of winning valuations
  double revenue = 0.0;            // sum of payments
};

// Greedy-by-bid winner determination over a warm kernel: scan bids in
// decreasing order, admit while the winner set stays feasible under the
// kernel's power assignment.  Monotone in each bid.
std::vector<int> DetermineWinners(const sinr::KernelCache& kernel,
                                  std::span<const double> bids);

// Full mechanism over a warm kernel: winners + critical-value payments
// (the smallest bid that still wins, holding others fixed; computed by
// bisection to `tol`).
AuctionResult RunAuction(const sinr::KernelCache& kernel,
                         std::span<const double> bids, double tol = 1e-6);

// The critical bid for one link (infimum winning bid against fixed others);
// 0 if the link wins even with an arbitrarily small bid, and +infinity-like
// (max bid * 2) if it cannot win at all.
//
// Probing the link at bid b only moves the link's *position* in the bid
// order -- the other links keep their fixed relative order, and whether the
// link wins is decided the moment the greedy rule reaches it (winners are
// never evicted).  CriticalBid exploits that: each bisection probe maps to
// the link's insertion position, the admission state over the preceding
// others is resumed from a forward-only snapshot instead of replayed from
// scratch, and the win/lose verdict is memoised per position (the verdict
// is monotone in the position, which is the same monotonicity that makes
// the mechanism truthful).  The probe sequence and every admission decision
// are identical to CriticalBidRescan's, so the payment is the same double.
double CriticalBid(const sinr::KernelCache& kernel,
                   std::span<const double> bids, int link, double tol = 1e-6);

// Reference implementation: re-runs full winner determination per bisection
// probe.  Kept as the bit-exactness oracle for CriticalBid.
double CriticalBidRescan(const sinr::KernelCache& kernel,
                         std::span<const double> bids, int link,
                         double tol = 1e-6);

// Historical entry points (uniform power): build one uniform-power kernel
// for `system` and delegate to the cached overloads above.  Bit-identical
// to the naive references below.
std::vector<int> DetermineWinners(const sinr::LinkSystem& system,
                                  std::span<const double> bids);
AuctionResult RunAuction(const sinr::LinkSystem& system,
                         std::span<const double> bids, double tol = 1e-6);
double CriticalBid(const sinr::LinkSystem& system,
                   std::span<const double> bids, int link, double tol = 1e-6);

// Naive reference implementations (per-query LinkSystem feasibility under
// uniform power): kept as the test oracles for the cached path, exactly the
// pre-kernel behaviour.
std::vector<int> DetermineWinnersNaive(const sinr::LinkSystem& system,
                                       std::span<const double> bids);
AuctionResult RunAuctionNaive(const sinr::LinkSystem& system,
                              std::span<const double> bids,
                              double tol = 1e-6);
double CriticalBidNaive(const sinr::LinkSystem& system,
                        std::span<const double> bids, int link,
                        double tol = 1e-6);

}  // namespace decaylib::auction
