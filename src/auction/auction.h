// Secondary spectrum auctions over decay spaces (transfer list's [38, 37]).
//
// Bidders are links with private valuations; the auctioneer sells
// transmission rights subject to SINR feasibility.  Hoefer-Kesselheim-
// Vocking's mechanism is: run a monotone greedy winner-determination rule
// (an approximation to weighted capacity whose guarantee is charged to the
// inductive independence rho of the instance), then charge critical-value
// payments, which makes the mechanism truthful.  Everything is
// metric-parameter-only, so by Prop. 1 it transfers to decay spaces.
//
// This module implements the single-channel mechanism:
//   * winner determination: greedy by bid, admit while feasible (a monotone
//     allocation rule -- raising your bid can only help you);
//   * critical-value payments per winner, computed by re-running the rule
//     on the others' bids (binary search over the winner's bid);
//   * utilities / truthfulness checks used by tests and benches.
#pragma once

#include <span>
#include <vector>

#include "sinr/link_system.h"

namespace decaylib::auction {

struct AuctionResult {
  std::vector<int> winners;        // link ids, sorted
  std::vector<double> payments;    // per link; 0 for losers
  double social_welfare = 0.0;     // sum of winning valuations
  double revenue = 0.0;            // sum of payments
};

// Greedy-by-bid winner determination (uniform power): scan bids in
// decreasing order, admit while the winner set stays feasible.  Monotone in
// each bid.
std::vector<int> DetermineWinners(const sinr::LinkSystem& system,
                                  std::span<const double> bids);

// Full mechanism: winners + critical-value payments (the smallest bid that
// still wins, holding others fixed; computed by bisection to `tol`).
AuctionResult RunAuction(const sinr::LinkSystem& system,
                         std::span<const double> bids, double tol = 1e-6);

// The critical bid for one link (infimum winning bid against fixed others);
// 0 if the link wins even with an arbitrarily small bid, and +infinity-like
// (max bid * 2) if it cannot win at all.
double CriticalBid(const sinr::LinkSystem& system,
                   std::span<const double> bids, int link, double tol = 1e-6);

}  // namespace decaylib::auction
