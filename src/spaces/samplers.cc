#include "spaces/samplers.h"

#include <cmath>
#include <vector>

#include "core/check.h"
#include "geom/samplers.h"

namespace decaylib::spaces {

core::DecaySpace ShadowedGeometric(std::span<const geom::Vec2> points,
                                   double alpha, double sigma_db,
                                   geom::Rng& rng, bool symmetric) {
  core::DecaySpace space = core::DecaySpace::Geometric(points, alpha);
  const int n = space.size();
  for (int i = 0; i < n; ++i) {
    for (int j = symmetric ? i + 1 : 0; j < n; ++j) {
      if (i == j) continue;
      const double shadow_db = rng.Normal(0.0, sigma_db);
      const double factor = std::pow(10.0, shadow_db / 10.0);
      if (symmetric) {
        space.SetSymmetric(i, j, space(i, j) * factor);
      } else {
        space.Set(i, j, space(i, j) * factor);
      }
    }
  }
  return space;
}

core::DecaySpace LogUniformSpace(int n, double spread, geom::Rng& rng,
                                 bool symmetric) {
  DL_CHECK(spread >= 1.0, "spread must be at least 1");
  core::DecaySpace space(n);
  const double log_spread = std::log(spread);
  for (int i = 0; i < n; ++i) {
    for (int j = symmetric ? i + 1 : 0; j < n; ++j) {
      if (i == j) continue;
      const double value = std::exp(rng.Uniform() * log_spread);
      if (symmetric) {
        space.SetSymmetric(i, j, value);
      } else {
        space.Set(i, j, value);
      }
    }
  }
  return space;
}

core::DecaySpace RandomGeometric(int n, double w, double h, double alpha,
                                 geom::Rng& rng) {
  const std::vector<geom::Vec2> pts = geom::SampleUniform(n, w, h, rng);
  return core::DecaySpace::Geometric(pts, alpha);
}

core::DecaySpace HyperGridSpace(int m, int k, double alpha) {
  DL_CHECK(m >= 2 && k >= 1, "grid needs m >= 2, k >= 1");
  int total = 1;
  for (int i = 0; i < k; ++i) {
    total *= m;
    DL_CHECK(total <= 4096, "hypergrid too large");
  }
  // Enumerate lattice coordinates in base m.
  std::vector<std::vector<int>> coords(static_cast<std::size_t>(total),
                                       std::vector<int>(static_cast<std::size_t>(k)));
  for (int id = 0; id < total; ++id) {
    int rest = id;
    for (int axis = 0; axis < k; ++axis) {
      coords[static_cast<std::size_t>(id)][static_cast<std::size_t>(axis)] =
          rest % m;
      rest /= m;
    }
  }
  core::DecaySpace space(total);
  for (int i = 0; i < total; ++i) {
    for (int j = i + 1; j < total; ++j) {
      double sq = 0.0;
      for (int axis = 0; axis < k; ++axis) {
        const double diff = static_cast<double>(
            coords[static_cast<std::size_t>(i)][static_cast<std::size_t>(axis)] -
            coords[static_cast<std::size_t>(j)][static_cast<std::size_t>(axis)]);
        sq += diff * diff;
      }
      space.SetSymmetric(i, j, std::pow(std::sqrt(sq), alpha));
    }
  }
  return space;
}

core::DecaySpace ClusteredGeometric(int n, int hotspots, double box,
                                    double sigma, double alpha,
                                    double sigma_db, geom::Rng& rng,
                                    bool symmetric,
                                    std::vector<geom::Vec2>* points_out) {
  DL_CHECK(n >= 1 && hotspots >= 1, "need n >= 1 points, >= 1 hotspot");
  std::vector<geom::Vec2> pts =
      geom::SampleClusters(n, hotspots, box, box, sigma, rng);
  core::DecaySpace space =
      sigma_db > 0.0 ? ShadowedGeometric(pts, alpha, sigma_db, rng, symmetric)
                     : core::DecaySpace::Geometric(pts, alpha);
  if (points_out != nullptr) *points_out = std::move(pts);
  return space;
}

core::DecaySpace CorridorSpace(int n, double length, double width,
                               double alpha, double sigma_db, geom::Rng& rng,
                               bool symmetric,
                               std::vector<geom::Vec2>* points_out) {
  DL_CHECK(n >= 1 && length > 0.0 && width >= 0.0,
           "need n >= 1 points in a positive-length corridor");
  std::vector<geom::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double lateral = width > 0.0 ? rng.Uniform(0.0, width) : 0.0;
    pts.push_back({rng.Uniform(0.0, length), lateral});
  }
  core::DecaySpace space =
      sigma_db > 0.0 ? ShadowedGeometric(pts, alpha, sigma_db, rng, symmetric)
                     : core::DecaySpace::Geometric(pts, alpha);
  if (points_out != nullptr) *points_out = std::move(pts);
  return space;
}

}  // namespace decaylib::spaces
