#include "spaces/constructions.h"

#include <cmath>

#include "core/check.h"
#include "geom/point.h"

namespace decaylib::spaces {

core::DecaySpace StarSpace(int k, double r) {
  DL_CHECK(k >= 1, "need at least one far leaf");
  DL_CHECK(r > 0.0, "near-leaf distance must be positive");
  const int n = k + 2;
  core::DecaySpace space(n);
  const double far = static_cast<double>(k) * static_cast<double>(k);
  // Center (0) to leaves.
  space.SetSymmetric(0, 1, r);
  for (int i = 2; i < n; ++i) space.SetSymmetric(0, i, far);
  // Leaf-to-leaf through the center.
  for (int i = 2; i < n; ++i) space.SetSymmetric(1, i, r + far);
  for (int i = 2; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) space.SetSymmetric(i, j, 2.0 * far);
  }
  return space;
}

core::DecaySpace WelzlSpace(int n, double eps) {
  DL_CHECK(n >= 1, "need at least v_0 and v_1");
  DL_CHECK(eps > 0.0 && eps <= 0.25, "Welzl construction needs 0 < eps <= 1/4");
  const int total = n + 2;  // v_{-1}, v_0 .. v_n
  core::DecaySpace space(total);
  for (int i = 0; i <= n; ++i) {
    const double pow2i = std::pow(2.0, static_cast<double>(i));
    space.SetSymmetric(0, 1 + i, pow2i - eps);  // d(v_{-1}, v_i)
    for (int j = 0; j < i; ++j) {
      space.SetSymmetric(1 + j, 1 + i, pow2i);  // d(v_j, v_i), j < i
    }
  }
  return space;
}

core::DecaySpace UniformSpace(int n, double value) {
  DL_CHECK(value > 0.0, "uniform decay must be positive");
  return core::DecaySpace(n, value);
}

LinkInstance Theorem3Instance(const graph::Graph& g) {
  const int n = g.size();
  DL_CHECK(n >= 2, "construction needs at least two vertices");
  LinkInstance instance{core::DecaySpace(2 * n), {}};
  instance.links.reserve(static_cast<std::size_t>(n));
  // The proof states cross values 2 (edge) and 1/n (non-edge); these are
  // channel *gains* -- the affectance arithmetic in the proof (edge pairs
  // blocked with affectance 2 > 1, non-edges contributing 1/n each) only
  // works with decays 1/2 and n respectively, which is what we store.
  const double edge_decay = 0.5;
  const double non_edge_decay = static_cast<double>(n);
  auto sender = [](int i) { return 2 * i; };
  auto receiver = [](int i) { return 2 * i + 1; };
  for (int i = 0; i < n; ++i) {
    instance.links.emplace_back(sender(i), receiver(i));
    instance.space.SetSymmetric(sender(i), receiver(i), 1.0);  // unit decay
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double f = g.HasEdge(i, j) ? edge_decay : non_edge_decay;
      // The abstract construction specifies the link-to-link gain; we apply
      // it to every cross pair of the two links' endpoints so any choice of
      // reference nodes reproduces the proof's gain matrix.
      instance.space.Set(sender(i), receiver(j), f);
      if (j > i) {
        instance.space.SetSymmetric(sender(i), sender(j), f);
        instance.space.SetSymmetric(receiver(i), receiver(j), f);
      }
      instance.space.Set(receiver(j), sender(i), f);
    }
  }
  return instance;
}

LinkInstance Theorem6Instance(const graph::Graph& g, double alpha,
                              double delta) {
  const int n = g.size();
  DL_CHECK(n >= 2, "construction needs at least two vertices");
  DL_CHECK(alpha >= 1.0, "Theorem 6 uses alpha >= 1");
  DL_CHECK(delta > 0.0 && delta < 0.5, "need 0 < delta < 1/2");
  const double alpha_prime = alpha - 1.0;
  const auto nd = static_cast<double>(n);
  const double same_link = std::pow(nd, alpha_prime);
  const double edge_decay = same_link - delta;
  const double non_edge_decay = std::pow(nd, alpha_prime + 1.0);

  LinkInstance instance{core::DecaySpace(2 * n), {}};
  auto sender = [](int i) { return 2 * i; };
  auto receiver = [](int i) { return 2 * i + 1; };
  for (int i = 0; i < n; ++i) {
    instance.links.emplace_back(sender(i), receiver(i));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        instance.space.SetSymmetric(sender(i), receiver(i), same_link);
        continue;
      }
      // Within-line decays: Euclidean distance |i - j| to the power alpha'
      // (pow(d, 0) = 1 covers the alpha = 1 case).
      if (j > i) {
        const double within = std::pow(static_cast<double>(j - i), alpha_prime);
        instance.space.SetSymmetric(sender(i), sender(j), within);
        instance.space.SetSymmetric(receiver(i), receiver(j), within);
      }
      // Cross-line decays.
      const double cross = g.HasEdge(i, j) ? edge_decay : non_edge_decay;
      instance.space.Set(sender(i), receiver(j), cross);
      instance.space.Set(receiver(j), sender(i), cross);
    }
  }
  return instance;
}

core::DecaySpace ZetaPhiTriple(double q) {
  DL_CHECK(q > 1.0, "the separation family needs q > 1");
  core::DecaySpace space(3);
  space.SetSymmetric(0, 1, 1.0);      // f_ab
  space.SetSymmetric(1, 2, q);        // f_bc
  space.SetSymmetric(0, 2, 2.0 * q);  // f_ac
  return space;
}

core::DecaySpace LineSpace(int n, double spacing, double alpha) {
  DL_CHECK(n >= 2, "need at least two points");
  DL_CHECK(spacing > 0.0, "spacing must be positive");
  std::vector<geom::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({spacing * static_cast<double>(i), 0.0});
  }
  return core::DecaySpace::Geometric(pts, alpha);
}

}  // namespace decaylib::spaces
