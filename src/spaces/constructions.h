// The concrete decay spaces constructed in the paper, implemented verbatim.
//
//  * StarSpace        -- Sec. 3.4: unbounded doubling dimension, yet bounded
//                        fading value for a fixed separation term.
//  * WelzlSpace       -- Sec. 4.1: doubling dimension 1, unbounded
//                        independence dimension.
//  * UniformSpace     -- independence dimension 1, unbounded doubling
//                        dimension (all decays equal).
//  * Theorem3Instance -- Appendix A: graph G -> equi-decay link set whose
//                        feasible sets (under any power) are exactly the
//                        independent sets of G; zeta <= lg of decay spread.
//  * Theorem6Instance -- Appendix C: two-line planar construction; feasible
//                        sets = independent sets under any power,
//                        phi_factor = O(n), doubling A <= 2, independence
//                        dimension 3.
//  * ZetaPhiTriple    -- Sec. 4.2: f_ab = 1, f_bc = q, f_ac = 2q; phi <= 2
//                        bounded while zeta = Theta(log q / log log q).
//  * LineSpace        -- collinear geometric points: zeta = alpha exactly.
#pragma once

#include <utility>
#include <vector>

#include "core/decay_space.h"
#include "graph/graph.h"

namespace decaylib::spaces {

// Star metric centered at node 0 with k far leaves at distance k^2 and one
// near leaf at distance r (node 1); decay = distance (zeta = 1).  Distances
// between leaves go through the center (shortest path in the star).
// Node ids: 0 = center x0, 1 = near leaf x_{-1}, 2..k+1 = far leaves.
core::DecaySpace StarSpace(int k, double r);

// Welzl's construction: nodes v_{-1}, v_0, ..., v_n with
// d(v_{-1}, v_i) = 2^i - eps and d(v_j, v_i) = 2^i for j < i (i, j != -1).
// Requires 0 < eps <= 1/4.  Node ids: 0 = v_{-1}, 1 + i = v_i.
// Doubling dimension 1; independence dimension >= n + 1 (w.r.t. v_{-1}).
core::DecaySpace WelzlSpace(int n, double eps = 0.25);

// All off-diagonal decays equal to `value`.
core::DecaySpace UniformSpace(int n, double value = 1.0);

// A link-level SINR instance over a decay space: node ids are dense; each
// link is an ordered (sender, receiver) node pair.
struct LinkInstance {
  core::DecaySpace space;
  std::vector<std::pair<int, int>> links;  // (sender node, receiver node)
};

// Theorem 3 construction from graph G on n vertices.  One unit-decay link
// per vertex; cross *gains* 2 on edges and 1/n on non-edges, i.e. decays 1/2
// and n (applied to all cross pairs of nodes, matching the abstract gain
// matrix in the proof: edge pairs block each other under any power, while a
// full independent set contributes total affectance (n-1)/n < 1).
// Node ids: sender of link i = 2i, receiver = 2i + 1.
LinkInstance Theorem3Instance(const graph::Graph& g);

// Theorem 6 two-line construction from graph G, with path loss term alpha
// >= 1 (alpha' = alpha - 1) and perturbation 0 < delta < 1/2.  Senders on
// x = 0 at heights 1..n, receivers on x = n; within-line decays are
// Euclidean distance^alpha', cross-line decays are n^alpha' (same link),
// n^alpha' - delta (edge) or n^{alpha'+1} (non-edge), symmetric.
LinkInstance Theorem6Instance(const graph::Graph& g, double alpha,
                              double delta = 0.25);

// The 3-point zeta-vs-phi separation family (Sec. 4.2).
core::DecaySpace ZetaPhiTriple(double q);

// n collinear points with uniform spacing and decay = distance^alpha; its
// metricity is exactly alpha (witnessed by consecutive triplets).
core::DecaySpace LineSpace(int n, double spacing, double alpha);

}  // namespace decaylib::spaces
