// Synthetic decay-space samplers.
//
// These generate the randomised workloads for tests and benches without the
// full floor-plan machinery of env/: geometric spaces with multiplicative
// shadowing noise (the simplest "measured" decay model), log-uniform abstract
// spaces, and spaces with planted metricity.
#pragma once

#include <span>
#include <vector>

#include "core/decay_space.h"
#include "geom/point.h"
#include "geom/rng.h"

namespace decaylib::spaces {

// Geometric decay perturbed by i.i.d. lognormal shadowing:
//   f(p,q) = d(p,q)^alpha * 10^{N(0, sigma_db)/10}.
// When `symmetric`, both directions share one shadowing draw (static channel
// reciprocity); otherwise each direction draws independently.
core::DecaySpace ShadowedGeometric(std::span<const geom::Vec2> points,
                                   double alpha, double sigma_db,
                                   geom::Rng& rng, bool symmetric = true);

// Fully abstract decay space: off-diagonal decays i.i.d. log-uniform in
// [1, spread].  Metricity grows with spread (up to the lg(spread) cap).
core::DecaySpace LogUniformSpace(int n, double spread, geom::Rng& rng,
                                 bool symmetric = true);

// Random planar geometric space, uniform points in a w x h box.
core::DecaySpace RandomGeometric(int n, double w, double h, double alpha,
                                 geom::Rng& rng);

// A k-dimensional hypercube grid metric with m points per side, decay =
// (L2 distance)^alpha; its quasi-metric has doubling dimension ~ k.  Total
// points = m^k; keep m^k small.
core::DecaySpace HyperGridSpace(int m, int k, double alpha);

// Matérn-style hotspot deployment: `hotspots` parent centers uniform in a
// box x box region, n points normal(sigma) around uniformly chosen parents,
// decay = d^alpha times optional lognormal shadowing (sigma_db = 0 disables
// it; see ShadowedGeometric for the noise model).
//
// Metricity: without shadowing this is a planar geometric space, so
// zeta <= alpha, and the dense hotspots make near-collinear triplets (and
// hence zeta ~ alpha) overwhelmingly likely even at small n.  Shadowing
// multiplies ratios by up to 10^{+-k sigma_db/10}, so zeta can exceed alpha
// by ~ lg of that factor; the quasi-metric keeps doubling dimension ~ 2.
//
// When `points_out` is non-null it receives the sampled coordinates (one
// per node, in node-id order) -- callers like the scenario engine use them
// for grid-accelerated pairing; passing nullptr changes nothing.
core::DecaySpace ClusteredGeometric(int n, int hotspots, double box,
                                    double sigma, double alpha,
                                    double sigma_db, geom::Rng& rng,
                                    bool symmetric = true,
                                    std::vector<geom::Vec2>* points_out =
                                        nullptr);

// Line/highway corridor deployment: n points uniform in a length x width
// strip with width << length (width = 0 collapses to a pure line), decay =
// d^alpha times optional lognormal shadowing as above.
//
// Metricity: the strip is nearly one-dimensional, so without shadowing
// zeta <= alpha with near-equality witnessed by the abundant almost-evenly
// split collinear triplets (the bound zeta = alpha is exact for a point
// midway between two others); the quasi-metric has doubling dimension ~ 1.
//
// `points_out`, when non-null, receives the sampled coordinates as above.
core::DecaySpace CorridorSpace(int n, double length, double width,
                               double alpha, double sigma_db, geom::Rng& rng,
                               bool symmetric = true,
                               std::vector<geom::Vec2>* points_out = nullptr);

}  // namespace decaylib::spaces
