// Synthetic decay-space samplers.
//
// These generate the randomised workloads for tests and benches without the
// full floor-plan machinery of env/: geometric spaces with multiplicative
// shadowing noise (the simplest "measured" decay model), log-uniform abstract
// spaces, and spaces with planted metricity.
#pragma once

#include <span>

#include "core/decay_space.h"
#include "geom/point.h"
#include "geom/rng.h"

namespace decaylib::spaces {

// Geometric decay perturbed by i.i.d. lognormal shadowing:
//   f(p,q) = d(p,q)^alpha * 10^{N(0, sigma_db)/10}.
// When `symmetric`, both directions share one shadowing draw (static channel
// reciprocity); otherwise each direction draws independently.
core::DecaySpace ShadowedGeometric(std::span<const geom::Vec2> points,
                                   double alpha, double sigma_db,
                                   geom::Rng& rng, bool symmetric = true);

// Fully abstract decay space: off-diagonal decays i.i.d. log-uniform in
// [1, spread].  Metricity grows with spread (up to the lg(spread) cap).
core::DecaySpace LogUniformSpace(int n, double spread, geom::Rng& rng,
                                 bool symmetric = true);

// Random planar geometric space, uniform points in a w x h box.
core::DecaySpace RandomGeometric(int n, double w, double h, double alpha,
                                 geom::Rng& rng);

// A k-dimensional hypercube grid metric with m points per side, decay =
// (L2 distance)^alpha; its quasi-metric has doubling dimension ~ k.  Total
// points = m^k; keep m^k small.
core::DecaySpace HyperGridSpace(int m, int k, double alpha);

}  // namespace decaylib::spaces
