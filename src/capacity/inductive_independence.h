// Inductive independence ([45, 38], cited in the paper as "a more systematic
// approach to SINR analysis ... can by itself be seen as a parameter of the
// decay space").
//
// For the decay (length) order "prec", the inductive independence number of
// a link instance is
//     rho = max_v  max over feasible S subseteq {w : v prec w} of
//             sum_{w in S} (a_v(w) + a_w(v)),
// the worst bidirectional affectance a link can exchange with a feasible set
// of *longer* links.  Many transfer-list results (spectrum auctions, dynamic
// scheduling, distributed scheduling) are parameterised by rho; in fading
// metrics rho = O(1), and in decay spaces it grows with the metricity-type
// parameters, which bench e14 measures.
//
// The inner maximisation is NP-hard in general; we report a greedy lower
// bound (heaviest-exchange-first, kept feasible) plus an upper bound from
// relaxing feasibility to cardinality-free summation of clamped affectances.
#pragma once

#include <vector>

#include "sinr/link_system.h"

namespace decaylib::capacity {

struct InductiveIndependence {
  double greedy_lower = 0.0;  // realised by an explicit feasible witness
  double upper = 0.0;         // sum over all longer links (no feasibility)
  int arg_link = -1;          // link attaining the greedy lower bound
};

InductiveIndependence EstimateInductiveIndependence(
    const sinr::LinkSystem& system, const sinr::PowerAssignment& power);

}  // namespace decaylib::capacity
