#include "capacity/partitions.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "sinr/power.h"

// (Lemma B.3's colouring is implemented directly below rather than through
// graph::DegeneracyColoring, because the conflict test needs link geometry.)

namespace decaylib::capacity {

namespace {

// One first-fit pass: assign each link (scanned in `order`) to the first
// class where its in-affectance from the links already in the class is at
// most `budget`.
std::vector<std::vector<int>> FirstFitByInAffectance(
    const sinr::KernelCache& kernel, const std::vector<int>& order,
    double budget) {
  std::vector<std::vector<int>> classes;
  for (int v : order) {
    bool placed = false;
    for (auto& cls : classes) {
      if (kernel.InAffectance(cls, v) <= budget) {
        cls.push_back(v);
        placed = true;
        break;
      }
    }
    if (!placed) classes.push_back({v});
  }
  return classes;
}

}  // namespace

std::vector<std::vector<int>> SignalStrengthen(const sinr::KernelCache& kernel,
                                               std::span<const int> S,
                                               double p, double q) {
  DL_CHECK(p > 0.0 && q >= p, "signal strengthening needs q >= p > 0");
  const double budget = 1.0 / (2.0 * q);

  // Pass A: increasing decay order; in-affectance from *shorter* links.
  std::vector<int> increasing(S.begin(), S.end());
  std::stable_sort(increasing.begin(), increasing.end(), [&](int a, int b) {
    return kernel.LinkDecay(a) < kernel.LinkDecay(b);
  });
  const std::vector<std::vector<int>> coarse =
      FirstFitByInAffectance(kernel, increasing, budget);

  // Pass B within each class: decreasing decay order; in-affectance from
  // *longer* links.  Each final class then has total in-affectance at most
  // 2 * budget = 1/q for every member.
  std::vector<std::vector<int>> result;
  for (const auto& cls : coarse) {
    std::vector<int> decreasing = cls;
    std::stable_sort(decreasing.begin(), decreasing.end(), [&](int a, int b) {
      return kernel.LinkDecay(a) > kernel.LinkDecay(b);
    });
    auto fine = FirstFitByInAffectance(kernel, decreasing, budget);
    for (auto& group : fine) result.push_back(std::move(group));
  }
  return result;
}

std::vector<std::vector<int>> SignalStrengthen(
    const sinr::LinkSystem& system, std::span<const int> S,
    const sinr::PowerAssignment& power, double p, double q) {
  const sinr::KernelCache kernel(system, power);
  return SignalStrengthen(kernel, S, p, q);
}

std::vector<std::vector<int>> SeparationPartition(
    const sinr::KernelCache& kernel, std::span<const int> S, double eta,
    double zeta) {
  DL_CHECK(eta > 0.0 && zeta > 0.0, "eta and zeta must be positive");
  // Non-increasing link length: when v is placed, all previously placed
  // links are at least as long, so the conflict test against max(d_vv, d_ww)
  // bounds the back-degree by the packing argument of Lemma B.3.
  std::vector<int> order(S.begin(), S.end());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return kernel.LinkDecay(a) > kernel.LinkDecay(b);
  });
  const sinr::SeparationOracle oracle(kernel, eta, zeta);
  std::vector<std::vector<int>> classes;
  for (int v : order) {
    bool placed = false;
    for (auto& cls : classes) {
      bool clash = false;
      for (int w : cls) {
        if (oracle.ConflictMaxLength(v, w)) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        cls.push_back(v);
        placed = true;
        break;
      }
    }
    if (!placed) classes.push_back({v});
  }
  return classes;
}

std::vector<std::vector<int>> SeparationPartition(
    const sinr::LinkSystem& system, std::span<const int> S, double eta,
    double zeta) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return SeparationPartition(kernel, S, eta, zeta);
}

std::vector<std::vector<int>> Lemma41Partition(const sinr::KernelCache& kernel,
                                               std::span<const int> S,
                                               double zeta) {
  const double beta = kernel.system().config().beta;
  const double strengthened = std::exp(2.0) / beta;  // e^2 / beta
  // S is feasible = 1-feasible; strengthen to e^2/beta-feasible classes
  // (each then 1/zeta-separated by Lemma B.2), then expand the separation.
  const auto coarse =
      SignalStrengthen(kernel, S, 1.0, std::max(1.0, strengthened));
  std::vector<std::vector<int>> result;
  for (const auto& cls : coarse) {
    auto fine = SeparationPartition(kernel, cls, zeta, zeta);
    for (auto& group : fine) result.push_back(std::move(group));
  }
  return result;
}

std::vector<std::vector<int>> Lemma41Partition(const sinr::LinkSystem& system,
                                               std::span<const int> S,
                                               double zeta) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return Lemma41Partition(kernel, S, zeta);
}

}  // namespace decaylib::capacity
