// Algorithm 1 of the paper: uniform-power CAPACITY in bounded-growth decay
// spaces, zeta^{O(1)}-approximate (Theorem 5); O(alpha^4) on the plane.
//
// Verbatim from the paper:
//
//   Let L be a set of links using uniform power and let X <- {}
//   for l_v in L in order of increasing f_vv value do
//     if l_v is zeta/2-separated from X and a_v(X) + a_X(v) <= 1/2 then
//       X <- X u {l_v}
//   Return S <- {l_v in X | a_X(v) <= 1}
//
// The final filter is needed because links admitted later can push an
// earlier link's in-affectance past the admission margin; Markov's
// inequality guarantees |S| >= |X| / 2 (Eqn. 5 in the proof of Theorem 5).
//
// The default entry points run on the cached SINR kernel (sinr::KernelCache):
// separation tests become decay-domain comparisons and the in/out-affectance
// budgets incremental accumulator reads, so a run costs O(n^2) cache build
// plus O(n |X|) admission work with no pow on the hot path.  The *Naive
// variants recompute every kernel entry through the LinkSystem methods; they
// are kept as the reference path that property tests compare against.
#pragma once

#include <span>
#include <vector>

#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::capacity {

struct Algorithm1Result {
  std::vector<int> selected;   // S, the returned feasible set
  std::vector<int> admitted;   // X, before the final affectance filter
};

// Runs Algorithm 1 on the candidate links (defaults to all links) with the
// given metricity zeta of the underlying space.  Uses uniform power 1.
Algorithm1Result RunAlgorithm1(const sinr::LinkSystem& system, double zeta,
                               std::span<const int> candidates);

Algorithm1Result RunAlgorithm1(const sinr::LinkSystem& system, double zeta);

// Cached-kernel entry points: reuse a prebuilt kernel (e.g. across the slots
// of a schedule).  The kernel's power assignment is used as-is; build it
// with UniformPower for the paper's algorithm.
Algorithm1Result RunAlgorithm1(const sinr::KernelCache& kernel, double zeta,
                               std::span<const int> candidates);

Algorithm1Result RunAlgorithm1(const sinr::KernelCache& kernel, double zeta);

// The admission loop + Markov filter over an explicit candidate order
// (already sorted by the caller).  Shared by RunAlgorithm1 (decay order) and
// WeightedAlgorithm1 (weight order).
Algorithm1Result GreedyAdmission(const sinr::KernelCache& kernel, double zeta,
                                 std::span<const int> order);

// Reference implementation on the naive LinkSystem methods; recomputes every
// affectance and separation from scratch.  Kept for property tests and
// speedup benchmarks.
Algorithm1Result RunAlgorithm1Naive(const sinr::LinkSystem& system,
                                    double zeta,
                                    std::span<const int> candidates);

Algorithm1Result RunAlgorithm1Naive(const sinr::LinkSystem& system,
                                    double zeta);

}  // namespace decaylib::capacity
