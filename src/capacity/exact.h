// Exact CAPACITY: maximum-cardinality feasible subsets by branch and bound.
//
// Feasibility is hereditary (dropping a link only lowers every in-
// affectance), so include/exclude branching with a cardinality bound is
// sound.  Two oracles:
//   * fixed power assignment (e.g. uniform) -- cheap incremental affectance;
//   * arbitrary power control -- each candidate set checked with the
//     Foschini-Miljanic oracle; pairwise obstructions prune most branches.
// Both are exponential in the worst case; intended for ground truth on
// n <= ~24 (fixed power) / ~16 (power control).
#pragma once

#include <span>
#include <vector>

#include "sinr/link_system.h"

namespace decaylib::capacity {

// Maximum feasible subset of `candidates` under the fixed `power`.
std::vector<int> ExactCapacity(const sinr::LinkSystem& system,
                               const sinr::PowerAssignment& power,
                               std::span<const int> candidates);

// Convenience overload over all links with uniform power.
std::vector<int> ExactCapacityUniform(const sinr::LinkSystem& system);

// Maximum subset of `candidates` feasible under *some* power assignment.
std::vector<int> ExactCapacityPowerControl(const sinr::LinkSystem& system,
                                           std::span<const int> candidates);

}  // namespace decaylib::capacity
