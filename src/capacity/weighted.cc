#include "capacity/weighted.h"

#include <algorithm>
#include <numeric>

#include "capacity/algorithm1.h"
#include "core/check.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

namespace decaylib::capacity {

double TotalWeight(std::span<const int> S, std::span<const double> weights) {
  double total = 0.0;
  for (int v : S) total += weights[static_cast<std::size_t>(v)];
  return total;
}

WeightedResult WeightedGreedy(const sinr::KernelCache& kernel,
                              std::span<const double> weights) {
  const int n = kernel.NumLinks();
  DL_CHECK(static_cast<int>(weights.size()) == n, "one weight per link");

  // Density = weight / (1 + total clamped affectance mass the link
  // exchanges with everyone): heavy, quiet links first.
  std::vector<double> density(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    double mass = 0.0;
    for (int w = 0; w < n; ++w) {
      if (w == v) continue;
      mass += kernel.Affectance(v, w) + kernel.Affectance(w, v);
    }
    density[static_cast<std::size_t>(v)] =
        weights[static_cast<std::size_t>(v)] / (1.0 + mass);
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return density[static_cast<std::size_t>(a)] >
           density[static_cast<std::size_t>(b)];
  });

  // Admit while feasible, with the incremental accumulator standing in for
  // the naive push-IsFeasible-pop re-summation (bit-identical decisions).
  sinr::AffectanceAccumulator acc(kernel);
  for (int v : order) {
    if (weights[static_cast<std::size_t>(v)] <= 0.0) continue;
    if (!kernel.CanOvercomeNoise(v)) continue;
    if (acc.CanAddFeasibly(v)) acc.Add(v);
  }
  WeightedResult result;
  result.selected = acc.members();
  result.weight = TotalWeight(result.selected, weights);
  return result;
}

WeightedResult WeightedGreedy(const sinr::LinkSystem& system,
                              std::span<const double> weights) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return WeightedGreedy(kernel, weights);
}

WeightedResult WeightedAlgorithm1(const sinr::KernelCache& kernel,
                                  std::span<const double> weights,
                                  double zeta) {
  const int n = kernel.NumLinks();
  DL_CHECK(static_cast<int>(weights.size()) == n, "one weight per link");
  DL_CHECK(zeta > 0.0, "zeta must be positive");

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weights[static_cast<std::size_t>(a)] >
           weights[static_cast<std::size_t>(b)];
  });
  // Non-positive weights are skipped by the naive loop before any other
  // test; filtering them from the order preserves the remaining decisions.
  std::erase_if(order, [&](int v) {
    return weights[static_cast<std::size_t>(v)] <= 0.0;
  });

  const Algorithm1Result admission = GreedyAdmission(kernel, zeta, order);
  WeightedResult result;
  result.selected = admission.selected;
  result.weight = TotalWeight(result.selected, weights);
  return result;
}

WeightedResult WeightedAlgorithm1(const sinr::LinkSystem& system,
                                  std::span<const double> weights,
                                  double zeta) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return WeightedAlgorithm1(kernel, weights, zeta);
}

namespace {

class WeightedSolver {
 public:
  WeightedSolver(const sinr::LinkSystem& system,
                 std::span<const double> weights)
      : kernel_(system, sinr::UniformPower(system)), weights_(weights) {
    // Heavy-first order makes the remaining-weight bound effective.
    order_.resize(static_cast<std::size_t>(system.NumLinks()));
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
      return weights_[static_cast<std::size_t>(a)] >
             weights_[static_cast<std::size_t>(b)];
    });
    suffix_weight_.assign(order_.size() + 1, 0.0);
    for (std::size_t i = order_.size(); i > 0; --i) {
      suffix_weight_[i - 1] =
          suffix_weight_[i] +
          std::max(0.0, weights_[static_cast<std::size_t>(order_[i - 1])]);
    }
  }

  WeightedResult Solve() {
    std::vector<int> current;
    Recurse(0, current, 0.0);
    std::sort(best_.selected.begin(), best_.selected.end());
    return best_;
  }

 private:
  void Recurse(std::size_t index, std::vector<int>& current, double weight) {
    if (weight + suffix_weight_[index] <= best_.weight) return;
    if (index == order_.size()) {
      if (weight > best_.weight) best_ = {current, weight};
      return;
    }
    const int v = order_[index];
    const double wv = weights_[static_cast<std::size_t>(v)];
    if (wv > 0.0 && kernel_.CanOvercomeNoise(v)) {
      current.push_back(v);
      if (kernel_.IsFeasible(current)) {
        Recurse(index + 1, current, weight + wv);
      }
      current.pop_back();
    }
    Recurse(index + 1, current, weight);
  }

  sinr::KernelCache kernel_;
  std::span<const double> weights_;
  std::vector<int> order_;
  std::vector<double> suffix_weight_;
  WeightedResult best_;
};

}  // namespace

WeightedResult ExactWeightedCapacity(const sinr::LinkSystem& system,
                                     std::span<const double> weights) {
  DL_CHECK(static_cast<int>(weights.size()) == system.NumLinks(),
           "one weight per link");
  return WeightedSolver(system, weights).Solve();
}

}  // namespace decaylib::capacity
