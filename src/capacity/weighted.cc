#include "capacity/weighted.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::capacity {

double TotalWeight(std::span<const int> S, std::span<const double> weights) {
  double total = 0.0;
  for (int v : S) total += weights[static_cast<std::size_t>(v)];
  return total;
}

WeightedResult WeightedGreedy(const sinr::LinkSystem& system,
                              std::span<const double> weights) {
  const int n = system.NumLinks();
  DL_CHECK(static_cast<int>(weights.size()) == n, "one weight per link");
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  // Density = weight / (1 + total clamped affectance mass the link
  // exchanges with everyone): heavy, quiet links first.
  std::vector<double> density(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    double mass = 0.0;
    for (int w = 0; w < n; ++w) {
      if (w == v) continue;
      mass += system.Affectance(v, w, power) + system.Affectance(w, v, power);
    }
    density[static_cast<std::size_t>(v)] =
        weights[static_cast<std::size_t>(v)] / (1.0 + mass);
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return density[static_cast<std::size_t>(a)] >
           density[static_cast<std::size_t>(b)];
  });

  WeightedResult result;
  for (int v : order) {
    if (weights[static_cast<std::size_t>(v)] <= 0.0) continue;
    if (!system.CanOvercomeNoise(v, power)) continue;
    result.selected.push_back(v);
    if (!system.IsFeasible(result.selected, power)) {
      result.selected.pop_back();
    }
  }
  result.weight = TotalWeight(result.selected, weights);
  return result;
}

WeightedResult WeightedAlgorithm1(const sinr::LinkSystem& system,
                                  std::span<const double> weights,
                                  double zeta) {
  const int n = system.NumLinks();
  DL_CHECK(static_cast<int>(weights.size()) == n, "one weight per link");
  DL_CHECK(zeta > 0.0, "zeta must be positive");
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weights[static_cast<std::size_t>(a)] >
           weights[static_cast<std::size_t>(b)];
  });

  std::vector<int> X;
  for (int v : order) {
    if (weights[static_cast<std::size_t>(v)] <= 0.0) continue;
    if (!system.CanOvercomeNoise(v, power)) continue;
    if (!system.IsSeparatedFrom(v, X, zeta / 2.0, zeta)) continue;
    const double budget = system.OutAffectance(v, X, power) +
                          system.InAffectance(X, v, power);
    if (budget <= 0.5) X.push_back(v);
  }
  WeightedResult result;
  for (int v : X) {
    if (system.InAffectance(X, v, power) <= 1.0) result.selected.push_back(v);
  }
  result.weight = TotalWeight(result.selected, weights);
  return result;
}

namespace {

class WeightedSolver {
 public:
  WeightedSolver(const sinr::LinkSystem& system,
                 std::span<const double> weights)
      : system_(system),
        weights_(weights),
        power_(sinr::UniformPower(system)) {
    // Heavy-first order makes the remaining-weight bound effective.
    order_.resize(static_cast<std::size_t>(system.NumLinks()));
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
      return weights_[static_cast<std::size_t>(a)] >
             weights_[static_cast<std::size_t>(b)];
    });
    suffix_weight_.assign(order_.size() + 1, 0.0);
    for (std::size_t i = order_.size(); i > 0; --i) {
      suffix_weight_[i - 1] =
          suffix_weight_[i] +
          std::max(0.0, weights_[static_cast<std::size_t>(order_[i - 1])]);
    }
  }

  WeightedResult Solve() {
    std::vector<int> current;
    Recurse(0, current, 0.0);
    std::sort(best_.selected.begin(), best_.selected.end());
    return best_;
  }

 private:
  void Recurse(std::size_t index, std::vector<int>& current, double weight) {
    if (weight + suffix_weight_[index] <= best_.weight) return;
    if (index == order_.size()) {
      if (weight > best_.weight) best_ = {current, weight};
      return;
    }
    const int v = order_[index];
    const double wv = weights_[static_cast<std::size_t>(v)];
    if (wv > 0.0 && system_.CanOvercomeNoise(v, power_)) {
      current.push_back(v);
      if (system_.IsFeasible(current, power_)) {
        Recurse(index + 1, current, weight + wv);
      }
      current.pop_back();
    }
    Recurse(index + 1, current, weight);
  }

  const sinr::LinkSystem& system_;
  std::span<const double> weights_;
  sinr::PowerAssignment power_;
  std::vector<int> order_;
  std::vector<double> suffix_weight_;
  WeightedResult best_;
};

}  // namespace

WeightedResult ExactWeightedCapacity(const sinr::LinkSystem& system,
                                     std::span<const double> weights) {
  DL_CHECK(static_cast<int>(weights.size()) == system.NumLinks(),
           "one weight per link");
  return WeightedSolver(system, weights).Solve();
}

}  // namespace decaylib::capacity
