// The partition lemmas of Appendix B.
//
//  * Lemma B.1 (signal strengthening, after [35]): any p-feasible set can be
//    partitioned into ceil(2q/p)^2 q-feasible sets.  Implemented as two
//    first-fit passes -- one admitting against shorter links, one against
//    longer links -- each needing at most ceil(2q/p) classes by the
//    counting argument in the lemma.
//  * Lemma B.2: an e^2/beta-feasible set under uniform power is
//    1/zeta-separated (verification predicate; the statement is checked
//    empirically in tests/benches).
//  * Lemma B.3: a tau-separated set in a space whose quasi-metric has
//    doubling dimension A' partitions into O((eta/tau)^A') eta-separated
//    sets, by first-fit colouring of the proximity conflict graph along a
//    non-increasing length order (a rho-inductive ordering).
//  * Lemma 4.1: composition of B.1 + B.2 + B.3 -- a feasible set partitions
//    into O(zeta^{2A'}) zeta-separated sets.
//
// All partitions run on the cached SINR kernel; the LinkSystem signatures
// build the kernel internally, the KernelCache overloads reuse a prebuilt
// one (e.g. when chaining B.1 and B.3 as Lemma41Partition does).
#pragma once

#include <span>
#include <vector>

#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::capacity {

// Lemma B.1.  Requires q >= p > 0 and S p-feasible under `power`; returns
// groups, each q-feasible, at most ceil(2q/p)^2 of them.
std::vector<std::vector<int>> SignalStrengthen(const sinr::KernelCache& kernel,
                                               std::span<const int> S,
                                               double p, double q);
std::vector<std::vector<int>> SignalStrengthen(
    const sinr::LinkSystem& system, std::span<const int> S,
    const sinr::PowerAssignment& power, double p, double q);

// Lemma B.3.  Partitions a set of links into eta-separated classes by
// first-fit colouring along non-increasing link length; conflict between two
// links iff d(l_v, l_w) < eta * max(d_vv, d_ww).  (The classes are
// eta-separated by construction; the doubling dimension only controls how
// many classes are needed.)
std::vector<std::vector<int>> SeparationPartition(
    const sinr::KernelCache& kernel, std::span<const int> S, double eta,
    double zeta);
std::vector<std::vector<int>> SeparationPartition(
    const sinr::LinkSystem& system, std::span<const int> S, double eta,
    double zeta);

// Lemma 4.1.  Partitions a feasible set S (uniform power) into zeta-separated
// sets: signal-strengthen to e^2/beta-feasible classes, then separation-
// partition each to zeta-separated classes.
std::vector<std::vector<int>> Lemma41Partition(const sinr::KernelCache& kernel,
                                               std::span<const int> S,
                                               double zeta);
std::vector<std::vector<int>> Lemma41Partition(const sinr::LinkSystem& system,
                                               std::span<const int> S,
                                               double zeta);

}  // namespace decaylib::capacity
