#include "capacity/inductive_independence.h"

#include <algorithm>
#include <numeric>

namespace decaylib::capacity {

InductiveIndependence EstimateInductiveIndependence(
    const sinr::LinkSystem& system, const sinr::PowerAssignment& power) {
  InductiveIndependence result;
  const std::vector<int> order = system.OrderByDecay();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const int v = order[pos];
    const std::vector<int> longer(order.begin() + static_cast<long>(pos) + 1,
                                  order.end());
    if (longer.empty()) continue;

    // Upper bound: ignore feasibility altogether (clamped affectances).
    double upper = 0.0;
    for (int w : longer) {
      upper += system.Affectance(v, w, power) + system.Affectance(w, v, power);
    }
    result.upper = std::max(result.upper, upper);

    // Greedy witness: add longer links by decreasing exchanged affectance
    // while the witness set stays feasible.
    std::vector<int> by_weight = longer;
    std::stable_sort(by_weight.begin(), by_weight.end(), [&](int a, int b) {
      const double wa =
          system.Affectance(v, a, power) + system.Affectance(a, v, power);
      const double wb =
          system.Affectance(v, b, power) + system.Affectance(b, v, power);
      return wa > wb;
    });
    std::vector<int> witness;
    double exchanged = 0.0;
    for (int w : by_weight) {
      witness.push_back(w);
      if (system.IsFeasible(witness, power)) {
        exchanged += system.Affectance(v, w, power) +
                     system.Affectance(w, v, power);
      } else {
        witness.pop_back();
      }
    }
    if (exchanged > result.greedy_lower) {
      result.greedy_lower = exchanged;
      result.arg_link = v;
    }
  }
  return result;
}

}  // namespace decaylib::capacity
