// Baseline capacity heuristics for comparison with Algorithm 1.
//
//  * GreedyFeasible: process links in increasing decay order; admit a link
//    whenever the set stays feasible.  The natural general-metric greedy in
//    the lineage of [21, 30]; its approximation guarantee in decay spaces is
//    exponential in zeta (refined to 3^zeta in the sibling paper [24]).
//  * GreedyHalfAffectance: Algorithm 1 *without* the separation test --
//    admit when a_v(X) + a_X(v) <= 1/2, then filter to a_X(v) <= 1.  This is
//    the [30]-style oblivious-power greedy specialised to uniform power;
//    comparing it against Algorithm 1 isolates the contribution of the
//    separation condition (the source of the plane's polynomial bound).
//  * RandomFeasible: admit in random order while feasible; a sanity floor.
//
// All baselines use uniform power and return feasible sets.  Each has a
// cached-kernel overload running on sinr::KernelCache (incremental
// feasibility: O(|S|) per candidate instead of O(|S|^2) re-summation); the
// LinkSystem overloads build the kernel internally and produce identical
// results.
#pragma once

#include <span>
#include <vector>

#include "geom/rng.h"
#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::capacity {

std::vector<int> GreedyFeasible(const sinr::KernelCache& kernel,
                                std::span<const int> candidates);
std::vector<int> GreedyFeasible(const sinr::LinkSystem& system,
                                std::span<const int> candidates);
std::vector<int> GreedyFeasible(const sinr::LinkSystem& system);

std::vector<int> GreedyHalfAffectance(const sinr::KernelCache& kernel,
                                      std::span<const int> candidates);
std::vector<int> GreedyHalfAffectance(const sinr::LinkSystem& system,
                                      std::span<const int> candidates);
std::vector<int> GreedyHalfAffectance(const sinr::LinkSystem& system);

std::vector<int> RandomFeasible(const sinr::LinkSystem& system,
                                std::span<const int> candidates,
                                geom::Rng& rng);

}  // namespace decaylib::capacity
