// Amicability (Definition 4.2 and Theorem 4).
//
// A link set L is h(zeta)-amicable if every feasible subset S contains a
// subset S' of size >= c|S|/h(zeta) such that *every* link of L (inside or
// outside S') has out-affectance a_v(S') <= c under uniform power.  Theorem 4
// shows bounded-growth decay spaces are O(D * zeta^{2A'})-amicable, with the
// witness built as: a zeta-separated subset S-hat of S of size
// Omega(|S|/zeta^{2A'}) (Lemma 4.1) restricted to its links of out-affectance
// at most 2 (at least half of S-hat, by feasibility + Markov).
//
// This module constructs the Theorem 4 witness and measures the realised
// amicability constants, which bench e07 compares with the predicted bound
// (1 + 2e^2) * D.
#pragma once

#include <span>
#include <vector>

#include "sinr/link_system.h"

namespace decaylib::capacity {

struct AmicabilityWitness {
  std::vector<int> s_hat;    // the zeta-separated subset of S
  std::vector<int> s_prime;  // members of s_hat with out-affectance <= 2
  double shrink_factor = 0.0;      // |S| / |s_prime| (the realised h(zeta))
  double max_out_affectance = 0.0; // max over all links v of a_v(S')
};

// Builds the Theorem 4 witness for a feasible set S under uniform power.
AmicabilityWitness BuildAmicabilityWitness(const sinr::LinkSystem& system,
                                           std::span<const int> S,
                                           double zeta);

}  // namespace decaylib::capacity
