#include "capacity/exact.h"

#include <algorithm>

#include "sinr/kernel.h"
#include "sinr/power.h"
#include "sinr/power_control.h"

namespace decaylib::capacity {

namespace {

// Branch and bound for maximum feasible subset with a monotone (hereditary)
// feasibility oracle supplied as a callable on the current set.
template <typename FeasibleFn>
class Solver {
 public:
  Solver(std::vector<int> universe, FeasibleFn feasible)
      : universe_(std::move(universe)), feasible_(std::move(feasible)) {}

  std::vector<int> Solve() {
    std::vector<int> current;
    Recurse(0, current);
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  void Recurse(std::size_t index, std::vector<int>& current) {
    if (current.size() + (universe_.size() - index) <= best_.size()) return;
    if (index == universe_.size()) {
      if (current.size() > best_.size()) best_ = current;
      return;
    }
    // Include universe_[index] if the set stays feasible.
    current.push_back(universe_[index]);
    if (feasible_(current)) Recurse(index + 1, current);
    current.pop_back();
    // Exclude.
    Recurse(index + 1, current);
  }

  std::vector<int> universe_;
  FeasibleFn feasible_;
  std::vector<int> best_;
};

}  // namespace

std::vector<int> ExactCapacity(const sinr::LinkSystem& system,
                               const sinr::PowerAssignment& power,
                               std::span<const int> candidates) {
  // The branch and bound calls the feasibility oracle on every explored
  // node; the cached kernel turns each affectance term into a lookup.
  const sinr::KernelCache kernel(system, power);
  // Links that cannot even overcome noise alone can never appear.
  std::vector<int> universe;
  for (int v : candidates) {
    if (kernel.CanOvercomeNoise(v)) universe.push_back(v);
  }
  auto feasible = [&](const std::vector<int>& S) {
    return kernel.IsFeasible(S);
  };
  return Solver(std::move(universe), feasible).Solve();
}

std::vector<int> ExactCapacityUniform(const sinr::LinkSystem& system) {
  const std::vector<int> all = sinr::AllLinks(system);
  return ExactCapacity(system, sinr::UniformPower(system), all);
}

std::vector<int> ExactCapacityPowerControl(const sinr::LinkSystem& system,
                                           std::span<const int> candidates) {
  std::vector<int> universe(candidates.begin(), candidates.end());
  // Precompute pairwise obstructions: pairs that no power assignment can
  // serve together.  They turn most infeasible branches into O(1) rejections
  // before the iterative oracle runs.
  const int n = system.NumLinks();
  std::vector<std::vector<char>> blocked(
      static_cast<std::size_t>(n), std::vector<char>(static_cast<std::size_t>(n), 0));
  const double beta2 = system.config().beta * system.config().beta;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t j = i + 1; j < universe.size(); ++j) {
      const int v = universe[i];
      const int w = universe[j];
      if (sinr::PairwiseAffectanceProduct(system, v, w) > beta2) {
        blocked[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)] = 1;
        blocked[static_cast<std::size_t>(w)][static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  auto feasible = [&](const std::vector<int>& S) {
    const int last = S.back();
    for (int v : S) {
      if (v != last && blocked[static_cast<std::size_t>(v)]
                              [static_cast<std::size_t>(last)]) {
        return false;
      }
    }
    return sinr::FeasibleWithPowerControl(system, S).feasible;
  };
  return Solver(std::move(universe), feasible).Solve();
}

}  // namespace decaylib::capacity
