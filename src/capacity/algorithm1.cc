#include "capacity/algorithm1.h"

#include <algorithm>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::capacity {

Algorithm1Result GreedyAdmission(const sinr::KernelCache& kernel, double zeta,
                                 std::span<const int> order) {
  DL_CHECK(zeta > 0.0, "zeta must be positive");
  const sinr::SeparationOracle oracle(kernel, zeta / 2.0, zeta);
  sinr::AffectanceAccumulator acc(kernel);
  for (int v : order) {
    // A candidate listed twice is admitted at most once (the naive
    // reference would duplicate it in X on such degenerate input).
    if (acc.Contains(v)) continue;
    if (!kernel.CanOvercomeNoise(v)) continue;
    if (!oracle.IsSeparatedFrom(v, acc.members())) continue;
    // Out(v)/In(v) hold a_v(X) and a_X(v) summed in admission order -- the
    // same order the naive path sums them in.
    const double budget = acc.Out(v) + acc.In(v);
    if (budget <= 0.5) acc.Add(v);
  }
  Algorithm1Result result;
  result.admitted = acc.members();
  for (int v : result.admitted) {
    if (acc.In(v) <= 1.0) result.selected.push_back(v);
  }
  return result;
}

Algorithm1Result RunAlgorithm1(const sinr::KernelCache& kernel, double zeta,
                               std::span<const int> candidates) {
  // Process candidates in order of increasing link decay f_vv.
  std::vector<int> order(candidates.begin(), candidates.end());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return kernel.LinkDecay(a) < kernel.LinkDecay(b);
  });
  return GreedyAdmission(kernel, zeta, order);
}

Algorithm1Result RunAlgorithm1(const sinr::KernelCache& kernel, double zeta) {
  const std::vector<int> all = sinr::AllLinks(kernel.system());
  return RunAlgorithm1(kernel, zeta, all);
}

Algorithm1Result RunAlgorithm1(const sinr::LinkSystem& system, double zeta,
                               std::span<const int> candidates) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return RunAlgorithm1(kernel, zeta, candidates);
}

Algorithm1Result RunAlgorithm1(const sinr::LinkSystem& system, double zeta) {
  const std::vector<int> all = sinr::AllLinks(system);
  return RunAlgorithm1(system, zeta, all);
}

Algorithm1Result RunAlgorithm1Naive(const sinr::LinkSystem& system,
                                    double zeta,
                                    std::span<const int> candidates) {
  DL_CHECK(zeta > 0.0, "zeta must be positive");
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  std::vector<int> order(candidates.begin(), candidates.end());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return system.LinkDecay(a) < system.LinkDecay(b);
  });

  Algorithm1Result result;
  std::vector<int>& X = result.admitted;
  for (int v : order) {
    if (!system.CanOvercomeNoise(v, power)) continue;
    if (!system.IsSeparatedFrom(v, X, zeta / 2.0, zeta)) continue;
    const double budget = system.OutAffectance(v, X, power) +
                          system.InAffectance(X, v, power);
    if (budget <= 0.5) X.push_back(v);
  }
  for (int v : X) {
    if (system.InAffectance(X, v, power) <= 1.0) result.selected.push_back(v);
  }
  return result;
}

Algorithm1Result RunAlgorithm1Naive(const sinr::LinkSystem& system,
                                    double zeta) {
  const std::vector<int> all = sinr::AllLinks(system);
  return RunAlgorithm1Naive(system, zeta, all);
}

}  // namespace decaylib::capacity
