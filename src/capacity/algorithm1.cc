#include "capacity/algorithm1.h"

#include <algorithm>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::capacity {

Algorithm1Result RunAlgorithm1(const sinr::LinkSystem& system, double zeta,
                               std::span<const int> candidates) {
  DL_CHECK(zeta > 0.0, "zeta must be positive");
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  // Process candidates in order of increasing link decay f_vv.
  std::vector<int> order(candidates.begin(), candidates.end());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return system.LinkDecay(a) < system.LinkDecay(b);
  });

  Algorithm1Result result;
  std::vector<int>& X = result.admitted;
  for (int v : order) {
    if (!system.CanOvercomeNoise(v, power)) continue;
    if (!system.IsSeparatedFrom(v, X, zeta / 2.0, zeta)) continue;
    const double budget = system.OutAffectance(v, X, power) +
                          system.InAffectance(X, v, power);
    if (budget <= 0.5) X.push_back(v);
  }
  for (int v : X) {
    if (system.InAffectance(X, v, power) <= 1.0) result.selected.push_back(v);
  }
  return result;
}

Algorithm1Result RunAlgorithm1(const sinr::LinkSystem& system, double zeta) {
  const std::vector<int> all = sinr::AllLinks(system);
  return RunAlgorithm1(system, zeta, all);
}

}  // namespace decaylib::capacity
