#include "capacity/baselines.h"

#include <algorithm>

#include "sinr/power.h"

namespace decaylib::capacity {

namespace {

std::vector<int> DecayOrder(const sinr::KernelCache& kernel,
                            std::span<const int> candidates) {
  std::vector<int> order(candidates.begin(), candidates.end());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return kernel.LinkDecay(a) < kernel.LinkDecay(b);
  });
  return order;
}

// Admit each link of `order` in turn while the set stays feasible.  The
// incremental check against the accumulator reproduces, bit for bit, the
// naive push-IsFeasible-pop loop: in-affectance sums accumulate in the same
// admission order, and the candidate's own row adds a trailing 0.
std::vector<int> AdmitWhileFeasible(const sinr::KernelCache& kernel,
                                    const std::vector<int>& order) {
  sinr::AffectanceAccumulator acc(kernel);
  for (int v : order) {
    if (acc.Contains(v)) continue;  // duplicate candidate ids admit once
    if (!kernel.CanOvercomeNoise(v)) continue;
    if (acc.CanAddFeasibly(v)) acc.Add(v);
  }
  return acc.members();
}

}  // namespace

std::vector<int> GreedyFeasible(const sinr::KernelCache& kernel,
                                std::span<const int> candidates) {
  return AdmitWhileFeasible(kernel, DecayOrder(kernel, candidates));
}

std::vector<int> GreedyFeasible(const sinr::LinkSystem& system,
                                std::span<const int> candidates) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return GreedyFeasible(kernel, candidates);
}

std::vector<int> GreedyFeasible(const sinr::LinkSystem& system) {
  const std::vector<int> all = sinr::AllLinks(system);
  return GreedyFeasible(system, all);
}

std::vector<int> GreedyHalfAffectance(const sinr::KernelCache& kernel,
                                      std::span<const int> candidates) {
  sinr::AffectanceAccumulator acc(kernel);
  for (int v : DecayOrder(kernel, candidates)) {
    if (acc.Contains(v)) continue;
    if (!kernel.CanOvercomeNoise(v)) continue;
    const double budget = acc.Out(v) + acc.In(v);
    if (budget <= 0.5) acc.Add(v);
  }
  std::vector<int> selected;
  for (int v : acc.members()) {
    if (acc.In(v) <= 1.0) selected.push_back(v);
  }
  return selected;
}

std::vector<int> GreedyHalfAffectance(const sinr::LinkSystem& system,
                                      std::span<const int> candidates) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return GreedyHalfAffectance(kernel, candidates);
}

std::vector<int> GreedyHalfAffectance(const sinr::LinkSystem& system) {
  const std::vector<int> all = sinr::AllLinks(system);
  return GreedyHalfAffectance(system, all);
}

std::vector<int> RandomFeasible(const sinr::LinkSystem& system,
                                std::span<const int> candidates,
                                geom::Rng& rng) {
  std::vector<int> order(candidates.begin(), candidates.end());
  rng.Shuffle(order);
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return AdmitWhileFeasible(kernel, order);
}

}  // namespace decaylib::capacity
