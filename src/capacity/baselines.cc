#include "capacity/baselines.h"

#include <algorithm>

#include "sinr/power.h"

namespace decaylib::capacity {

namespace {

std::vector<int> DecayOrder(const sinr::LinkSystem& system,
                            std::span<const int> candidates) {
  std::vector<int> order(candidates.begin(), candidates.end());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return system.LinkDecay(a) < system.LinkDecay(b);
  });
  return order;
}

std::vector<int> AdmitWhileFeasible(const sinr::LinkSystem& system,
                                    const std::vector<int>& order) {
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  std::vector<int> chosen;
  for (int v : order) {
    if (!system.CanOvercomeNoise(v, power)) continue;
    chosen.push_back(v);
    if (!system.IsFeasible(chosen, power)) chosen.pop_back();
  }
  return chosen;
}

}  // namespace

std::vector<int> GreedyFeasible(const sinr::LinkSystem& system,
                                std::span<const int> candidates) {
  return AdmitWhileFeasible(system, DecayOrder(system, candidates));
}

std::vector<int> GreedyFeasible(const sinr::LinkSystem& system) {
  const std::vector<int> all = sinr::AllLinks(system);
  return GreedyFeasible(system, all);
}

std::vector<int> GreedyHalfAffectance(const sinr::LinkSystem& system,
                                      std::span<const int> candidates) {
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  std::vector<int> X;
  for (int v : DecayOrder(system, candidates)) {
    if (!system.CanOvercomeNoise(v, power)) continue;
    const double budget = system.OutAffectance(v, X, power) +
                          system.InAffectance(X, v, power);
    if (budget <= 0.5) X.push_back(v);
  }
  std::vector<int> selected;
  for (int v : X) {
    if (system.InAffectance(X, v, power) <= 1.0) selected.push_back(v);
  }
  return selected;
}

std::vector<int> GreedyHalfAffectance(const sinr::LinkSystem& system) {
  const std::vector<int> all = sinr::AllLinks(system);
  return GreedyHalfAffectance(system, all);
}

std::vector<int> RandomFeasible(const sinr::LinkSystem& system,
                                std::span<const int> candidates,
                                geom::Rng& rng) {
  std::vector<int> order(candidates.begin(), candidates.end());
  rng.Shuffle(order);
  return AdmitWhileFeasible(system, order);
}

}  // namespace decaylib::capacity
