// Weighted capacity (transfer list's [26, 43, 33]: weighted capacity,
// flexible data rates, cognitive-radio admission).
//
// Each link carries a non-negative weight (value, rate, priority); WEIGHTED
// CAPACITY asks for a feasible subset of maximum total weight.  The
// guarantees of the cited works are again functions of the metric parameter
// only, so they transfer with alpha -> zeta.  Provided here:
//   * WeightedGreedy      -- scan by weight density (weight per unit of
//                            clamped affectance mass), admit while feasible;
//                            the standard constant-factor pattern;
//   * WeightedAlgorithm1  -- Algorithm 1's admission rule, scanning in
//                            decreasing weight instead of increasing decay
//                            within separation classes;
//   * ExactWeightedCapacity -- branch and bound (hereditary feasibility with
//                            a weight-sum bound).
//
// WeightedGreedy and WeightedAlgorithm1 have cached-kernel overloads that
// reuse a prebuilt sinr::KernelCache (e.g. across the tasks of a batched
// scenario run); the LinkSystem signatures build a uniform-power kernel
// internally and produce identical results.
#pragma once

#include <span>
#include <vector>

#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::capacity {

struct WeightedResult {
  std::vector<int> selected;
  double weight = 0.0;
};

double TotalWeight(std::span<const int> S, std::span<const double> weights);

// Greedy by weight-to-interference density, kept feasible (uniform power).
WeightedResult WeightedGreedy(const sinr::KernelCache& kernel,
                              std::span<const double> weights);
WeightedResult WeightedGreedy(const sinr::LinkSystem& system,
                              std::span<const double> weights);

// Algorithm 1 admission (zeta/2-separation + affectance margin), scanning
// links by decreasing weight; the final filter keeps a_X(v) <= 1.
WeightedResult WeightedAlgorithm1(const sinr::KernelCache& kernel,
                                  std::span<const double> weights,
                                  double zeta);
WeightedResult WeightedAlgorithm1(const sinr::LinkSystem& system,
                                  std::span<const double> weights,
                                  double zeta);

// Exact maximum-weight feasible subset; intended for n <= ~22.
WeightedResult ExactWeightedCapacity(const sinr::LinkSystem& system,
                                     std::span<const double> weights);

}  // namespace decaylib::capacity
