#include "capacity/amicability.h"

#include <algorithm>

#include "capacity/partitions.h"
#include "sinr/power.h"

namespace decaylib::capacity {

AmicabilityWitness BuildAmicabilityWitness(const sinr::LinkSystem& system,
                                           std::span<const int> S,
                                           double zeta) {
  AmicabilityWitness witness;
  if (S.empty()) return witness;
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  // Largest zeta-separated class from the Lemma 4.1 partition.
  const auto classes = Lemma41Partition(system, S, zeta);
  std::size_t best = 0;
  for (std::size_t i = 1; i < classes.size(); ++i) {
    if (classes[i].size() > classes[best].size()) best = i;
  }
  witness.s_hat = classes[best];

  // Keep the low out-affectance half (threshold 2, as in the proof).
  for (int v : witness.s_hat) {
    if (system.OutAffectance(v, witness.s_hat, power) <= 2.0) {
      witness.s_prime.push_back(v);
    }
  }
  if (!witness.s_prime.empty()) {
    witness.shrink_factor = static_cast<double>(S.size()) /
                            static_cast<double>(witness.s_prime.size());
  }
  for (int v = 0; v < system.NumLinks(); ++v) {
    witness.max_out_affectance =
        std::max(witness.max_out_affectance,
                 system.OutAffectance(v, witness.s_prime, power));
  }
  return witness;
}

}  // namespace decaylib::capacity
