#include "core/numerics.h"

#include <cmath>

#include "core/check.h"

namespace decaylib::core {

double RiemannZeta(double x) {
  DL_CHECK(x > 1.0, "Riemann zeta series converges only for x > 1");
  constexpr int kTerms = 64;
  double sum = 0.0;
  for (int n = 1; n < kTerms; ++n) {
    sum += std::pow(static_cast<double>(n), -x);
  }
  // Euler-Maclaurin tail sum_{n>=N} n^-x for N = kTerms:
  //   integral_N^inf t^-x dt + 0.5 N^-x + (x/12) N^-(x+1) - ...
  const auto N = static_cast<double>(kTerms);
  sum += std::pow(N, 1.0 - x) / (x - 1.0);
  sum += 0.5 * std::pow(N, -x);
  sum += x / 12.0 * std::pow(N, -x - 1.0);
  sum -= x * (x + 1.0) * (x + 2.0) / 720.0 * std::pow(N, -x - 3.0);
  return sum;
}

double Lg(double x) { return std::log2(x); }

}  // namespace decaylib::core
