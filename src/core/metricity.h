// Metricity parameters of decay spaces (Definition 2.2 and Sec. 4.2).
//
// The metricity zeta(D) is the smallest number such that, for every triplet
// x, y, z:   f(x,y)^{1/zeta} <= f(x,z)^{1/zeta} + f(z,y)^{1/zeta}.
// It measures how far the decay space is from satisfying the triangle
// inequality; in the geometric case f = d^alpha, zeta = alpha (witnessed by
// collinear triplets).  zeta is well defined: lg(max f / min f) always
// satisfies the inequality (paper, after Def. 2.2).
//
// The variant parameter from Sec. 4.2 is the smallest phi_factor such that
// f(x,z) <= phi_factor * (f(x,y) + f(y,z)) for all triplets (a relaxed
// triangle inequality); phi = lg(phi_factor).  Note: the displayed formula in
// the arXiv text has the ratio inverted relative to this verbal definition;
// we implement the verbal definition, which matches all the paper's examples
// (e.g. f_ab = 1, f_bc = q, f_ac = 2q gives phi <= 2 for all q).
//
// Relation between the parameters: the paper's own derivation shows
// f(u,v) <= 2^zeta (f(u,w) + f(w,v)), i.e. phi <= zeta (the statement
// "zeta <= phi" in the text is a typo: the 3-point example above has bounded
// phi and unbounded zeta, so the inequality can only hold in this direction).
// Tests verify phi <= zeta on random spaces.
//
// ComputeMetricity and ComputePhi are the dominant O(n^3) costs of the
// experiment suite; the default entry points prune triples against the
// running incumbent before solving them, iterate in flat row-major order
// over the raw decay matrix, and split the outer loop across hardware
// threads.  Pruning is sound because h(s) = (b/a)^s + (c/a)^s - 1 is
// strictly decreasing: a triplet can only beat the incumbent zeta_best if
// h(1/zeta_best) < 0, a two-pow test that replaces the full bisection for
// the overwhelming majority of triples.  Both prunes carry a tolerance
// slack (and incumbents are chunk-local rather than shared across threads),
// so the optimised scans return the *same* extremum and the same witness
// triplet as the naive references -- exactly, not approximately; the
// equality tests compare with EXPECT_EQ.  The *Naive variants keep the
// original exhaustive scans as the reference path for those tests.
#pragma once

#include "core/decay_space.h"

namespace decaylib::core {

struct MetricityResult {
  // The metricity zeta(D).  0 when no triplet constrains the space (e.g. the
  // uniform metric, where every positive exponent works).
  double zeta = 0.0;
  // The triplet attaining it (x = source, y = destination, z = waypoint);
  // all -1 when unconstrained.
  int arg_x = -1;
  int arg_y = -1;
  int arg_z = -1;
};

// Computes zeta(D) by per-triplet root finding.  For a triplet with
// a = f(x,y) > max(b, c), b = f(x,z), c = f(z,y), the function
// h(s) = (b/a)^s + (c/a)^s - 1 is strictly decreasing with h(0) = 1, so the
// triplet's constraint holds iff s = 1/zeta is at most its unique root;
// zeta(D) is the max of 1/root over constraining triplets.  O(n^3) triplets;
// only those that can beat the incumbent are solved by bisection to relative
// tolerance `tol`.  Parallel over the outer loop; deterministic result.
MetricityResult ComputeMetricity(const DecaySpace& space, double tol = 1e-12);

// Reference implementation: bisects every constraining triplet, single
// threaded, in the original loop order.  Kept for equality tests and
// speedup benchmarks.
MetricityResult ComputeMetricityNaive(const DecaySpace& space,
                                      double tol = 1e-12);

// Convenience: just the number.
double Metricity(const DecaySpace& space, double tol = 1e-12);

// The smallest zeta satisfying (2) for one triplet (a, b, c) = (f(x,y),
// f(x,z), f(z,y)); 0 when a <= max(b, c) (unconstraining).
double TripletZeta(double a, double b, double c, double tol = 1e-12);

struct PhiResult {
  double phi_factor = 0.0;  // smallest phi_factor with f_xz <= phi_factor*(f_xy+f_yz)
  double phi = 0.0;         // lg(phi_factor); the paper's phi
  int arg_x = -1;
  int arg_y = -1;  // the waypoint
  int arg_z = -1;
};

// Computes the variant metricity phi (Sec. 4.2).  O(n^3) with a per-(x,z)
// row-min block prune (fxz / (min_y f(x,y) + min_y f(y,z)) bounds every
// factor of the block exactly, by monotonicity of rounded + and /, so whole
// inner loops are skipped once the incumbent warms), a multiplication-only
// per-candidate prune inside surviving blocks, transposed row access for
// cache locality, and the outer loop split across hardware threads;
// deterministic result, identical to ComputePhiNaive's.
PhiResult ComputePhi(const DecaySpace& space);

// Reference single-threaded exhaustive scan, for tests and benchmarks.
PhiResult ComputePhiNaive(const DecaySpace& space);

// The a-priori upper bound lg(max f / min f) from the remark after Def. 2.2.
double MetricityUpperBound(const DecaySpace& space);

}  // namespace decaylib::core
