#include "core/fading.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/numerics.h"

namespace decaylib::core {

bool IsSeparatedNodeSet(const DecaySpace& space, std::span<const int> nodes,
                        double r) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (!(space(nodes[i], nodes[j]) > r) ||
          !(space(nodes[j], nodes[i]) > r)) {
        return false;
      }
    }
  }
  return true;
}

namespace {

struct Candidate {
  int node = 0;
  double weight = 0.0;  // 1 / f(node, z)
};

// Branch and bound for maximum-weight independent set over candidates with a
// pairwise compatibility predicate baked into `conflict`.
class WeightedSolver {
 public:
  WeightedSolver(std::vector<Candidate> items,
                 std::vector<std::vector<bool>> conflict)
      : items_(std::move(items)), conflict_(std::move(conflict)) {
    // Heavy-first ordering makes the bound effective early.
    order_.resize(items_.size());
    std::iota(order_.begin(), order_.end(), 0);
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return items_[a].weight > items_[b].weight;
    });
  }

  void Solve() {
    std::vector<std::size_t> active = order_;
    std::vector<std::size_t> current;
    Recurse(active, current, 0.0);
  }

  double best_weight() const { return best_weight_; }
  std::vector<int> best_nodes() const {
    std::vector<int> nodes;
    nodes.reserve(best_.size());
    for (std::size_t i : best_) nodes.push_back(items_[i].node);
    std::sort(nodes.begin(), nodes.end());
    return nodes;
  }

 private:
  void Recurse(const std::vector<std::size_t>& active,
               std::vector<std::size_t>& current, double weight) {
    double bound = weight;
    for (std::size_t i : active) bound += items_[i].weight;
    if (bound <= best_weight_) return;
    if (active.empty()) {
      best_weight_ = weight;
      best_ = current;
      return;
    }
    const std::size_t pivot = active.front();
    // Include pivot.
    std::vector<std::size_t> included;
    included.reserve(active.size());
    for (std::size_t i : active) {
      if (i != pivot && !conflict_[pivot][i]) included.push_back(i);
    }
    current.push_back(pivot);
    Recurse(included, current, weight + items_[pivot].weight);
    current.pop_back();
    // Exclude pivot.
    std::vector<std::size_t> excluded(active.begin() + 1, active.end());
    Recurse(excluded, current, weight);
  }

  std::vector<Candidate> items_;
  std::vector<std::vector<bool>> conflict_;
  std::vector<std::size_t> order_;
  double best_weight_ = 0.0;
  std::vector<std::size_t> best_;
};

// Candidates must themselves be r-separated from the listener z (X u {z}
// r-separated; see fading.h).
bool SeparatedFromListener(const DecaySpace& space, int x, int z, double r) {
  return space(x, z) > r && space(z, x) > r;
}

std::pair<std::vector<Candidate>, std::vector<std::vector<bool>>>
BuildProblem(const DecaySpace& space, int z, double r) {
  std::vector<Candidate> items;
  for (int x = 0; x < space.size(); ++x) {
    if (x == z || !SeparatedFromListener(space, x, z, r)) continue;
    items.push_back({x, 1.0 / space(x, z)});
  }
  const auto k = items.size();
  std::vector<std::vector<bool>> conflict(k, std::vector<bool>(k, false));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const int a = items[i].node;
      const int b = items[j].node;
      const bool ok = space(a, b) > r && space(b, a) > r;
      conflict[i][j] = conflict[j][i] = !ok;
    }
  }
  return {std::move(items), std::move(conflict)};
}

}  // namespace

FadingValue FadingValueExact(const DecaySpace& space, int z, double r) {
  DL_CHECK(z >= 0 && z < space.size(), "listener out of range");
  DL_CHECK(r > 0.0, "separation term must be positive");
  auto [items, conflict] = BuildProblem(space, z, r);
  WeightedSolver solver(std::move(items), std::move(conflict));
  solver.Solve();
  return {r * solver.best_weight(), solver.best_nodes()};
}

FadingValue FadingValueGreedy(const DecaySpace& space, int z, double r) {
  DL_CHECK(z >= 0 && z < space.size(), "listener out of range");
  DL_CHECK(r > 0.0, "separation term must be positive");
  std::vector<Candidate> items;
  for (int x = 0; x < space.size(); ++x) {
    if (x == z || !SeparatedFromListener(space, x, z, r)) continue;
    items.push_back({x, 1.0 / space(x, z)});
  }
  std::sort(items.begin(), items.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.weight > b.weight;
            });
  std::vector<int> chosen;
  double total = 0.0;
  for (const Candidate& c : items) {
    bool ok = true;
    for (int existing : chosen) {
      if (!(space(c.node, existing) > r) || !(space(existing, c.node) > r)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      chosen.push_back(c.node);
      total += c.weight;
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return {r * total, std::move(chosen)};
}

double FadingParameter(const DecaySpace& space, double r, bool exact) {
  double gamma = 0.0;
  for (int z = 0; z < space.size(); ++z) {
    const FadingValue value =
        exact ? FadingValueExact(space, z, r) : FadingValueGreedy(space, z, r);
    gamma = std::max(gamma, value.gamma);
  }
  return gamma;
}

double Theorem2Bound(double C, double A) {
  DL_CHECK(A < 1.0, "Theorem 2 requires Assouad dimension below 1");
  DL_CHECK(C > 0.0, "doubling constant must be positive");
  return C * std::pow(2.0, A + 1.0) * (RiemannZeta(2.0 - A) - 1.0);
}

}  // namespace decaylib::core
