// Small numeric utilities used by the fading-parameter bounds.
#pragma once

namespace decaylib::core {

// The Riemann zeta function zetahat(x) = sum_{n>=1} n^{-x} for x > 1
// (the paper's annulus argument, Thm. 2, uses zetahat(2 - A)).
// Direct summation of the first terms plus an Euler-Maclaurin tail; relative
// error below 1e-12 for x >= 1.05.
double RiemannZeta(double x);

// log base 2.
double Lg(double x);

}  // namespace decaylib::core
