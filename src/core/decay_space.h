// Decay spaces (Definition 2.1 of the paper).
//
// A decay space D = (V, f) is a discrete node set V together with a mapping
// f : V x V -> R>=0 that associates a *decay* with every ordered pair of
// nodes: the multiplicative reduction in signal strength from the first node
// to the second (channel gain G_uv = 1 / f(u, v)).  Decays satisfy
// non-negativity and the identity of indiscernibles, but need *not* be
// symmetric nor satisfy the triangle inequality -- they form a pre-metric.
//
// This class stores f as a dense row-major matrix; nodes are dense ids
// 0..size()-1.  The diagonal is fixed at 0 (what happens "at a point" is
// immaterial, Sec. 2.2 of the paper).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geom/point.h"

namespace decaylib::core {

class DecaySpace {
 public:
  // An n-node space with all off-diagonal decays initialised to `fill`
  // (default 1, the uniform metric).
  explicit DecaySpace(int n, double fill = 1.0);

  // Builds a space from a full n x n matrix.  Diagonal entries are ignored
  // and forced to 0.  Aborts on negative entries or a ragged matrix.
  static DecaySpace FromMatrix(const std::vector<std::vector<double>>& m);

  // Geometric decay space over planar points: f(p, q) = |p - q|^alpha.
  // This is the GEO-SINR special case; its metricity equals alpha when three
  // collinear points exist, and is at most alpha in general.
  static DecaySpace Geometric(std::span<const geom::Vec2> points, double alpha);

  // Geometric decay space over an explicit distance matrix (any metric):
  // f = d^alpha.
  static DecaySpace FromDistancePower(
      const std::vector<std::vector<double>>& d, double alpha);

  int size() const noexcept { return n_; }

  // f(p, q): decay of a signal sent at p as received at q.
  double operator()(int p, int q) const noexcept {
    return f_[static_cast<std::size_t>(p) * static_cast<std::size_t>(n_) +
              static_cast<std::size_t>(q)];
  }

  // Sets f(p, q).  Requires p != q and value > 0 (identity of
  // indiscernibles: zero decay is reserved for p == q).
  void Set(int p, int q, double value);

  // Sets both f(p, q) and f(q, p).
  void SetSymmetric(int p, int q, double value);

  // True iff |f(p,q) - f(q,p)| <= tol * max(f(p,q), f(q,p)) for all pairs.
  bool IsSymmetric(double tol = 0.0) const noexcept;

  // Smallest / largest off-diagonal decay.  Require size() >= 2.
  double MinDecay() const noexcept;
  double MaxDecay() const noexcept;

  // Ratio MaxDecay()/MinDecay(); lg of this bounds the metricity (Def. 2.2).
  double DecaySpread() const noexcept;

  // nullopt when the matrix is a valid decay space, else a human-readable
  // description of the first violated axiom.
  std::optional<std::string> Validate() const;

  // Copy with every decay multiplied by `factor` > 0.  Note that metricity
  // zeta is *not* scale-invariant (the defining inequality is not homogeneous
  // in f); benches use this to study sensitivity to calibration offsets.
  DecaySpace Scaled(double factor) const;

  // Symmetrised copies: f'(p,q) = min/max/geometric-mean of the two
  // directions.  Used to feed symmetric-only algorithms (Prop. 1 requires
  // symmetry only when the original result did).
  DecaySpace SymmetrizedMin() const;
  DecaySpace SymmetrizedMax() const;
  DecaySpace SymmetrizedGeomMean() const;

  // Restriction of the space to the given nodes (in the given order).
  DecaySpace Subspace(std::span<const int> nodes) const;

  // Direct read-only access to the backing row-major matrix.
  std::span<const double> Raw() const noexcept { return f_; }

 private:
  int n_;
  std::vector<double> f_;  // row-major n_ x n_
};

// The quasi-metric induced by a decay space (Sec. 2.2): d(p,q) = f(p,q)^{1/zeta}.
// A thin view; does not copy the matrix.  When the decay space is symmetric,
// this is a metric by the definition of metricity.
class QuasiMetric {
 public:
  // `zeta` must be > 0; callers normally pass ComputeMetricity(space).zeta.
  QuasiMetric(const DecaySpace& space, double zeta);

  double operator()(int p, int q) const noexcept;
  int size() const noexcept;
  double zeta() const noexcept { return zeta_; }

  // Materialises the full quasi-distance matrix d = f^{1/zeta}.
  std::vector<std::vector<double>> Matrix() const;

  // Largest violation of the (directed) triangle inequality,
  // max_{x,y,z} [d(x,y) - d(x,z) - d(z,y)]; <= tol when zeta >= metricity.
  double MaxTriangleViolation() const noexcept;

 private:
  const DecaySpace* space_;
  double zeta_;
};

}  // namespace decaylib::core
