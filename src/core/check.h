// Always-on lightweight invariant checking.
//
// DL_CHECK guards preconditions of the public API.  Violations are programmer
// errors, not runtime conditions, so we abort with a message rather than
// throwing: per the C++ Core Guidelines (I.5, E.12), interfaces state their
// preconditions and misuse is not an expected error path.
#pragma once

#include <cstdio>
#include <cstdlib>

#define DL_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DL_CHECK failed at %s:%d: %s\n  %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (false)
