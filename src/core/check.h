// Lightweight invariant checking.
//
// DL_CHECK guards preconditions of the public API.  Violations are programmer
// errors, not runtime conditions, so we abort with a message rather than
// throwing: per the C++ Core Guidelines (I.5, E.12), interfaces state their
// preconditions and misuse is not an expected error path.  Recoverable
// runtime errors go through core::Status instead (see docs/robustness.md).
//
// In release builds (NDEBUG defined) DL_CHECK compiles to a no-op so hot
// paths pay nothing for their precondition guards -- e.g. the
// CanOvercomeNoise re-check inside LinkSystem::NoiseFactor runs on every
// naive affectance evaluation.  The default ("Assert") build type of the
// root CMakeLists keeps the checks on, and the tier-1 test suite (including
// the robustness death-tests) runs against that configuration.
//
// Contract (both build types):
//   * `cond` is evaluated at most once, and never under NDEBUG -- like
//     assert(), the condition must not have side effects the program
//     relies on.
//   * Under NDEBUG both `cond` and `msg` stay inside unevaluated sizeof
//     operands: no codegen, but every variable they mention still counts
//     as used, so the -Wall -Wextra -Wshadow -Wconversion -Werror tier
//     (see DECAYLIB_WERROR in the root CMakeLists) passes identically in
//     Assert and Release builds.
//   * The failure branch is marked [[unlikely]] so the hot path carries
//     only a predicted-untaken test in Assert builds.
#pragma once

#ifdef NDEBUG

// sizeof keeps both operands unevaluated (no codegen, no side effects)
// while still marking every mentioned variable as used, so a parameter
// referenced only by its precondition check does not become
// -Wunused-parameter fallout in Release builds.
#define DL_CHECK(cond, msg)          \
  do {                               \
    (void)sizeof((cond) ? 1 : 0);    \
    (void)sizeof((msg));             \
  } while (false)

#else  // !NDEBUG

#include <cstdio>
#include <cstdlib>

// decay-lint: allowlist-file(status-io) -- DL_CHECK is the one sanctioned
// abort path for programmer errors; everything else uses core::Status.
#define DL_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      std::fprintf(stderr, "DL_CHECK failed at %s:%d: %s\n  %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // NDEBUG
