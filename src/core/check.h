// Lightweight invariant checking.
//
// DL_CHECK guards preconditions of the public API.  Violations are programmer
// errors, not runtime conditions, so we abort with a message rather than
// throwing: per the C++ Core Guidelines (I.5, E.12), interfaces state their
// preconditions and misuse is not an expected error path.
//
// In release builds (NDEBUG defined) DL_CHECK compiles to a no-op so hot
// paths pay nothing for their precondition guards -- e.g. the
// CanOvercomeNoise re-check inside LinkSystem::NoiseFactor runs on every
// naive affectance evaluation.  The default ("Assert") build type of the
// root CMakeLists keeps the checks on, and the tier-1 test suite (including
// the robustness death-tests) runs against that configuration.  The
// condition must not have side effects the program relies on.
#pragma once

#ifdef NDEBUG

// sizeof keeps the condition unevaluated (no codegen, no side effects)
// while still odr-using nothing and silencing unused-variable warnings.
#define DL_CHECK(cond, msg)          \
  do {                               \
    (void)sizeof((cond) ? 1 : 0);    \
  } while (false)

#else  // !NDEBUG

#include <cstdio>
#include <cstdlib>

#define DL_CHECK(cond, msg)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DL_CHECK failed at %s:%d: %s\n  %s\n",        \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // NDEBUG
