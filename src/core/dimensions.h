// Balls, packings, the Assouad dimension, and the independence dimension of
// decay spaces (Definitions 3.2, 3.3 and 4.1 of the paper).
//
// Packing terminology (Sec. 3.1): the t-ball B(y,t) = {x : f(x,y) < t}; a set
// Y is a t-packing iff f(x,y) > 2t for all distinct x, y in Y (so the t-balls
// around Y are disjoint); the t-packing number P(B, t) is the size of the
// largest t-packing contained in the body B.
//
// The Assouad dimension with parameter C (Def. 3.2) is
//     A(D) = max_q log_q(g(q) / C),  g(q) = max_x max_r P(B(x,r), r/q),
// i.e. the smallest degree k such that all t-packings have size O(t^k).
// A fading space (Def. 3.3) has A(D) < 1.
//
// The independence dimension (Def. 4.1, after [21]) is the largest set I that
// is independent with respect to some node x: every z in I has x at least as
// close (in decay) as any other member of I.  Welzl's guard sets J_x realise
// the dual view: at most D = independence-dimension points suffice so that
// every other node z has some guard y with f(z,y) <= f(z,x).
//
// Exact maximisation problems here (largest packing, largest independent set
// w.r.t. a point) are solved by branch and bound on the induced conflict
// graph; greedy variants provide lower-bound estimates for large inputs.
#pragma once

#include <span>
#include <vector>

#include "core/decay_space.h"

namespace decaylib::core {

// Nodes of the open decay ball B(center, t) = {x : f(x, center) < t}.
// The center itself is included (f(c,c) = 0 < t for t > 0).
std::vector<int> Ball(const DecaySpace& space, int center, double t);

// True iff `nodes` is a t-packing: pairwise decay strictly above 2t in both
// directions (both orders are checked so the definition is meaningful in
// asymmetric spaces; for symmetric spaces this is the paper's condition).
bool IsPacking(const DecaySpace& space, std::span<const int> nodes, double t);

// Size of the largest t-packing within `body`, exact branch and bound.
// Intended for |body| <= ~40.
int PackingNumberExact(const DecaySpace& space, std::span<const int> body,
                       double t);

// Greedy maximal t-packing within `body` (scans in the given order); a lower
// bound on the packing number, within the usual maximal-vs-maximum gap.
std::vector<int> GreedyPacking(const DecaySpace& space,
                               std::span<const int> body, double t);

struct AssouadEstimate {
  double dimension = 0.0;      // estimated A(D): slope of ln g(q) vs ln q
  double constant = 1.0;       // exp(intercept): the fitted C
  double worst_q = 0.0;        // the q with the largest realised packing
  int worst_packing_size = 0;  // g(worst_q)
  std::vector<double> qs;      // the sweep actually used
  std::vector<int> g;          // g(q) per sweep entry
};

// Estimates the Assouad dimension by sweeping the given ratios q > 1 over
// all centers x and all realised radii r (the distinct decays towards x),
// computing the densest packing g(q) = max_{x,r} P(B(x,r), r/q) with greedy
// packings (exact when |ball| <= exact_limit), then least-squares fitting
// ln g(q) = A ln q + ln C.  The regression absorbs the constant C that a
// single-point estimate log_q(g/C) cannot separate on finite instances; on
// the synthetic spaces in tests it recovers the known dimensions (1/alpha on
// a line, 2/alpha in the plane) to within finite-size error.
AssouadEstimate EstimateAssouadDimension(const DecaySpace& space,
                                         std::span<const double> qs,
                                         int exact_limit = 24);

// --- Independence dimension & guards -------------------------------------

// True iff I is independent with respect to x: for all distinct z, w in I,
// f(w, z) > f(z, x)  (every member of I has x strictly nearer than any other
// member).  Strictness matches the paper's examples: the uniform metric has
// independence dimension 1 and the Euclidean plane 5 (pairwise angles of
// more than 60 degrees).  Requires x not in I.
bool IsIndependentWrt(const DecaySpace& space, int x, std::span<const int> I);

// Largest independent set with respect to x (exact branch and bound over the
// pairwise-compatibility graph).  Intended for n <= ~48.
std::vector<int> MaxIndependentWrt(const DecaySpace& space, int x);

// The independence dimension: max over x of |MaxIndependentWrt(x)|.
int IndependenceDimension(const DecaySpace& space);

// Greedy guard set for x: scan nodes by increasing decay towards x; any node
// not yet guarded becomes a guard.  In symmetric spaces the result is
// independent w.r.t. x, hence has size at most the independence dimension.
std::vector<int> GreedyGuards(const DecaySpace& space, int x);

// True iff J guards x: every node z outside J u {x} has some y in J with
// f(z, y) <= f(z, x).
bool GuardsNode(const DecaySpace& space, int x, std::span<const int> J);

}  // namespace decaylib::core
