#include "core/dimensions.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"

namespace decaylib::core {

namespace {

// Exact maximum independent set in a conflict graph given as an adjacency
// matrix (true = conflict), by branch and bound.  Returns indices into the
// item universe 0..n-1.  Classic include/exclude branching on the
// highest-degree remaining vertex with a cardinality bound.
class MaxIndependentSetSolver {
 public:
  explicit MaxIndependentSetSolver(std::vector<std::vector<bool>> conflict)
      : conflict_(std::move(conflict)),
        n_(static_cast<int>(conflict_.size())) {}

  std::vector<int> Solve() {
    std::vector<int> active(static_cast<std::size_t>(n_));
    std::iota(active.begin(), active.end(), 0);
    std::vector<int> current;
    Recurse(active, current);
    return best_;
  }

 private:
  void Recurse(std::vector<int>& active, std::vector<int>& current) {
    if (current.size() + active.size() <= best_.size()) return;  // bound
    if (active.empty()) {
      best_ = current;
      return;
    }
    // Branch on the vertex with the most conflicts among the active set.
    int pivot_pos = 0;
    int pivot_deg = -1;
    for (std::size_t i = 0; i < active.size(); ++i) {
      int deg = 0;
      for (int other : active) {
        if (conflict_[static_cast<std::size_t>(active[i])]
                     [static_cast<std::size_t>(other)]) {
          ++deg;
        }
      }
      if (deg > pivot_deg) {
        pivot_deg = deg;
        pivot_pos = static_cast<int>(i);
      }
    }
    const int pivot = active[static_cast<std::size_t>(pivot_pos)];

    // Include pivot: drop it and its conflicts.
    std::vector<int> included;
    included.reserve(active.size());
    for (int v : active) {
      if (v != pivot && !conflict_[static_cast<std::size_t>(pivot)]
                                  [static_cast<std::size_t>(v)]) {
        included.push_back(v);
      }
    }
    current.push_back(pivot);
    Recurse(included, current);
    current.pop_back();

    // Exclude pivot (only useful if it had conflicts; otherwise include is
    // always at least as good).
    if (pivot_deg > 0) {
      std::vector<int> excluded;
      excluded.reserve(active.size() - 1);
      for (int v : active) {
        if (v != pivot) excluded.push_back(v);
      }
      Recurse(excluded, current);
    }
  }

  std::vector<std::vector<bool>> conflict_;
  int n_;
  std::vector<int> best_;
};

}  // namespace

std::vector<int> Ball(const DecaySpace& space, int center, double t) {
  DL_CHECK(center >= 0 && center < space.size(), "center out of range");
  std::vector<int> members;
  for (int x = 0; x < space.size(); ++x) {
    const double fx = x == center ? 0.0 : space(x, center);
    if (fx < t) members.push_back(x);
  }
  return members;
}

bool IsPacking(const DecaySpace& space, std::span<const int> nodes, double t) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (!(space(nodes[i], nodes[j]) > 2.0 * t) ||
          !(space(nodes[j], nodes[i]) > 2.0 * t)) {
        return false;
      }
    }
  }
  return true;
}

namespace {

std::vector<std::vector<bool>> PackingConflicts(const DecaySpace& space,
                                                std::span<const int> body,
                                                double t) {
  const auto k = body.size();
  std::vector<std::vector<bool>> conflict(k, std::vector<bool>(k, false));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const bool ok = space(body[i], body[j]) > 2.0 * t &&
                      space(body[j], body[i]) > 2.0 * t;
      conflict[i][j] = conflict[j][i] = !ok;
    }
  }
  return conflict;
}

}  // namespace

int PackingNumberExact(const DecaySpace& space, std::span<const int> body,
                       double t) {
  if (body.empty()) return 0;
  MaxIndependentSetSolver solver(PackingConflicts(space, body, t));
  return static_cast<int>(solver.Solve().size());
}

std::vector<int> GreedyPacking(const DecaySpace& space,
                               std::span<const int> body, double t) {
  std::vector<int> chosen;
  for (int candidate : body) {
    bool ok = true;
    for (int existing : chosen) {
      if (!(space(candidate, existing) > 2.0 * t) ||
          !(space(existing, candidate) > 2.0 * t)) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back(candidate);
  }
  return chosen;
}

AssouadEstimate EstimateAssouadDimension(const DecaySpace& space,
                                         std::span<const double> qs,
                                         int exact_limit) {
  const int n = space.size();
  AssouadEstimate est;
  for (double q : qs) {
    DL_CHECK(q > 1.0, "packing ratio q must exceed 1");
    int g_q = 0;  // largest q-packing seen: g(q) = max_{x,r} P(B(x,r), r/q)
    for (int x = 0; x < n; ++x) {
      // Candidate radii: just above each realised decay towards x, so every
      // distinct ball around x occurs.
      std::vector<double> radii;
      radii.reserve(static_cast<std::size_t>(n));
      for (int y = 0; y < n; ++y) {
        if (y != x) radii.push_back(space(y, x) * (1.0 + 1e-12));
      }
      std::sort(radii.begin(), radii.end());
      radii.erase(std::unique(radii.begin(), radii.end()), radii.end());
      for (double r : radii) {
        const std::vector<int> body = Ball(space, x, r);
        if (static_cast<int>(body.size()) <= g_q) continue;  // cannot improve
        const double t = r / q;
        int p = 0;
        if (static_cast<int>(body.size()) <= exact_limit) {
          p = PackingNumberExact(space, body, t);
        } else {
          p = static_cast<int>(GreedyPacking(space, body, t).size());
        }
        g_q = std::max(g_q, p);
      }
    }
    if (g_q <= 0) continue;
    est.qs.push_back(q);
    est.g.push_back(g_q);
    if (g_q > est.worst_packing_size) {
      est.worst_packing_size = g_q;
      est.worst_q = q;
    }
  }
  // Least-squares fit of ln g = A ln q + ln C over the sweep.
  const std::size_t m = est.qs.size();
  if (m == 0) return est;
  if (m == 1) {
    est.dimension = std::log(static_cast<double>(est.g[0])) /
                    std::log(est.qs[0]);
    return est;
  }
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double x = std::log(est.qs[i]);
    const double y = std::log(static_cast<double>(est.g[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double md = static_cast<double>(m);
  const double denom = md * sxx - sx * sx;
  est.dimension = denom != 0.0 ? (md * sxy - sx * sy) / denom : 0.0;
  est.constant = std::exp((sy - est.dimension * sx) / md);
  return est;
}

bool IsIndependentWrt(const DecaySpace& space, int x,
                      std::span<const int> I) {
  for (int z : I) {
    DL_CHECK(z != x, "independent set may not contain the anchor point");
    for (int w : I) {
      if (w == z) continue;
      // Strict: a tie already breaks independence (the uniform metric must
      // have independence dimension 1, and the plane 5 -- unit vectors at
      // pairwise angles of *more* than 60 degrees, Sec. 4.1).
      if (space(w, z) <= space(z, x)) return false;
    }
  }
  return true;
}

std::vector<int> MaxIndependentWrt(const DecaySpace& space, int x) {
  const int n = space.size();
  std::vector<int> universe;
  universe.reserve(static_cast<std::size_t>(n) - 1);
  for (int v = 0; v < n; ++v) {
    if (v != x) universe.push_back(v);
  }
  const auto k = universe.size();
  // Pair {z, w} is compatible iff neither is strictly closer to the other
  // than x is: f(w,z) >= f(z,x) and f(z,w) >= f(w,x).
  std::vector<std::vector<bool>> conflict(k, std::vector<bool>(k, false));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const int z = universe[i];
      const int w = universe[j];
      const bool ok = space(w, z) > space(z, x) && space(z, w) > space(w, x);
      conflict[i][j] = conflict[j][i] = !ok;
    }
  }
  MaxIndependentSetSolver solver(std::move(conflict));
  std::vector<int> picked = solver.Solve();
  for (int& v : picked) v = universe[static_cast<std::size_t>(v)];
  std::sort(picked.begin(), picked.end());
  return picked;
}

int IndependenceDimension(const DecaySpace& space) {
  int best = 0;
  for (int x = 0; x < space.size(); ++x) {
    best = std::max(best,
                    static_cast<int>(MaxIndependentWrt(space, x).size()));
  }
  return best;
}

std::vector<int> GreedyGuards(const DecaySpace& space, int x) {
  const int n = space.size();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n) - 1);
  for (int v = 0; v < n; ++v) {
    if (v != x) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return space(a, x) < space(b, x);
  });
  std::vector<int> guards;
  for (int z : order) {
    bool guarded = false;
    for (int y : guards) {
      if (space(z, y) <= space(z, x)) {
        guarded = true;
        break;
      }
    }
    if (!guarded) guards.push_back(z);
  }
  return guards;
}

bool GuardsNode(const DecaySpace& space, int x, std::span<const int> J) {
  for (int z = 0; z < space.size(); ++z) {
    if (z == x) continue;
    if (std::find(J.begin(), J.end(), z) != J.end()) continue;
    bool guarded = false;
    for (int y : J) {
      if (space(z, y) <= space(z, x)) {
        guarded = true;
        break;
      }
    }
    if (!guarded) return false;
  }
  return true;
}

}  // namespace decaylib::core
