// The fading parameter of a decay space (Definition 3.1) and the annulus
// argument bound (Theorem 2).
//
// A node set X is r-separated iff all pairwise decays exceed r.  The fading
// value of a listener z relative to separation r is
//     gamma_z(r) = r * max over X with X u {z} r-separated of
//                    sum_{x in X} 1 / f(x, z),
// i.e. r times the worst-case total received *gain* at z from an r-separated
// set of uniform-power senders; the fading parameter gamma(r) is the max over
// z.  Interference from an r-separated set S using power P is then at most
// gamma(r) * P / r, and so is the affectance when the intended signal comes
// from an r-neighborhood (Sec. 3).
//
// Note the listener is part of the separated set (X u {z}), exactly as in
// the proof of Theorem 2 ("a listening node x in S", whence S_2 = {} there).
// Without that requirement a sender arbitrarily close to z would make
// gamma_z unbounded and the theorem false; the paper's Sec. 3.4 star example
// also computes gamma this way (the center, at decay r from x_{-1}, is the
// intended transmitter, not an interferer).
//
// Theorem 2: for decay spaces with Assouad dimension A < 1 (fading spaces,
// w.r.t. constant C),  gamma(r) <= C * 2^{A+1} * (zetahat(2 - A) - 1).
//
// The exact maximisation is a maximum-weight independent set in the
// "too close" conflict graph and is solved by branch and bound for small n;
// a greedy heavy-first estimate serves larger inputs.
#pragma once

#include <span>
#include <vector>

#include "core/decay_space.h"

namespace decaylib::core {

// True iff all pairwise decays within `nodes` strictly exceed r (checked in
// both directions for asymmetric spaces).
bool IsSeparatedNodeSet(const DecaySpace& space, std::span<const int> nodes,
                        double r);

struct FadingValue {
  double gamma = 0.0;             // r * total gain of the best set
  std::vector<int> witness;       // the maximising r-separated sender set
};

// Exact fading value of listener z (branch and bound).  Intended n <= ~48.
FadingValue FadingValueExact(const DecaySpace& space, int z, double r);

// Greedy heavy-first estimate (lower bound on gamma_z(r)).
FadingValue FadingValueGreedy(const DecaySpace& space, int z, double r);

// Fading parameter gamma(r) = max_z gamma_z(r); exact iff `exact`.
double FadingParameter(const DecaySpace& space, double r, bool exact = true);

// The Theorem 2 upper bound C * 2^{A+1} * (zetahat(2-A) - 1); requires A < 1.
double Theorem2Bound(double C, double A);

}  // namespace decaylib::core
