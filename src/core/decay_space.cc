#include "core/decay_space.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace decaylib::core {

DecaySpace::DecaySpace(int n, double fill) : n_(n) {
  DL_CHECK(n >= 1, "decay space needs at least one node");
  DL_CHECK(fill > 0.0, "off-diagonal fill decay must be positive");
  f_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), fill);
  for (int i = 0; i < n; ++i) {
    f_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
       static_cast<std::size_t>(i)] = 0.0;
  }
}

DecaySpace DecaySpace::FromMatrix(const std::vector<std::vector<double>>& m) {
  const int n = static_cast<int>(m.size());
  DL_CHECK(n >= 1, "empty matrix");
  DecaySpace space(n);
  for (int i = 0; i < n; ++i) {
    DL_CHECK(static_cast<int>(m[static_cast<std::size_t>(i)].size()) == n,
             "ragged decay matrix");
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      space.Set(i, j, m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  return space;
}

DecaySpace DecaySpace::Geometric(std::span<const geom::Vec2> points,
                                 double alpha) {
  const int n = static_cast<int>(points.size());
  DL_CHECK(n >= 1, "no points");
  DL_CHECK(alpha > 0.0, "path loss exponent must be positive");
  DecaySpace space(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const geom::Vec2 pi = points[static_cast<std::size_t>(i)];
      const geom::Vec2 pj = points[static_cast<std::size_t>(j)];
      DL_CHECK(geom::Distance(pi, pj) > 0.0,
               "coincident points make an invalid decay space");
      space.Set(i, j, geom::GeometricDecay(pi, pj, alpha));
    }
  }
  return space;
}

DecaySpace DecaySpace::FromDistancePower(
    const std::vector<std::vector<double>>& d, double alpha) {
  const int n = static_cast<int>(d.size());
  DL_CHECK(n >= 1, "empty matrix");
  DL_CHECK(alpha > 0.0, "path loss exponent must be positive");
  DecaySpace space(n);
  for (int i = 0; i < n; ++i) {
    DL_CHECK(static_cast<int>(d[static_cast<std::size_t>(i)].size()) == n,
             "ragged distance matrix");
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      space.Set(i, j,
                std::pow(d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                         alpha));
    }
  }
  return space;
}

void DecaySpace::Set(int p, int q, double value) {
  DL_CHECK(p >= 0 && p < n_ && q >= 0 && q < n_, "node id out of range");
  DL_CHECK(p != q, "diagonal decays are fixed at 0");
  DL_CHECK(value > 0.0, "decay between distinct nodes must be positive");
  f_[static_cast<std::size_t>(p) * static_cast<std::size_t>(n_) +
     static_cast<std::size_t>(q)] = value;
}

void DecaySpace::SetSymmetric(int p, int q, double value) {
  Set(p, q, value);
  Set(q, p, value);
}

bool DecaySpace::IsSymmetric(double tol) const noexcept {
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      const double a = (*this)(i, j);
      const double b = (*this)(j, i);
      if (std::abs(a - b) > tol * std::max(a, b)) return false;
    }
  }
  return true;
}

double DecaySpace::MinDecay() const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (i != j) best = std::min(best, (*this)(i, j));
    }
  }
  return best;
}

double DecaySpace::MaxDecay() const noexcept {
  double best = 0.0;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (i != j) best = std::max(best, (*this)(i, j));
    }
  }
  return best;
}

double DecaySpace::DecaySpread() const noexcept {
  return MaxDecay() / MinDecay();
}

std::optional<std::string> DecaySpace::Validate() const {
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const double v = (*this)(i, j);
      if (i == j && v != 0.0) {
        return "diagonal entry f(p,p) must be 0";
      }
      if (i != j) {
        if (!(v > 0.0)) {
          return "off-diagonal decay must be positive (identity of "
                 "indiscernibles)";
        }
        if (!std::isfinite(v)) return "decay must be finite";
      }
    }
  }
  return std::nullopt;
}

DecaySpace DecaySpace::Scaled(double factor) const {
  DL_CHECK(factor > 0.0, "scale factor must be positive");
  DecaySpace out(n_);
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (i != j) out.Set(i, j, (*this)(i, j) * factor);
    }
  }
  return out;
}

DecaySpace DecaySpace::SymmetrizedMin() const {
  DecaySpace out(n_);
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      out.SetSymmetric(i, j, std::min((*this)(i, j), (*this)(j, i)));
    }
  }
  return out;
}

DecaySpace DecaySpace::SymmetrizedMax() const {
  DecaySpace out(n_);
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      out.SetSymmetric(i, j, std::max((*this)(i, j), (*this)(j, i)));
    }
  }
  return out;
}

DecaySpace DecaySpace::SymmetrizedGeomMean() const {
  DecaySpace out(n_);
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      out.SetSymmetric(i, j, std::sqrt((*this)(i, j) * (*this)(j, i)));
    }
  }
  return out;
}

DecaySpace DecaySpace::Subspace(std::span<const int> nodes) const {
  const int k = static_cast<int>(nodes.size());
  DL_CHECK(k >= 1, "empty subspace");
  DecaySpace out(k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      out.Set(i, j, (*this)(nodes[static_cast<std::size_t>(i)],
                            nodes[static_cast<std::size_t>(j)]));
    }
  }
  return out;
}

QuasiMetric::QuasiMetric(const DecaySpace& space, double zeta)
    : space_(&space), zeta_(zeta) {
  DL_CHECK(zeta > 0.0, "zeta must be positive");
}

double QuasiMetric::operator()(int p, int q) const noexcept {
  if (p == q) return 0.0;
  return std::pow((*space_)(p, q), 1.0 / zeta_);
}

int QuasiMetric::size() const noexcept { return space_->size(); }

std::vector<std::vector<double>> QuasiMetric::Matrix() const {
  const int n = size();
  std::vector<std::vector<double>> d(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      d[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (*this)(i, j);
    }
  }
  return d;
}

double QuasiMetric::MaxTriangleViolation() const noexcept {
  const int n = size();
  double worst = 0.0;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      if (y == x) continue;
      const double dxy = (*this)(x, y);
      for (int z = 0; z < n; ++z) {
        if (z == x || z == y) continue;
        worst = std::max(worst, dxy - (*this)(x, z) - (*this)(z, y));
      }
    }
  }
  return worst;
}

}  // namespace decaylib::core
