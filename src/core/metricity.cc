#include "core/metricity.h"

// decay-lint: allowlist-file(naked-thread) -- fork-join parallel metricity
// predates BatchRunner and joins every worker before returning; the split is
// a pure index partition, so results are bitwise independent of scheduling.
// Tracked for migration onto the shared pool (ROADMAP serving-mode item).

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/check.h"

namespace decaylib::core {

namespace {

// Number of worker threads for an n-sized outer loop: never more threads
// than rows, and only one for small inputs where spawn overhead dominates.
int WorkerCount(int n) {
  const unsigned hc = std::thread::hardware_concurrency();
  int workers = static_cast<int>(hc == 0 ? 1 : hc);
  workers = std::min(workers, n);
  if (n < 64) workers = 1;
  return std::max(1, workers);
}

// Splits [0, n) into `workers` contiguous chunks and runs fn(chunk_index,
// begin, end) on each, inline when there is a single worker.
template <typename Fn>
void ParallelChunks(int n, int workers, Fn fn) {
  if (workers <= 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  const int per = (n + workers - 1) / workers;
  for (int t = 0; t < workers; ++t) {
    const int begin = t * per;
    const int end = std::min(n, begin + per);
    if (begin >= end) break;
    threads.emplace_back([=] { fn(t, begin, end); });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace

double TripletZeta(double a, double b, double c, double tol) {
  DL_CHECK(a > 0.0 && b > 0.0 && c > 0.0, "triplet decays must be positive");
  if (a <= b || a <= c) return 0.0;  // satisfied for every positive exponent
  // h(s) = (b/a)^s + (c/a)^s - 1, strictly decreasing, h(0) = 1 > 0,
  // h(inf) = -1.  Find the root s*; the triplet requires zeta >= 1/s*.
  const double rb = b / a;
  const double rc = c / a;
  auto h = [&](double s) { return std::pow(rb, s) + std::pow(rc, s) - 1.0; };
  // Bracket the root.
  double lo = 0.0;
  double hi = 1.0;
  while (h(hi) > 0.0) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e12) return 0.0;  // ratios ~1: constraint is vacuous in practice
  }
  // Bisection to relative tolerance on s.
  while (hi - lo > tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (h(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double s_star = 0.5 * (lo + hi);
  return 1.0 / s_star;
}

MetricityResult ComputeMetricity(const DecaySpace& space, double tol) {
  const int n = space.size();
  const double* f = space.Raw().data();
  const std::size_t sn = static_cast<std::size_t>(n);

  // Prune slack: TripletZeta bisects to relative tolerance `tol`, so the
  // value the naive scan records can exceed a triplet's exact root by
  // ~tol (plus pow rounding, covered by the 1e-13 floor).  Pruning against
  // incumbent / (1 + slack) guarantees that every triple whose *recorded*
  // zeta could beat the incumbent is still bisected, keeping the scan's
  // update sequence -- and hence value and witness -- identical to
  // ComputeMetricityNaive's.
  const double slack = 1.0 + 4.0 * tol + 1e-13;

  const int workers = WorkerCount(n);
  std::vector<MetricityResult> partial(static_cast<std::size_t>(workers));

  // Each chunk prunes only against its own incumbent.  Sharing the best
  // across threads would prune more, but on bitwise-tied extrema in
  // different chunks the race would decide which witness survives; the
  // chunk-local scan is deterministic and the merge below provably returns
  // the naive (lexicographically first) witness.
  ParallelChunks(n, workers, [&](int chunk, int begin, int end) {
    MetricityResult local;
    for (int x = begin; x < end; ++x) {
      const double* row_x = f + static_cast<std::size_t>(x) * sn;
      for (int y = 0; y < n; ++y) {
        if (y == x) continue;
        const double a = row_x[y];
        for (int z = 0; z < n; ++z) {
          if (z == x || z == y) continue;
          const double b = row_x[z];
          if (a <= b) continue;
          const double c = f[static_cast<std::size_t>(z) * sn +
                             static_cast<std::size_t>(y)];
          if (a <= c) continue;
          // Prune: h is strictly decreasing, so this triplet can only beat
          // the incumbent if h(slack / incumbent) < 0.  Two pows replace
          // the full bisection for almost every triple once the incumbent
          // warms.
          if (local.zeta > 0.0) {
            const double s = slack / local.zeta;
            if (std::pow(b / a, s) + std::pow(c / a, s) - 1.0 >= 0.0) continue;
          }
          const double zeta = TripletZeta(a, b, c, tol);
          if (zeta > local.zeta) {
            local.zeta = zeta;
            local.arg_x = x;
            local.arg_y = y;
            local.arg_z = z;
          }
        }
      }
    }
    partial[static_cast<std::size_t>(chunk)] = local;
  });

  // Deterministic merge: chunks cover increasing x ranges, within a chunk
  // the scan runs in the naive lexicographic order with the naive update
  // rule, and ties across chunks resolve to the earlier chunk -- so the
  // first strictly-greater zeta reproduces the naive argmax exactly.
  MetricityResult result;
  for (const MetricityResult& p : partial) {
    if (p.zeta > result.zeta) result = p;
  }
  return result;
}

MetricityResult ComputeMetricityNaive(const DecaySpace& space, double tol) {
  const int n = space.size();
  MetricityResult result;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      if (y == x) continue;
      const double a = space(x, y);
      for (int z = 0; z < n; ++z) {
        if (z == x || z == y) continue;
        const double b = space(x, z);
        const double c = space(z, y);
        if (a <= b || a <= c) continue;
        const double zeta = TripletZeta(a, b, c, tol);
        if (zeta > result.zeta) {
          result.zeta = zeta;
          result.arg_x = x;
          result.arg_y = y;
          result.arg_z = z;
        }
      }
    }
  }
  return result;
}

double Metricity(const DecaySpace& space, double tol) {
  return ComputeMetricity(space, tol).zeta;
}

PhiResult ComputePhi(const DecaySpace& space) {
  const int n = space.size();
  const double* f = space.Raw().data();
  const std::size_t sn = static_cast<std::size_t>(n);

  // Transpose copy: the inner loop reads f(y, z) for fixed z over all y,
  // which is a stride-n walk on the row-major matrix; ft makes it
  // contiguous.
  std::vector<double> ft(sn * sn);
  for (std::size_t y = 0; y < sn; ++y) {
    for (std::size_t z = 0; z < sn; ++z) {
      ft[z * sn + y] = f[y * sn + z];
    }
  }

  // Row/column minima for the per-(x,z) block prune: for every admissible
  // waypoint y, the computed denominator fl(f(x,y) + f(y,z)) is at least
  // fl(row_min[x] + col_min[z]) -- fl(a+b) and fl(a/b) are monotone, so
  // fl(fxz / denom) <= fl(fxz / (row_min[x] + col_min[z])) holds *exactly*,
  // not just up to rounding.  When that upper bound does not beat the
  // incumbent, the whole inner y loop is skipped: an O(n^2) precomputation
  // that elides O(n^3) work on spaces with any decay spread.  (The minima
  // range over y != x resp. y != z, a superset of the admissible waypoints,
  // which only weakens the bound -- never unsoundly.)
  std::vector<double> row_min(sn), col_min(sn);
  for (std::size_t x = 0; x < sn; ++x) {
    double rm = std::numeric_limits<double>::infinity();
    double cm = std::numeric_limits<double>::infinity();
    const double* row_x = f + x * sn;
    const double* col_x = ft.data() + x * sn;
    for (std::size_t y = 0; y < sn; ++y) {
      if (y == x) continue;
      rm = std::min(rm, row_x[y]);
      cm = std::min(cm, col_x[y]);
    }
    row_min[x] = rm;
    col_min[x] = cm;
  }

  const int workers = WorkerCount(n);
  std::vector<PhiResult> partial(static_cast<std::size_t>(workers));

  // Chunk-local incumbents and two prunes.  The block prune above skips
  // entire (x,z) pairs whose exact upper bound cannot beat the incumbent.
  // Inside surviving blocks, a guard-banded multiplication prune drops
  // candidates clearly below the incumbent (by more than 1e-9 relative,
  // which dwarfs the few-ulp disagreement between `fxz <= g * denom` and
  // `fxz / denom <= g`); everything near or above it is decided by the
  // naive division comparison, so the update sequence -- value and
  // witness -- matches ComputePhiNaive's exactly.
  ParallelChunks(n, workers, [&](int chunk, int begin, int end) {
    PhiResult local;
    for (int x = begin; x < end; ++x) {
      const double* row_x = f + static_cast<std::size_t>(x) * sn;
      for (int z = 0; z < n; ++z) {
        if (z == x) continue;
        const double fxz = row_x[z];
        if (fxz / (row_min[static_cast<std::size_t>(x)] +
                   col_min[static_cast<std::size_t>(z)]) <=
            local.phi_factor) {
          continue;
        }
        const double* col_z = ft.data() + static_cast<std::size_t>(z) * sn;
        // Row-min formulation: the exact denominator minimum for this
        // (x,z), as a branch-free min-plus reduction over four independent
        // accumulators (min is exactly associative and the adds are
        // elementwise, so the split changes nothing but the dependency
        // chain, which is what lets the compiler run it 4-wide).  The
        // y == x and y == z entries contribute the value fxz itself (their
        // other leg is the diagonal 0), i.e. a factor of exactly 1 -- they
        // can shrink dmin only when every admissible factor is below 1, so
        // the bound fxz / dmin >= any admissible fl(fxz / denom) still
        // holds exactly (fl(+), fl(/), min are monotone).  Only blocks
        // whose bound beats the incumbent fall through to the
        // witness-exact scalar scan below.
        double d0 = fxz + fxz, d1 = d0, d2 = d0, d3 = d0;
        int y4 = 0;
        for (; y4 + 4 <= n; y4 += 4) {
          const double e0 = row_x[y4] + col_z[y4];
          const double e1 = row_x[y4 + 1] + col_z[y4 + 1];
          const double e2 = row_x[y4 + 2] + col_z[y4 + 2];
          const double e3 = row_x[y4 + 3] + col_z[y4 + 3];
          d0 = e0 < d0 ? e0 : d0;
          d1 = e1 < d1 ? e1 : d1;
          d2 = e2 < d2 ? e2 : d2;
          d3 = e3 < d3 ? e3 : d3;
        }
        for (; y4 < n; ++y4) {
          const double e = row_x[y4] + col_z[y4];
          d0 = e < d0 ? e : d0;
        }
        const double dmin = std::min(std::min(d0, d1), std::min(d2, d3));
        if (fxz / dmin <= local.phi_factor) continue;
        // Stale after an in-loop update, i.e. merely prunes less until the
        // next z iteration; the update test below always uses the live value.
        const double guard = local.phi_factor * (1.0 - 1e-9);
        for (int y = 0; y < n; ++y) {
          if (y == x || y == z) continue;
          const double denom = row_x[y] + col_z[y];
          if (fxz <= guard * denom) continue;
          const double factor = fxz / denom;
          if (factor > local.phi_factor) {
            local.phi_factor = factor;
            local.arg_x = x;
            local.arg_y = y;
            local.arg_z = z;
          }
        }
      }
    }
    partial[static_cast<std::size_t>(chunk)] = local;
  });

  // Same deterministic merge as ComputeMetricity: first strictly-greater
  // wins, reproducing the naive lexicographic argmax.
  PhiResult result;
  for (const PhiResult& p : partial) {
    if (p.phi_factor > result.phi_factor) {
      result.phi_factor = p.phi_factor;
      result.arg_x = p.arg_x;
      result.arg_y = p.arg_y;
      result.arg_z = p.arg_z;
    }
  }
  result.phi = result.phi_factor > 0.0 ? std::log2(result.phi_factor) : 0.0;
  return result;
}

PhiResult ComputePhiNaive(const DecaySpace& space) {
  const int n = space.size();
  PhiResult result;
  for (int x = 0; x < n; ++x) {
    for (int z = 0; z < n; ++z) {
      if (z == x) continue;
      const double fxz = space(x, z);
      for (int y = 0; y < n; ++y) {
        if (y == x || y == z) continue;
        const double denom = space(x, y) + space(y, z);
        const double factor = fxz / denom;
        if (factor > result.phi_factor) {
          result.phi_factor = factor;
          result.arg_x = x;
          result.arg_y = y;
          result.arg_z = z;
        }
      }
    }
  }
  result.phi = result.phi_factor > 0.0 ? std::log2(result.phi_factor) : 0.0;
  return result;
}

double MetricityUpperBound(const DecaySpace& space) {
  DL_CHECK(space.size() >= 2, "need at least two nodes");
  return std::log2(space.MaxDecay() / space.MinDecay());
}

}  // namespace decaylib::core
