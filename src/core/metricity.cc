#include "core/metricity.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace decaylib::core {

double TripletZeta(double a, double b, double c, double tol) {
  DL_CHECK(a > 0.0 && b > 0.0 && c > 0.0, "triplet decays must be positive");
  if (a <= b || a <= c) return 0.0;  // satisfied for every positive exponent
  // h(s) = (b/a)^s + (c/a)^s - 1, strictly decreasing, h(0) = 1 > 0,
  // h(inf) = -1.  Find the root s*; the triplet requires zeta >= 1/s*.
  const double rb = b / a;
  const double rc = c / a;
  auto h = [&](double s) { return std::pow(rb, s) + std::pow(rc, s) - 1.0; };
  // Bracket the root.
  double lo = 0.0;
  double hi = 1.0;
  while (h(hi) > 0.0) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e12) return 0.0;  // ratios ~1: constraint is vacuous in practice
  }
  // Bisection to relative tolerance on s.
  while (hi - lo > tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (h(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double s_star = 0.5 * (lo + hi);
  return 1.0 / s_star;
}

MetricityResult ComputeMetricity(const DecaySpace& space, double tol) {
  const int n = space.size();
  MetricityResult result;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      if (y == x) continue;
      const double a = space(x, y);
      for (int z = 0; z < n; ++z) {
        if (z == x || z == y) continue;
        const double b = space(x, z);
        const double c = space(z, y);
        if (a <= b || a <= c) continue;
        const double zeta = TripletZeta(a, b, c, tol);
        if (zeta > result.zeta) {
          result.zeta = zeta;
          result.arg_x = x;
          result.arg_y = y;
          result.arg_z = z;
        }
      }
    }
  }
  return result;
}

double Metricity(const DecaySpace& space, double tol) {
  return ComputeMetricity(space, tol).zeta;
}

PhiResult ComputePhi(const DecaySpace& space) {
  const int n = space.size();
  PhiResult result;
  for (int x = 0; x < n; ++x) {
    for (int z = 0; z < n; ++z) {
      if (z == x) continue;
      const double fxz = space(x, z);
      for (int y = 0; y < n; ++y) {
        if (y == x || y == z) continue;
        const double denom = space(x, y) + space(y, z);
        const double factor = fxz / denom;
        if (factor > result.phi_factor) {
          result.phi_factor = factor;
          result.arg_x = x;
          result.arg_y = y;
          result.arg_z = z;
        }
      }
    }
  }
  result.phi = result.phi_factor > 0.0 ? std::log2(result.phi_factor) : 0.0;
  return result;
}

double MetricityUpperBound(const DecaySpace& space) {
  DL_CHECK(space.size() >= 2, "need at least two nodes");
  return std::log2(space.MaxDecay() / space.MinDecay());
}

}  // namespace decaylib::core
