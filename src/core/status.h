// Recoverable-error layer: core::Status / core::StatusOr<T>.
//
// The library distinguishes two failure families (docs/robustness.md):
//   * programmer errors -- API misuse that violates a stated precondition
//     (negative ids, unprepared caches, arena spans that do not cover the
//     worker pool).  These stay DL_CHECK aborts (core/check.h): misuse is
//     not an expected error path and must fail loudly at the call site.
//   * runtime input and execution errors -- bad scenario/sweep/CLI input,
//     injected or genuine execution faults, numeric pathologies in
//     aggregates, unreadable checkpoint files.  These are *expected* in a
//     long-lived system and must not cost a process full of warm kernel
//     state; they travel as core::Status values (or as core::StatusError
//     where an error must cross stack frames that cannot return one, e.g.
//     out of a worker pool), and the sweep runner converts them into
//     per-cell failures instead of aborts.
//
// Status is a small value type: an error code plus a human-readable
// message.  StatusOr<T> carries either a value or the Status explaining its
// absence.  Both are deliberately minimal -- no payloads, no stack traces --
// so they stay cheap enough for per-cell use inside sweeps.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/check.h"

namespace decaylib::core {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // runtime input rejected by validation
  kFailedPrecondition,  // environment not in the required state (e.g. a
                        // checkpoint for a different sweep spec)
  kNumericError,        // non-finite values where finite ones are required
  kIoError,             // file read/write/parse failures
  kInternal,            // execution failure (a task threw, a fault tripped)
};

// Canonical lower-case name of a code ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // Default: OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NumericError(std::string message) {
    return Status(StatusCode::kNumericError, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  // "<code name>: <message>" ("ok" when OK).
  std::string ToString() const;

  friend bool operator==(const Status&, const Status&) = default;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Exception carrier for a Status that must unwind through frames which
// cannot return one (worker pools, constructors).  what() is the
// Status::ToString() text.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

// Throws StatusError when `status` is not OK; no-op otherwise.
inline void ThrowIfError(const Status& status) {
  if (!status.ok()) throw StatusError(status);
}

// Either a T or the Status explaining why there is none.  Accessing the
// value of a failed StatusOr is a programmer error (DL_CHECK).
template <typename T>
class StatusOr {
 public:
  // Implicit, like absl: `return Status::IoError(...)` and `return value`
  // both work from a StatusOr-returning function.
  StatusOr(Status status) : status_(std::move(status)) {
    DL_CHECK(!status_.ok(), "StatusOr needs a non-OK status or a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const noexcept { return value_.has_value(); }
  const Status& status() const noexcept { return status_; }

  const T& value() const {
    DL_CHECK(ok(), "StatusOr::value on a failed result");
    return *value_;
  }
  T& value() {
    DL_CHECK(ok(), "StatusOr::value on a failed result");
    return *value_;
  }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

}  // namespace decaylib::core
