#include "core/status.h"

namespace decaylib::core {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kNumericError:
      return "numeric_error";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace decaylib::core
