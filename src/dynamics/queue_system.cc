#include "dynamics/queue_system.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>
#include <utility>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::dynamics {

namespace {

constexpr const char* kSchedulerNames[] = {"lqf", "greedy", "random"};

void ValidateConfig(int n, const QueueConfig& config) {
  DL_CHECK(static_cast<int>(config.arrival_rates.size()) == n,
           "one arrival rate per link required");
  DL_CHECK(config.slots > config.warmup && config.warmup >= 0,
           "slots must exceed warmup");
  for (const double rate : config.arrival_rates) {
    DL_CHECK(std::isfinite(rate) && rate >= 0.0 && rate <= 1.0,
             "arrival rates are per-slot Bernoulli probabilities in [0, 1]");
  }
}

// Shared simulation driver: arrivals, departures and statistics accounting
// are common code, so at a fixed seed the naive and cached paths draw the
// identical randomness stream and can only differ through `schedule` -- the
// per-slot service-set selection each path implements against its own
// feasibility machinery.
template <typename ScheduleSlot>
QueueStats RunQueueLoop(int n, const QueueConfig& config, geom::Rng& rng,
                        ScheduleSlot&& schedule) {
  ValidateConfig(n, config);
  std::vector<long long> queue(static_cast<std::size_t>(n), 0);
  QueueStats stats;
  double backlog_sum = 0.0;
  double backlog_q3 = 0.0;  // third quarter
  double backlog_q4 = 0.0;  // fourth quarter
  // Runs shorter than 4 slots have quarter == 0: every slot would fall into
  // the "fourth quarter" bucket and the growth ratio would read 1e9
  // ("unstable") off a trivially stable run.  Such runs skip the quarter
  // accounting and report the neutral 1.0 below.
  const int quarter = config.slots / 4;
  std::vector<int> chosen;

  for (int slot = 0; slot < config.slots; ++slot) {
    const bool measured = slot >= config.warmup;
    // Arrivals.
    for (int v = 0; v < n; ++v) {
      if (rng.Chance(config.arrival_rates[static_cast<std::size_t>(v)])) {
        ++queue[static_cast<std::size_t>(v)];
        ++stats.arrived_total;
        if (measured) ++stats.arrived_measured;
      }
    }
    // Schedule a service set among backlogged links.
    chosen.clear();
    schedule(queue, rng, chosen);
    for (int v : chosen) {
      --queue[static_cast<std::size_t>(v)];
      ++stats.served_total;
      if (measured) ++stats.served_measured;
    }
    const long long backlog =
        std::accumulate(queue.begin(), queue.end(), 0LL);
    if (measured) backlog_sum += static_cast<double>(backlog);
    if (quarter > 0) {
      if (slot >= 2 * quarter && slot < 3 * quarter) {
        backlog_q3 += static_cast<double>(backlog);
      } else if (slot >= 3 * quarter) {
        backlog_q4 += static_cast<double>(backlog);
      }
    }
  }

  const int measured_slots = config.slots - config.warmup;
  stats.mean_queue = backlog_sum / measured_slots;
  stats.throughput =
      static_cast<double>(stats.served_measured) / measured_slots;
  stats.mean_delay =
      stats.throughput > 0.0 ? stats.mean_queue / stats.throughput : 0.0;
  stats.offered_load = std::accumulate(config.arrival_rates.begin(),
                                       config.arrival_rates.end(), 0.0);
  stats.final_queues = std::move(queue);
  stats.backlog_growth = quarter == 0        ? 1.0
                         : backlog_q3 > 0.0  ? backlog_q4 / backlog_q3
                         : backlog_q4 > 0.0  ? 1e9
                                             : 1.0;
  return stats;
}

// Backlogged links in longest-queue-first order: queue length descending,
// ties by link id (the stable sort keeps the id order).
void CollectLongestQueueFirst(const std::vector<long long>& queue,
                              std::vector<int>& backlogged) {
  backlogged.clear();
  const int n = static_cast<int>(queue.size());
  for (int v = 0; v < n; ++v) {
    if (queue[static_cast<std::size_t>(v)] > 0) backlogged.push_back(v);
  }
  std::stable_sort(backlogged.begin(), backlogged.end(), [&](int a, int b) {
    return queue[static_cast<std::size_t>(a)] >
           queue[static_cast<std::size_t>(b)];
  });
}

// The realised random-access transmission set: every backlogged link
// transmits independently w.p. min(1, c / contention).  Consumes randomness
// identically on both paths (one Chance per backlogged link, id order).
void SampleRandomAccessSenders(const std::vector<long long>& queue,
                               double random_access_c, geom::Rng& rng,
                               std::vector<int>& senders) {
  senders.clear();
  const int n = static_cast<int>(queue.size());
  int contention = 0;
  for (int v = 0; v < n; ++v) {
    if (queue[static_cast<std::size_t>(v)] > 0) ++contention;
  }
  if (contention == 0) return;
  for (int v = 0; v < n; ++v) {
    if (queue[static_cast<std::size_t>(v)] == 0) continue;
    if (rng.Chance(std::min(1.0, random_access_c / contention))) {
      senders.push_back(v);
    }
  }
}

}  // namespace

std::span<const char* const> SchedulerNames() { return kSchedulerNames; }

const char* SchedulerName(Scheduler scheduler) {
  return kSchedulerNames[static_cast<int>(scheduler)];
}

std::optional<Scheduler> SchedulerFromName(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kSchedulerNames); ++i) {
    if (name == kSchedulerNames[i]) return static_cast<Scheduler>(i);
  }
  return std::nullopt;
}

QueueStats RunQueueSimulation(const sinr::KernelCache& kernel,
                              const QueueConfig& config, geom::Rng& rng) {
  const int n = kernel.NumLinks();
  const double beta = kernel.system().config().beta;
  const std::vector<int> decay_order = kernel.OrderByDecay();
  sinr::AffectanceAccumulator admitted(kernel);
  std::vector<int> backlogged;
  std::vector<int> senders;

  // Greedy admission against the running affectance sums: O(|S|) per probe
  // and O(n) per admission, deciding exactly as the naive push-IsFeasible-
  // pop loop (kernel.h's CanAddFeasibly contract; the noise check is the
  // candidate's own clause of the naive feasibility scan).
  const auto admit = [&](int v) {
    if (kernel.CanOvercomeNoise(v) && admitted.CanAddFeasibly(v)) {
      admitted.Add(v);
    }
  };

  const auto schedule = [&](const std::vector<long long>& queue,
                            geom::Rng& slot_rng, std::vector<int>& chosen) {
    switch (config.scheduler) {
      case Scheduler::kLongestQueueFirst: {
        CollectLongestQueueFirst(queue, backlogged);
        admitted.Clear();
        for (int v : backlogged) admit(v);
        chosen.assign(admitted.members().begin(), admitted.members().end());
        break;
      }
      case Scheduler::kGreedyByDecay: {
        admitted.Clear();
        for (int v : decay_order) {
          if (queue[static_cast<std::size_t>(v)] == 0) continue;
          admit(v);
        }
        chosen.assign(admitted.members().begin(), admitted.members().end());
        break;
      }
      case Scheduler::kRandomAccess: {
        SampleRandomAccessSenders(queue, config.random_access_c, slot_rng,
                                  senders);
        // Only links meeting the SINR threshold in the realised transmission
        // set are served.
        for (int v : senders) {
          if (kernel.Sinr(v, senders) >= beta) chosen.push_back(v);
        }
        break;
      }
    }
  };
  return RunQueueLoop(n, config, rng, schedule);
}

QueueStats RunQueueSimulation(const sinr::LinkSystem& system,
                              const QueueConfig& config, geom::Rng& rng) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return RunQueueSimulation(kernel, config, rng);
}

QueueStats RunQueueSimulationNaive(const sinr::LinkSystem& system,
                                   const QueueConfig& config, geom::Rng& rng) {
  const int n = system.NumLinks();
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  const std::vector<int> decay_order = system.OrderByDecay();
  std::vector<int> backlogged;
  std::vector<int> senders;

  const auto schedule = [&](const std::vector<long long>& queue,
                            geom::Rng& slot_rng, std::vector<int>& chosen) {
    switch (config.scheduler) {
      case Scheduler::kLongestQueueFirst: {
        CollectLongestQueueFirst(queue, backlogged);
        for (int v : backlogged) {
          chosen.push_back(v);
          if (!system.IsFeasible(chosen, power)) chosen.pop_back();
        }
        break;
      }
      case Scheduler::kGreedyByDecay: {
        for (int v : decay_order) {
          if (queue[static_cast<std::size_t>(v)] == 0) continue;
          chosen.push_back(v);
          if (!system.IsFeasible(chosen, power)) chosen.pop_back();
        }
        break;
      }
      case Scheduler::kRandomAccess: {
        SampleRandomAccessSenders(queue, config.random_access_c, slot_rng,
                                  senders);
        for (int v : senders) {
          if (system.Sinr(v, senders, power) >= system.config().beta) {
            chosen.push_back(v);
          }
        }
        break;
      }
    }
  };
  return RunQueueLoop(n, config, rng, schedule);
}

QueueConfig UniformArrivals(const sinr::LinkSystem& system, double lambda,
                            Scheduler scheduler, int slots) {
  DL_CHECK(std::isfinite(lambda) && lambda >= 0.0 && lambda <= 1.0,
           "lambda is a per-slot Bernoulli probability in [0, 1]");
  QueueConfig config;
  config.arrival_rates.assign(static_cast<std::size_t>(system.NumLinks()),
                              lambda);
  config.scheduler = scheduler;
  config.slots = slots;
  config.warmup = slots / 10;
  return config;
}

}  // namespace decaylib::dynamics
