#include "dynamics/queue_system.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::dynamics {

QueueStats RunQueueSimulation(const sinr::LinkSystem& system,
                              const QueueConfig& config, geom::Rng& rng) {
  const int n = system.NumLinks();
  DL_CHECK(static_cast<int>(config.arrival_rates.size()) == n,
           "one arrival rate per link required");
  DL_CHECK(config.slots > config.warmup && config.warmup >= 0,
           "slots must exceed warmup");
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  std::vector<long long> queue(static_cast<std::size_t>(n), 0);
  QueueStats stats;
  double backlog_sum = 0.0;
  long long served_measured = 0;
  double backlog_q3 = 0.0;  // third quarter
  double backlog_q4 = 0.0;  // fourth quarter
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const std::vector<int> decay_order = system.OrderByDecay();

  for (int slot = 0; slot < config.slots; ++slot) {
    // Arrivals.
    for (int v = 0; v < n; ++v) {
      if (rng.Chance(config.arrival_rates[static_cast<std::size_t>(v)])) {
        ++queue[static_cast<std::size_t>(v)];
        ++stats.arrived_total;
      }
    }
    // Schedule a service set among backlogged links.
    std::vector<int> chosen;
    switch (config.scheduler) {
      case Scheduler::kLongestQueueFirst: {
        std::vector<int> backlogged;
        for (int v = 0; v < n; ++v) {
          if (queue[static_cast<std::size_t>(v)] > 0) backlogged.push_back(v);
        }
        std::stable_sort(backlogged.begin(), backlogged.end(),
                         [&](int a, int b) {
                           return queue[static_cast<std::size_t>(a)] >
                                  queue[static_cast<std::size_t>(b)];
                         });
        for (int v : backlogged) {
          chosen.push_back(v);
          if (!system.IsFeasible(chosen, power)) chosen.pop_back();
        }
        break;
      }
      case Scheduler::kGreedyByDecay: {
        for (int v : decay_order) {
          if (queue[static_cast<std::size_t>(v)] == 0) continue;
          chosen.push_back(v);
          if (!system.IsFeasible(chosen, power)) chosen.pop_back();
        }
        break;
      }
      case Scheduler::kRandomAccess: {
        std::vector<int> senders;
        int contention = 0;
        for (int v = 0; v < n; ++v) {
          if (queue[static_cast<std::size_t>(v)] > 0) ++contention;
        }
        if (contention == 0) break;
        for (int v = 0; v < n; ++v) {
          if (queue[static_cast<std::size_t>(v)] == 0) continue;
          if (rng.Chance(std::min(1.0, config.random_access_c / contention))) {
            senders.push_back(v);
          }
        }
        // Only links meeting the SINR threshold in the realised transmission
        // set are served.
        for (int v : senders) {
          if (system.Sinr(v, senders, power) >= system.config().beta) {
            chosen.push_back(v);
          }
        }
        break;
      }
    }
    for (int v : chosen) {
      --queue[static_cast<std::size_t>(v)];
      ++stats.served_total;
    }
    const long long backlog =
        std::accumulate(queue.begin(), queue.end(), 0LL);
    if (slot >= config.warmup) {
      backlog_sum += static_cast<double>(backlog);
      served_measured += static_cast<long long>(chosen.size());
    }
    const int quarter = config.slots / 4;
    if (slot >= 2 * quarter && slot < 3 * quarter) {
      backlog_q3 += static_cast<double>(backlog);
    } else if (slot >= 3 * quarter) {
      backlog_q4 += static_cast<double>(backlog);
    }
  }

  const int measured = config.slots - config.warmup;
  stats.mean_queue = backlog_sum / measured;
  stats.throughput = static_cast<double>(served_measured) / measured;
  stats.mean_delay =
      stats.throughput > 0.0 ? stats.mean_queue / stats.throughput : 0.0;
  stats.offered_load = std::accumulate(config.arrival_rates.begin(),
                                       config.arrival_rates.end(), 0.0);
  stats.final_queues = queue;
  stats.backlog_growth = backlog_q3 > 0.0 ? backlog_q4 / backlog_q3
                                          : (backlog_q4 > 0.0 ? 1e9 : 1.0);
  return stats;
}

QueueConfig UniformArrivals(const sinr::LinkSystem& system, double lambda,
                            Scheduler scheduler, int slots) {
  QueueConfig config;
  config.arrival_rates.assign(static_cast<std::size_t>(system.NumLinks()),
                              lambda);
  config.scheduler = scheduler;
  config.slots = slots;
  config.warmup = slots / 10;
  return config;
}

}  // namespace decaylib::dynamics
