// Dynamic packet scheduling over decay spaces (the transfer list's
// [2, 3, 44]: wireless network stability in the SINR model).
//
// Packets arrive at links as independent Bernoulli processes; each slot a
// scheduler selects a feasible set of backlogged links, each of which serves
// one packet.  The questions the cited works study -- which arrival-rate
// vectors are stably supported, and by which (distributed) schedulers --
// depend on the decay space only through its metricity-type parameters, so
// by Prop. 1 the GEO-SINR stability results carry over with alpha -> zeta.
// The simulator here lets benches and engine sweeps measure the realised
// stability region.
//
// Schedulers:
//  * kLongestQueueFirst   -- max-weight flavoured greedy: scan backlogged
//                            links by queue length (desc), admit while the
//                            slot stays feasible;
//  * kGreedyByDecay       -- backlog-oblivious greedy in decay order;
//  * kRandomAccess        -- [44]-style distributed random access: each
//                            backlogged link transmits w.p. min(1, c/contention)
//                            independently; collisions serve nothing.
//
// The hot path runs on a sinr::KernelCache (one O(n^2) kernel build per
// instance): greedy admission goes through an AffectanceAccumulator (O(n)
// per admission instead of the naive O(|S|^2) re-summation) and the random-
// access success checks read the cached cross-decay matrix.  The LinkSystem
// entry point keeps its historical uniform-power semantics by building one
// kernel and delegating; the original per-slot implementation survives as
// RunQueueSimulationNaive, and the cached path is bit-exact against it at a
// fixed seed (admission decides exactly as the naive push-IsFeasible-pop
// loop, the Sinr checks are the identical expression, and both paths draw
// the same randomness stream).
//
// Statistics semantics: `*_total` counters cover the WHOLE run including
// warmup slots; `*_measured` counters and every derived rate (throughput,
// mean_queue, mean_delay) cover only the post-warmup measurement window, so
// throughput == served_measured / (slots - warmup) exactly (served_total /
// slots would mix the cold-start transient into the rate).
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "geom/rng.h"
#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::dynamics {

enum class Scheduler {
  kLongestQueueFirst,
  kGreedyByDecay,
  kRandomAccess,
};

// Canonical scheduler names, indexed by the enum value: "lqf", "greedy",
// "random".  Shared by the CLI flags, docs and reports.
std::span<const char* const> SchedulerNames();
const char* SchedulerName(Scheduler scheduler);
std::optional<Scheduler> SchedulerFromName(std::string_view name);

struct QueueConfig {
  std::vector<double> arrival_rates;  // per link, packets per slot, in [0, 1]
  Scheduler scheduler = Scheduler::kLongestQueueFirst;
  int slots = 5000;
  int warmup = 500;              // slots excluded from averages
  double random_access_c = 0.5;  // c for kRandomAccess
};

// Growth ratios above this are flagged unstable by the engine's queue task.
// Backlog growing linearly from an empty start has Q4/Q3 -> 1.4 (the
// quarter sums are integrals of t), so the threshold must sit below that;
// 1.2 splits it from the ~1 of a stable run.  The ratio of two near-zero
// backlog sums is noise, so the engine couples the threshold with a
// mean-queue guard (see TaskKind::kQueue in batch_runner.cc).
inline constexpr double kUnstableGrowthThreshold = 1.2;

struct QueueStats {
  double mean_queue = 0.0;        // time-average total backlog (post warmup)
  double mean_delay = 0.0;        // Little's-law estimate: backlog / throughput
  double throughput = 0.0;        // served packets per slot (post warmup)
  double offered_load = 0.0;      // sum of arrival rates
  // Whole-run counters, warmup included (the conservation law
  // arrived_total == served_total + remaining backlog holds for these).
  long long served_total = 0;
  long long arrived_total = 0;
  // Post-warmup counters: exactly the events behind the rates above, so
  // throughput == served_measured / (slots - warmup) bit-for-bit.
  long long served_measured = 0;
  long long arrived_measured = 0;
  std::vector<long long> final_queues;
  // Crude stability indicator: backlog in the last quarter vs the quarter
  // before it (ratio ~1 when stable, > 1 and growing when unstable).  Runs
  // shorter than 4 slots have no two quarters to compare and report the
  // neutral 1.0 instead of a spurious verdict.
  double backlog_growth = 0.0;

  // Bitwise equality over every field: the naive-vs-cached exactness gates
  // (tests, bench_e21) compare whole results, so a new field is covered
  // automatically.
  friend bool operator==(const QueueStats&, const QueueStats&) = default;
};

// Runs the queueing simulation against a warm kernel (and its power
// assignment).  One kernel build serves any number of simulations.
QueueStats RunQueueSimulation(const sinr::KernelCache& kernel,
                              const QueueConfig& config, geom::Rng& rng);

// Historical entry point (uniform power): builds one uniform-power kernel
// and delegates to the cached overload.  Bit-identical to the naive
// reference below.
QueueStats RunQueueSimulation(const sinr::LinkSystem& system,
                              const QueueConfig& config, geom::Rng& rng);

// Naive reference (per-slot LinkSystem feasibility/SINR queries under
// uniform power): kept as the test oracle and bench A/B baseline for the
// cached path, exactly the pre-kernel behaviour.
QueueStats RunQueueSimulationNaive(const sinr::LinkSystem& system,
                                   const QueueConfig& config, geom::Rng& rng);

// Convenience: uniform arrival rate lambda on every link (lambda in [0, 1]).
QueueConfig UniformArrivals(const sinr::LinkSystem& system, double lambda,
                            Scheduler scheduler, int slots = 5000);

}  // namespace decaylib::dynamics
