// Dynamic packet scheduling over decay spaces (the transfer list's
// [2, 3, 44]: wireless network stability in the SINR model).
//
// Packets arrive at links as independent Bernoulli processes; each slot a
// scheduler selects a feasible set of backlogged links, each of which serves
// one packet.  The questions the cited works study -- which arrival-rate
// vectors are stably supported, and by which (distributed) schedulers --
// depend on the decay space only through its metricity-type parameters, so
// by Prop. 1 the GEO-SINR stability results carry over with alpha -> zeta.
// The simulator here lets benches measure the realised stability region.
//
// Schedulers:
//  * kLongestQueueFirst   -- max-weight flavoured greedy: scan backlogged
//                            links by queue length (desc), admit while the
//                            slot stays feasible;
//  * kGreedyByDecay       -- backlog-oblivious greedy in decay order;
//  * kRandomAccess        -- [44]-style distributed random access: each
//                            backlogged link transmits w.p. min(1, c/contention)
//                            independently; collisions serve nothing.
#pragma once

#include <vector>

#include "geom/rng.h"
#include "sinr/link_system.h"

namespace decaylib::dynamics {

enum class Scheduler {
  kLongestQueueFirst,
  kGreedyByDecay,
  kRandomAccess,
};

struct QueueConfig {
  std::vector<double> arrival_rates;  // per link, packets per slot
  Scheduler scheduler = Scheduler::kLongestQueueFirst;
  int slots = 5000;
  int warmup = 500;              // slots excluded from averages
  double random_access_c = 0.5;  // c for kRandomAccess
};

struct QueueStats {
  double mean_queue = 0.0;        // time-average total backlog (post warmup)
  double mean_delay = 0.0;        // Little's-law estimate: backlog / throughput
  double throughput = 0.0;        // served packets per slot (post warmup)
  double offered_load = 0.0;      // sum of arrival rates
  long long served_total = 0;
  long long arrived_total = 0;
  std::vector<long long> final_queues;
  // Crude stability indicator: backlog in the last quarter vs the quarter
  // before it (ratio ~1 when stable, > 1 and growing when unstable).
  double backlog_growth = 0.0;
};

// Runs the queueing simulation with uniform power.
QueueStats RunQueueSimulation(const sinr::LinkSystem& system,
                              const QueueConfig& config, geom::Rng& rng);

// Convenience: uniform arrival rate lambda on every link.
QueueConfig UniformArrivals(const sinr::LinkSystem& system, double lambda,
                            Scheduler scheduler, int slots = 5000);

}  // namespace decaylib::dynamics
