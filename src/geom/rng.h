// Deterministic random number generation for decaylib.
//
// All randomness in the library flows through geom::Rng so that experiments,
// tests and environment snapshots are exactly reproducible from a seed.  The
// generator is xoshiro256++ seeded via splitmix64, which is fast, has a
// 2^256-1 period, and passes BigCrush; we deliberately avoid <random> engines
// because their streams are not guaranteed identical across standard library
// implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace decaylib::geom {

// splitmix64 step: used for seeding and for stateless per-key hashing
// (e.g. static per-pair shadowing in env::Environment).
std::uint64_t SplitMix64(std::uint64_t& state) noexcept;

// Stateless 64-bit mix of a key; suitable as a hash with good avalanche.
std::uint64_t Mix64(std::uint64_t key) noexcept;

// xoshiro256++ pseudo-random generator with convenience distributions.
// Copyable; copies continue independent identical streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  // Raw 64 uniform bits.
  std::uint64_t Next() noexcept;

  // Uniform double in [0, 1).
  double Uniform() noexcept;

  // Uniform double in [lo, hi).  Requires lo <= hi.
  double Uniform(double lo, double hi) noexcept;

  // Uniform integer in [0, n).  Requires n > 0.  Uses Lemire rejection to
  // avoid modulo bias.
  std::uint64_t Below(std::uint64_t n) noexcept;

  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int IntIn(int lo, int hi) noexcept;

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Chance(double p) noexcept;

  // Standard normal via Marsaglia polar method.
  double Normal() noexcept;

  // Normal with given mean and standard deviation.
  double Normal(double mean, double stddev) noexcept;

  // Exponential with given rate lambda > 0.
  double Exponential(double lambda) noexcept;

  // Fisher-Yates shuffle of an index vector.
  void Shuffle(std::vector<int>& v) noexcept;

  // A fresh generator whose stream is independent of this one's future.
  Rng Split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace decaylib::geom
