// Point-set samplers for building geometric decay spaces and SINR instances.
#pragma once

#include <vector>

#include "geom/point.h"
#include "geom/rng.h"

namespace decaylib::geom {

// n points i.i.d. uniform in the axis-aligned box [0,w] x [0,h].
std::vector<Vec2> SampleUniform(int n, double w, double h, Rng& rng);

// Regular sqrt(n)-ish grid covering [0,w] x [0,h]; returns at least n points
// (the full rows x cols grid with rows*cols >= n, truncated to n).
std::vector<Vec2> SampleGrid(int n, double w, double h);

// k cluster centers uniform in the box; n points total, each point normal
// around a uniformly chosen center with standard deviation sigma.
std::vector<Vec2> SampleClusters(int n, int k, double w, double h, double sigma,
                                 Rng& rng);

// n points uniform on the segment from a to b (models corridor deployments).
std::vector<Vec2> SampleLine(int n, Vec2 a, Vec2 b, Rng& rng);

// n points uniform in the annulus r_in <= |p - center| <= r_out.
std::vector<Vec2> SampleAnnulus(int n, Vec2 center, double r_in, double r_out,
                                Rng& rng);

// Poisson-disk-style sample: greedy darts, keeping points at pairwise
// distance >= min_dist; stops after max_attempts consecutive failures or when
// n points were placed.  Returned size may be < n if the box is too crowded.
std::vector<Vec2> SampleMinDistance(int n, double w, double h, double min_dist,
                                    Rng& rng, int max_attempts = 2000);

}  // namespace decaylib::geom
