// Planar (and 3-D) geometry primitives used by the environment simulator and
// the geometric decay-space generators.
#pragma once

#include <cmath>
#include <optional>

namespace decaylib::geom {

// 2-D vector / point with value semantics.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  constexpr double Dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  // z-component of the 3-D cross product; sign gives orientation.
  constexpr double Cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }
  double Norm() const noexcept { return std::hypot(x, y); }
  constexpr double NormSq() const noexcept { return x * x + y * y; }
  // Unit vector in this direction; the zero vector maps to itself.
  Vec2 Normalized() const noexcept;
  // Counter-clockwise rotation by `radians`.
  Vec2 Rotated(double radians) const noexcept;
  // Angle in radians in (-pi, pi] measured from the +x axis.
  double Angle() const noexcept { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

double Distance(Vec2 a, Vec2 b) noexcept;

// Geometric decay f(p, q) = |p - q|^alpha.  This is the ONE expression both
// core::DecaySpace::Geometric and the matrix-free far-field kernel
// (sinr/farfield.h) evaluate; sharing it pins the rounding, which is what
// makes the far-field exact path bit-identical to the dense cached one.
inline double GeometricDecay(Vec2 p, Vec2 q, double alpha) noexcept {
  return std::pow(Distance(p, q), alpha);
}

// 3-D vector / point (used by antenna orientation in 3-D scenes and tests of
// higher-dimensional packings).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr bool operator==(const Vec3&) const noexcept = default;
  constexpr double Dot(Vec3 o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  double Norm() const noexcept { return std::sqrt(Dot(*this)); }
};

double Distance(Vec3 a, Vec3 b) noexcept;

// Closed line segment between two points.
struct Segment {
  Vec2 a;
  Vec2 b;

  double Length() const noexcept { return Distance(a, b); }
  Vec2 Midpoint() const noexcept { return (a + b) / 2.0; }
  // Direction from a to b (not normalized).
  Vec2 Direction() const noexcept { return b - a; }
};

// True iff segments pq and rs properly intersect or touch.
bool SegmentsIntersect(const Segment& s1, const Segment& s2) noexcept;

// Intersection point of two segments if they cross in exactly one point
// (collinear-overlap returns nullopt).
std::optional<Vec2> SegmentIntersection(const Segment& s1,
                                        const Segment& s2) noexcept;

// Shortest distance from point p to segment s.
double DistancePointSegment(Vec2 p, const Segment& s) noexcept;

// Mirror image of point p across the infinite line through segment s.
// Used by the image method for first-order specular reflections.
Vec2 MirrorAcrossLine(Vec2 p, const Segment& s) noexcept;

// Number of segments from `walls` crossed by the open segment (from, to);
// endpoints lying exactly on a wall count as crossings.
// (Declared here, defined in env/environment.cc where walls live.)

}  // namespace decaylib::geom
