// Uniform spatial hashing grid over planar points.
//
// UniformGrid buckets a set of points (addressed by caller-provided integer
// ids) into square cells of near-constant occupancy, and exposes the two
// queries nearest-neighbour style searches need: visit every id stored in
// the cells of a given Chebyshev ring around a query point, and lower-bound
// the Euclidean distance from the query point to anything a ring can hold.
// The expanding-ring pattern -- scan ring 0, 1, 2, ... and stop once the
// ring's distance lower bound proves no farther candidate can beat the
// incumbent -- turns the O(n) linear nearest-neighbour scan into an
// expected-O(1) probe at uniform density.
//
// The grid is a snapshot: it does not observe later point mutations, and
// ids are opaque to it (callers typically rebuild per round over the still
// active subset, which is O(m) with two counting passes).  Degenerate
// inputs (all points coincident, a single point) collapse to a 1 x 1 grid
// and the queries remain correct, just unpruned.
#pragma once

#include <span>
#include <vector>

#include "geom/point.h"

namespace decaylib::geom {

class UniformGrid {
 public:
  // Buckets points[ids[k]] for every k.  `target_per_cell` tunes occupancy:
  // the grid aims for roughly that many ids per cell at uniform density
  // (clamped to >= 1).  Ids must index into `points`; they need not be
  // dense or sorted.
  UniformGrid(std::span<const Vec2> points, std::span<const int> ids,
              int target_per_cell = 2);

  // Side length of a cell.
  double CellSize() const noexcept { return cell_; }

  int Cols() const noexcept { return cols_; }
  int Rows() const noexcept { return rows_; }
  int NumCells() const noexcept { return cols_ * rows_; }

  // Row-major index of the cell containing p.  Points outside the bounding
  // box clamp to the border cells, the same way every ring query addresses
  // them.
  int CellIndex(Vec2 p) const noexcept {
    return CellY(p.y) * cols_ + CellX(p.x);
  }

  // Ids stored in row-major cell `cell` (empty span for an empty cell).
  // Lets callers enumerate occupied cells once and build per-cell
  // aggregates, instead of going through ring traversal.
  std::span<const int> CellContents(int cell) const {
    const std::size_t c = static_cast<std::size_t>(cell);
    return {bucket_ids_.data() + starts_[c], starts_[c + 1] - starts_[c]};
  }

  // Number of Chebyshev rings that can intersect the grid from the cell
  // containing p; rings beyond this are empty for every query point inside
  // the grid's bounding box.
  int MaxRings() const noexcept { return cols_ > rows_ ? cols_ : rows_; }

  // Lower bound on |p - q| for q stored in any cell at Chebyshev ring
  // `ring` around p's cell: 0 for rings 0 and 1 (q may share a cell border
  // with p), (ring - 1) * CellSize() beyond.  Monotone in `ring`.
  double RingDistanceLowerBound(int ring) const noexcept {
    return ring <= 1 ? 0.0 : static_cast<double>(ring - 1) * cell_;
  }

  // Calls visit(id) for every id stored in a cell at exactly Chebyshev
  // ring `ring` around p's cell (ring 0 is the cell itself).  Returns true
  // iff at least one cell of the ring intersects the grid -- once it
  // returns false, every larger ring is empty too.
  template <typename Visitor>
  bool VisitRing(Vec2 p, int ring, Visitor&& visit) const {
    const int cx = CellX(p.x);
    const int cy = CellY(p.y);
    bool any_cell = false;
    const int x_lo = cx - ring;
    const int x_hi = cx + ring;
    const int y_lo = cy - ring;
    const int y_hi = cy + ring;
    for (int y = y_lo; y <= y_hi; ++y) {
      if (y < 0 || y >= rows_) continue;
      // Interior rows of the ring only contribute their two edge columns
      // (ring 0's single row is an edge row, so step is always >= 1).
      const bool edge_row = (y == y_lo || y == y_hi);
      const int step = edge_row ? 1 : x_hi - x_lo;
      for (int x = x_lo; x <= x_hi; x += step) {
        if (x < 0 || x >= cols_) continue;
        any_cell = true;
        const std::size_t c =
            static_cast<std::size_t>(y) * static_cast<std::size_t>(cols_) +
            static_cast<std::size_t>(x);
        for (std::size_t k = starts_[c]; k < starts_[c + 1]; ++k) {
          visit(bucket_ids_[k]);
        }
      }
    }
    return any_cell;
  }

 private:
  int CellX(double x) const noexcept;
  int CellY(double y) const noexcept;

  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double cell_ = 1.0;
  int cols_ = 1;
  int rows_ = 1;
  std::vector<std::size_t> starts_;  // CSR offsets, cols_ * rows_ + 1
  std::vector<int> bucket_ids_;      // ids grouped by cell
};

}  // namespace decaylib::geom
