#include "geom/rng.h"

#include <cmath>

namespace decaylib::geom {

std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Mix64(std::uint64_t key) noexcept {
  std::uint64_t state = key;
  return SplitMix64(state);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t state = seed;
  for (auto& word : s_) word = SplitMix64(state);
}

std::uint64_t Rng::Next() noexcept {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() noexcept {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::Below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = -n % n;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

int Rng::IntIn(int lo, int hi) noexcept {
  return lo + static_cast<int>(Below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::Chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) noexcept {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) noexcept {
  return -std::log(1.0 - Uniform()) / lambda;
}

void Rng::Shuffle(std::vector<int>& v) noexcept {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(Below(i));
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::Split() noexcept {
  return Rng(Next() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace decaylib::geom
