#include "geom/point.h"

#include <algorithm>

namespace decaylib::geom {

Vec2 Vec2::Normalized() const noexcept {
  const double n = Norm();
  if (n == 0.0) return *this;
  return *this / n;
}

Vec2 Vec2::Rotated(double radians) const noexcept {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {x * c - y * s, x * s + y * c};
}

double Distance(Vec2 a, Vec2 b) noexcept { return (a - b).Norm(); }

double Distance(Vec3 a, Vec3 b) noexcept { return (a - b).Norm(); }

namespace {

// Orientation of the triplet (a, b, c): >0 counter-clockwise, <0 clockwise,
// 0 collinear (within exact double arithmetic).
double Orient(Vec2 a, Vec2 b, Vec2 c) noexcept {
  return (b - a).Cross(c - a);
}

bool OnSegment(Vec2 p, const Segment& s) noexcept {
  return std::min(s.a.x, s.b.x) <= p.x && p.x <= std::max(s.a.x, s.b.x) &&
         std::min(s.a.y, s.b.y) <= p.y && p.y <= std::max(s.a.y, s.b.y);
}

}  // namespace

bool SegmentsIntersect(const Segment& s1, const Segment& s2) noexcept {
  const double d1 = Orient(s2.a, s2.b, s1.a);
  const double d2 = Orient(s2.a, s2.b, s1.b);
  const double d3 = Orient(s1.a, s1.b, s2.a);
  const double d4 = Orient(s1.a, s1.b, s2.b);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && OnSegment(s1.a, s2)) return true;
  if (d2 == 0 && OnSegment(s1.b, s2)) return true;
  if (d3 == 0 && OnSegment(s2.a, s1)) return true;
  if (d4 == 0 && OnSegment(s2.b, s1)) return true;
  return false;
}

std::optional<Vec2> SegmentIntersection(const Segment& s1,
                                        const Segment& s2) noexcept {
  const Vec2 r = s1.Direction();
  const Vec2 s = s2.Direction();
  const double denom = r.Cross(s);
  if (denom == 0.0) return std::nullopt;  // parallel or collinear
  const Vec2 qp = s2.a - s1.a;
  const double t = qp.Cross(s) / denom;
  const double u = qp.Cross(r) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
  return s1.a + r * t;
}

double DistancePointSegment(Vec2 p, const Segment& s) noexcept {
  const Vec2 d = s.Direction();
  const double len_sq = d.NormSq();
  if (len_sq == 0.0) return Distance(p, s.a);
  const double t = std::clamp((p - s.a).Dot(d) / len_sq, 0.0, 1.0);
  return Distance(p, s.a + d * t);
}

Vec2 MirrorAcrossLine(Vec2 p, const Segment& s) noexcept {
  const Vec2 d = s.Direction().Normalized();
  if (d == Vec2{}) return p;  // degenerate segment: mirror across the point
  const Vec2 ap = p - s.a;
  const Vec2 projected = s.a + d * ap.Dot(d);
  return projected * 2.0 - p;
}

}  // namespace decaylib::geom
