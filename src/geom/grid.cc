#include "geom/grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace decaylib::geom {

UniformGrid::UniformGrid(std::span<const Vec2> points, std::span<const int> ids,
                         int target_per_cell) {
  DL_CHECK(!ids.empty(), "grid needs at least one id");
  if (target_per_cell < 1) target_per_cell = 1;

  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = max_x;
  min_x_ = std::numeric_limits<double>::infinity();
  min_y_ = min_x_;
  for (const int id : ids) {
    const Vec2 p = points[static_cast<std::size_t>(id)];
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  // Aim for ~target_per_cell ids per cell at uniform density.  Cells stay
  // square (so the ring distance bound is isotropic) but their size comes
  // from the box *area*, not its longer edge -- an anisotropic layout like
  // a corridor (length >> width) then gets many small cells along its long
  // axis instead of one overcrowded row.  Near-collinear boxes (zero area)
  // fall back to 1-D density, and a point-like box collapses to one cell;
  // correctness never depends on the cell size, only pruning quality does.
  const double width = max_x - min_x_;
  const double height = max_y - min_y_;
  const double extent = std::max(width, height);
  const double density_target =
      static_cast<double>(ids.size()) / static_cast<double>(target_per_cell);
  const double area = width * height;
  if (area > 0.0) {
    cell_ = std::sqrt(area / std::max(1.0, density_target));
  } else if (extent > 0.0) {
    cell_ = extent / std::max(1.0, density_target);
  } else {
    cell_ = 1.0;
  }
  cols_ = std::max(1, static_cast<int>(std::floor(width / cell_)) + 1);
  rows_ = std::max(1, static_cast<int>(std::floor(height / cell_)) + 1);

  // Two-pass counting sort of ids into row-major cell buckets (CSR).
  const std::size_t cells = static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(rows_);
  starts_.assign(cells + 1, 0);
  std::vector<std::size_t> cell_of(ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const Vec2 p = points[static_cast<std::size_t>(ids[k])];
    const std::size_t c =
        static_cast<std::size_t>(CellY(p.y)) * static_cast<std::size_t>(cols_) +
        static_cast<std::size_t>(CellX(p.x));
    cell_of[k] = c;
    ++starts_[c + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) starts_[c + 1] += starts_[c];
  bucket_ids_.resize(ids.size());
  std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    bucket_ids_[cursor[cell_of[k]]++] = ids[k];
  }
}

int UniformGrid::CellX(double x) const noexcept {
  const int c = static_cast<int>(std::floor((x - min_x_) / cell_));
  return std::clamp(c, 0, cols_ - 1);
}

int UniformGrid::CellY(double y) const noexcept {
  const int c = static_cast<int>(std::floor((y - min_y_) / cell_));
  return std::clamp(c, 0, rows_ - 1);
}

}  // namespace decaylib::geom
