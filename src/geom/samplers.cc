#include "geom/samplers.h"

#include <cmath>

namespace decaylib::geom {

std::vector<Vec2> SampleUniform(int n, double w, double h, Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0.0, w), rng.Uniform(0.0, h)});
  }
  return pts;
}

std::vector<Vec2> SampleGrid(int n, double w, double h) {
  const int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const int rows = (n + cols - 1) / cols;
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < rows && static_cast<int>(pts.size()) < n; ++r) {
    for (int c = 0; c < cols && static_cast<int>(pts.size()) < n; ++c) {
      const double x = cols > 1 ? w * c / (cols - 1) : w / 2.0;
      const double y = rows > 1 ? h * r / (rows - 1) : h / 2.0;
      pts.push_back({x, y});
    }
  }
  return pts;
}

std::vector<Vec2> SampleClusters(int n, int k, double w, double h, double sigma,
                                 Rng& rng) {
  std::vector<Vec2> centers = SampleUniform(k, w, h, rng);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Vec2 c = centers[rng.Below(static_cast<std::uint64_t>(k))];
    pts.push_back({rng.Normal(c.x, sigma), rng.Normal(c.y, sigma)});
  }
  return pts;
}

std::vector<Vec2> SampleLine(int n, Vec2 a, Vec2 b, Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform();
    pts.push_back(a + (b - a) * t);
  }
  return pts;
}

std::vector<Vec2> SampleAnnulus(int n, Vec2 center, double r_in, double r_out,
                                Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Area-uniform radius.
    const double u = rng.Uniform();
    const double r = std::sqrt(r_in * r_in + u * (r_out * r_out - r_in * r_in));
    const double theta = rng.Uniform(0.0, 2.0 * M_PI);
    pts.push_back(center + Vec2{r * std::cos(theta), r * std::sin(theta)});
  }
  return pts;
}

std::vector<Vec2> SampleMinDistance(int n, double w, double h, double min_dist,
                                    Rng& rng, int max_attempts) {
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  int failures = 0;
  while (static_cast<int>(pts.size()) < n && failures < max_attempts) {
    const Vec2 candidate{rng.Uniform(0.0, w), rng.Uniform(0.0, h)};
    bool ok = true;
    for (const Vec2& p : pts) {
      if (Distance(p, candidate) < min_dist) {
        ok = false;
        break;
      }
    }
    if (ok) {
      pts.push_back(candidate);
      failures = 0;
    } else {
      ++failures;
    }
  }
  return pts;
}

}  // namespace decaylib::geom
