#include "sweep/sweep_report.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "engine/report.h"
#include "io/csv.h"

namespace decaylib::sweep {

namespace {

using engine::FindAggregateMetric;
using engine::FmtFixed;
using engine::PrintMarkdownTable;

// The metrics the human-readable tables lead with (the CSV export carries
// all of them); each prints only when some cell produced it.
const std::vector<std::string>& HeadlineMetrics() {
  static const std::vector<std::string> metrics = {
      "alg1_size",        "greedy_size",        "pc_greedy_size",
      "pc_all_feasible",  "pc_gain_vs_uniform", "schedule_slots",
      "queue_throughput", "queue_unstable",     "regret_successes",
  };
  return metrics;
}

// The headline metrics that actually occurred somewhere in the grid.
std::vector<std::string> PresentHeadlines(const SweepResult& result) {
  std::vector<std::string> present;
  for (const std::string& name : HeadlineMetrics()) {
    for (const SweepCellResult& cell : result.cells) {
      if (FindAggregateMetric(cell.result, name) != nullptr) {
        present.push_back(name);
        break;
      }
    }
  }
  return present;
}

}  // namespace

void PrintSweepReport(const SweepResult& result) {
  const std::vector<std::string> metrics = PresentHeadlines(result);

  std::printf("sweep %s: %zu cells, %s cells/s (%.1f ms",
              result.spec.name.c_str(), result.cells.size(),
              FmtFixed(result.CellsPerSecond(), 2).c_str(), result.wall_ms);
  if (result.arena_rebuilds > 0) {
    std::printf(", %lld kernels through arenas", result.arena_rebuilds);
  }
  if (result.geometry_builds > 0 || result.geometry_reuses > 0) {
    std::printf(", %lld geometries built / %lld reused",
                result.geometry_builds, result.geometry_reuses);
  }
  std::printf(")\n");
  if (result.cells_failed > 0 || result.cells_retried > 0 ||
      result.cells_resumed > 0) {
    std::printf("robustness: %d failed, %d retried, %d resumed\n",
                result.cells_failed, result.cells_retried,
                result.cells_resumed);
  }
  // Cache effectiveness: how much of the grid's instance generation and
  // kernel allocation was served warm.
  const long long geometry_total =
      result.geometry_builds + result.geometry_reuses;
  if (geometry_total > 0 || result.arena_rebuilds > 0) {
    std::printf("caches:");
    if (geometry_total > 0) {
      std::printf(" geometry hit rate %.1f%% (%lld/%lld served warm)",
                  100.0 * static_cast<double>(result.geometry_reuses) /
                      static_cast<double>(geometry_total),
                  result.geometry_reuses, geometry_total);
    }
    if (result.arena_rebuilds > 0) {
      std::printf("%s arena %lld rebuilds / %lld warm skips (%.1f%%)",
                  geometry_total > 0 ? "," : "", result.arena_rebuilds,
                  result.arena_warm_skips,
                  100.0 * static_cast<double>(result.arena_warm_skips) /
                      static_cast<double>(result.arena_rebuilds));
    }
    if (result.geometry_generation_hits > 0 || result.geometry_evictions > 0) {
      std::printf(", %lld generation hits / %lld evictions",
                  result.geometry_generation_hits, result.geometry_evictions);
    }
    std::printf("\n");
  }
  if (result.checkpoint_write_ms > 0.0 || result.resume_restore_ms > 0.0) {
    std::printf("checkpointing: %.1f ms writing, %.1f ms restoring\n",
                result.checkpoint_write_ms, result.resume_restore_ms);
  }
  std::printf("\n");

  // Per-cell table: axis coordinates + headline means (+ a status column
  // once any cell failed, so a partial grid is visibly partial).
  const bool show_status = result.cells_failed > 0;
  std::vector<std::string> headers = {"cell"};
  for (const SweepAxis& axis : result.spec.axes) headers.push_back(axis.field);
  if (show_status) headers.push_back("status");
  for (const std::string& name : metrics) headers.push_back(name);
  std::vector<std::vector<std::string>> rows;
  for (const SweepCellResult& cell : result.cells) {
    std::vector<std::string> row = {std::to_string(cell.cell.index)};
    for (std::size_t a = 0; a < result.spec.axes.size(); ++a) {
      row.push_back(FormatAxisValue(result.spec.axes[a].values[
          static_cast<std::size_t>(cell.cell.coords[a])]));
    }
    if (show_status) row.push_back(cell.outcome.ok ? "ok" : "failed");
    for (const std::string& name : metrics) {
      const engine::MetricSummary* m = FindAggregateMetric(cell.result, name);
      row.push_back(m != nullptr ? FmtFixed(m->Mean()) : "-");
    }
    rows.push_back(std::move(row));
  }
  PrintMarkdownTable(headers, rows);
  for (const SweepCellResult& cell : result.cells) {
    if (!cell.outcome.ok) {
      std::printf("cell %d failed after %d attempt%s: %s\n", cell.cell.index,
                  cell.outcome.attempts, cell.outcome.attempts == 1 ? "" : "s",
                  cell.outcome.error.c_str());
    }
  }

  // Per-cell timing: the wall time of the attempt that produced each cell's
  // result, split by stage.  Stage totals are worker-summed, so with more
  // than one worker they legitimately exceed the attempt wall time (and
  // match it, up to clock overhead, at 1 thread).  Resumed cells executed
  // nothing and are skipped.
  std::vector<std::vector<std::string>> timing_rows;
  for (const SweepCellResult& cell : result.cells) {
    if (!cell.outcome.ok || cell.outcome.resumed) continue;
    const obs::StageStats& stats = cell.result.stage_stats;
    if (stats.empty()) continue;
    double geometry_ms = 0.0, kernel_ms = 0.0, task_ms = 0.0;
    for (const obs::StageStats::Stage& s : stats.stages) {
      if (s.name == "geometry_build" || s.name == "geometry_reuse") {
        geometry_ms += s.total_ms;
      } else if (s.name == "kernel_build" || s.name == "farfield_build") {
        kernel_ms += s.total_ms;
      } else if (s.name.rfind("task.", 0) == 0) {
        task_ms += s.total_ms;
      }
    }
    timing_rows.push_back(
        {std::to_string(cell.cell.index), std::to_string(cell.outcome.attempts),
         FmtFixed(cell.outcome.attempt_ms, 1),
         FmtFixed(cell.outcome.total_attempt_ms, 1), FmtFixed(geometry_ms, 1),
         FmtFixed(kernel_ms, 1), FmtFixed(task_ms, 1),
         FmtFixed(stats.TotalMs(), 1)});
  }
  if (!timing_rows.empty()) {
    std::printf("\nper-cell timing (final attempt; stage totals worker-summed)\n");
    PrintMarkdownTable({"cell", "attempts", "attempt ms", "all attempts ms",
                        "geometry ms", "kernel ms", "task ms", "stages ms"},
                       timing_rows);
  }

  // One frontier table per axis: the 1-D mean curve of each headline
  // metric along that axis, marginalised over all other axes.
  for (std::size_t a = 0; a < result.spec.axes.size(); ++a) {
    const SweepAxis& axis = result.spec.axes[a];
    std::printf("\nfrontier along %s:\n", axis.field.c_str());
    std::vector<std::string> fheaders = {axis.field, "cells"};
    for (const std::string& name : metrics) fheaders.push_back(name);
    std::vector<std::vector<std::string>> frows;
    for (std::size_t k = 0; k < axis.values.size(); ++k) {
      std::vector<std::string> row = {FormatAxisValue(axis.values[k]), ""};
      int matching = 0;
      std::vector<double> sums(metrics.size(), 0.0);
      std::vector<long long> counts(metrics.size(), 0);
      for (const SweepCellResult& cell : result.cells) {
        if (cell.cell.coords[a] != static_cast<int>(k)) continue;
        ++matching;
        for (std::size_t m = 0; m < metrics.size(); ++m) {
          const engine::MetricSummary* summary =
              FindAggregateMetric(cell.result, metrics[m]);
          if (summary != nullptr) {
            sums[m] += summary->sum;
            counts[m] += summary->count;
          }
        }
      }
      row[1] = std::to_string(matching);
      for (std::size_t m = 0; m < metrics.size(); ++m) {
        row.push_back(counts[m] > 0
                          ? FmtFixed(sums[m] / static_cast<double>(counts[m]))
                          : "-");
      }
      frows.push_back(std::move(row));
    }
    PrintMarkdownTable(fheaders, frows);
  }
}

namespace {

bool HasAxis(const SweepSpec& spec, const std::string& field) {
  for (const SweepAxis& axis : spec.axes) {
    if (axis.field == field) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> SweepCsvHeader(const SweepResult& result) {
  std::vector<std::string> header = {"sweep", "cell"};
  for (const SweepAxis& axis : result.spec.axes) header.push_back(axis.field);
  // links/instances context columns, except when the axis columns already
  // carry them (a duplicated header name would mangle CSV consumers).
  if (!HasAxis(result.spec, "links")) header.push_back("links");
  if (!HasAxis(result.spec, "instances")) header.push_back("instances");
  // Robustness columns: every row says whether its cell completed, how
  // many attempts it took, and (failed rows only) the error text.
  header.push_back("ok");
  header.push_back("attempts");
  header.push_back("error");
  // Every aggregate metric observed anywhere in the grid, first-seen order
  // (aggregates list metrics in a fixed order, so this is stable).
  for (const SweepCellResult& cell : result.cells) {
    for (const auto& [name, m] : cell.result.aggregate) {
      if (m.count == 0) continue;
      const std::string column = name + "_mean";
      if (std::find(header.begin(), header.end(), column) == header.end()) {
        header.push_back(column);
      }
    }
  }
  return header;
}

namespace {

// Rows for a header already computed by SweepCsvHeader (the header scan
// walks every cell's aggregate map, so callers emitting both compute it
// once and share it).
std::vector<std::vector<std::string>> RowsForHeader(
    const SweepResult& result, const std::vector<std::string>& header) {
  const bool links_column = !HasAxis(result.spec, "links");
  const bool instances_column = !HasAxis(result.spec, "instances");
  const std::size_t fixed = 2 + result.spec.axes.size() +
                            (links_column ? 1 : 0) +
                            (instances_column ? 1 : 0) +
                            3;  // ok, attempts, error
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.cells.size());
  char buf[64];
  for (const SweepCellResult& cell : result.cells) {
    std::vector<std::string> row = {result.spec.name,
                                    std::to_string(cell.cell.index)};
    for (std::size_t a = 0; a < result.spec.axes.size(); ++a) {
      row.push_back(FormatAxisValue(result.spec.axes[a].values[
          static_cast<std::size_t>(cell.cell.coords[a])]));
    }
    if (links_column) row.push_back(std::to_string(cell.result.spec.links));
    if (instances_column) {
      row.push_back(std::to_string(cell.result.instances.size()));
    }
    row.push_back(cell.outcome.ok ? "1" : "0");
    row.push_back(std::to_string(cell.outcome.attempts));
    row.push_back(cell.outcome.ok ? "" : cell.outcome.error);
    for (std::size_t c = fixed; c < header.size(); ++c) {
      const std::string name = header[c].substr(0, header[c].size() - 5);
      const engine::MetricSummary* m = FindAggregateMetric(cell.result, name);
      if (m != nullptr) {
        std::snprintf(buf, sizeof(buf), "%.10g", m->Mean());
        row.push_back(buf);
      } else {
        row.push_back("");
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::vector<std::vector<std::string>> SweepCsvRows(const SweepResult& result) {
  return RowsForHeader(result, SweepCsvHeader(result));
}

bool WriteSweepCsvFile(const SweepResult& result, const std::string& path) {
  const std::vector<std::string> header = SweepCsvHeader(result);
  const std::vector<std::vector<std::string>> rows =
      RowsForHeader(result, header);
  if (!io::WriteCsvTableFile(header, rows, path)) {
    std::fprintf(stderr, "WriteSweepCsvFile: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu cells)\n", path.c_str(), rows.size());
  return true;
}

bool WriteSweepJsonReport(const std::string& id,
                          std::span<const SweepResult> results) {
  std::vector<engine::ScenarioResult> flat;
  for (const SweepResult& sweep : results) {
    for (const SweepCellResult& cell : sweep.cells) {
      if (!cell.outcome.ok) continue;  // failed cells carry no aggregates
      flat.push_back(cell.result);
    }
  }
  return engine::WriteJsonReport(id, flat);
}

}  // namespace decaylib::sweep
