// Drives a parameter grid through the batch engine over shared kernel
// arenas.
//
// SweepRunner expands a SweepSpec into its cell grid and runs each cell's
// batch through one engine::BatchRunner.  Two kinds of expensive per-cell
// state live above the grid and are reused across it:
//  * kernels -- per-instance KernelCache matrices are rebuilt inside
//    per-worker sinr::KernelArena slabs that live for the *whole sweep*:
//    same-shape cells (and every instance within a cell) reuse warm storage
//    instead of paying the allocator, and differently sized cells simply
//    re-grow the slabs;
//  * geometry -- one shared engine::GeometryCache keeps a cell's sampled
//    decay spaces, link pairings and measured metricities warm, so a run of
//    consecutive cells with equal GeometryKey (only power_tau / beta /
//    noise / explicit zeta differ) pays instance *generation* once, which
//    is the dominant per-cell cost (docs/performance.md).
//
// Determinism contract, inherited and extended from the batch runner:
//  * every deterministic statistic of every cell is invariant under the
//    worker-thread count (the batch runner's contract),
//  * arena reuse is invisible in the results -- a swept cell's aggregates
//    are bit-identical to the same cell run with per-instance allocation
//    (KernelCache::Build overwrites every entry, so rebuilt slabs hold the
//    same bits as fresh ones), and
//  * geometry reuse and the pairing route are invisible too -- a cached
//    geometry is the bit-identical output of the same BuildGeometry call,
//    and grid/MNN pairing provably reproduces the sort-greedy matching.
// SweepSignature serialises the deterministic part of a whole grid; tests,
// the sweep_runner CLI --smoke gate and bench_e20 assert every invariance.
//
// Fault tolerance (the robustness layer):
//  * a cell whose batch throws -- invalid runtime input, an injected
//    fault, a real bug -- or whose aggregates fail the numeric-health
//    check is *isolated*: its CellOutcome records the failure and the rest
//    of the grid keeps running on the same warm arenas;
//  * transient failures are retried up to SweepConfig::max_attempts;
//    invalid-input failures are permanent (retrying a bad spec cannot
//    help);
//  * with a checkpoint path set, completed healthy cells are persisted
//    after every cell (sweep/checkpoint.h) and `resume` restores them
//    bit-exactly, so an interrupted sweep re-runs only what it must and
//    its SweepSignature equals an uninterrupted run's at any thread count;
//  * FaultPlan injects deterministic failures (cell i, first k attempts)
//    through the real worker pool, so the recovery paths above are
//    exercised end to end by tests and the CLI --smoke gate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/stage_stats.h"
#include "sinr/kernel.h"
#include "sweep/sweep.h"

namespace decaylib::sweep {

// Deterministic fault injection: makes the worker that picks up instance 0
// of the targeted cell throw engine::InjectedFault.  `fail_attempts` is how
// many leading attempts of that cell fail (-1 = every attempt, so the cell
// exhausts its retries and lands failed).
struct FaultPlan {
  int fail_cell = -1;     // flat grid index; -1 disarms the plan
  int fail_attempts = 1;  // attempts 1..k fail; -1 = all attempts fail

  bool Armed() const { return fail_cell >= 0; }
  bool Trips(int cell, int attempt) const {  // attempt is 1-based
    return cell == fail_cell &&
           (fail_attempts < 0 || attempt <= fail_attempts);
  }
};

struct SweepConfig {
  int threads = 0;          // per-cell worker pool; 0 = hardware concurrency
  bool reuse_arena = true;  // rebuild kernels in per-worker arenas
  // Share sampled instance geometry (decay space, points, link pairing,
  // measured metricity) across cells whose engine::GeometryKey matches --
  // i.e. cells differing only in power_tau / beta / noise / explicit zeta.
  // Reuse follows grid order, so put non-geometric axes last (fastest).
  bool reuse_geometry = true;
  // LRU depth of the shared geometry cache, in key generations (>= 1).
  // 1 keeps the historical single-generation bound; more generations serve
  // grids whose geometric axis is NOT the slowest -- keys then interleave
  // and a depth covering the geometric axis length turns every revisit
  // into a warm hit (engine::GeometryCache).
  int geometry_generations = 1;
  // Pairing route for instance builds (kSortGreedy = reference A/B arm).
  engine::PairingMode pairing = engine::PairingMode::kAuto;

  // Robustness knobs.
  int max_attempts = 2;  // tries per cell before it is recorded failed
  FaultPlan fault;       // deterministic injected failures (tests, --smoke)
  std::string checkpoint_path;  // empty = no checkpointing
  bool resume = false;   // restore completed cells from checkpoint_path
  int checkpoint_every = 1;  // save after every N completed cells (+ final)
  // Test hook: stop executing after this many *fresh* (non-restored) cells
  // complete, returning a partial result -- simulates a kill mid-sweep
  // without process gymnastics.  0 = run the whole grid.
  int halt_after_cells = 0;
};

// How one cell's execution ended.
struct CellOutcome {
  bool ok = true;
  std::string error;   // status/exception text of the *last* attempt
  int attempts = 1;    // attempts consumed (1 = first try succeeded)
  bool resumed = false;  // restored from a checkpoint, not executed
  // Wall time of the *final* attempt alone -- batch execution only, with
  // checkpoint writes excluded, so a retried or checkpointed cell reports
  // what the surviving run actually cost.  Resumed cells report 0.
  double attempt_ms = 0.0;
  // Wall time summed over every attempt (failed ones included).
  double total_attempt_ms = 0.0;
};

struct SweepCellResult {
  SweepCell cell;
  engine::ScenarioResult result;  // meaningful only when outcome.ok
  CellOutcome outcome;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepCellResult> cells;  // grid (row-major) order

  // Robustness accounting (deterministic given config + fault plan).
  int cells_failed = 0;   // cells whose outcome is !ok
  int cells_retried = 0;  // cells that needed more than one attempt
  int cells_resumed = 0;  // cells restored from the checkpoint

  // Non-deterministic timing/accounting.
  double wall_ms = 0.0;         // whole-grid wall time
  long long arena_rebuilds = 0; // kernel builds that went through an arena
  long long arena_warm_skips = 0; // rebuilds into an already-right-sized slab
  long long geometry_builds = 0; // instance geometries sampled fresh
  long long geometry_reuses = 0; // instance geometries served from cache
  long long geometry_generation_hits = 0;  // Prepares served by a warm key
  long long geometry_evictions = 0;        // generations dropped by LRU
  double checkpoint_write_ms = 0.0;  // total time in SaveCheckpoint
  double resume_restore_ms = 0.0;    // time loading/verifying the sidecar
  // Per-stage breakdown merged from every ok cell's batch (plus the
  // sweep-level checkpoint_write / resume_restore stages).  Wall clock;
  // never enters SweepSignature.
  obs::StageStats stage_stats;

  double CellsPerSecond() const {
    return wall_ms > 0.0
               ? 1000.0 * static_cast<double>(cells.size()) / wall_ms
               : 0.0;
  }
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = {});

  // Runs every cell of the grid, in grid order, against arenas shared
  // across the whole sweep.  Cell failures are isolated into CellOutcome;
  // Run itself throws core::StatusError only for whole-sweep problems (an
  // invalid SweepSpec, or a checkpoint that is unreadable / belongs to a
  // different spec when resuming).
  SweepResult Run(const SweepSpec& spec) const;

  std::vector<SweepResult> RunAll(std::span<const SweepSpec> specs) const;

  const SweepConfig& config() const noexcept { return config_; }

 private:
  SweepConfig config_;
};

// Serialises the deterministic part of a sweep: the grid identity plus
// every cell's engine::AggregateSignature, in grid order.  Bit-identical
// across thread counts, across arena/no-arena runs, across geometry-cache
// on/off runs, across pairing modes, and across fresh-vs-resumed runs.
// A failed cell contributes "cell N failed error=<message>\n" (the attempt
// count is config-dependent, so it stays out of the signature).
std::string SweepSignature(const SweepResult& result);

// Total feasibility/validation violations over all cells (must stay 0).
long long SweepViolationCount(const SweepResult& result);

}  // namespace decaylib::sweep
