// Drives a parameter grid through the batch engine over shared kernel
// arenas.
//
// SweepRunner expands a SweepSpec into its cell grid and runs each cell's
// batch through one engine::BatchRunner.  Two kinds of expensive per-cell
// state live above the grid and are reused across it:
//  * kernels -- per-instance KernelCache matrices are rebuilt inside
//    per-worker sinr::KernelArena slabs that live for the *whole sweep*:
//    same-shape cells (and every instance within a cell) reuse warm storage
//    instead of paying the allocator, and differently sized cells simply
//    re-grow the slabs;
//  * geometry -- one shared engine::GeometryCache keeps a cell's sampled
//    decay spaces, link pairings and measured metricities warm, so a run of
//    consecutive cells with equal GeometryKey (only power_tau / beta /
//    noise / explicit zeta differ) pays instance *generation* once, which
//    is the dominant per-cell cost (docs/performance.md).
//
// Determinism contract, inherited and extended from the batch runner:
//  * every deterministic statistic of every cell is invariant under the
//    worker-thread count (the batch runner's contract),
//  * arena reuse is invisible in the results -- a swept cell's aggregates
//    are bit-identical to the same cell run with per-instance allocation
//    (KernelCache::Build overwrites every entry, so rebuilt slabs hold the
//    same bits as fresh ones), and
//  * geometry reuse and the pairing route are invisible too -- a cached
//    geometry is the bit-identical output of the same BuildGeometry call,
//    and grid/MNN pairing provably reproduces the sort-greedy matching.
// SweepSignature serialises the deterministic part of a whole grid; tests,
// the sweep_runner CLI --smoke gate and bench_e20 assert every invariance.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sinr/kernel.h"
#include "sweep/sweep.h"

namespace decaylib::sweep {

struct SweepConfig {
  int threads = 0;          // per-cell worker pool; 0 = hardware concurrency
  bool reuse_arena = true;  // rebuild kernels in per-worker arenas
  // Share sampled instance geometry (decay space, points, link pairing,
  // measured metricity) across cells whose engine::GeometryKey matches --
  // i.e. cells differing only in power_tau / beta / noise / explicit zeta.
  // Reuse follows grid order, so put non-geometric axes last (fastest).
  bool reuse_geometry = true;
  // Pairing route for instance builds (kSortGreedy = reference A/B arm).
  engine::PairingMode pairing = engine::PairingMode::kAuto;
};

struct SweepCellResult {
  SweepCell cell;
  engine::ScenarioResult result;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepCellResult> cells;  // grid (row-major) order

  // Non-deterministic timing/accounting.
  double wall_ms = 0.0;         // whole-grid wall time
  long long arena_rebuilds = 0; // kernel builds that went through an arena
  long long geometry_builds = 0; // instance geometries sampled fresh
  long long geometry_reuses = 0; // instance geometries served from cache

  double CellsPerSecond() const {
    return wall_ms > 0.0
               ? 1000.0 * static_cast<double>(cells.size()) / wall_ms
               : 0.0;
  }
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = {});

  // Runs every cell of the grid, in grid order, against arenas shared
  // across the whole sweep.
  SweepResult Run(const SweepSpec& spec) const;

  std::vector<SweepResult> RunAll(std::span<const SweepSpec> specs) const;

  const SweepConfig& config() const noexcept { return config_; }

 private:
  SweepConfig config_;
};

// Serialises the deterministic part of a sweep: the grid identity plus
// every cell's engine::AggregateSignature, in grid order.  Bit-identical
// across thread counts, across arena/no-arena runs, across geometry-cache
// on/off runs, and across pairing modes.
std::string SweepSignature(const SweepResult& result);

// Total feasibility/validation violations over all cells (must stay 0).
long long SweepViolationCount(const SweepResult& result);

}  // namespace decaylib::sweep
