// Drives a parameter grid through the batch engine over shared kernel
// arenas.
//
// SweepRunner expands a SweepSpec into its cell grid and runs each cell's
// batch through one engine::BatchRunner.  The expensive part of a cell --
// the per-instance KernelCache matrices -- is rebuilt inside per-worker
// sinr::KernelArena slabs that live for the *whole sweep*: same-shape cells
// (and every instance within a cell) reuse warm storage instead of paying
// the allocator, and differently sized cells simply re-grow the slabs.
//
// Determinism contract, inherited and extended from the batch runner:
//  * every deterministic statistic of every cell is invariant under the
//    worker-thread count (the batch runner's contract), and
//  * arena reuse is invisible in the results -- a swept cell's aggregates
//    are bit-identical to the same cell run with per-instance allocation
//    (KernelCache::Build overwrites every entry, so rebuilt slabs hold the
//    same bits as fresh ones).
// SweepSignature serialises the deterministic part of a whole grid; tests,
// the sweep_runner CLI --smoke gate and bench_e20 assert both invariances.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sinr/kernel.h"
#include "sweep/sweep.h"

namespace decaylib::sweep {

struct SweepConfig {
  int threads = 0;          // per-cell worker pool; 0 = hardware concurrency
  bool reuse_arena = true;  // rebuild kernels in per-worker arenas
};

struct SweepCellResult {
  SweepCell cell;
  engine::ScenarioResult result;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepCellResult> cells;  // grid (row-major) order

  // Non-deterministic timing/accounting.
  double wall_ms = 0.0;         // whole-grid wall time
  long long arena_rebuilds = 0; // kernel builds that went through an arena

  double CellsPerSecond() const {
    return wall_ms > 0.0
               ? 1000.0 * static_cast<double>(cells.size()) / wall_ms
               : 0.0;
  }
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config = {});

  // Runs every cell of the grid, in grid order, against arenas shared
  // across the whole sweep.
  SweepResult Run(const SweepSpec& spec) const;

  std::vector<SweepResult> RunAll(std::span<const SweepSpec> specs) const;

  const SweepConfig& config() const noexcept { return config_; }

 private:
  SweepConfig config_;
};

// Serialises the deterministic part of a sweep: the grid identity plus
// every cell's engine::AggregateSignature, in grid order.  Bit-identical
// across thread counts and across arena/no-arena runs.
std::string SweepSignature(const SweepResult& result);

// Total feasibility/validation violations over all cells (must stay 0).
long long SweepViolationCount(const SweepResult& result);

}  // namespace decaylib::sweep
