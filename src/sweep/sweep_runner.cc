#include "sweep/sweep_runner.h"

// decay-lint: allowlist-file(clock-read) -- per-cell attempt/checkpoint/
// restore timing surfaces (attempt_ms, checkpoint_write_ms,
// resume_restore_ms, wall_ms) are plain clocks by design (PR 7).  Readings
// flow only into report fields; SweepSignature and cell scheduling must
// never consume them (sweep_test's cross-thread-count gates enforce it).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "engine/report.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sweep/checkpoint.h"

namespace decaylib::sweep {

SweepRunner::SweepRunner(SweepConfig config) : config_(std::move(config)) {}

namespace {

using core::Status;
using core::StatusError;

// Registry handles of the sweep layer, resolved once.  Everything here only
// ticks when obs::Enabled(); the SweepResult accounting fields are plain
// wall clock and are populated always.  Catalogue: docs/observability.md.
struct SweepInstruments {
  obs::Counter& cells;
  obs::Counter& cell_attempts;
  obs::Counter& cells_failed;
  obs::Counter& cells_retried;
  obs::Counter& cells_resumed;
  obs::Counter& checkpoint_writes;
  obs::Histogram& cell_ms;
  obs::Histogram& checkpoint_write_ms;

  static SweepInstruments& Get() {
    static SweepInstruments* instruments = [] {
      obs::Registry& registry = obs::Registry::Global();
      return new SweepInstruments{
          registry.GetCounter("sweep.cells"),
          registry.GetCounter("sweep.cell_attempts"),
          registry.GetCounter("sweep.cells_failed"),
          registry.GetCounter("sweep.cells_retried"),
          registry.GetCounter("sweep.cells_resumed"),
          registry.GetCounter("sweep.checkpoint_writes"),
          registry.GetHistogram("sweep.cell_ms"),
          registry.GetHistogram("sweep.checkpoint_write_ms"),
      };
    }();
    return *instruments;
  }
};

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Restored cells come back index-keyed from the sidecar; map them for the
// grid walk.  The sidecar is trusted only after its spec-hash matched.
struct RestoredCells {
  std::vector<const CheckpointCell*> by_index;  // nullptr = not restored

  explicit RestoredCells(std::size_t grid) : by_index(grid, nullptr) {}
};

}  // namespace

SweepResult SweepRunner::Run(const SweepSpec& spec) const {
  // Whole-sweep validation up front: a sweep built from external input
  // fails here with a clean diagnostic instead of cell-by-cell.
  core::ThrowIfError(ValidateSweepSpec(spec));

  SweepResult out;
  out.spec = spec;

  const int threads = engine::ResolveThreads(config_.threads);
  // One arena per worker, shared across every cell of the grid -- and
  // across retries: a failed attempt leaves slabs warm for the next.
  std::vector<sinr::KernelArena> arenas;
  if (config_.reuse_arena) {
    arenas.resize(static_cast<std::size_t>(threads));
  }
  // One geometry cache for the whole grid: cells re-sample only the
  // instances a geometry-axis change actually invalidates.
  engine::GeometryCache geometry;
  geometry.SetGenerations(std::max(1, config_.geometry_generations));

  const auto start = std::chrono::steady_clock::now();
  std::vector<SweepCell> cells = ExpandGrid(spec);

  // Resume: load the sidecar (if any) and index its cells.  A missing file
  // is a fresh start; a corrupt file or one hashed from a different spec is
  // a hard error -- splicing foreign results into the grid would corrupt
  // the signature silently.
  const std::string hash =
      config_.checkpoint_path.empty() ? std::string() : SweepSpecHash(spec);
  SweepCheckpoint restored_doc;
  RestoredCells restored(cells.size());
  if (config_.resume && !config_.checkpoint_path.empty() &&
      FileExists(config_.checkpoint_path)) {
    obs::Span restore_span("resume_restore", nullptr, "sweep");
    const auto restore_start = std::chrono::steady_clock::now();
    core::StatusOr<SweepCheckpoint> loaded =
        LoadCheckpoint(config_.checkpoint_path);
    if (!loaded.ok()) {
      throw StatusError(Status::FailedPrecondition(
          "resume: " + loaded.status().ToString()));
    }
    restored_doc = std::move(*loaded);
    if (restored_doc.spec_hash != hash) {
      throw StatusError(Status::FailedPrecondition(
          "resume: checkpoint " + config_.checkpoint_path +
          " belongs to a different sweep spec (hash " +
          restored_doc.spec_hash + ", expected " + hash + ")"));
    }
    for (const CheckpointCell& cell : restored_doc.cells) {
      if (cell.index >= 0 && cell.index < static_cast<int>(cells.size())) {
        restored.by_index[static_cast<std::size_t>(cell.index)] = &cell;
      }
    }
    out.resume_restore_ms = ElapsedMs(restore_start);
    out.stage_stats.Record("resume_restore", out.resume_restore_ms);
  }

  // The checkpoint being (re)written this run: starts from the restored
  // cells so a resume-of-a-resume keeps accumulating.
  SweepCheckpoint save_doc;
  save_doc.sweep = spec.name;
  save_doc.spec_hash = hash;
  save_doc.grid = static_cast<long long>(cells.size());
  const bool checkpointing = !config_.checkpoint_path.empty();
  int completed_since_save = 0;
  const auto maybe_save = [&](bool force) {
    if (!checkpointing) return;
    if (!force && completed_since_save < std::max(1, config_.checkpoint_every))
      return;
    // Timed separately from cell attempts (CellOutcome::attempt_ms), so
    // checkpointed cells don't report sidecar I/O as batch time.
    obs::Span save_span("checkpoint_write",
                        &SweepInstruments::Get().checkpoint_write_ms, "sweep");
    const auto save_start = std::chrono::steady_clock::now();
    core::ThrowIfError(SaveCheckpoint(config_.checkpoint_path, save_doc));
    const double save_ms = ElapsedMs(save_start);
    out.checkpoint_write_ms += save_ms;
    out.stage_stats.Record("checkpoint_write", save_ms);
    SweepInstruments::Get().checkpoint_writes.Add();
    completed_since_save = 0;
  };

  out.cells.reserve(cells.size());
  int fresh_cells = 0;  // executed (non-restored) cells, for halt_after
  bool halted = false;
  for (SweepCell& cell : cells) {
    const int index = cell.index;

    // Restored cell: rebuild its ScenarioResult from the sidecar.  Only
    // the aggregate and instance count are stored -- exactly the
    // deterministic surface SweepSignature reads.
    if (const CheckpointCell* rc =
            restored.by_index[static_cast<std::size_t>(index)]) {
      engine::ScenarioResult result;
      result.spec = cell.spec;
      result.instances.resize(static_cast<std::size_t>(rc->instances));
      result.aggregate = rc->aggregate;
      CellOutcome outcome;
      outcome.attempts = rc->attempts;
      outcome.resumed = true;
      ++out.cells_resumed;
      SweepInstruments::Get().cells_resumed.Add();
      if (rc->attempts > 1) ++out.cells_retried;
      save_doc.cells.push_back(*rc);
      out.cells.push_back({std::move(cell), std::move(result), outcome});
      continue;
    }

    if (halted) break;

    CellOutcome outcome;
    engine::ScenarioResult result;
    obs::Span cell_span("cell." + cell.spec.name,
                        &SweepInstruments::Get().cell_ms, "cell");
    SweepInstruments::Get().cells.Add();
    for (int attempt = 1;; ++attempt) {
      outcome.attempts = attempt;
      obs::Span attempt_span("cell_attempt", nullptr, "cell");
      SweepInstruments::Get().cell_attempts.Add();
      const auto attempt_start = std::chrono::steady_clock::now();
      // Per-cell BatchRunner: the fault plan arms instance 0 of the
      // targeted cell for this attempt only, and a throwing cell cannot
      // leave state behind in the runner (arenas and the geometry cache
      // are overwrite-on-use, so a half-run attempt is invisible).
      engine::BatchConfig batch;
      batch.threads = threads;
      batch.tasks = spec.tasks;
      batch.arenas = std::span<sinr::KernelArena>(arenas);
      batch.geometry = config_.reuse_geometry ? &geometry : nullptr;
      batch.pairing = config_.pairing;
      if (config_.fault.Trips(index, attempt)) {
        batch.fault_instance = 0;
        batch.fault_message = "injected fault: cell " + std::to_string(index) +
                              " attempt " + std::to_string(attempt);
      }
      bool permanent = false;
      try {
        result = engine::BatchRunner(batch).RunOne(cell.spec);
        const Status health = engine::AggregateHealth(result);
        if (health.ok()) {
          outcome.ok = true;
          outcome.error.clear();
        } else {
          // A poisoned aggregate is deterministic in the cell's inputs;
          // retrying replays the same NaN.
          outcome.ok = false;
          outcome.error = health.ToString();
          permanent = true;
        }
      } catch (const StatusError& e) {
        outcome.ok = false;
        outcome.error = e.status().ToString();
        permanent = e.status().code() == core::StatusCode::kInvalidArgument;
      } catch (const std::exception& e) {
        outcome.ok = false;
        outcome.error = e.what();
      } catch (...) {
        outcome.ok = false;
        outcome.error = "unknown exception";
      }
      // attempt_ms is the *final* attempt's wall time: overwritten each
      // round, so a retried cell reports the run that produced its result.
      // Checkpoint writes happen outside this window (see maybe_save).
      outcome.attempt_ms = ElapsedMs(attempt_start);
      outcome.total_attempt_ms += outcome.attempt_ms;
      if (outcome.ok || permanent ||
          attempt >= std::max(1, config_.max_attempts)) {
        break;
      }
    }

    if (outcome.attempts > 1) {
      ++out.cells_retried;
      SweepInstruments::Get().cells_retried.Add();
    }
    if (outcome.ok) out.stage_stats.Merge(result.stage_stats);
    if (!outcome.ok) {
      ++out.cells_failed;
      SweepInstruments::Get().cells_failed.Add();
      result = engine::ScenarioResult{};
      result.spec = cell.spec;
    } else if (checkpointing) {
      CheckpointCell saved;
      saved.index = index;
      saved.attempts = outcome.attempts;
      saved.instances = static_cast<int>(result.instances.size());
      saved.aggregate = result.aggregate;
      save_doc.cells.push_back(std::move(saved));
      ++completed_since_save;
      maybe_save(false);
    }
    out.cells.push_back({std::move(cell), std::move(result), outcome});

    ++fresh_cells;
    if (config_.halt_after_cells > 0 &&
        fresh_cells >= config_.halt_after_cells) {
      // Simulated kill: later restored cells still append (they cost
      // nothing), but no further cell executes.
      halted = true;
    }
  }
  maybe_save(true);

  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const sinr::KernelArena& arena : arenas) {
    out.arena_rebuilds += arena.rebuilds();
    out.arena_warm_skips += arena.warm_skips();
  }
  out.geometry_builds = geometry.builds();
  out.geometry_reuses = geometry.reuses();
  out.geometry_generation_hits = geometry.generation_hits();
  out.geometry_evictions = geometry.evictions();
  return out;
}

std::vector<SweepResult> SweepRunner::RunAll(
    std::span<const SweepSpec> specs) const {
  std::vector<SweepResult> results;
  results.reserve(specs.size());
  for (const SweepSpec& spec : specs) results.push_back(Run(spec));
  return results;
}

std::string SweepSignature(const SweepResult& result) {
  std::string out = "sweep " + result.spec.name + " axes=";
  for (std::size_t a = 0; a < result.spec.axes.size(); ++a) {
    const SweepAxis& axis = result.spec.axes[a];
    out += (a == 0 ? "" : ",") + axis.field + "[" +
           std::to_string(axis.values.size()) + "]";
  }
  out += " cells=" + std::to_string(result.cells.size()) + "\n";
  for (const SweepCellResult& cell : result.cells) {
    char buf[64];
    if (!cell.outcome.ok) {
      // Attempt counts are config-dependent (retry budget), so only the
      // failure itself and its message enter the signature.
      std::snprintf(buf, sizeof(buf), "cell %d failed", cell.cell.index);
      out += buf;
      out += " error=" + cell.outcome.error + "\n";
      continue;
    }
    std::snprintf(buf, sizeof(buf), "cell %d\n", cell.cell.index);
    out += buf;
    out += engine::AggregateSignature(std::span(&cell.result, 1));
  }
  return out;
}

long long SweepViolationCount(const SweepResult& result) {
  long long violations = 0;
  for (const SweepCellResult& cell : result.cells) {
    if (!cell.outcome.ok) continue;
    violations += engine::ViolationCount(std::span(&cell.result, 1));
  }
  return violations;
}

}  // namespace decaylib::sweep
