#include "sweep/sweep_runner.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "engine/report.h"

namespace decaylib::sweep {

SweepRunner::SweepRunner(SweepConfig config) : config_(std::move(config)) {}

SweepResult SweepRunner::Run(const SweepSpec& spec) const {
  SweepResult out;
  out.spec = spec;

  const int threads = engine::ResolveThreads(config_.threads);
  // One arena per worker, shared across every cell of the grid.
  std::vector<sinr::KernelArena> arenas;
  if (config_.reuse_arena) {
    arenas.resize(static_cast<std::size_t>(threads));
  }
  // One geometry cache for the whole grid: cells re-sample only the
  // instances a geometry-axis change actually invalidates.
  engine::GeometryCache geometry;

  engine::BatchConfig batch;
  batch.threads = threads;
  batch.tasks = spec.tasks;
  batch.arenas = std::span<sinr::KernelArena>(arenas);
  batch.geometry = config_.reuse_geometry ? &geometry : nullptr;
  batch.pairing = config_.pairing;
  const engine::BatchRunner runner(batch);

  const auto start = std::chrono::steady_clock::now();
  std::vector<SweepCell> cells = ExpandGrid(spec);
  out.cells.reserve(cells.size());
  for (SweepCell& cell : cells) {
    engine::ScenarioResult result = runner.RunOne(cell.spec);
    out.cells.push_back({std::move(cell), std::move(result)});
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const sinr::KernelArena& arena : arenas) {
    out.arena_rebuilds += arena.rebuilds();
  }
  out.geometry_builds = geometry.builds();
  out.geometry_reuses = geometry.reuses();
  return out;
}

std::vector<SweepResult> SweepRunner::RunAll(
    std::span<const SweepSpec> specs) const {
  std::vector<SweepResult> results;
  results.reserve(specs.size());
  for (const SweepSpec& spec : specs) results.push_back(Run(spec));
  return results;
}

std::string SweepSignature(const SweepResult& result) {
  std::string out = "sweep " + result.spec.name + " axes=";
  for (std::size_t a = 0; a < result.spec.axes.size(); ++a) {
    const SweepAxis& axis = result.spec.axes[a];
    out += (a == 0 ? "" : ",") + axis.field + "[" +
           std::to_string(axis.values.size()) + "]";
  }
  out += " cells=" + std::to_string(result.cells.size()) + "\n";
  for (const SweepCellResult& cell : result.cells) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "cell %d\n", cell.cell.index);
    out += buf;
    out += engine::AggregateSignature(std::span(&cell.result, 1));
  }
  return out;
}

long long SweepViolationCount(const SweepResult& result) {
  long long violations = 0;
  for (const SweepCellResult& cell : result.cells) {
    violations += engine::ViolationCount(std::span(&cell.result, 1));
  }
  return violations;
}

}  // namespace decaylib::sweep
