#include "sweep/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "io/json.h"

namespace decaylib::sweep {

namespace {

using core::Status;
using core::StatusOr;
using io::Json;

std::string Fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// FNV-1a, 64-bit: stable across platforms and trivially reimplementable if
// the sidecar format is ever read by another tool.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ULL;

  void Bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 0x100000001b3ULL;
    }
  }
  void Str(const std::string& s) {
    Bytes(s.data(), s.size());
    Bytes("\x1f", 1);  // field separator so "ab"+"c" != "a"+"bc"
  }
  void Int(long long v) { Str(std::to_string(v)); }
  void Dbl(double v) { Str(Fmt17(v)); }
};

}  // namespace

std::string SweepSpecHash(const SweepSpec& spec) {
  Fnv1a h;
  h.Str(spec.name);
  const engine::ScenarioSpec& b = spec.base;
  h.Str(b.name);
  h.Str(b.topology);
  h.Int(b.links);
  h.Int(b.instances);
  h.Dbl(b.alpha);
  h.Dbl(b.sigma_db);
  h.Int(b.symmetric_shadowing ? 1 : 0);
  h.Dbl(b.power_tau);
  h.Dbl(b.beta);
  h.Dbl(b.noise);
  h.Dbl(b.zeta);
  h.Int(static_cast<long long>(b.seed));
  h.Int(b.hotspots);
  h.Dbl(b.cluster_sigma);
  h.Dbl(b.corridor_width);
  h.Dbl(b.dynamics.lambda);
  h.Int(static_cast<long long>(b.dynamics.scheduler));
  h.Int(b.dynamics.queue_slots);
  h.Dbl(b.dynamics.regret_learning_rate);
  h.Dbl(b.dynamics.regret_penalty);
  h.Int(b.dynamics.regret_rounds);
  h.Int(static_cast<long long>(spec.axes.size()));
  for (const SweepAxis& axis : spec.axes) {
    h.Str(axis.field);
    h.Int(static_cast<long long>(axis.values.size()));
    for (const double v : axis.values) h.Dbl(v);
  }
  h.Int(static_cast<long long>(spec.tasks.size()));
  for (const engine::TaskKind task : spec.tasks) {
    h.Int(static_cast<long long>(task));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h.state));
  return buf;
}

std::string CheckpointToJson(const SweepCheckpoint& checkpoint) {
  Json doc = Json::Object();
  doc.Set("sweep", Json::String(checkpoint.sweep));
  doc.Set("spec_hash", Json::String(checkpoint.spec_hash));
  doc.Set("grid", Json::Number(static_cast<double>(checkpoint.grid)));
  Json cells = Json::Array();
  for (const CheckpointCell& cell : checkpoint.cells) {
    Json c = Json::Object();
    c.Set("index", Json::Number(cell.index));
    c.Set("attempts", Json::Number(cell.attempts));
    c.Set("instances", Json::Number(cell.instances));
    Json aggregate = Json::Array();
    for (const auto& [name, m] : cell.aggregate) {
      Json entry = Json::Object();
      entry.Set("name", Json::String(name));
      // %.17g strings, not JSON numbers: strtod restores every double
      // bit-exactly, including the +/-inf sentinels of count-0 summaries.
      entry.Set("sum", Json::String(Fmt17(m.sum)));
      entry.Set("min", Json::String(Fmt17(m.min)));
      entry.Set("max", Json::String(Fmt17(m.max)));
      entry.Set("count", Json::Number(static_cast<double>(m.count)));
      aggregate.Append(std::move(entry));
    }
    c.Set("aggregate", std::move(aggregate));
    cells.Append(std::move(c));
  }
  doc.Set("cells", std::move(cells));
  return doc.Dump();
}

namespace {

Status FieldError(const std::string& what) {
  return Status::IoError("checkpoint: " + what);
}

StatusOr<double> ReadDouble17(const Json& obj, const std::string& key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || v->kind() != Json::Kind::kString) {
    return FieldError("missing string field '" + key + "'");
  }
  const std::string& s = v->AsString();
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return FieldError("unparseable double '" + s + "' in '" + key + "'");
  }
  return value;
}

StatusOr<double> ReadNumber(const Json& obj, const std::string& key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || v->kind() != Json::Kind::kNumber) {
    return FieldError("missing number field '" + key + "'");
  }
  return v->AsNumber();
}

StatusOr<std::string> ReadString(const Json& obj, const std::string& key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || v->kind() != Json::Kind::kString) {
    return FieldError("missing string field '" + key + "'");
  }
  return v->AsString();
}

}  // namespace

StatusOr<SweepCheckpoint> CheckpointFromJson(const std::string& text) {
  StatusOr<Json> parsed = Json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const Json& doc = *parsed;
  if (!doc.is_object()) return FieldError("document is not an object");

  SweepCheckpoint out;
  if (StatusOr<std::string> s = ReadString(doc, "sweep"); s.ok()) {
    out.sweep = *s;
  } else {
    return s.status();
  }
  if (StatusOr<std::string> s = ReadString(doc, "spec_hash"); s.ok()) {
    out.spec_hash = *s;
  } else {
    return s.status();
  }
  if (StatusOr<double> g = ReadNumber(doc, "grid"); g.ok()) {
    out.grid = static_cast<long long>(*g);
  } else {
    return g.status();
  }
  const Json* cells = doc.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return FieldError("missing 'cells' array");
  }
  for (const Json& c : cells->Items()) {
    if (!c.is_object()) return FieldError("cell is not an object");
    CheckpointCell cell;
    if (StatusOr<double> v = ReadNumber(c, "index"); v.ok()) {
      cell.index = static_cast<int>(*v);
    } else {
      return v.status();
    }
    if (StatusOr<double> v = ReadNumber(c, "attempts"); v.ok()) {
      cell.attempts = static_cast<int>(*v);
    } else {
      return v.status();
    }
    if (StatusOr<double> v = ReadNumber(c, "instances"); v.ok()) {
      cell.instances = static_cast<int>(*v);
    } else {
      return v.status();
    }
    const Json* aggregate = c.Find("aggregate");
    if (aggregate == nullptr || !aggregate->is_array()) {
      return FieldError("cell missing 'aggregate' array");
    }
    for (const Json& e : aggregate->Items()) {
      if (!e.is_object()) return FieldError("aggregate entry not an object");
      std::string name;
      engine::MetricSummary m;
      if (StatusOr<std::string> s = ReadString(e, "name"); s.ok()) {
        name = *s;
      } else {
        return s.status();
      }
      if (StatusOr<double> v = ReadDouble17(e, "sum"); v.ok()) {
        m.sum = *v;
      } else {
        return v.status();
      }
      if (StatusOr<double> v = ReadDouble17(e, "min"); v.ok()) {
        m.min = *v;
      } else {
        return v.status();
      }
      if (StatusOr<double> v = ReadDouble17(e, "max"); v.ok()) {
        m.max = *v;
      } else {
        return v.status();
      }
      if (StatusOr<double> v = ReadNumber(e, "count"); v.ok()) {
        m.count = static_cast<long long>(*v);
      } else {
        return v.status();
      }
      cell.aggregate.emplace_back(std::move(name), m);
    }
    out.cells.push_back(std::move(cell));
  }
  return out;
}

Status SaveCheckpoint(const std::string& path,
                      const SweepCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    out << CheckpointToJson(checkpoint) << "\n";
    out.flush();
    if (!out) return Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

StatusOr<SweepCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CheckpointFromJson(buffer.str());
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

}  // namespace decaylib::sweep
