#include "sweep/sweep.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include "core/check.h"

namespace decaylib::sweep {

namespace {

using core::Status;

struct FieldEntry {
  const char* name;
  Status (*apply)(engine::ScenarioSpec&, double);
  bool integral;
};

Status CheckIntegral(double value, const char* field) {
  if (!(std::isfinite(value) && value == std::floor(value))) {
    return Status::InvalidArgument(std::string(field) +
                                   ": integer sweep field needs an integral "
                                   "value, got " +
                                   FormatAxisValue(value));
  }
  return Status::Ok();
}

const std::vector<FieldEntry>& FieldTable() {
  static const std::vector<FieldEntry> table = {
      {"links",
       [](engine::ScenarioSpec& s, double v) {
         if (Status st = CheckIntegral(v, "links"); !st.ok()) return st;
         if (v < 1.0) {
           return Status::InvalidArgument("links axis values must be >= 1");
         }
         s.links = static_cast<int>(v);
         return Status::Ok();
       },
       true},
      {"instances",
       [](engine::ScenarioSpec& s, double v) {
         if (Status st = CheckIntegral(v, "instances"); !st.ok()) return st;
         if (v < 1.0) {
           return Status::InvalidArgument(
               "instances axis values must be >= 1");
         }
         s.instances = static_cast<int>(v);
         return Status::Ok();
       },
       true},
      {"alpha",
       [](engine::ScenarioSpec& s, double v) {
         s.alpha = v;
         return Status::Ok();
       },
       false},
      {"sigma_db",
       [](engine::ScenarioSpec& s, double v) {
         s.sigma_db = v;
         return Status::Ok();
       },
       false},
      {"power_tau",
       [](engine::ScenarioSpec& s, double v) {
         s.power_tau = v;
         return Status::Ok();
       },
       false},
      {"beta",
       [](engine::ScenarioSpec& s, double v) {
         s.beta = v;
         return Status::Ok();
       },
       false},
      {"noise",
       [](engine::ScenarioSpec& s, double v) {
         s.noise = v;
         return Status::Ok();
       },
       false},
      {"zeta",
       [](engine::ScenarioSpec& s, double v) {
         s.zeta = v;
         return Status::Ok();
       },
       false},
      // Dynamics knobs (TaskKind::kQueue / kRegret).  Both are
      // non-geometric, so a trailing lambda or penalty axis reuses one
      // sampled geometry generation across its whole row.
      {"lambda",
       [](engine::ScenarioSpec& s, double v) {
         if (!(v >= 0.0 && v <= 1.0)) {
           return Status::InvalidArgument(
               "lambda axis values are per-slot Bernoulli probabilities in "
               "[0, 1]");
         }
         s.dynamics.lambda = v;
         return Status::Ok();
       },
       false},
      {"regret_penalty",
       [](engine::ScenarioSpec& s, double v) {
         if (!(v >= 0.0)) {
           return Status::InvalidArgument(
               "regret_penalty axis values must be >= 0");
         }
         s.dynamics.regret_penalty = v;
         return Status::Ok();
       },
       false},
      // Certified error bound of the far-field kernel (kernel_mode is set
      // on the base spec; 0 means every query exact).  Non-geometric, like
      // the dynamics knobs: an epsilon row reuses one sampled geometry.
      {"farfield_epsilon",
       [](engine::ScenarioSpec& s, double v) {
         if (!(std::isfinite(v) && v >= 0.0)) {
           return Status::InvalidArgument(
               "farfield_epsilon axis values must be >= 0 and finite");
         }
         s.farfield_epsilon = v;
         return Status::Ok();
       },
       false},
  };
  return table;
}

const FieldEntry* FindField(const std::string& field) {
  for (const FieldEntry& entry : FieldTable()) {
    if (field == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::string FormatAxisValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::vector<std::string> SweepableFields() {
  std::vector<std::string> names;
  names.reserve(FieldTable().size());
  for (const FieldEntry& entry : FieldTable()) names.push_back(entry.name);
  return names;
}

bool IsSweepableField(const std::string& field) {
  return FindField(field) != nullptr;
}

core::Status ApplyAxisValue(engine::ScenarioSpec& spec,
                            const std::string& field, double value) {
  const FieldEntry* entry = FindField(field);
  if (entry == nullptr) {
    std::string msg = "unknown sweep field '" + field + "' (sweepable:";
    for (const std::string& name : SweepableFields()) msg += " " + name;
    msg += ")";
    return Status::InvalidArgument(msg);
  }
  return entry->apply(spec, value);
}

core::Status ValidateSweepSpec(const SweepSpec& spec) {
  if (Status st = engine::ValidateScenarioSpec(spec.base); !st.ok()) {
    return Status::InvalidArgument("base spec: " + st.message());
  }
  long long size = 1;
  for (const SweepAxis& axis : spec.axes) {
    if (axis.values.empty()) {
      return Status::InvalidArgument("axis '" + axis.field +
                                     "' needs at least one value");
    }
    for (const double value : axis.values) {
      // Each value must both land in the field and leave a valid spec;
      // applying to a copy of the base catches e.g. beta=0.5 or alpha=-1
      // before a worker ever sees the cell.
      engine::ScenarioSpec probe = spec.base;
      if (Status st = ApplyAxisValue(probe, axis.field, value); !st.ok()) {
        return st;
      }
      if (Status st = engine::ValidateScenarioSpec(probe); !st.ok()) {
        return Status::InvalidArgument("axis '" + axis.field +
                                       "' value " + FormatAxisValue(value) +
                                       ": " + st.message());
      }
    }
    size *= static_cast<long long>(axis.values.size());
    if (size > std::numeric_limits<int>::max()) {
      return Status::InvalidArgument(
          "sweep grid exceeds the flat cell-index range");
    }
  }
  return Status::Ok();
}

long long GridSize(const SweepSpec& spec) {
  long long size = 1;
  for (const SweepAxis& axis : spec.axes) {
    DL_CHECK(!axis.values.empty(), "sweep axis needs at least one value");
    size *= static_cast<long long>(axis.values.size());
    // SweepCell::index is an int; keep the flat index representable.
    DL_CHECK(size <= std::numeric_limits<int>::max(),
             "sweep grid exceeds the flat cell-index range");
  }
  return size;
}

std::vector<SweepCell> ExpandGrid(const SweepSpec& spec) {
  for (const SweepAxis& axis : spec.axes) {
    DL_CHECK(IsSweepableField(axis.field), "unknown sweep axis field");
    DL_CHECK(!axis.values.empty(), "sweep axis needs at least one value");
  }
  const long long size = GridSize(spec);
  const std::size_t rank = spec.axes.size();

  std::vector<SweepCell> cells;
  cells.reserve(static_cast<std::size_t>(size));
  std::vector<int> coords(rank, 0);
  for (long long index = 0; index < size; ++index) {
    SweepCell cell;
    cell.index = static_cast<int>(index);
    cell.coords = coords;
    cell.spec = spec.base;
    std::string suffix;
    for (std::size_t a = 0; a < rank; ++a) {
      const SweepAxis& axis = spec.axes[a];
      const double value =
          axis.values[static_cast<std::size_t>(coords[a])];
      const core::Status applied = ApplyAxisValue(cell.spec, axis.field, value);
      // Callers gate external input through ValidateSweepSpec; by the time
      // a grid expands, a bad binding is a programmer error.
      DL_CHECK(applied.ok(), "ExpandGrid: invalid axis binding");
      suffix +=
          (a == 0 ? "/" : ",") + axis.field + "=" + FormatAxisValue(value);
    }
    cell.spec.name = spec.base.name + suffix;
    cells.push_back(std::move(cell));

    // Row-major odometer: the last axis varies fastest.
    for (std::size_t a = rank; a-- > 0;) {
      if (++coords[a] < static_cast<int>(spec.axes[a].values.size())) break;
      coords[a] = 0;
    }
  }
  return cells;
}

std::vector<SweepSpec> BuiltinSweeps() {
  std::vector<SweepSpec> sweeps;

  // The paper's headline curve: capacity and schedule length as the decay
  // exponent hardens, at two deployment sizes.
  {
    SweepSpec sweep;
    sweep.name = "capacity_vs_alpha";
    sweep.base.name = "capacity_vs_alpha";
    sweep.base.topology = "uniform";
    sweep.base.links = 32;
    sweep.base.instances = 4;
    sweep.base.seed = 1101;
    sweep.axes = {{"links", {24, 48}}, {"alpha", {2.5, 3.0, 3.5, 4.0}}};
    sweeps.push_back(std::move(sweep));
  }

  // The Theorem 3/6 question made a chart: how much capacity does arbitrary
  // power control buy over uniform power, as the oblivious power policy and
  // the decay exponent vary.
  {
    SweepSpec sweep;
    sweep.name = "power_control_gap";
    sweep.base.name = "power_control_gap";
    sweep.base.topology = "uniform";
    sweep.base.links = 32;
    sweep.base.instances = 4;
    sweep.base.seed = 2202;
    // Geometry axis (alpha) outermost, power policy fastest: the whole
    // power_tau row of a cell reuses one sampled geometry (GeometryCache).
    sweep.axes = {{"alpha", {2.5, 3.5}}, {"power_tau", {0.0, 0.5, 1.0}}};
    sweep.tasks = {engine::TaskKind::kAlgorithm1,
                   engine::TaskKind::kGreedyBaseline,
                   engine::TaskKind::kPowerControl};
    sweeps.push_back(std::move(sweep));
  }

  // Robustness frontier: feasibility under growing ambient noise and
  // shadowing spread (clustered layout, where hotspots concentrate
  // interference).
  {
    SweepSpec sweep;
    sweep.name = "noise_frontier";
    sweep.base.name = "noise_frontier";
    sweep.base.topology = "clustered";
    sweep.base.links = 32;
    sweep.base.instances = 4;
    sweep.base.zeta = 4.0;  // headroom for the shadowed cells
    sweep.base.seed = 3303;
    // Shadowing spread re-samples geometry, noise does not; keeping noise
    // fastest lets each sigma_db row share its sampled instances.
    sweep.axes = {{"sigma_db", {0.0, 6.0}}, {"noise", {0.0, 0.01, 0.05}}};
    sweeps.push_back(std::move(sweep));
  }

  // The stability region made a chart: queue throughput and the backlog-
  // growth instability indicator as the per-link arrival rate climbs, at
  // two decay exponents, with the regret game's tail successes alongside
  // (the transfer line's [2, 3, 44] + Asgeirsson-Mitra, over cached
  // kernels).  Capacity context comes from the greedy baseline.
  {
    SweepSpec sweep;
    sweep.name = "stability_region";
    sweep.base.name = "stability_region";
    sweep.base.topology = "uniform";
    sweep.base.links = 24;
    sweep.base.instances = 4;
    sweep.base.seed = 4404;
    sweep.base.dynamics.queue_slots = 600;
    sweep.base.dynamics.regret_rounds = 600;
    // Geometry axis (alpha) outermost, lambda fastest: the whole arrival-
    // rate row of a cell reuses one sampled geometry (GeometryCache).
    sweep.axes = {{"alpha", {2.5, 3.5}},
                  {"lambda", {0.02, 0.05, 0.1, 0.2, 0.4}}};
    sweep.tasks = {engine::TaskKind::kGreedyBaseline, engine::TaskKind::kQueue,
                   engine::TaskKind::kRegret};
    sweeps.push_back(std::move(sweep));
  }

  return sweeps;
}

std::optional<SweepSpec> FindBuiltinSweep(const std::string& name) {
  for (SweepSpec& sweep : BuiltinSweeps()) {
    if (sweep.name == name) return std::move(sweep);
  }
  return std::nullopt;
}

}  // namespace decaylib::sweep
