// Parameter-grid sweeps over the scenario engine.
//
// The paper's experiments are sweeps: capacity, scheduling length and
// feasibility curves as the decay exponent, link count, noise and power
// policy vary.  A SweepSpec describes such an experiment as pure data: one
// base engine::ScenarioSpec plus a list of axes, each naming a sweepable
// spec field and the values it takes.  ExpandGrid unfolds the cross-product
// into a deterministic, row-major grid of cells (the last axis varies
// fastest), each cell being a fully resolved ScenarioSpec whose name
// records its coordinates -- so a cell inherits every determinism guarantee
// of BuildInstance, and the whole grid is reproducible from the SweepSpec
// alone, independent of threads, machines or runs.
//
// The layering follows the kernelization discipline of the related
// H-graph/kernel papers (precompute once, query many times): the expensive
// shared state -- kernel matrix slabs, via sinr::KernelArena -- lives above
// the grid and is reused across every cell (sweep_runner.h), while the
// cells themselves stay pure data.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/batch_runner.h"

namespace decaylib::sweep {

// One axis of the grid: a sweepable ScenarioSpec field plus its values, in
// sweep order.  Integer fields (links, instances) take integral doubles.
struct SweepAxis {
  std::string field;
  std::vector<double> values;
};

// Pure-data description of a parameter-grid experiment.
struct SweepSpec {
  std::string name;
  engine::ScenarioSpec base;
  std::vector<SweepAxis> axes;  // cross-product, last axis fastest
  std::vector<engine::TaskKind> tasks = engine::AllTasks();
};

// The ScenarioSpec fields an axis may name, in canonical order:
// links, instances, alpha, sigma_db, power_tau, beta, noise, zeta,
// lambda, regret_penalty (these two write spec.dynamics), and
// farfield_epsilon (the far-field kernel's certified error bound).
std::vector<std::string> SweepableFields();
bool IsSweepableField(const std::string& field);

// Writes one axis value into the spec.  Rejects an unknown field, a
// non-integral value for an integer field, or an out-of-range value as
// kInvalidArgument (the spec is untouched in that case) -- axis bindings
// are runtime input (CLI flags, sweep files), not programmer state.
core::Status ApplyAxisValue(engine::ScenarioSpec& spec,
                            const std::string& field, double value);

// Full runtime validation of a sweep description: the base spec
// (engine::ValidateScenarioSpec), every axis (known field, non-empty
// values, each value applicable to the base and yielding a valid spec),
// and grid-size representability.  Callers that expand or run a sweep
// built from external input should gate on this; ExpandGrid itself keeps
// DL_CHECK backstops only.
core::Status ValidateSweepSpec(const SweepSpec& spec);

// Canonical "%g" rendering of an axis value, shared by cell names and the
// report/CSV axis columns so they always agree.
std::string FormatAxisValue(double value);

// One resolved grid cell.
struct SweepCell {
  int index = 0;              // flat row-major index
  std::vector<int> coords;    // per-axis value index
  engine::ScenarioSpec spec;  // base with the axis values applied
};

// Number of cells (product of axis lengths; 1 for an axis-free sweep).
long long GridSize(const SweepSpec& spec);

// Unfolds the grid.  Deterministic in the spec; cell specs are named
// "<base>/<field>=<value>,..." so reports and signatures identify cells.
std::vector<SweepCell> ExpandGrid(const SweepSpec& spec);

// Named sweep presets shared by the sweep_runner CLI and the benches.
std::vector<SweepSpec> BuiltinSweeps();
std::optional<SweepSpec> FindBuiltinSweep(const std::string& name);

}  // namespace decaylib::sweep
