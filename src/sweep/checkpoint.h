// Checkpoint/resume sidecars for sweep runs.
//
// A long sweep that dies -- machine preemption, a crash in one cell --
// should not forfeit the cells it already finished.  SaveCheckpoint writes
// a JSON sidecar holding the sweep's identity (a hash of the full
// SweepSpec) plus every *completed, healthy* cell's deterministic outcome:
// its flat grid index, attempt count, instance count, and the full
// per-metric aggregate (sum/min/max/count).  LoadCheckpoint reads it back;
// SweepRunner::Run with SweepConfig::resume skips the recorded cells and
// restores their aggregates bit-exactly, so a resumed run's SweepSignature
// is byte-identical to an uninterrupted one at any thread count.
//
// Bit-exactness rests on two choices: sum/min/max are serialised as %.17g
// *strings* (strtod round-trips every double exactly, including the
// +/-inf sentinels of a count-0 summary, which JSON numbers cannot carry),
// and only cells whose AggregateHealth passed are stored, so a restore can
// never resurrect a poisoned aggregate.  Failed cells are deliberately not
// recorded: a resume retries them from scratch.
//
// Writes are atomic (tmp file + rename): the sidecar is either the old
// complete document or the new one, never a torn mix.  A missing file is
// not an error for resume (fresh start); a malformed file or a spec-hash
// mismatch is kFailedPrecondition -- resuming someone else's grid would
// silently splice wrong results into the signature.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "engine/batch_runner.h"
#include "sweep/sweep.h"

namespace decaylib::sweep {

// One completed cell as stored in / restored from a sidecar.
struct CheckpointCell {
  int index = 0;      // flat row-major grid index
  int attempts = 1;   // attempts the cell took when it first completed
  int instances = 0;  // instance count (restores ScenarioResult::instances)
  std::vector<std::pair<std::string, engine::MetricSummary>> aggregate;
};

struct SweepCheckpoint {
  std::string sweep;      // SweepSpec::name, informational
  std::string spec_hash;  // SweepSpecHash of the owning spec
  long long grid = 0;     // GridSize at save time
  std::vector<CheckpointCell> cells;  // ascending by index
};

// Stable 64-bit hex digest over the canonical serialisation of a SweepSpec
// (name, every base field including dynamics, axes with %.17g values,
// task list).  Two specs hash equal iff a checkpoint of one is safe to
// resume under the other.
std::string SweepSpecHash(const SweepSpec& spec);

// Serialises/parses the sidecar document itself (exposed for tests).
std::string CheckpointToJson(const SweepCheckpoint& checkpoint);
core::StatusOr<SweepCheckpoint> CheckpointFromJson(const std::string& text);

// Atomic write (path + ".tmp", then rename).  kIoError on filesystem
// failure.
core::Status SaveCheckpoint(const std::string& path,
                            const SweepCheckpoint& checkpoint);

// Reads a sidecar back.  kIoError when the file cannot be read or parsed;
// callers distinguish "no file yet" themselves (FileExists below) since a
// fresh resume is not an error.
core::StatusOr<SweepCheckpoint> LoadCheckpoint(const std::string& path);

bool FileExists(const std::string& path);

}  // namespace decaylib::sweep
