// Report sinks for parameter-grid sweeps: per-cell and per-axis frontier
// tables for humans, CSV (io/csv) for plotting, and BENCH_<id>.json in the
// bench_util.h-compatible record format for the perf-trajectory tooling.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sweep/sweep_runner.h"

namespace decaylib::sweep {

// Per-cell table (axis coordinates + headline means) followed by one
// frontier table per axis: for each axis value, the mean of each headline
// metric marginalised over every other axis -- the 1-D curves the paper
// plots, read straight off the grid.
void PrintSweepReport(const SweepResult& result);

// CSV export: one row per cell.  Columns: sweep, cell, one column per axis
// field, links/instances context columns (skipped when an axis already
// carries them -- no duplicate header names), then "<metric>_mean" for
// every aggregate metric observed in the grid (first-seen order, stable
// across runs).
std::vector<std::string> SweepCsvHeader(const SweepResult& result);
std::vector<std::vector<std::string>> SweepCsvRows(const SweepResult& result);
bool WriteSweepCsvFile(const SweepResult& result, const std::string& path);

// Writes BENCH_<id>.json over the flattened cell results (one phase triple
// per cell, plus the "scenarios" aggregate array), exactly the
// engine::WriteJsonReport schema-v2 format (obs/bench_harness.h).
bool WriteSweepJsonReport(const std::string& id,
                          std::span<const SweepResult> results);

}  // namespace decaylib::sweep
