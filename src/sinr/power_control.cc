#include "sinr/power_control.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace decaylib::sinr {

namespace {

// The Foschini-Miljanic loop over a prebuilt normalised-gain matrix B
// (row-major k x k, flat: the loop runs per admitted link per sweep cell,
// so the matrix avoids per-row allocations and indirection) and constant
// term c.  Both the naive and the cached front ends fill (B, c)
// entry-by-entry with the identical floating-point expression and then call
// this, so the two paths return bit-identical results by construction.
PowerControlResult RunFixedPoint(const std::vector<double>& B,
                                 const std::vector<double>& c, double noise,
                                 int max_iterations, double tol) {
  PowerControlResult result;
  const std::size_t k = c.size();
  std::vector<double> p(k, 1.0);
  std::vector<double> next(k, 0.0);
  double growth = 0.0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    double max_next = 0.0;
    double max_rel_change = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      double acc = c[i];
      const double* row = B.data() + i * k;
      for (std::size_t j = 0; j < k; ++j) acc += row[j] * p[j];
      next[i] = acc;
      max_next = std::max(max_next, acc);
      if (p[i] > 0.0) {
        max_rel_change = std::max(max_rel_change,
                                  std::abs(acc - p[i]) / std::max(p[i], 1e-300));
      }
    }
    if (max_next == 0.0) {
      // No interference and no noise at all: any positive power works.
      result.feasible = true;
      result.power.assign(k, 1.0);
      result.spectral_radius_estimate = 0.0;
      break;
    }
    growth = max_next / *std::max_element(p.begin(), p.end());
    result.spectral_radius_estimate = growth;
    if (noise > 0.0) {
      // Affine iteration: converges iff rho(B) < 1; detect by stabilisation
      // or blow-up.
      if (max_rel_change < tol) {
        result.feasible = true;
        result.power = next;
        break;
      }
      if (max_next > 1e30) {
        result.feasible = false;
        break;
      }
      p.swap(next);
    } else {
      // Linear iteration: shifted power iteration on B + I.  The shift makes
      // the matrix aperiodic (plain iteration on B oscillates on 2-cycles,
      // e.g. a pair of links), converging to the Perron vector with growth
      // 1 + rho(B).
      double shifted_max = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        next[i] += p[i];
        shifted_max = std::max(shifted_max, next[i]);
      }
      growth = shifted_max;  // max(p) is 1 after normalisation
      result.spectral_radius_estimate = growth - 1.0;
      for (std::size_t i = 0; i < k; ++i) next[i] /= shifted_max;
      double drift = 0.0;
      for (std::size_t i = 0; i < k; ++i) drift += std::abs(next[i] - p[i]);
      p.swap(next);
      if (drift < tol && result.iterations > 3) {
        result.feasible = result.spectral_radius_estimate <= 1.0 + 10.0 * tol;
        result.power = p;
        break;
      }
    }
    if (result.iterations == max_iterations) {
      // Did not settle: judge by the last growth rate (for the affine/noise
      // iteration growth ~ 1 means near-convergence; for the shifted linear
      // iteration the estimate is rho(B) itself).
      const double rate =
          noise > 0.0 ? growth : result.spectral_radius_estimate;
      result.feasible = rate <= 1.0 + 10.0 * tol;
      result.power = p;
    }
  }
  if (result.feasible && !result.power.empty()) {
    const double top = *std::max_element(result.power.begin(),
                                         result.power.end());
    if (top > 0.0) {
      for (double& x : result.power) x /= top;
    } else {
      result.power.assign(k, 1.0);
    }
  }
  return result;
}

}  // namespace

PowerControlResult FeasibleWithPowerControl(const LinkSystem& system,
                                            std::span<const int> S,
                                            int max_iterations, double tol) {
  PowerControlResult result;
  const auto k = S.size();
  if (k == 0) {
    result.feasible = true;
    return result;
  }
  const double beta = system.config().beta;
  const double noise = system.config().noise;

  // Local matrix B[i][j] = beta * G(S[j] -> S[i]) / G(S[i] -> S[i])
  //                      = beta * f_ii / f_ji  (decay form), zero diagonal.
  std::vector<double> B(k * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const double fii = system.LinkDecay(S[i]);
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      B[i * k + j] = beta * fii / system.CrossDecay(S[j], S[i]);
    }
  }
  // Constant term: beta * N * f_ii.
  std::vector<double> c(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    c[i] = beta * noise * system.LinkDecay(S[i]);
  }
  return RunFixedPoint(B, c, noise, max_iterations, tol);
}

PowerControlResult FeasibleWithPowerControl(const KernelCache& kernel,
                                            std::span<const int> S,
                                            int max_iterations, double tol) {
  PowerControlResult result;
  const auto k = S.size();
  if (k == 0) {
    result.feasible = true;
    return result;
  }
  const double beta = kernel.system().config().beta;
  const double noise = kernel.system().config().noise;

  // The kernel's normalised-gain entries are the naive per-call expression
  // beta * f_ii / f_ji materialised once; gathering the S x S submatrix is
  // pure loads.
  std::vector<double> B(k * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      B[i * k + j] = kernel.NormalizedGain(S[i], S[j]);
    }
  }
  std::vector<double> c(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    c[i] = beta * noise * kernel.LinkDecay(S[i]);
  }
  return RunFixedPoint(B, c, noise, max_iterations, tol);
}

double PairwiseAffectanceProduct(const LinkSystem& system, int v, int w) {
  DL_CHECK(v != w, "need two distinct links");
  const double beta = system.config().beta;
  return beta * beta * system.LinkDecay(v) * system.LinkDecay(w) /
         (system.CrossDecay(v, w) * system.CrossDecay(w, v));
}

double PairwiseAffectanceProduct(const KernelCache& kernel, int v, int w) {
  DL_CHECK(v != w, "need two distinct links");
  const double beta = kernel.system().config().beta;
  return beta * beta * kernel.LinkDecay(v) * kernel.LinkDecay(w) /
         (kernel.CrossDecay(v, w) * kernel.CrossDecay(w, v));
}

bool HasPairwiseObstruction(const LinkSystem& system, std::span<const int> S) {
  const double beta = system.config().beta;
  for (std::size_t i = 0; i < S.size(); ++i) {
    for (std::size_t j = i + 1; j < S.size(); ++j) {
      if (PairwiseAffectanceProduct(system, S[i], S[j]) > beta * beta) {
        return true;
      }
    }
  }
  return false;
}

bool HasPairwiseObstruction(const KernelCache& kernel,
                            std::span<const int> S) {
  const double beta = kernel.system().config().beta;
  for (std::size_t i = 0; i < S.size(); ++i) {
    for (std::size_t j = i + 1; j < S.size(); ++j) {
      if (PairwiseAffectanceProduct(kernel, S[i], S[j]) > beta * beta) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace decaylib::sinr
