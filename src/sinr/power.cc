#include "sinr/power.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace decaylib::sinr {

PowerAssignment UniformPower(const LinkSystem& system, double level) {
  DL_CHECK(level > 0.0, "power must be positive");
  return PowerAssignment(static_cast<std::size_t>(system.NumLinks()), level);
}

PowerAssignment PowerLaw(const LinkSystem& system, double tau, double scale) {
  DL_CHECK(scale > 0.0, "power scale must be positive");
  PowerAssignment power(static_cast<std::size_t>(system.NumLinks()));
  for (int v = 0; v < system.NumLinks(); ++v) {
    power[static_cast<std::size_t>(v)] =
        scale * std::pow(system.LinkDecay(v), tau);
  }
  return power;
}

PowerAssignment LinearPower(const LinkSystem& system, double scale) {
  return PowerLaw(system, 1.0, scale);
}

PowerAssignment MeanPower(const LinkSystem& system, double scale) {
  return PowerLaw(system, 0.5, scale);
}

bool IsMonotonePower(const LinkSystem& system, const PowerAssignment& power,
                     double tol) {
  const std::vector<int> order = system.OrderByDecay();
  // Both conditions are transitive along the order, so adjacent checks
  // suffice -- except that ties in f_vv make "adjacent" ambiguous; comparing
  // every consecutive pair over the sorted order is still sound because the
  // conditions only reference f values, which are equal within a tie.
  for (std::size_t i = 1; i < order.size(); ++i) {
    const int v = order[i - 1];
    const int w = order[i];
    const double pv = power[static_cast<std::size_t>(v)];
    const double pw = power[static_cast<std::size_t>(w)];
    if (pv > pw * (1.0 + tol)) return false;
    const double sv = pv / system.LinkDecay(v);  // received signal of v
    const double sw = pw / system.LinkDecay(w);
    if (sw > sv * (1.0 + tol)) return false;
  }
  return true;
}

PowerAssignment ScaledToOvercomeNoise(const LinkSystem& system,
                                      PowerAssignment power, double margin) {
  DL_CHECK(margin > 1.0, "margin must exceed 1");
  const double noise = system.config().noise;
  if (noise <= 0.0 || system.NumLinks() == 0) return power;
  double worst = std::numeric_limits<double>::infinity();
  for (int v = 0; v < system.NumLinks(); ++v) {
    const double ratio = power[static_cast<std::size_t>(v)] /
                         (system.config().beta * noise * system.LinkDecay(v));
    worst = std::min(worst, ratio);
  }
  const double scale = margin / worst;
  for (double& p : power) p *= scale;
  return power;
}

}  // namespace decaylib::sinr
