// Power-controlled feasibility: can *some* power assignment make a set
// feasible?
//
// Theorems 3 and 6 state hardness "even if the algorithm is allowed
// arbitrary power control against an adversary that uses uniform power";
// verifying their constructions needs an oracle for power-controlled
// feasibility.  Two classic tools:
//
//  * The Foschini-Miljanic fixed point: iterate
//        P_v <- beta * (N + sum_{u != v} P_u G_uv) / G_vv.
//    The iteration converges to the (component-wise minimal) feasible power
//    vector iff the spectral radius of the normalised gain matrix
//    B_vu = beta * G_uv / G_vv is below 1; otherwise powers diverge.
//  * The pairwise obstruction used in the Theorem 6 proof: if
//    a^P_v(w) * a^P_w(v) >= beta^2 * (f_vv f_ww)/(f_vw f_wv) > beta^2 for a
//    pair, no power assignment serves both links (the product is
//    power-invariant).
//
// Every oracle has a cached overload running on sinr::KernelCache (the
// normalised-gain and cross-decay kernels turn the per-call matrix build
// into O(1) loads); both paths share one fixed-point loop and return
// bit-identical results.
#pragma once

#include <optional>
#include <span>

#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::sinr {

struct PowerControlResult {
  bool feasible = false;
  PowerAssignment power;     // valid iff feasible (normalised: max = 1)
  int iterations = 0;        // fixed-point iterations performed
  double spectral_radius_estimate = 0.0;  // growth rate estimate at exit
};

// Runs the Foschini-Miljanic iteration on the links in S.  With noise = 0
// the recursion is linear and the growth rate of ||P|| estimates the
// spectral radius; feasibility is declared when the iteration contracts
// (radius < 1 - tol) and denied when it expands.
PowerControlResult FeasibleWithPowerControl(const LinkSystem& system,
                                            std::span<const int> S,
                                            int max_iterations = 10000,
                                            double tol = 1e-9);
PowerControlResult FeasibleWithPowerControl(const KernelCache& kernel,
                                            std::span<const int> S,
                                            int max_iterations = 10000,
                                            double tol = 1e-9);

// The power-invariant pairwise product beta^2 f_vv f_ww / (f_vw f_wv).
// > beta^2 (strictly, in the no-noise model) implies l_v and l_w cannot
// coexist under any power assignment.
double PairwiseAffectanceProduct(const LinkSystem& system, int v, int w);
double PairwiseAffectanceProduct(const KernelCache& kernel, int v, int w);

// True iff some pair in S has PairwiseAffectanceProduct > threshold
// (defaults to beta^2): a certificate that S is infeasible under any power.
bool HasPairwiseObstruction(const LinkSystem& system, std::span<const int> S);
bool HasPairwiseObstruction(const KernelCache& kernel, std::span<const int> S);

}  // namespace decaylib::sinr
