#include "sinr/link_system.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/check.h"

namespace decaylib::sinr {

LinkSystem::LinkSystem(const core::DecaySpace& space, std::vector<Link> links,
                       SinrConfig config)
    : space_(&space), links_(std::move(links)), config_(config) {
  DL_CHECK(config_.beta >= 1.0, "the thresholding model assumes beta >= 1");
  DL_CHECK(config_.noise >= 0.0, "noise must be non-negative");
  for (const Link& l : links_) {
    DL_CHECK(l.sender >= 0 && l.sender < space.size() && l.receiver >= 0 &&
                 l.receiver < space.size(),
             "link endpoint out of range");
    DL_CHECK(l.sender != l.receiver, "sender and receiver must differ");
  }
}

double LinkSystem::LinkDecay(int v) const {
  const Link& l = links_[static_cast<std::size_t>(v)];
  return (*space_)(l.sender, l.receiver);
}

double LinkSystem::CrossDecay(int w, int v) const {
  return (*space_)(links_[static_cast<std::size_t>(w)].sender,
                   links_[static_cast<std::size_t>(v)].receiver);
}

bool LinkSystem::CanOvercomeNoise(int v, const PowerAssignment& power) const {
  const double signal = power[static_cast<std::size_t>(v)] / LinkDecay(v);
  return signal > config_.beta * config_.noise;
}

double LinkSystem::NoiseFactor(int v, const PowerAssignment& power) const {
  DL_CHECK(CanOvercomeNoise(v, power),
           "link cannot meet the SINR threshold even alone");
  const double signal = power[static_cast<std::size_t>(v)] / LinkDecay(v);
  return config_.beta / (1.0 - config_.beta * config_.noise / signal);
}

double LinkSystem::Affectance(int w, int v, const PowerAssignment& power) const {
  return std::min(1.0, AffectanceRaw(w, v, power));
}

double LinkSystem::AffectanceRaw(int w, int v,
                                 const PowerAssignment& power) const {
  if (w == v) return 0.0;
  const double cv = NoiseFactor(v, power);
  const double ratio = power[static_cast<std::size_t>(w)] /
                       power[static_cast<std::size_t>(v)] * LinkDecay(v) /
                       CrossDecay(w, v);
  return cv * ratio;
}

double LinkSystem::InAffectance(std::span<const int> S, int v,
                                const PowerAssignment& power) const {
  double total = 0.0;
  for (int w : S) total += Affectance(w, v, power);
  return total;
}

double LinkSystem::OutAffectance(int v, std::span<const int> S,
                                 const PowerAssignment& power) const {
  double total = 0.0;
  for (int w : S) total += Affectance(v, w, power);
  return total;
}

double LinkSystem::Sinr(int v, std::span<const int> S,
                        const PowerAssignment& power) const {
  const double signal = power[static_cast<std::size_t>(v)] / LinkDecay(v);
  double interference = config_.noise;
  for (int u : S) {
    if (u == v) continue;
    interference += power[static_cast<std::size_t>(u)] / CrossDecay(u, v);
  }
  if (interference == 0.0) return std::numeric_limits<double>::infinity();
  return signal / interference;
}

bool LinkSystem::IsFeasible(std::span<const int> S,
                            const PowerAssignment& power) const {
  return IsKFeasible(S, 1.0, power);
}

bool LinkSystem::IsKFeasible(std::span<const int> S, double K,
                             const PowerAssignment& power) const {
  for (int v : S) {
    if (!CanOvercomeNoise(v, power)) return false;
    double total = 0.0;
    for (int w : S) total += AffectanceRaw(w, v, power);
    if (total > 1.0 / K) return false;
  }
  return true;
}

bool LinkSystem::IsSinrFeasible(std::span<const int> S,
                                const PowerAssignment& power) const {
  for (int v : S) {
    if (Sinr(v, S, power) < config_.beta) return false;
  }
  return true;
}

double LinkSystem::MaxInAffectance(std::span<const int> S,
                                   const PowerAssignment& power) const {
  double worst = 0.0;
  for (int v : S) worst = std::max(worst, InAffectance(S, v, power));
  return worst;
}

double LinkSystem::LinkLength(int v, double zeta) const {
  return std::pow(LinkDecay(v), 1.0 / zeta);
}

double LinkSystem::LinkDistance(int v, int w, double zeta) const {
  const Link& lv = links_[static_cast<std::size_t>(v)];
  const Link& lw = links_[static_cast<std::size_t>(w)];
  auto d = [&](int p, int q) {
    return p == q ? 0.0 : std::pow((*space_)(p, q), 1.0 / zeta);
  };
  return std::min(std::min(d(lv.sender, lw.receiver), d(lw.sender, lv.receiver)),
                  std::min(d(lv.sender, lw.sender), d(lv.receiver, lw.receiver)));
}

bool LinkSystem::IsSeparatedFrom(int v, std::span<const int> L, double eta,
                                 double zeta) const {
  const double needed = eta * LinkLength(v, zeta);
  for (int w : L) {
    if (w == v) continue;
    if (LinkDistance(v, w, zeta) < needed) return false;
  }
  return true;
}

bool LinkSystem::IsSeparatedSet(std::span<const int> L, double eta,
                                double zeta) const {
  for (int v : L) {
    if (!IsSeparatedFrom(v, L, eta, zeta)) return false;
  }
  return true;
}

std::vector<int> LinkSystem::OrderByDecay() const {
  std::vector<int> order(static_cast<std::size_t>(NumLinks()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return LinkDecay(a) < LinkDecay(b);
  });
  return order;
}

std::vector<Link> LinksFromPairs(std::span<const std::pair<int, int>> pairs) {
  std::vector<Link> links;
  links.reserve(pairs.size());
  for (const auto& [s, r] : pairs) links.push_back({s, r});
  return links;
}

std::vector<int> AllLinks(const LinkSystem& system) {
  std::vector<int> ids(static_cast<std::size_t>(system.NumLinks()));
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace decaylib::sinr
