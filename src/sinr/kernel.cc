#include "sinr/kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/check.h"
#include "obs/registry.h"

namespace decaylib::sinr {

namespace {

std::size_t Idx(int a, int b, int n) {
  return static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(b);
}

// Registry handles for the kernel layer, resolved once (static locals) so
// the hot paths pay one enabled-flag branch per event, not a map lookup.
// Metric name catalogue: docs/observability.md.
obs::Counter& KernelBuildCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.kernel_builds");
  return counter;
}

obs::Counter& ArenaRebuildCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.arena_rebuilds");
  return counter;
}

obs::Counter& ArenaWarmSkipCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.arena_warm_skips");
  return counter;
}

obs::Counter& AdmissionCheckCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.admission_checks");
  return counter;
}

}  // namespace

KernelCache::KernelCache(const LinkSystem& system, PowerAssignment power,
                         KernelBuildPath path) {
  std::vector<double> scratch;
  Build(system, std::move(power), scratch, path);
}

void KernelCache::Build(const LinkSystem& system, PowerAssignment power,
                        std::vector<double>& scratch, KernelBuildPath path) {
  KernelBuildCounter().Add();
  system_ = &system;
  power_ = std::move(power);
  n_ = system.NumLinks();
  DL_CHECK(static_cast<int>(power_.size()) == n_, "one power entry per link");
  const std::size_t n = static_cast<std::size_t>(n_);
  const core::DecaySpace& space = system.space();
  const double beta = system.config().beta;
  const double noise = system.config().noise;

  uniform_power_ = true;
  for (std::size_t v = 1; v < n; ++v) {
    if (power_[v] != power_[0]) {
      uniform_power_ = false;
      break;
    }
  }

  // Every container below is fully overwritten (assign, or resize followed
  // by a write to each entry), so rebuilding into a warm arena slot yields
  // the same bits as a fresh construction.
  link_decay_.resize(n);
  can_overcome_.resize(n);
  noise_factor_.assign(n, 0.0);
  for (int v = 0; v < n_; ++v) {
    const std::size_t sv = static_cast<std::size_t>(v);
    link_decay_[sv] = system.LinkDecay(v);
    // Same expressions as LinkSystem::CanOvercomeNoise / NoiseFactor.
    const double signal = power_[sv] / link_decay_[sv];
    can_overcome_[sv] = signal > beta * noise ? 1 : 0;
    if (can_overcome_[sv]) {
      noise_factor_[sv] = beta / (1.0 - beta * noise / signal);
    }
  }

  // Endpoint index arrays.  Every pass below reads *rows* of the decay
  // matrix with contiguous writes; the one inherently transposed quantity,
  // the cross-decay f(s_w, r_v) indexed v-major, is produced by a blocked
  // n x n transpose of the w-major cross matrix rather than by stride-m
  // column walks over the (potentially much larger) node matrix.
  const std::size_t sm = static_cast<std::size_t>(space.size());
  const double* fd = space.Raw().data();
  std::vector<int> snd(n), rcv(n);
  for (int v = 0; v < n_; ++v) {
    snd[static_cast<std::size_t>(v)] = system.link(v).sender;
    rcv[static_cast<std::size_t>(v)] = system.link(v).receiver;
  }

  // cross_decay_[w*n + v] = f(s_w, r_v) = CrossDecay(w, v), plus its
  // transpose into the arena scratch.  The cross matrix is kept as a member:
  // it backs the CrossDecay query and the power-control kernels below.
  //
  // Both build paths write the same entries from the same expressions in the
  // same order within each entry, so the resulting matrices are
  // bit-identical; the paths differ only in how many sweeps over the n x n
  // slabs they take.  Entries are bit-identical to LinkSystem::AffectanceRaw
  // -- same expression, with c_v and f_vv hoisted.  Under uniform power the
  // P_w / P_v factor equals exactly 1.0 (IEEE x / x == 1.0), so the two
  // extra ops can be skipped without changing the rounded result.  Every
  // n x n matrix writes its zero entries explicitly instead of pre-clearing
  // with assign: on a warm arena slab the resize is then a no-op, saving one
  // full memset pass per matrix per rebuild (a fresh vector still
  // zero-initialises, so the cold path is unchanged).
  cross_decay_.resize(n * n);
  aff_raw_.resize(n * n);
  aff_raw_t_.resize(n * n);
  min_pair_decay_.resize(n * n);
  scratch.resize(n * n);
  double* cross = cross_decay_.data();
  double* cross_t = scratch.data();

  const auto transpose_cross = [&] {
    constexpr std::size_t kTile = 32;
    for (std::size_t wb = 0; wb < n; wb += kTile) {
      for (std::size_t vb = 0; vb < n; vb += kTile) {
        const std::size_t we = std::min(n, wb + kTile);
        const std::size_t ve = std::min(n, vb + kTile);
        for (std::size_t w = wb; w < we; ++w) {
          for (std::size_t v = vb; v < ve; ++v) {
            cross_t[v * n + w] = cross[w * n + v];
          }
        }
      }
    }
  };

  if (path == KernelBuildPath::kScalar) {
    // Reference structure: one matrix per sweep.  Kept as the bit-identity
    // oracle the fused path is tested against (tests/kernel_test.cc).
    for (int w = 0; w < n_; ++w) {
      double* out = cross + static_cast<std::size_t>(w) * n;
      const double* row_sw =
          fd + static_cast<std::size_t>(snd[static_cast<std::size_t>(w)]) * sm;
      for (int v = 0; v < n_; ++v) {
        out[v] =
            row_sw[static_cast<std::size_t>(rcv[static_cast<std::size_t>(v)])];
      }
    }
    transpose_cross();

    // Raw affectance matrices: aff_raw_ row w = a_w(.), filled w-major (the
    // factors depending on the *target* v are O(n) arrays); the transpose
    // row v = a_.(v), filled v-major from cross_t.
    for (int w = 0; w < n_; ++w) {
      const std::size_t sw = static_cast<std::size_t>(w);
      double* out = aff_raw_.data() + sw * n;
      const double* cross_w = cross + sw * n;
      const double pw = power_[sw];
      for (int v = 0; v < n_; ++v) {
        const std::size_t sv = static_cast<std::size_t>(v);
        if (v == w || !can_overcome_[sv]) {
          out[sv] = 0.0;
        } else if (uniform_power_) {
          out[sv] = noise_factor_[sv] * (link_decay_[sv] / cross_w[sv]);
        } else {
          out[sv] = noise_factor_[sv] *
                    (pw / power_[sv] * link_decay_[sv] / cross_w[sv]);
        }
      }
    }
    for (int v = 0; v < n_; ++v) {
      const std::size_t sv = static_cast<std::size_t>(v);
      double* out = aff_raw_t_.data() + sv * n;
      if (!can_overcome_[sv]) {
        std::fill(out, out + n, 0.0);
        continue;
      }
      const double* cross_v = cross_t + sv * n;
      const double cv = noise_factor_[sv];
      const double fvv = link_decay_[sv];
      const double pv = power_[sv];
      for (int w = 0; w < n_; ++w) {
        const std::size_t sw = static_cast<std::size_t>(w);
        if (w == v) {
          out[sw] = 0.0;
        } else if (uniform_power_) {
          out[sw] = cv * (fvv / cross_v[sw]);
        } else {
          out[sw] = cv * (power_[sw] / pv * fvv / cross_v[sw]);
        }
      }
    }

    // Min-endpoint-decay matrix (zeta-independent part of the link
    // quasi-distance).  The decay matrix stores 0 on the diagonal, which is
    // exactly the naive d(p, p) = 0 special case, so no branch is needed.
    // The matrix is stored for ordered (v, w): in an asymmetric space the
    // sender-sender and receiver-receiver legs are ordered pairs, so
    // d(l_v, l_w) need not equal d(l_w, l_v).
    for (int v = 0; v < n_; ++v) {
      const std::size_t sv = static_cast<std::size_t>(v);
      double* out = min_pair_decay_.data() + sv * n;
      const double* row_sv = fd + static_cast<std::size_t>(snd[sv]) * sm;
      const double* row_rv = fd + static_cast<std::size_t>(rcv[sv]) * sm;
      const double* cross_v = cross_t + sv * n;  // f(s_w, r_v) over w
      for (int w = 0; w < n_; ++w) {
        if (w == v) {
          out[static_cast<std::size_t>(w)] = 0.0;
          continue;
        }
        const std::size_t w_snd =
            static_cast<std::size_t>(snd[static_cast<std::size_t>(w)]);
        const std::size_t w_rcv =
            static_cast<std::size_t>(rcv[static_cast<std::size_t>(w)]);
        const double sv_rw = row_sv[w_rcv];                        // f(s_v, r_w)
        const double sw_rv = cross_v[static_cast<std::size_t>(w)];  // f(s_w, r_v)
        const double sv_sw = row_sv[w_snd];                        // f(s_v, s_w)
        const double rv_rw = row_rv[w_rcv];                        // f(r_v, r_w)
        out[static_cast<std::size_t>(w)] =
            std::min(std::min(sv_rw, sw_rv), std::min(sv_sw, rv_rw));
      }
    }
    return;
  }

  // Fused tiled path (default).  Pass 1 (w-major) derives the aff_raw row
  // from the cross row while the freshly written cross values are still in
  // registers/L1 -- at n = 16k each n x n slab is 2 GB, so a second sweep
  // re-reads it all from DRAM.  Pass 2 (v-major, after the blocked
  // transpose) fills aff_raw_t and min_pair_decay from one read of the
  // cross_t row.
  for (int w = 0; w < n_; ++w) {
    const std::size_t sw = static_cast<std::size_t>(w);
    double* out_cross = cross + sw * n;
    double* out_aff = aff_raw_.data() + sw * n;
    const double* row_sw =
        fd + static_cast<std::size_t>(snd[sw]) * sm;
    const double pw = power_[sw];
    for (int v = 0; v < n_; ++v) {
      const std::size_t sv = static_cast<std::size_t>(v);
      const double cross_wv =
          row_sw[static_cast<std::size_t>(rcv[sv])];
      out_cross[sv] = cross_wv;
      if (v == w || !can_overcome_[sv]) {
        out_aff[sv] = 0.0;
      } else if (uniform_power_) {
        out_aff[sv] = noise_factor_[sv] * (link_decay_[sv] / cross_wv);
      } else {
        out_aff[sv] =
            noise_factor_[sv] * (pw / power_[sv] * link_decay_[sv] / cross_wv);
      }
    }
  }
  transpose_cross();
  for (int v = 0; v < n_; ++v) {
    const std::size_t sv = static_cast<std::size_t>(v);
    double* out_t = aff_raw_t_.data() + sv * n;
    double* out_min = min_pair_decay_.data() + sv * n;
    const double* cross_v = cross_t + sv * n;  // f(s_w, r_v) over w
    const double* row_sv = fd + static_cast<std::size_t>(snd[sv]) * sm;
    const double* row_rv = fd + static_cast<std::size_t>(rcv[sv]) * sm;
    const bool overcomes = can_overcome_[sv] != 0;
    const double cv = noise_factor_[sv];
    const double fvv = link_decay_[sv];
    const double pv = power_[sv];
    for (int w = 0; w < n_; ++w) {
      const std::size_t sw = static_cast<std::size_t>(w);
      if (w == v) {
        out_t[sw] = 0.0;
        out_min[sw] = 0.0;
        continue;
      }
      const double sw_rv = cross_v[sw];  // f(s_w, r_v)
      if (!overcomes) {
        out_t[sw] = 0.0;
      } else if (uniform_power_) {
        out_t[sw] = cv * (fvv / sw_rv);
      } else {
        out_t[sw] = cv * (power_[sw] / pv * fvv / sw_rv);
      }
      const std::size_t w_snd = static_cast<std::size_t>(snd[sw]);
      const std::size_t w_rcv = static_cast<std::size_t>(rcv[sw]);
      const double sv_rw = row_sv[w_rcv];  // f(s_v, r_w)
      const double sv_sw = row_sv[w_snd];  // f(s_v, s_w)
      const double rv_rw = row_rv[w_rcv];  // f(r_v, r_w)
      out_min[sw] = std::min(std::min(sv_rw, sw_rv), std::min(sv_sw, rv_rw));
    }
  }
}

// --- KernelArena -------------------------------------------------------------

const KernelCache& KernelArena::Rebuild(const LinkSystem& system,
                                        PowerAssignment power,
                                        KernelBuildPath path) {
  // Warm iff the slot already holds matrices of this link count: every
  // resize inside Build is then a no-op and no allocation happens.
  const bool warm =
      slot_.system_ != nullptr && slot_.n_ == system.NumLinks();
  slot_.Build(system, std::move(power), scratch_, path);
  ++rebuilds_;
  if (warm) ++warm_skips_;
  ArenaRebuildCounter().Add();
  if (warm) ArenaWarmSkipCounter().Add();
  return slot_;
}

double KernelCache::InAffectance(std::span<const int> S, int v) const {
  double total = 0.0;
  for (int w : S) total += Affectance(w, v);
  return total;
}

double KernelCache::OutAffectance(int v, std::span<const int> S) const {
  double total = 0.0;
  for (int w : S) total += Affectance(v, w);
  return total;
}

bool KernelCache::IsFeasible(std::span<const int> S) const {
  return IsKFeasible(S, 1.0);
}

bool KernelCache::IsKFeasible(std::span<const int> S, double K) const {
  const double budget = 1.0 / K;
  for (int v : S) {
    if (!CanOvercomeNoise(v)) return false;
    const double* row = aff_raw_t_.data() + Idx(v, 0, n_);
    double total = 0.0;
    for (int w : S) total += row[static_cast<std::size_t>(w)];
    if (total > budget) return false;
  }
  return true;
}

double KernelCache::Sinr(int v, std::span<const int> S) const {
  // Same expression and summation order as LinkSystem::Sinr, with the decay
  // lookups served from the cached matrices.
  const double signal =
      power_[static_cast<std::size_t>(v)] / LinkDecay(v);
  double interference = system_->config().noise;
  for (int u : S) {
    if (u == v) continue;
    interference += power_[static_cast<std::size_t>(u)] / CrossDecay(u, v);
  }
  if (interference == 0.0) return std::numeric_limits<double>::infinity();
  return signal / interference;
}

double KernelCache::MaxInAffectance(std::span<const int> S) const {
  double worst = 0.0;
  for (int v : S) worst = std::max(worst, InAffectance(S, v));
  return worst;
}

double KernelCache::LinkLength(int v, double zeta) const {
  return std::pow(LinkDecay(v), 1.0 / zeta);
}

double KernelCache::LinkDistance(int v, int w, double zeta) const {
  // pow is weakly monotone, so pow(min f, s) == min pow(f, s): one pow per
  // pair reproduces the naive min over four quasi-distances bit-for-bit.
  return std::pow(MinPairDecay(v, w), 1.0 / zeta);
}

bool KernelCache::IsSeparatedFrom(int v, std::span<const int> L, double eta,
                                  double zeta) const {
  const double needed = eta * LinkLength(v, zeta);
  const double inv_zeta = 1.0 / zeta;
  for (int w : L) {
    if (w == v) continue;
    if (std::pow(MinPairDecay(v, w), inv_zeta) < needed) return false;
  }
  return true;
}

std::vector<int> KernelCache::OrderByDecay() const {
  std::vector<int> order(static_cast<std::size_t>(n_));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return LinkDecay(a) < LinkDecay(b);
  });
  return order;
}

// --- AffectanceAccumulator -------------------------------------------------

AffectanceAccumulator::AffectanceAccumulator(const KernelCache& kernel)
    : kernel_(&kernel) {
  const std::size_t n = static_cast<std::size_t>(kernel.NumLinks());
  in_set_.assign(n, 0);
  in_.assign(n, 0.0);
  out_.assign(n, 0.0);
  in_raw_.assign(n, 0.0);
  out_raw_.assign(n, 0.0);
}

void AffectanceAccumulator::Add(int v) {
  DL_CHECK(!Contains(v), "link already in the accumulator");
  const int n = kernel_->NumLinks();
  // Row v of the matrix is a_v(.), row v of the transpose is a_.(v).
  const double* from_v = kernel_->aff_raw_.data() + Idx(v, 0, n);
  const double* into_v = kernel_->aff_raw_t_.data() + Idx(v, 0, n);
  for (int u = 0; u < n; ++u) {
    const std::size_t su = static_cast<std::size_t>(u);
    const double av_u = from_v[su];  // a_v(u): v's pressure on u
    const double au_v = into_v[su];  // a_u(v): u's pressure on v
    in_raw_[su] += av_u;
    in_[su] += av_u < 1.0 ? av_u : 1.0;
    out_raw_[su] += au_v;
    out_[su] += au_v < 1.0 ? au_v : 1.0;
  }
  members_.push_back(v);
  in_set_[static_cast<std::size_t>(v)] = 1;
}

void AffectanceAccumulator::Remove(int v) {
  DL_CHECK(Contains(v), "link not in the accumulator");
  const int n = kernel_->NumLinks();
  const double* from_v = kernel_->aff_raw_.data() + Idx(v, 0, n);
  const double* into_v = kernel_->aff_raw_t_.data() + Idx(v, 0, n);
  for (int u = 0; u < n; ++u) {
    const std::size_t su = static_cast<std::size_t>(u);
    const double av_u = from_v[su];
    const double au_v = into_v[su];
    in_raw_[su] -= av_u;
    in_[su] -= av_u < 1.0 ? av_u : 1.0;
    out_raw_[su] -= au_v;
    out_[su] -= au_v < 1.0 ? au_v : 1.0;
  }
  members_.erase(std::find(members_.begin(), members_.end(), v));
  in_set_[static_cast<std::size_t>(v)] = 0;
}

bool AffectanceAccumulator::CanAddFeasibly(int v) const {
  AdmissionCheckCounter().Add();
  if (InRaw(v) > 1.0) return false;
  for (int w : members_) {
    if (InRaw(w) + kernel_->AffectanceRaw(v, w) > 1.0) return false;
  }
  return true;
}

void AffectanceAccumulator::Clear() {
  std::fill(in_set_.begin(), in_set_.end(), 0);
  std::fill(in_.begin(), in_.end(), 0.0);
  std::fill(out_.begin(), out_.end(), 0.0);
  std::fill(in_raw_.begin(), in_raw_.end(), 0.0);
  std::fill(out_raw_.begin(), out_raw_.end(), 0.0);
  members_.clear();
}

// --- SeparationOracle --------------------------------------------------------

SeparationOracle::SeparationOracle(const KernelCache& kernel, double eta,
                                   double zeta)
    : kernel_(&kernel),
      eta_(eta),
      inv_zeta_(1.0 / zeta),
      eta_pow_(std::pow(eta, zeta)) {
  DL_CHECK(eta > 0.0 && zeta > 0.0, "eta and zeta must be positive");
}

// Decides min_pair^{1/zeta} >= needed where needed = eta * scale^{1/zeta}
// for scale = scale_decay, comparing in the decay domain when the values are
// clearly on one side of the threshold and replicating the naive pow
// expression inside the guard band.
bool SeparationOracle::Decide(double min_pair, double scale_decay) const {
  const double thr = eta_pow_ * scale_decay;
  if (min_pair > thr * (1.0 + kBand)) return true;
  if (min_pair < thr * (1.0 - kBand)) return false;
  return std::pow(min_pair, inv_zeta_) >=
         eta_ * std::pow(scale_decay, inv_zeta_);
}

bool SeparationOracle::IsSeparated(int v, int w) const {
  return Decide(kernel_->MinPairDecay(v, w), kernel_->LinkDecay(v));
}

bool SeparationOracle::IsSeparatedFrom(int v, std::span<const int> L) const {
  const double fvv = kernel_->LinkDecay(v);
  const double thr_lo = eta_pow_ * fvv * (1.0 - kBand);
  const double thr_hi = eta_pow_ * fvv * (1.0 + kBand);
  for (int w : L) {
    if (w == v) continue;
    const double m = kernel_->MinPairDecay(v, w);
    if (m > thr_hi) continue;          // clearly separated
    if (m < thr_lo) return false;      // clearly too close
    if (std::pow(m, inv_zeta_) < eta_ * std::pow(fvv, inv_zeta_)) return false;
  }
  return true;
}

bool SeparationOracle::ConflictMaxLength(int v, int w) const {
  const double m = kernel_->MinPairDecay(v, w);
  const double scale = std::max(kernel_->LinkDecay(v), kernel_->LinkDecay(w));
  const double thr = eta_pow_ * scale;
  if (m > thr * (1.0 + kBand)) return false;
  if (m < thr * (1.0 - kBand)) return true;
  // Knife edge: exactly the naive expression (max of pows == pow of max).
  const double needed = eta_ * std::pow(scale, inv_zeta_);
  return std::pow(m, inv_zeta_) < needed;
}

// --- Float32Kernel -----------------------------------------------------------

core::StatusOr<Float32Kernel> Float32Kernel::FromDouble(
    const KernelCache& kernel, double tol) {
  if (!(tol >= 0.0) || !std::isfinite(tol)) {
    return core::Status::InvalidArgument(
        "float32 kernel tolerance must be finite and >= 0");
  }
  Float32Kernel out;
  out.n_ = kernel.NumLinks();
  const std::size_t n = static_cast<std::size_t>(out.n_);
  const std::size_t nn = n * n;
  out.aff_raw_.resize(nn);
  out.aff_raw_t_.resize(nn);
  out.min_pair_.resize(nn);

  // Per-entry exactness gate.  A nonzero double that leaves float's range
  // (overflow to inf, or underflow so far it rounds to 0) destroys the
  // entry outright -- decay spreads beyond ~2^276 produce exactly this, and
  // those ill-conditioned instances are what the gate must refuse.  Inside
  // the range, the round-trip float(double) must sit within `tol` relative
  // error; with tol >= 2^-24 (float epsilon/2) every in-range instance
  // passes, so the knob only matters for stricter demands.
  const auto convert = [&](const double* src, std::vector<float>& dst,
                           const char* what) -> core::Status {
    for (std::size_t i = 0; i < nn; ++i) {
      const double d = src[i];
      const float f = static_cast<float>(d);
      if (d == 0.0) {
        dst[i] = f;
        continue;
      }
      const double rt = static_cast<double>(f);
      if (!std::isfinite(rt) || rt == 0.0) {
        return core::Status::NumericError(
            std::string("float32 kernel gate: ") + what +
            " entry leaves float range");
      }
      const double rel = std::abs(rt - d) / std::abs(d);
      if (rel > tol) {
        return core::Status::NumericError(
            std::string("float32 kernel gate: ") + what +
            " entry deviates beyond tolerance");
      }
      out.max_rel_error_ = std::max(out.max_rel_error_, rel);
      dst[i] = f;
    }
    return core::Status();
  };

  if (core::Status s = convert(kernel.aff_raw_.data(), out.aff_raw_, "aff_raw");
      !s.ok()) {
    return s;
  }
  if (core::Status s =
          convert(kernel.aff_raw_t_.data(), out.aff_raw_t_, "aff_raw_t");
      !s.ok()) {
    return s;
  }
  if (core::Status s =
          convert(kernel.min_pair_decay_.data(), out.min_pair_, "min_pair");
      !s.ok()) {
    return s;
  }
  return out;
}

double Float32Kernel::InAffectanceRaw(std::span<const int> S, int v) const {
  // Transpose row read; accumulate in double so the sum adds no error on
  // top of the per-entry rounding FromDouble certified.
  const float* row = aff_raw_t_.data() + Idx(v, 0, n_);
  double total = 0.0;
  for (int w : S) total += static_cast<double>(row[static_cast<std::size_t>(w)]);
  return total;
}

long long KernelCache::MemoryBytes() const noexcept {
  const std::size_t doubles = aff_raw_.capacity() + aff_raw_t_.capacity() +
                              min_pair_decay_.capacity() +
                              cross_decay_.capacity() + link_decay_.capacity() +
                              noise_factor_.capacity();
  return static_cast<long long>(doubles * sizeof(double) +
                                can_overcome_.capacity() * sizeof(char));
}

long long Float32Kernel::MemoryBytes() const noexcept {
  return static_cast<long long>((aff_raw_.capacity() + aff_raw_t_.capacity() +
                                 min_pair_.capacity()) *
                                sizeof(float));
}

}  // namespace decaylib::sinr
