#include "sinr/rayleigh.h"

#include <cmath>

#include "core/check.h"

namespace decaylib::sinr {

namespace {

double MeanSignal(const LinkSystem& system, int v,
                  const PowerAssignment& power) {
  return power[static_cast<std::size_t>(v)] / system.LinkDecay(v);
}

}  // namespace

double RayleighSuccessProbability(const LinkSystem& system, int v,
                                  std::span<const int> S,
                                  const PowerAssignment& power) {
  const double beta = system.config().beta;
  const double mu_v = MeanSignal(system, v, power);
  DL_CHECK(mu_v > 0.0, "link has no signal");
  double p = std::exp(-beta * system.config().noise / mu_v);
  for (int u : S) {
    if (u == v) continue;
    const double mu_uv =
        power[static_cast<std::size_t>(u)] / system.CrossDecay(u, v);
    p /= 1.0 + beta * mu_uv / mu_v;
  }
  return p;
}

double RayleighSuccessMonteCarlo(const LinkSystem& system, int v,
                                 std::span<const int> S,
                                 const PowerAssignment& power, int samples,
                                 geom::Rng& rng) {
  DL_CHECK(samples >= 1, "need at least one sample");
  const double beta = system.config().beta;
  const double mu_v = MeanSignal(system, v, power);
  int successes = 0;
  for (int k = 0; k < samples; ++k) {
    // Exponential with mean mu: mu * Exp(1).
    const double signal = mu_v * rng.Exponential(1.0);
    double interference = system.config().noise;
    for (int u : S) {
      if (u == v) continue;
      const double mu_uv =
          power[static_cast<std::size_t>(u)] / system.CrossDecay(u, v);
      interference += mu_uv * rng.Exponential(1.0);
    }
    if (interference == 0.0 || signal / interference >= beta) ++successes;
  }
  return static_cast<double>(successes) / samples;
}

double RayleighSuccessLowerBound(const LinkSystem& system, int v,
                                 std::span<const int> S,
                                 const PowerAssignment& power) {
  const double beta = system.config().beta;
  const double mu_v = MeanSignal(system, v, power);
  double exponent = beta * system.config().noise / mu_v;
  for (int u : S) {
    if (u == v) continue;
    const double mu_uv =
        power[static_cast<std::size_t>(u)] / system.CrossDecay(u, v);
    exponent += beta * mu_uv / mu_v;
  }
  return std::exp(-exponent);
}

}  // namespace decaylib::sinr
