// Certified far-field affectance aggregation: the O(n + cells) kernel tier.
//
// The dense KernelCache materialises every pairwise affectance, which caps
// instances at a few thousand links (O(n^2) memory and pow calls).
// FarFieldKernel replaces the matrices with the geometry they were derived
// from: for geometric decay f(p, q) = |p - q|^alpha and uniform power, the
// affectance a_w(v) = c_v * f_vv / |s_w - r_v|^alpha is a monotone function
// of one distance, so the contribution of every sender in a distant grid
// cell can be *pooled* -- bounded above and below through the cell's tight
// bounding box -- instead of evaluated pairwise.
//
// Error certification (never trusted, always carried):
//   * Per cell, the box distance range [d_lo, d_hi] from the receiver gives
//     count * K / d_hi^alpha  <=  sum of contributions  <=  count * K / d_lo^alpha,
//     with a multiplicative 1e-9 guard absorbing the fp rounding of the
//     bound arithmetic itself.  Bounds are on the *raw* (unclamped)
//     affectance, the feasibility form.
//   * The near field is exact: cells whose box comes closer than the ring
//     radius R0 = diag / (2^{1/alpha} - 1) (diag = cell * sqrt(2)) are
//     evaluated pairwise with geom::GeometricDecay -- the same expression
//     DecaySpace::Geometric feeds the dense path, so the exact terms are
//     bit-identical to the dense matrix entries.  Beyond R0 a cell's
//     upper/lower contribution ratio is at most (1 + diag/d_lo)^alpha <= 2,
//     so adaptive refinement (converting the widest pooled cell to exact)
//     converges geometrically to any requested width.
//   * CertifiedInAffectance refines until upper - lower <= epsilon * lower;
//     the guard adds at most ~3e-9 * upper of slack on top.
//
// Decision contract vs the dense path (what the engine's signature gate
// relies on):
//   * epsilon = 0: every query and admission loop below runs the exact
//     expressions in the dense iteration order -- results are bit-identical
//     to KernelCache / AffectanceAccumulator / RunAlgorithm1 / ScheduleLinks.
//   * epsilon > 0: threshold *decisions* (feasibility vs 1, Algorithm 1's
//     budget vs 0.5, separation) are taken from the certified interval only
//     when it clears the threshold by an absolute 1e-9 band; inside the band
//     the decision falls back to the exact dense expression in the dense
//     summation order.  Decisions therefore still match the dense path
//     except for inputs engineered to sit within ~1e-9 of a threshold (the
//     same caveat SeparationOracle already carries), while the *reported
//     aggregate sums* may differ by the certified epsilon.
//
// Pooling requires uniform power (the per-pair factor P_w / P_v would
// otherwise vary inside a cell); non-uniform assignments silently use the
// exact path everywhere, staying correct, just dense-speed.  The engine
// additionally rejects kFarField specs with shadowing (sigma_db != 0), whose
// decay is no longer a function of distance -- see ValidateScenarioSpec.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "geom/grid.h"
#include "geom/point.h"
#include "sinr/link_system.h"

namespace decaylib::sinr {

struct FarFieldConfig {
  // Certified relative width target for bound queries; 0 disables pooling
  // entirely and makes every path exact (bit-identical to dense).
  double epsilon = 1e-3;
  // Grid occupancy target; coarser cells mean fewer cells to pool but a
  // larger exact near ring.
  int target_per_cell = 8;
};

// Matrix-free SINR kernel over link endpoint geometry.  Holds copies of the
// endpoint positions; O(n + cells) memory.
class FarFieldKernel {
 public:
  // Endpoints drawn from a node point set (the engine's shape): link v runs
  // senders[links[v].sender] -> points[links[v].receiver].
  FarFieldKernel(std::span<const geom::Vec2> points, std::span<const Link> links,
                 double alpha, SinrConfig config, PowerAssignment power,
                 FarFieldConfig farfield = {});

  // Endpoints given directly (bench/synthetic instances with no node array).
  FarFieldKernel(std::vector<geom::Vec2> senders,
                 std::vector<geom::Vec2> receivers, double alpha,
                 SinrConfig config, PowerAssignment power,
                 FarFieldConfig farfield = {});

  int NumLinks() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }
  double epsilon() const noexcept { return epsilon_; }
  const SinrConfig& config() const noexcept { return config_; }
  const PowerAssignment& power() const noexcept { return power_; }
  bool HasUniformPower() const noexcept { return uniform_power_; }
  geom::Vec2 Sender(int v) const { return senders_[static_cast<std::size_t>(v)]; }
  geom::Vec2 Receiver(int v) const {
    return receivers_[static_cast<std::size_t>(v)];
  }

  // f_vv, c_v and the noise test -- same expressions as KernelCache, so the
  // values are bit-identical to the dense ones over the same geometry.
  double LinkDecay(int v) const {
    return link_decay_[static_cast<std::size_t>(v)];
  }
  bool CanOvercomeNoise(int v) const {
    return can_overcome_[static_cast<std::size_t>(v)] != 0;
  }
  double NoiseFactor(int v) const {
    return noise_factor_[static_cast<std::size_t>(v)];
  }

  // a_w(v) unclamped, evaluated from geometry with the dense entry's exact
  // expression (bit-identical to KernelCache::AffectanceRaw).
  double AffectanceExact(int w, int v) const;

  // Certified interval for a_w(v): Lower <= AffectanceExact(w, v) <= Upper,
  // with Upper - Lower <= epsilon * Lower (+ ~3e-9 * Upper of fp guard).
  // Pairs whose pooled cell bound cannot meet the width target collapse to
  // the exact value (both ends equal).
  double AffectanceUpper(int w, int v) const;
  double AffectanceLower(int w, int v) const;

  struct Interval {
    double lower = 0.0;
    double upper = 0.0;
  };
  Interval AffectanceBounds(int w, int v) const;

  // Certified interval for the raw in-affectance sum_{w in S} a_w(v)
  // (entries equal to v contribute 0, as in the dense row).  Pools whole
  // sender cells beyond the near ring and adaptively refines the widest
  // pooled cell until the interval meets the epsilon width target.
  Interval CertifiedInAffectance(std::span<const int> S, int v) const;

  // Raw in-affectance summed exactly in S order: bit-identical to the dense
  // IsKFeasible row fold over S.
  double InAffectanceRawExact(std::span<const int> S, int v) const;

  // Feasibility of S (every member's raw in-sum <= 1) decided through the
  // certified interval, falling back to the exact fold only when the
  // interval straddles the 1e-9 threshold band.  epsilon = 0 runs the exact
  // fold unconditionally and is bit-identical to KernelCache::IsFeasible.
  bool IsFeasibleCertified(std::span<const int> S) const;

  // Link ids sorted by non-decreasing f_vv (ties by id), as OrderByDecay on
  // the dense cache.
  std::vector<int> OrderByDecay() const;

  long long MemoryBytes() const noexcept;

 private:
  friend class FarFieldAccumulator;

  // Tight bounding box + id range of one occupied grid cell.
  struct CellAgg {
    double min_x = 0.0;
    double min_y = 0.0;
    double max_x = 0.0;
    double max_y = 0.0;
    int first = 0;  // offset into the grouped id array
    int count = 0;
  };

  // Absolute decision band around thresholds (1.0 feasibility, 0.5 budget):
  // outside it the certified bound decides; inside it the exact dense
  // expression does.  The dense fp fold's own error at these magnitudes is
  // ~1e-12, far inside the band, so banded decisions match the dense bit
  // pattern except for adversarial inputs within ~1e-9 of a threshold.
  static constexpr double kBand = 1e-9;
  // Multiplicative guard absorbing the fp rounding of bound arithmetic
  // (box distances, pow, pooled products); the real-valued bound is
  // widened by this factor before use so certificates stay honest.
  static constexpr double kGuard = 1e-9;

  void Init(FarFieldConfig farfield);
  static void Compact(const geom::UniformGrid& grid,
                      std::span<const geom::Vec2> pts,
                      std::vector<CellAgg>* cells, std::vector<int>* grouped,
                      std::vector<int>* cell_of);
  // Euclidean distance range from p to cell c's tight box (lo = 0 when p is
  // inside the box).
  static void BoxDistance(const CellAgg& c, geom::Vec2 p, double* lo,
                          double* hi);
  // Squared distance lower bound to the box, pow-free (cell pruning).
  static double BoxDistanceSqLower(const CellAgg& c, geom::Vec2 p);

  // pow(d, alpha) for the *bound* arithmetic only: integral alpha (the
  // common 2..8 path-loss exponents) runs as repeated multiplication --
  // roughly an order of magnitude cheaper than std::pow on the admission
  // hot loop, where it executes twice per pooled cell per check.  The
  // <= few-ulp deviation from pow's correctly-rounded result is absorbed
  // by kGuard (any valid interval certifies the same decision), so this
  // must never feed an exact path -- those stay on geom::GeometricDecay's
  // std::pow for bit-identity with the dense kernel.
  double BoundPow(double d) const {
    if (alpha_int_ == 0) return std::pow(d, alpha_);
    double r = d;
    for (int e = alpha_int_ - 1; e > 0; --e) r *= d;
    return r;
  }

  // AffectanceExact(w, v) respelled for BOUND arithmetic: sqrt + BoundPow
  // instead of hypot + pow, within a few ulps of the exact value (absorbed
  // by kGuard at the consumers).  Assumes the pooled preconditions already
  // hold (uniform power); never a substitute for an exact fallback.
  double AffectanceNear(int w, int v) const {
    const std::size_t sv = static_cast<std::size_t>(v);
    if (w == v || !can_overcome_[sv]) return 0.0;
    const geom::Vec2 d =
        senders_[static_cast<std::size_t>(w)] - receivers_[sv];
    return cf_[sv] / BoundPow(std::sqrt(d.NormSq()));
  }

  int n_ = 0;
  double alpha_ = 0.0;
  int alpha_int_ = 0;  // alpha when integral in [1, 16], else 0 (use pow)
  double epsilon_ = 0.0;
  SinrConfig config_;
  PowerAssignment power_;
  bool uniform_power_ = true;
  std::vector<geom::Vec2> senders_;
  std::vector<geom::Vec2> receivers_;
  std::vector<double> link_decay_;    // f_vv
  std::vector<char> can_overcome_;    // P_v / f_vv > beta N
  std::vector<double> noise_factor_;  // c_v (0 when !can_overcome_)
  std::vector<double> cf_;            // c_v * f_vv (0 when !can_overcome_)

  // Occupied-cell aggregates over both endpoint sets.  The grids themselves
  // are kept only for CellIndex addressing.
  geom::UniformGrid sender_grid_;
  geom::UniformGrid receiver_grid_;
  std::vector<CellAgg> sender_cells_;
  std::vector<CellAgg> receiver_cells_;
  std::vector<int> sender_cell_ids_;    // link ids grouped by occupied cell
  std::vector<int> receiver_cell_ids_;
  std::vector<int> sender_cell_of_;     // link -> occupied sender cell index
  std::vector<int> receiver_cell_of_;
  // Exact near ring radii: within them a cell is always evaluated pairwise.
  double sender_near_ = 0.0;
  double receiver_near_ = 0.0;
};

// Running exact affectance sums over a growing admitted set, plus certified
// candidate checks against the member set pooled by grid cell.  The member
// sums accumulate in insertion order with the dense entry expressions, so
// for members they are bit-identical to AffectanceAccumulator's (a
// non-member contributes +0.0 at its own Add in the dense version, which
// cannot change an IEEE sum of non-negative terms).  There is deliberately
// no Remove: the admission loops only ever grow, and removal would reopen
// the ulp-drift caveat the dense accumulator documents.
class FarFieldAccumulator {
 public:
  explicit FarFieldAccumulator(const FarFieldKernel& kernel);

  // O(|members|) exact updates (one distance + pow per member and
  // direction).  The caller must have checked kernel.CanOvercomeNoise(v).
  void Add(int v);
  void Clear();

  const std::vector<int>& members() const noexcept { return members_; }
  int size() const noexcept { return static_cast<int>(members_.size()); }
  bool Contains(int v) const {
    return in_set_[static_cast<std::size_t>(v)] != 0;
  }

  // Member-only sums (DL_CHECKed): clamped and raw, bit-identical to the
  // dense accumulator's for the same insertion sequence.
  double In(int v) const;
  double InRaw(int v) const;
  double Out(int v) const;
  double OutRaw(int v) const;

  // Dense AffectanceAccumulator::CanAddFeasibly decisions: candidate raw
  // in-sum vs 1, then every member's headroom vs the candidate's pressure.
  // Certified pooled bounds decide both tests outside the 1e-9 band; the
  // exact dense expressions decide inside it (and everywhere at epsilon = 0
  // or non-uniform power).
  bool CanAddFeasibly(int v) const;

  // Algorithm 1's admission budget Out(v) + In(v) <= 0.5, certified the
  // same way (clamped sums pooled per cell with clamp-safe bounds).
  bool BudgetWithinHalf(int v) const;

  // Dense SeparationOracle::IsSeparatedFrom(v, members()) decisions: cells
  // whose box clears the candidate's separation radius are skipped whole;
  // members in nearer cells run the dense knife-edge expressions.  Always
  // bit-identical to the dense oracle's decision.
  bool IsSeparatedFromMembers(int v, double eta, double zeta) const;

 private:
  FarFieldKernel::Interval CandidateInRawBounds(int v) const;
  FarFieldKernel::Interval CandidateInClampedBounds(int v) const;
  FarFieldKernel::Interval CandidateOutClampedBounds(int v) const;
  double ExactInRaw(int v) const;
  double ExactBudget(int v) const;
  // Recomputes member i's certified d^2 headroom thresholds.  Called for
  // the new member on Add and lazily from CanAddFeasibly when a member's
  // in-raw sum has outgrown its pass threshold's validity (pass_limit_).
  void RefreshHeadroom(std::size_t i) const;
  // Extends member w's exact sums over the members appended since the
  // last catch-up, replaying the same additions in the same order the
  // dense accumulator performs eagerly -- the folded values are
  // bit-identical.  No-op in the exact (non-pooled) modes, where Add
  // maintains the sums eagerly.
  void CatchUp(int w) const;

  const FarFieldKernel* kernel_;
  std::vector<int> members_;
  std::vector<char> in_set_;
  // Member sums, indexed by link id (valid only for members).  In the
  // pooled mode they are lazily exact: each fold is current only through
  // the first upto_[w] entries of members_, and CatchUp(w) extends it on
  // demand (mutable for that reason).  The certified brackets
  // in_lo_/in_hi_ of the raw in-sum ARE maintained eagerly -- cheaply,
  // pooled per receiver cell with no libm -- so headroom thresholds and
  // their staleness triggers never force an exact fold.
  mutable std::vector<double> in_m_, in_raw_m_, out_m_, out_raw_m_;
  mutable std::vector<int> upto_;
  mutable std::vector<double> in_lo_, in_hi_;
  // Members grouped by kernel cell, for pooled candidate bounds.
  std::vector<std::vector<int>> scell_members_;
  std::vector<std::vector<int>> rcell_members_;
  std::vector<int> scell_touched_;
  std::vector<int> rcell_touched_;
  // Per receiver cell: running sum / max of members' c_w * f_ww.
  std::vector<double> rcell_cf_sum_;
  std::vector<double> rcell_cf_max_;
  // Per member (parallel to members_): d^2 thresholds certifying the
  // headroom test each way outside the decision band.  Maintained lazily
  // (mutable): a member's in-raw sum only grows, so a stale fail
  // threshold stays valid, and the pass threshold is computed for the
  // halved headroom so it stays valid until the headroom actually halves
  // -- pass_limit_ records the in-raw level where a refresh is due.
  mutable std::vector<double> t2_pass_;
  mutable std::vector<double> t2_fail_;
  mutable std::vector<double> pass_limit_;
  // Scratch for separation member collection.
  mutable std::vector<int> sep_scratch_;
  mutable std::vector<char> sep_mark_;
};

// Far-field ports of the admission pipelines.  Each replicates its dense
// counterpart's control flow decision for decision; at epsilon = 0 the
// outputs are bit-identical to the dense functions over the same geometry.
struct FarFieldAlg1Result {
  std::vector<int> admitted;  // X: links admitted by the 1/2-budget loop
  std::vector<int> selected;  // S: admitted links with In(v) <= 1
};

// capacity::RunAlgorithm1 (decay-ordered greedy with zeta/2-separation and
// the 1/2 budget) against the far-field kernel.
FarFieldAlg1Result FarFieldRunAlgorithm1(const FarFieldKernel& kernel,
                                         double zeta,
                                         std::span<const int> candidates);
FarFieldAlg1Result FarFieldRunAlgorithm1(const FarFieldKernel& kernel,
                                         double zeta);

// capacity::GreedyFeasible: decay-ordered admit-while-feasible.
std::vector<int> FarFieldGreedyFeasible(const FarFieldKernel& kernel,
                                        std::span<const int> candidates);
std::vector<int> FarFieldGreedyFeasible(const FarFieldKernel& kernel);

// scheduling::ScheduleLinks with the Algorithm 1 extractor.
struct FarFieldSchedule {
  std::vector<std::vector<int>> slots;
};
FarFieldSchedule FarFieldScheduleLinks(const FarFieldKernel& kernel,
                                       double zeta,
                                       std::span<const int> candidates);
FarFieldSchedule FarFieldScheduleLinks(const FarFieldKernel& kernel,
                                       double zeta);
// Multislot validity: every multi-link slot certified feasible and the slots
// partition the candidates (multiset equality), as ValidateSchedule.
bool FarFieldValidateSchedule(const FarFieldKernel& kernel,
                              const FarFieldSchedule& schedule,
                              std::span<const int> candidates);

}  // namespace decaylib::sinr
