// Cached SINR kernel layer: precompute-once, reuse-everywhere.
//
// Every algorithm in the library (Algorithm 1 capacity, weighted capacity,
// partitions, scheduling, exact solvers) reduces to dense pairwise kernels
// over the decay space: affectances a_w(v), link quasi-distances
// d(l_v, l_w) = min-endpoint-decay^{1/zeta}, and running in/out-affectance
// sums.  The naive LinkSystem methods recompute every kernel entry on every
// query -- AffectanceRaw re-derives the noise factor c_v per pair, and
// LinkDistance performs four std::pow calls per pair per call.  KernelCache
// materialises the n x n matrices once so that queries become O(1) lookups;
// AffectanceAccumulator turns the O(|S|) re-summations of greedy admission
// loops into O(1) reads with O(n) per-admission updates; SeparationOracle
// evaluates eta/zeta separation predicates in the decay domain without any
// pow on the hot path.  The cache also materialises the cross-decay kernel
// and derives the normalised-gain kernel from it, which back the cached
// power-control oracle (power_control.h overloads); KernelArena rebuilds a
// cache slot in place so batched/swept runs stop paying the allocator per
// instance.
//
// Bit-exactness contract: for the same (system, power), every query method
// here returns *bit-for-bit* the same double as the corresponding naive
// LinkSystem method.  The cached entries are computed with the identical
// floating-point expression (same association order), and aggregate sums run
// in the same iteration order.  Two non-obvious identities make this work:
//   * min over the four endpoint quasi-distances commutes with pow:
//     pow is weakly monotone, so min_i pow(f_i, s) == pow(min_i f_i, s) --
//     the distance matrix therefore needs one pow per pair, not four;
//   * x / x == 1.0 exactly in IEEE arithmetic, so under uniform power the
//     ratio P_w / P_v can be elided from the affectance expression without
//     changing the rounded result.
// The only deliberate deviation is SeparationOracle's fast path, which
// compares in the decay domain (m >= eta^zeta * f_vv instead of
// m^{1/zeta} >= eta * f_vv^{1/zeta}); the two forms are equivalent in exact
// arithmetic and the oracle falls back to the naive pow expression inside a
// 1e-9 relative guard band, so decisions match the naive path except for
// inputs engineered to sit within ~1e-9 of a separation threshold.
#pragma once

#include <span>
#include <vector>

#include "core/status.h"
#include "sinr/link_system.h"

namespace decaylib::sinr {

// How KernelCache::Build sweeps the matrices.  Entry expressions are
// identical either way -- the paths are bit-identical and differ only in
// how many times each cache line is re-fetched:
//   * kTiled (default): fused sweeps -- the w-major pass derives the
//     aff_raw row from the cross row while it is still in cache, and the
//     v-major pass fills aff_raw_t and min_pair_decay from one cross_t
//     row read; the transpose itself is blocked 32x32.
//   * kScalar: one matrix per sweep, the original reference structure,
//     kept as the oracle the tiled path is tested against.
enum class KernelBuildPath { kTiled, kScalar };

// Precomputed affectance/distance kernels for one (LinkSystem, power) pair.
// Holds a reference to the system; the system (and its decay space) must
// outlive the cache.  Construction costs O(n^2) time and memory.
class KernelCache {
 public:
  KernelCache(const LinkSystem& system, PowerAssignment power,
              KernelBuildPath path = KernelBuildPath::kTiled);

  int NumLinks() const noexcept { return n_; }
  const LinkSystem& system() const noexcept { return *system_; }
  const PowerAssignment& power() const noexcept { return power_; }

  // f_vv, hoisted out of the space.
  double LinkDecay(int v) const {
    return link_decay_[static_cast<std::size_t>(v)];
  }

  bool CanOvercomeNoise(int v) const {
    return can_overcome_[static_cast<std::size_t>(v)] != 0;
  }

  // c_v = beta / (1 - beta N f_vv / P_v); only meaningful when
  // CanOvercomeNoise(v).
  double NoiseFactor(int v) const {
    return noise_factor_[static_cast<std::size_t>(v)];
  }

  // a_w(v) without the min(1, .) clamp; 0 when w == v or when l_v cannot
  // overcome noise (the naive path aborts on the latter; callers check
  // CanOvercomeNoise first, as every algorithm in the library does).
  double AffectanceRaw(int w, int v) const {
    return aff_raw_[static_cast<std::size_t>(w) * static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(v)];
  }

  double Affectance(int w, int v) const {
    const double raw = AffectanceRaw(w, v);
    return raw < 1.0 ? raw : 1.0;
  }

  // f_wv = f(s_w, r_v), cached; bit-identical to LinkSystem::CrossDecay.
  double CrossDecay(int w, int v) const {
    return cross_decay_[static_cast<std::size_t>(w) *
                            static_cast<std::size_t>(n_) +
                        static_cast<std::size_t>(v)];
  }

  // Normalised-gain kernel of the power-control fixed point (Foschini-
  // Miljanic): B(v, w) = beta * f_vv / f(s_w, r_v), zero diagonal.
  // Computed on demand from the cached decay/cross matrices with exactly
  // the per-entry expression FeasibleWithPowerControl's naive path builds
  // (beta * f_ii / CrossDecay), so the cached fixed point stays
  // bit-identical -- without charging every KernelCache build an n x n
  // matrix only the power-control oracle reads.
  double NormalizedGain(int v, int w) const {
    if (w == v) return 0.0;
    return system_->config().beta * LinkDecay(v) / CrossDecay(w, v);
  }

  // min{f(s_v,r_w), f(s_w,r_v), f(s_v,s_w), f(r_v,r_w)}: the link
  // quasi-distance before the ^{1/zeta}; zeta-independent.  Symmetric only
  // when the decay space is (the sender-sender / receiver-receiver legs are
  // ordered pairs).
  double MinPairDecay(int v, int w) const {
    return min_pair_decay_[static_cast<std::size_t>(v) *
                               static_cast<std::size_t>(n_) +
                           static_cast<std::size_t>(w)];
  }

  // --- aggregate queries, bit-identical to the LinkSystem versions -------

  double InAffectance(std::span<const int> S, int v) const;
  double OutAffectance(int v, std::span<const int> S) const;
  bool IsFeasible(std::span<const int> S) const;
  bool IsKFeasible(std::span<const int> S, double K) const;
  double MaxInAffectance(std::span<const int> S) const;

  // Raw SINR of l_v when exactly the links in S transmit, against the
  // cache's power assignment: the interference sum runs over S in order,
  // reading the cached cross-decay row instead of the decay matrix, so the
  // result is bit-identical to LinkSystem::Sinr(v, S, power()).  The per-
  // slot success checks of the dynamics simulators (random access, the
  // regret game) run on this.
  double Sinr(int v, std::span<const int> S) const;

  // d_vv^{1/zeta} and d(l_v, l_w); one pow per call against cached decays.
  double LinkLength(int v, double zeta) const;
  double LinkDistance(int v, int w, double zeta) const;
  bool IsSeparatedFrom(int v, std::span<const int> L, double eta,
                       double zeta) const;

  // Link ids sorted by non-decreasing f_vv (ties by id), as
  // LinkSystem::OrderByDecay but against the cached decay array.
  std::vector<int> OrderByDecay() const;

  // True when every power entry is bitwise identical (enables the
  // ratio-elision fast path during construction; queries are unaffected).
  bool HasUniformPower() const noexcept { return uniform_power_; }

  // Bytes held by the dense matrices and per-link arrays (capacity, so a
  // warm arena slot reports what it actually retains).
  long long MemoryBytes() const noexcept;

 private:
  friend class AffectanceAccumulator;
  friend class KernelArena;
  friend class Float32Kernel;

  // Empty cache (n = 0, no system): every query but NumLinks would
  // dereference the null system, so only KernelArena -- which always
  // Rebuilds before handing the cache out -- may construct one.
  KernelCache() = default;

  // (Re)builds every matrix for (system, power); `scratch` provides the
  // transpose workspace so arena rebuilds allocate nothing once warm.
  void Build(const LinkSystem& system, PowerAssignment power,
             std::vector<double>& scratch,
             KernelBuildPath path = KernelBuildPath::kTiled);

  const LinkSystem* system_ = nullptr;
  PowerAssignment power_;
  int n_ = 0;
  bool uniform_power_ = true;
  std::vector<double> link_decay_;    // f_vv
  std::vector<char> can_overcome_;    // P_v / f_vv > beta N
  std::vector<double> noise_factor_;  // c_v (0 when !can_overcome_)
  std::vector<double> aff_raw_;       // [w*n + v] = a_w(v), unclamped
  std::vector<double> aff_raw_t_;     // [v*n + w] = a_w(v)  (transpose)
  std::vector<double> min_pair_decay_;  // [v*n + w], symmetric
  std::vector<double> cross_decay_;     // [w*n + v] = f(s_w, r_v)
};

// Reusable KernelCache storage: one cache slot plus the build scratch,
// rebuilt in place instead of reallocated.  Same-shape rebuilds (the batch
// and sweep runners build thousands of caches of identical n) touch the
// allocator zero times once the slot is warm; different shapes simply
// re-grow.  The rebuilt cache is bit-identical to a freshly constructed
// KernelCache over the same (system, power) -- Build overwrites every
// entry, so nothing of the previous instance survives.  One arena per
// worker thread; the returned reference is valid until the next Rebuild.
class KernelArena {
 public:
  // The returned reference is invalidated by the next Rebuild, and the
  // rebuilt cache holds a pointer into `system` -- do not keep either
  // beyond the system's lifetime (there is deliberately no accessor for
  // the last-built cache: it would dangle once the batch's instances are
  // destroyed).
  const KernelCache& Rebuild(const LinkSystem& system, PowerAssignment power,
                             KernelBuildPath path = KernelBuildPath::kTiled);

  long long rebuilds() const noexcept { return rebuilds_; }
  // Rebuilds whose link count matched the warm slot's, so every matrix
  // resize was a no-op and the allocator (and, for same-shape slabs, the
  // pre-clearing memsets) were skipped entirely -- the case the arena
  // exists for.  rebuilds() - warm_skips() is the number of cold/grow
  // builds (first touch, or a cell-shape change mid-sweep).
  long long warm_skips() const noexcept { return warm_skips_; }

 private:
  KernelCache slot_;
  std::vector<double> scratch_;
  long long rebuilds_ = 0;
  long long warm_skips_ = 0;
};

// Running in/out-affectance sums over a growing (or shrinking) set of links.
// Add/Remove are O(n); queries are O(1).  Sums accumulate in insertion
// order, so after Add(s_1), ..., Add(s_k):
//     In(v)  == system.InAffectance({s_1..s_k}, v, power)   bit-for-bit,
//     Out(v) == system.OutAffectance(v, {s_1..s_k}, power)  bit-for-bit,
// and likewise for the unclamped Raw variants.  Remove subtracts the entry
// that Add added; note that floating-point subtraction does not perfectly
// undo earlier absorption, so heavy add/remove churn can drift by ulps from
// a from-scratch sum (the greedy admission loops only ever Add).
class AffectanceAccumulator {
 public:
  explicit AffectanceAccumulator(const KernelCache& kernel);

  void Add(int v);
  void Remove(int v);
  void Clear();

  const std::vector<int>& members() const noexcept { return members_; }
  int size() const noexcept { return static_cast<int>(members_.size()); }
  bool Contains(int v) const {
    return in_set_[static_cast<std::size_t>(v)] != 0;
  }

  // Sum over current members w of min(1, a_w(v)) resp. min(1, a_v(w)).
  double In(int v) const { return in_[static_cast<std::size_t>(v)]; }
  double Out(int v) const { return out_[static_cast<std::size_t>(v)]; }
  // Unclamped sums (the feasibility form).
  double InRaw(int v) const { return in_raw_[static_cast<std::size_t>(v)]; }
  double OutRaw(int v) const { return out_raw_[static_cast<std::size_t>(v)]; }

  // True iff members() + {v} is feasible, deciding exactly as the naive
  // push-IsFeasible-pop loop does: the candidate's in-affectance is the
  // running raw sum (its own entry contributes a trailing +0), and each
  // member's new total is its running sum plus the candidate's row entry.
  // The caller must have checked kernel.CanOvercomeNoise(v).
  bool CanAddFeasibly(int v) const;

 private:
  const KernelCache* kernel_;
  std::vector<int> members_;
  std::vector<char> in_set_;
  std::vector<double> in_, out_, in_raw_, out_raw_;
};

// Separation predicates for fixed (eta, zeta), evaluated in the decay
// domain: d(l_v, l_w) >= eta * d_vv  <=>  MinPairDecay >= eta^zeta * f_vv
// (exact arithmetic).  No pow on the hot path; a 1e-9 relative guard band
// around the threshold falls back to the naive pow comparison, so decisions
// are bit-compatible with LinkSystem::IsSeparatedFrom except for inputs
// within the band of a threshold.
class SeparationOracle {
 public:
  SeparationOracle(const KernelCache& kernel, double eta, double zeta);

  // d(l_v, l_w) >= eta * d_vv (asymmetric: v's length sets the scale).
  bool IsSeparated(int v, int w) const;

  // True iff IsSeparated(v, w) for every w in L (entries equal to v skip).
  bool IsSeparatedFrom(int v, std::span<const int> L) const;

  // d(l_v, l_w) < eta * max(d_vv, d_ww): the conflict test of the
  // separation partition (Lemma B.3).
  bool ConflictMaxLength(int v, int w) const;

 private:
  bool Decide(double min_pair, double scale_decay) const;

  const KernelCache* kernel_;
  double eta_;
  double inv_zeta_;
  double eta_pow_;  // eta^zeta
  static constexpr double kBand = 1e-9;
};

// Opt-in float32 copy of the dense affectance/distance kernels: half the
// memory and bandwidth of the double cache for read-heavy consumers that
// can tolerate a certified precision loss.  FromDouble is the exactness
// gate: it rejects the conversion (StatusOr error, no partial kernel)
// unless EVERY entry of both matrices round-trips within `tol` relative
// error -- in particular any overflow to inf or underflow of a nonzero
// entry to 0 (decay spreads beyond float range are exactly the
// ill-conditioned instances the gate exists for).  Aggregate queries
// accumulate in double, so the only loss is the per-entry rounding the
// gate just certified.
class Float32Kernel {
 public:
  static core::StatusOr<Float32Kernel> FromDouble(const KernelCache& kernel,
                                                  double tol);

  int NumLinks() const noexcept { return n_; }
  // Largest relative per-entry deviation the conversion actually incurred
  // (always <= the tol it was gated at).
  double MaxRelativeError() const noexcept { return max_rel_error_; }

  float AffectanceRaw(int w, int v) const {
    return aff_raw_[static_cast<std::size_t>(w) * static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(v)];
  }
  float MinPairDecay(int v, int w) const {
    return min_pair_[static_cast<std::size_t>(v) * static_cast<std::size_t>(n_) +
                     static_cast<std::size_t>(w)];
  }

  // Raw in-affectance over S (transpose row read, double accumulation).
  double InAffectanceRaw(std::span<const int> S, int v) const;

  long long MemoryBytes() const noexcept;

 private:
  Float32Kernel() = default;

  int n_ = 0;
  double max_rel_error_ = 0.0;
  std::vector<float> aff_raw_;    // [w*n + v]
  std::vector<float> aff_raw_t_;  // [v*n + w]
  std::vector<float> min_pair_;   // [v*n + w]
};

}  // namespace decaylib::sinr
