#include "sinr/farfield.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "core/check.h"
#include "obs/registry.h"

namespace decaylib::sinr {

namespace {

// Registry handles resolved once (static locals), same pattern as kernel.cc.
// Metric name catalogue: docs/observability.md.
obs::Counter& FarFieldBuildCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.farfield_builds");
  return counter;
}

obs::Counter& FarFieldAdmissionCheckCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.farfield_admission_checks");
  return counter;
}

obs::Counter& FarFieldCertifiedAcceptCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.farfield_certified_accepts");
  return counter;
}

obs::Counter& FarFieldCertifiedRejectCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.farfield_certified_rejects");
  return counter;
}

obs::Counter& FarFieldExactFallbackCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.farfield_exact_fallbacks");
  return counter;
}

obs::Counter& FarFieldRefinedCellCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("sinr.farfield_refined_cells");
  return counter;
}

geom::UniformGrid MakeGrid(std::span<const geom::Vec2> pts, int target) {
  std::vector<int> ids(pts.size());
  std::iota(ids.begin(), ids.end(), 0);
  return geom::UniformGrid(pts, ids, target);
}

std::vector<geom::Vec2> GatherEndpoints(std::span<const geom::Vec2> points,
                                        std::span<const Link> links,
                                        bool sender_side) {
  std::vector<geom::Vec2> out(links.size());
  for (std::size_t v = 0; v < links.size(); ++v) {
    const int node = sender_side ? links[v].sender : links[v].receiver;
    out[v] = points[static_cast<std::size_t>(node)];
  }
  return out;
}

// The dense SeparationOracle's guard band, replicated literal-for-literal
// so knife-edge separation decisions use identical thresholds.
constexpr double kSepBand = 1e-9;

}  // namespace

// --- FarFieldKernel ----------------------------------------------------------

FarFieldKernel::FarFieldKernel(std::span<const geom::Vec2> points,
                               std::span<const Link> links, double alpha,
                               SinrConfig config, PowerAssignment power,
                               FarFieldConfig farfield)
    : FarFieldKernel(GatherEndpoints(points, links, true),
                     GatherEndpoints(points, links, false), alpha, config,
                     std::move(power), farfield) {}

FarFieldKernel::FarFieldKernel(std::vector<geom::Vec2> senders,
                               std::vector<geom::Vec2> receivers, double alpha,
                               SinrConfig config, PowerAssignment power,
                               FarFieldConfig farfield)
    : n_(static_cast<int>(senders.size())),
      alpha_(alpha),
      config_(config),
      power_(std::move(power)),
      senders_(std::move(senders)),
      receivers_(std::move(receivers)),
      sender_grid_(MakeGrid(senders_, farfield.target_per_cell)),
      receiver_grid_(MakeGrid(receivers_, farfield.target_per_cell)) {
  Init(farfield);
}

void FarFieldKernel::Init(FarFieldConfig farfield) {
  DL_CHECK(senders_.size() == receivers_.size(),
           "one sender and one receiver per link");
  DL_CHECK(n_ >= 1, "far-field kernel needs at least one link");
  DL_CHECK(alpha_ > 0.0, "path loss exponent must be positive");
  DL_CHECK(std::isfinite(farfield.epsilon) && farfield.epsilon >= 0.0,
           "far-field epsilon must be finite and >= 0");
  DL_CHECK(static_cast<int>(power_.size()) == n_, "one power entry per link");
  epsilon_ = farfield.epsilon;
  alpha_int_ = (alpha_ == std::rint(alpha_) && alpha_ >= 1.0 && alpha_ <= 16.0)
                   ? static_cast<int>(alpha_)
                   : 0;
  FarFieldBuildCounter().Add();

  const std::size_t n = static_cast<std::size_t>(n_);
  const double beta = config_.beta;
  const double noise = config_.noise;
  uniform_power_ = true;
  for (std::size_t v = 1; v < n; ++v) {
    if (power_[v] != power_[0]) {
      uniform_power_ = false;
      break;
    }
  }

  link_decay_.resize(n);
  can_overcome_.resize(n);
  noise_factor_.assign(n, 0.0);
  cf_.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    // Same expressions as KernelCache::Build, with the decay read from
    // geometry through the shared GeometricDecay helper instead of the
    // materialised space -- bit-identical over the same points.
    link_decay_[v] = geom::GeometricDecay(senders_[v], receivers_[v], alpha_);
    DL_CHECK(link_decay_[v] > 0.0, "coincident link endpoints");
    const double signal = power_[v] / link_decay_[v];
    can_overcome_[v] = signal > beta * noise ? 1 : 0;
    if (can_overcome_[v]) {
      noise_factor_[v] = beta / (1.0 - beta * noise / signal);
      cf_[v] = noise_factor_[v] * link_decay_[v];
    }
  }

  Compact(sender_grid_, senders_, &sender_cells_, &sender_cell_ids_,
          &sender_cell_of_);
  Compact(receiver_grid_, receivers_, &receiver_cells_, &receiver_cell_ids_,
          &receiver_cell_of_);

  // Exact near ring radius R0 = diag / (2^{1/alpha} - 1): beyond it,
  // d_hi <= d_lo + diag <= d_lo * 2^{1/alpha}, so a pooled cell's
  // upper/lower contribution ratio (d_hi/d_lo)^alpha is at most 2 and
  // refinement halves the residual width geometrically.
  const double ring =
      std::sqrt(2.0) / (std::pow(2.0, 1.0 / alpha_) - 1.0);
  sender_near_ = sender_grid_.CellSize() * ring;
  receiver_near_ = receiver_grid_.CellSize() * ring;
}

void FarFieldKernel::Compact(const geom::UniformGrid& grid,
                             std::span<const geom::Vec2> pts,
                             std::vector<CellAgg>* cells,
                             std::vector<int>* grouped,
                             std::vector<int>* cell_of) {
  cells->clear();
  grouped->clear();
  grouped->reserve(pts.size());
  cell_of->assign(pts.size(), -1);
  const int num = grid.NumCells();
  for (int c = 0; c < num; ++c) {
    const std::span<const int> ids = grid.CellContents(c);
    if (ids.empty()) continue;
    CellAgg agg;
    agg.first = static_cast<int>(grouped->size());
    agg.count = static_cast<int>(ids.size());
    const geom::Vec2 p0 = pts[static_cast<std::size_t>(ids[0])];
    agg.min_x = agg.max_x = p0.x;
    agg.min_y = agg.max_y = p0.y;
    const int index = static_cast<int>(cells->size());
    for (const int id : ids) {
      const geom::Vec2 p = pts[static_cast<std::size_t>(id)];
      agg.min_x = std::min(agg.min_x, p.x);
      agg.min_y = std::min(agg.min_y, p.y);
      agg.max_x = std::max(agg.max_x, p.x);
      agg.max_y = std::max(agg.max_y, p.y);
      grouped->push_back(id);
      (*cell_of)[static_cast<std::size_t>(id)] = index;
    }
    cells->push_back(agg);
  }
}

void FarFieldKernel::BoxDistance(const CellAgg& c, geom::Vec2 p, double* lo,
                                 double* hi) {
  // sqrt of the squared sum, not hypot: this feeds bound arithmetic only
  // (kGuard absorbs the ulp-level difference) and hypot's overflow-safe
  // scaling is several times slower on the admission hot loop.
  const double dx_lo = std::max({0.0, c.min_x - p.x, p.x - c.max_x});
  const double dy_lo = std::max({0.0, c.min_y - p.y, p.y - c.max_y});
  *lo = std::sqrt(dx_lo * dx_lo + dy_lo * dy_lo);
  const double dx_hi = std::max(p.x - c.min_x, c.max_x - p.x);
  const double dy_hi = std::max(p.y - c.min_y, c.max_y - p.y);
  *hi = std::sqrt(dx_hi * dx_hi + dy_hi * dy_hi);
}

double FarFieldKernel::BoxDistanceSqLower(const CellAgg& c, geom::Vec2 p) {
  const double dx = std::max({0.0, c.min_x - p.x, p.x - c.max_x});
  const double dy = std::max({0.0, c.min_y - p.y, p.y - c.max_y});
  return dx * dx + dy * dy;
}

double FarFieldKernel::AffectanceExact(int w, int v) const {
  const std::size_t sv = static_cast<std::size_t>(v);
  if (w == v || !can_overcome_[sv]) return 0.0;
  const std::size_t sw = static_cast<std::size_t>(w);
  // The dense matrix entry's expression: cross = the space's f(s_w, r_v)
  // (GeometricDecay is the one shared spelling), then the KernelCache
  // association order with the uniform-power ratio elision.
  const double cross =
      geom::GeometricDecay(senders_[sw], receivers_[sv], alpha_);
  if (uniform_power_) {
    return noise_factor_[sv] * (link_decay_[sv] / cross);
  }
  return noise_factor_[sv] *
         (power_[sw] / power_[sv] * link_decay_[sv] / cross);
}

FarFieldKernel::Interval FarFieldKernel::AffectanceBounds(int w, int v) const {
  const std::size_t sv = static_cast<std::size_t>(v);
  if (w == v || !can_overcome_[sv]) return {0.0, 0.0};
  if (uniform_power_ && epsilon_ > 0.0) {
    const CellAgg& cell =
        sender_cells_[static_cast<std::size_t>(
            sender_cell_of_[static_cast<std::size_t>(w)])];
    double lo = 0.0;
    double hi = 0.0;
    BoxDistance(cell, receivers_[sv], &lo, &hi);
    if (lo > sender_near_) {
      const double k = cf_[sv];
      const double upper = k / BoundPow(lo) * (1.0 + kGuard);
      const double lower = k / BoundPow(hi) * (1.0 - kGuard);
      if (upper - lower <= epsilon_ * lower) return {lower, upper};
    }
  }
  const double e = AffectanceExact(w, v);
  return {e, e};
}

double FarFieldKernel::AffectanceUpper(int w, int v) const {
  return AffectanceBounds(w, v).upper;
}

double FarFieldKernel::AffectanceLower(int w, int v) const {
  return AffectanceBounds(w, v).lower;
}

double FarFieldKernel::InAffectanceRawExact(std::span<const int> S,
                                            int v) const {
  // Same fold as the dense IsKFeasible row pass: entries at w == v are 0.
  double total = 0.0;
  for (int w : S) total += AffectanceExact(w, v);
  return total;
}

FarFieldKernel::Interval FarFieldKernel::CertifiedInAffectance(
    std::span<const int> S, int v) const {
  const std::size_t sv = static_cast<std::size_t>(v);
  if (!can_overcome_[sv]) return {0.0, 0.0};
  if (!uniform_power_ || epsilon_ == 0.0) {
    const double e = InAffectanceRawExact(S, v);
    return {e, e};
  }

  // Group S by occupied sender cell (CSR over the compact cell index).
  const int num_cells = static_cast<int>(sender_cells_.size());
  std::vector<int> offset(static_cast<std::size_t>(num_cells) + 1, 0);
  for (int w : S) {
    if (w == v) continue;
    ++offset[static_cast<std::size_t>(
                 sender_cell_of_[static_cast<std::size_t>(w)]) +
             1];
  }
  for (int c = 0; c < num_cells; ++c) {
    offset[static_cast<std::size_t>(c) + 1] +=
        offset[static_cast<std::size_t>(c)];
  }
  std::vector<int> grouped(static_cast<std::size_t>(offset[num_cells]));
  std::vector<int> cursor(offset.begin(), offset.end() - 1);
  for (int w : S) {
    if (w == v) continue;
    const int c = sender_cell_of_[static_cast<std::size_t>(w)];
    grouped[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] =
        w;
  }

  const geom::Vec2 p = receivers_[sv];
  const double k = cf_[sv];
  // Near + refined cells, summed pairwise through the cheap bound spelling
  // (AffectanceNear): the sum only feeds the guarded certified interval,
  // and threshold-straddling callers re-fold with the exact path anyway.
  double near_sum = 0.0;
  struct Pooled {
    int cell;
    double lo;
    double hi;
  };
  std::vector<Pooled> far;
  for (int c = 0; c < num_cells; ++c) {
    const int b = offset[static_cast<std::size_t>(c)];
    const int e = offset[static_cast<std::size_t>(c) + 1];
    if (b == e) continue;
    double lo = 0.0;
    double hi = 0.0;
    BoxDistance(sender_cells_[static_cast<std::size_t>(c)], p, &lo, &hi);
    if (lo <= sender_near_) {
      for (int i = b; i < e; ++i) {
        near_sum += AffectanceNear(grouped[static_cast<std::size_t>(i)], v);
      }
      continue;
    }
    const double cnt = static_cast<double>(e - b);
    far.push_back(
        {c, cnt * (k / BoundPow(hi)), cnt * (k / BoundPow(lo))});
  }

  // Adaptive refinement: convert the widest pooled cell to exact until the
  // certified interval meets the epsilon width target.  Totals are resummed
  // per round so the bounds never inherit subtraction cancellation.
  Interval out;
  for (;;) {
    double far_lo = 0.0;
    double far_hi = 0.0;
    for (const Pooled& f : far) {
      far_lo += f.lo;
      far_hi += f.hi;
    }
    out.lower = (near_sum + far_lo) * (1.0 - kGuard);
    out.upper = (near_sum + far_hi) * (1.0 + kGuard);
    if (far.empty() || out.upper - out.lower <= epsilon_ * out.lower) break;
    std::size_t widest = 0;
    for (std::size_t i = 1; i < far.size(); ++i) {
      if (far[i].hi - far[i].lo > far[widest].hi - far[widest].lo) widest = i;
    }
    const int c = far[widest].cell;
    far[widest] = far.back();
    far.pop_back();
    for (int i = offset[static_cast<std::size_t>(c)];
         i < offset[static_cast<std::size_t>(c) + 1]; ++i) {
      near_sum += AffectanceNear(grouped[static_cast<std::size_t>(i)], v);
    }
    FarFieldRefinedCellCounter().Add();
  }
  return out;
}

bool FarFieldKernel::IsFeasibleCertified(std::span<const int> S) const {
  for (int v : S) {
    if (!CanOvercomeNoise(v)) return false;
    if (epsilon_ > 0.0 && uniform_power_) {
      const Interval b = CertifiedInAffectance(S, v);
      if (b.upper <= 1.0 - kBand) {
        FarFieldCertifiedAcceptCounter().Add();
        continue;
      }
      if (b.lower > 1.0 + kBand) {
        FarFieldCertifiedRejectCounter().Add();
        return false;
      }
      FarFieldExactFallbackCounter().Add();
    }
    if (InAffectanceRawExact(S, v) > 1.0) return false;
  }
  return true;
}

std::vector<int> FarFieldKernel::OrderByDecay() const {
  std::vector<int> order(static_cast<std::size_t>(n_));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return LinkDecay(a) < LinkDecay(b);
  });
  return order;
}

long long FarFieldKernel::MemoryBytes() const noexcept {
  auto bytes = [](const auto& v) {
    return static_cast<long long>(v.capacity() * sizeof(v[0]));
  };
  return bytes(senders_) + bytes(receivers_) + bytes(link_decay_) +
         bytes(can_overcome_) + bytes(noise_factor_) + bytes(cf_) +
         bytes(sender_cells_) + bytes(receiver_cells_) +
         bytes(sender_cell_ids_) + bytes(receiver_cell_ids_) +
         bytes(sender_cell_of_) + bytes(receiver_cell_of_);
}

// --- FarFieldAccumulator -----------------------------------------------------

FarFieldAccumulator::FarFieldAccumulator(const FarFieldKernel& kernel)
    : kernel_(&kernel) {
  const std::size_t n = static_cast<std::size_t>(kernel.NumLinks());
  in_set_.assign(n, 0);
  in_m_.assign(n, 0.0);
  in_raw_m_.assign(n, 0.0);
  out_m_.assign(n, 0.0);
  out_raw_m_.assign(n, 0.0);
  upto_.assign(n, 0);
  in_lo_.assign(n, 0.0);
  in_hi_.assign(n, 0.0);
  scell_members_.resize(kernel.sender_cells_.size());
  rcell_members_.resize(kernel.receiver_cells_.size());
  rcell_cf_sum_.assign(kernel.receiver_cells_.size(), 0.0);
  rcell_cf_max_.assign(kernel.receiver_cells_.size(), 0.0);
  sep_mark_.assign(n, 0);
}

void FarFieldAccumulator::Add(int v) {
  DL_CHECK(!Contains(v), "link already in the accumulator");
  const FarFieldKernel& k = *kernel_;
  const std::size_t sv = static_cast<std::size_t>(v);
  const bool pooled = k.uniform_power_ && k.epsilon_ > 0.0;
  if (pooled) {
    // Lazily-exact sums: the new member starts with an empty fold prefix
    // (CatchUp replays the dense accumulator's additions on demand), and
    // the existing members' exact folds are simply left behind -- only
    // their certified in-raw brackets advance here, pooled per receiver
    // cell with no libm call on the hot path.
    in_raw_m_[sv] = 0.0;
    in_m_[sv] = 0.0;
    out_raw_m_[sv] = 0.0;
    out_m_[sv] = 0.0;
    upto_[sv] = 0;
    const FarFieldKernel::Interval b = CandidateInRawBounds(v);
    in_lo_[sv] = b.lower;
    in_hi_[sv] = b.upper;
    constexpr double g = FarFieldKernel::kGuard;
    const geom::Vec2 s = k.senders_[sv];
    for (int c : rcell_touched_) {
      const std::size_t sc = static_cast<std::size_t>(c);
      const auto& mem = rcell_members_[sc];
      double lo = 0.0;
      double hi = 0.0;
      FarFieldKernel::BoxDistance(k.receiver_cells_[sc], s, &lo, &hi);
      if (lo <= k.receiver_near_) {
        for (int w : mem) {
          const std::size_t sw = static_cast<std::size_t>(w);
          const double a = k.AffectanceNear(v, w);
          in_lo_[sw] += a * (1.0 - g);
          in_hi_[sw] += a * (1.0 + g);
        }
        continue;
      }
      const double inv_lo = 1.0 / k.BoundPow(hi);
      const double inv_hi = 1.0 / k.BoundPow(lo);
      for (int w : mem) {
        const std::size_t sw = static_cast<std::size_t>(w);
        const double cf = k.cf_[sw];
        in_lo_[sw] += cf * inv_lo * (1.0 - g);
        in_hi_[sw] += cf * inv_hi * (1.0 + g);
      }
    }
  } else {
    // Fold the new member's four sums over the existing members in
    // insertion order, and push its pressure onto each existing member's
    // running sums -- the same association order the dense accumulator
    // produces (the dense version also adds the member's own +0.0 entry,
    // which cannot change an IEEE sum of non-negative terms).
    double in_raw = 0.0;
    double in = 0.0;
    double out_raw = 0.0;
    double out = 0.0;
    for (int w : members_) {
      const std::size_t sw = static_cast<std::size_t>(w);
      const double aw_v = k.AffectanceExact(w, v);  // w's pressure on v
      const double av_w = k.AffectanceExact(v, w);  // v's pressure on w
      in_raw += aw_v;
      in += aw_v < 1.0 ? aw_v : 1.0;
      out_raw += av_w;
      out += av_w < 1.0 ? av_w : 1.0;
      in_raw_m_[sw] += av_w;
      in_m_[sw] += av_w < 1.0 ? av_w : 1.0;
      out_raw_m_[sw] += aw_v;
      out_m_[sw] += aw_v < 1.0 ? aw_v : 1.0;
    }
    in_raw_m_[sv] = in_raw;
    in_m_[sv] = in;
    out_raw_m_[sv] = out_raw;
    out_m_[sv] = out;
  }
  members_.push_back(v);
  in_set_[sv] = 1;

  const int sc = k.sender_cell_of_[sv];
  if (scell_members_[static_cast<std::size_t>(sc)].empty()) {
    scell_touched_.push_back(sc);
  }
  scell_members_[static_cast<std::size_t>(sc)].push_back(v);
  const int rc = k.receiver_cell_of_[sv];
  if (rcell_members_[static_cast<std::size_t>(rc)].empty()) {
    rcell_touched_.push_back(rc);
  }
  rcell_members_[static_cast<std::size_t>(rc)].push_back(v);
  const double cf = k.cf_[sv];
  rcell_cf_sum_[static_cast<std::size_t>(rc)] += cf;
  if (cf > rcell_cf_max_[static_cast<std::size_t>(rc)]) {
    rcell_cf_max_[static_cast<std::size_t>(rc)] = cf;
  }
  if (pooled) {
    t2_pass_.push_back(0.0);
    t2_fail_.push_back(0.0);
    pass_limit_.push_back(0.0);
    RefreshHeadroom(members_.size() - 1);
  }
}

void FarFieldAccumulator::Clear() {
  for (int v : members_) {
    const std::size_t sv = static_cast<std::size_t>(v);
    in_set_[sv] = 0;
    in_m_[sv] = 0.0;
    in_raw_m_[sv] = 0.0;
    out_m_[sv] = 0.0;
    out_raw_m_[sv] = 0.0;
    upto_[sv] = 0;
    in_lo_[sv] = 0.0;
    in_hi_[sv] = 0.0;
  }
  members_.clear();
  for (int c : scell_touched_) {
    scell_members_[static_cast<std::size_t>(c)].clear();
  }
  scell_touched_.clear();
  for (int c : rcell_touched_) {
    rcell_members_[static_cast<std::size_t>(c)].clear();
    rcell_cf_sum_[static_cast<std::size_t>(c)] = 0.0;
    rcell_cf_max_[static_cast<std::size_t>(c)] = 0.0;
  }
  rcell_touched_.clear();
  t2_pass_.clear();
  t2_fail_.clear();
  pass_limit_.clear();
}

void FarFieldAccumulator::CatchUp(int w) const {
  const FarFieldKernel& k = *kernel_;
  if (!k.uniform_power_ || k.epsilon_ == 0.0) return;  // eager modes
  const std::size_t sw = static_cast<std::size_t>(w);
  const std::size_t end = members_.size();
  if (static_cast<std::size_t>(upto_[sw]) == end) return;
  // Replay the additions the dense accumulator would have performed
  // eagerly, in the same order: members before w (its own construction
  // fold), then members after w (their Add-time pushes).  members_ holds
  // exactly that sequence, and w's own entry contributes a +0.0 that
  // cannot change an IEEE sum of non-negative terms.
  for (std::size_t j = static_cast<std::size_t>(upto_[sw]); j < end; ++j) {
    const int u = members_[j];
    const double au_w = k.AffectanceExact(u, w);
    const double aw_u = k.AffectanceExact(w, u);
    in_raw_m_[sw] += au_w;
    in_m_[sw] += au_w < 1.0 ? au_w : 1.0;
    out_raw_m_[sw] += aw_u;
    out_m_[sw] += aw_u < 1.0 ? aw_u : 1.0;
  }
  upto_[sw] = static_cast<int>(end);
  // The exact fold is the tightest certificate there is: collapse the
  // brackets onto it (the decision band absorbs fold-vs-real rounding).
  in_lo_[sw] = in_raw_m_[sw];
  in_hi_[sw] = in_raw_m_[sw];
}

double FarFieldAccumulator::In(int v) const {
  DL_CHECK(Contains(v), "far-field sums are member-only");
  CatchUp(v);
  return in_m_[static_cast<std::size_t>(v)];
}

double FarFieldAccumulator::InRaw(int v) const {
  DL_CHECK(Contains(v), "far-field sums are member-only");
  CatchUp(v);
  return in_raw_m_[static_cast<std::size_t>(v)];
}

double FarFieldAccumulator::Out(int v) const {
  DL_CHECK(Contains(v), "far-field sums are member-only");
  CatchUp(v);
  return out_m_[static_cast<std::size_t>(v)];
}

double FarFieldAccumulator::OutRaw(int v) const {
  DL_CHECK(Contains(v), "far-field sums are member-only");
  CatchUp(v);
  return out_raw_m_[static_cast<std::size_t>(v)];
}

FarFieldKernel::Interval FarFieldAccumulator::CandidateInRawBounds(
    int v) const {
  const FarFieldKernel& k = *kernel_;
  const geom::Vec2 p = k.receivers_[static_cast<std::size_t>(v)];
  const double kv = k.cf_[static_cast<std::size_t>(v)];
  double near_sum = 0.0;  // cheap bound spelling; in-band callers re-fold exact
  double far_lo = 0.0;
  double far_hi = 0.0;
  for (int c : scell_touched_) {
    const auto& cell = k.sender_cells_[static_cast<std::size_t>(c)];
    const auto& mem = scell_members_[static_cast<std::size_t>(c)];
    double lo = 0.0;
    double hi = 0.0;
    FarFieldKernel::BoxDistance(cell, p, &lo, &hi);
    if (lo <= k.sender_near_) {
      for (int w : mem) near_sum += k.AffectanceNear(w, v);
      continue;
    }
    const double cnt = static_cast<double>(mem.size());
    far_hi += cnt * (kv / k.BoundPow(lo));
    far_lo += cnt * (kv / k.BoundPow(hi));
  }
  return {(near_sum + far_lo) * (1.0 - FarFieldKernel::kGuard),
          (near_sum + far_hi) * (1.0 + FarFieldKernel::kGuard)};
}

FarFieldKernel::Interval FarFieldAccumulator::CandidateInClampedBounds(
    int v) const {
  const FarFieldKernel& k = *kernel_;
  const geom::Vec2 p = k.receivers_[static_cast<std::size_t>(v)];
  const double kv = k.cf_[static_cast<std::size_t>(v)];
  double near_sum = 0.0;  // cheap bound spelling; in-band callers re-fold exact
  double far_lo = 0.0;
  double far_hi = 0.0;
  for (int c : scell_touched_) {
    const auto& cell = k.sender_cells_[static_cast<std::size_t>(c)];
    const auto& mem = scell_members_[static_cast<std::size_t>(c)];
    double lo = 0.0;
    double hi = 0.0;
    FarFieldKernel::BoxDistance(cell, p, &lo, &hi);
    if (lo <= k.sender_near_) {
      for (int w : mem) {
        const double a = k.AffectanceNear(w, v);
        near_sum += a < 1.0 ? a : 1.0;
      }
      continue;
    }
    const double cnt = static_cast<double>(mem.size());
    const double phi = kv / k.BoundPow(lo);
    const double plo = kv / k.BoundPow(hi);
    far_hi += cnt * (phi < 1.0 ? phi : 1.0);
    far_lo += cnt * (plo < 1.0 ? plo : 1.0);
  }
  return {(near_sum + far_lo) * (1.0 - FarFieldKernel::kGuard),
          (near_sum + far_hi) * (1.0 + FarFieldKernel::kGuard)};
}

FarFieldKernel::Interval FarFieldAccumulator::CandidateOutClampedBounds(
    int v) const {
  const FarFieldKernel& k = *kernel_;
  const geom::Vec2 q = k.senders_[static_cast<std::size_t>(v)];
  double near_sum = 0.0;  // cheap bound spelling; in-band callers re-fold exact
  double far_lo = 0.0;
  double far_hi = 0.0;
  for (int c : rcell_touched_) {
    const std::size_t sc = static_cast<std::size_t>(c);
    const auto& cell = k.receiver_cells_[sc];
    const auto& mem = rcell_members_[sc];
    double lo = 0.0;
    double hi = 0.0;
    FarFieldKernel::BoxDistance(cell, q, &lo, &hi);
    // A cell pools only when the per-member *lower* ends cannot clamp
    // (cf_max / d_hi^alpha <= 1); otherwise sum-and-max aggregates cannot
    // bound sum-of-min from below and the cell is evaluated pairwise.
    bool pairwise = lo <= k.receiver_near_;
    if (!pairwise) {
      const double inv_hi = 1.0 / k.BoundPow(hi);
      if (rcell_cf_max_[sc] * inv_hi > 1.0) {
        pairwise = true;
      } else {
        const double cnt = static_cast<double>(mem.size());
        const double phi_sum = rcell_cf_sum_[sc] / k.BoundPow(lo);
        far_hi += phi_sum < cnt ? phi_sum : cnt;
        far_lo += rcell_cf_sum_[sc] * inv_hi;
      }
    }
    if (pairwise) {
      for (int w : mem) {
        const double a = k.AffectanceNear(v, w);
        near_sum += a < 1.0 ? a : 1.0;
      }
    }
  }
  return {(near_sum + far_lo) * (1.0 - FarFieldKernel::kGuard),
          (near_sum + far_hi) * (1.0 + FarFieldKernel::kGuard)};
}

double FarFieldAccumulator::ExactInRaw(int v) const {
  double total = 0.0;
  for (int w : members_) total += kernel_->AffectanceExact(w, v);
  return total;
}

double FarFieldAccumulator::ExactBudget(int v) const {
  // Out(v) + In(v) of the dense accumulator: two clamped folds in member
  // insertion order, then one add.
  const FarFieldKernel& k = *kernel_;
  double out = 0.0;
  for (int w : members_) {
    const double a = k.AffectanceExact(v, w);
    out += a < 1.0 ? a : 1.0;
  }
  double in = 0.0;
  for (int w : members_) {
    const double a = k.AffectanceExact(w, v);
    in += a < 1.0 ? a : 1.0;
  }
  return out + in;
}

bool FarFieldAccumulator::CanAddFeasibly(int v) const {
  FarFieldAdmissionCheckCounter().Add();
  DL_CHECK(!Contains(v), "candidate already in the accumulator");
  const FarFieldKernel& k = *kernel_;
  const bool pooled = k.uniform_power_ && k.epsilon_ > 0.0;

  // (a) candidate's raw in-sum vs 1 (dense: InRaw(v) > 1.0).
  bool decided = false;
  if (pooled) {
    const FarFieldKernel::Interval b = CandidateInRawBounds(v);
    if (b.lower > 1.0 + FarFieldKernel::kBand) {
      FarFieldCertifiedRejectCounter().Add();
      return false;
    }
    if (b.upper <= 1.0 - FarFieldKernel::kBand) {
      FarFieldCertifiedAcceptCounter().Add();
      decided = true;
    } else {
      FarFieldExactFallbackCounter().Add();
    }
  }
  if (!decided && ExactInRaw(v) > 1.0) return false;

  // (b) every member's headroom vs the candidate's pressure (dense:
  // InRaw(w) + AffectanceRaw(v, w) > 1.0).  The pooled path certifies each
  // member through its precomputed d^2 thresholds -- pow-free unless the
  // pressure lands inside the 1e-9 band of the member's headroom.
  if (pooled) {
    const geom::Vec2 s = k.senders_[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < members_.size(); ++i) {
      const int w = members_[i];
      const geom::Vec2 r = k.receivers_[static_cast<std::size_t>(w)];
      const double d2 = (s - r).NormSq();
      const std::size_t sw = static_cast<std::size_t>(w);
      if (in_hi_[sw] > pass_limit_[i]) RefreshHeadroom(i);
      if (d2 > t2_pass_[i]) continue;
      if (d2 < t2_fail_[i]) return false;
      // Inside the certification band: the dense comparison, on the
      // caught-up exact fold.  The catch-up collapses the member's
      // brackets, so refresh its thresholds afterwards -- they may have
      // been conservative from bracket slack.
      CatchUp(w);
      if (in_raw_m_[sw] + k.AffectanceExact(v, w) > 1.0) {
        return false;
      }
      RefreshHeadroom(i);
    }
  } else {
    for (int w : members_) {
      if (in_raw_m_[static_cast<std::size_t>(w)] + k.AffectanceExact(v, w) >
          1.0) {
        return false;
      }
    }
  }
  return true;
}

void FarFieldAccumulator::RefreshHeadroom(std::size_t i) const {
  // Member w rejects a candidate at real pressure a > h and passes at
  // a < h for headroom h = 1 - InRaw(w); in the distance domain
  // a = cf_w / d^alpha, so d^2 thresholds certify each side outside an
  // absolute 1e-9 band around the threshold (absolute, not relative to h:
  // the dense fp fold's error scales with the ~1 magnitudes of the sums,
  // not with a tiny headroom).
  //
  // The thresholds are maintained lazily instead of rebuilt for every
  // member on every Add.  h only shrinks as members join, so a stale fail
  // threshold stays valid (it certifies a > h_old + band >= h + band).
  // The pass threshold is computed for the halved headroom h/2, which
  // keeps it valid until h actually halves; pass_limit_ records the
  // in-raw level where that happens and CanAddFeasibly refreshes past it.
  // Each refresh halves the certified headroom, so a member is refreshed
  // O(log(h_0 / band)) times over a run instead of once per Add.
  const FarFieldKernel& k = *kernel_;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double band = FarFieldKernel::kBand;
  const double g = FarFieldKernel::kGuard;
  const double inv = 2.0 / k.alpha_;
  const std::size_t sw = static_cast<std::size_t>(members_[i]);
  // Headroom from the certified brackets, not the (possibly stale) exact
  // fold: h_pass underestimates it (safe for pass certificates), h_fail
  // overestimates it (safe for fail certificates).  A CatchUp collapses
  // the brackets and the next refresh recovers the full precision.
  const double h_pass = 1.0 - in_hi_[sw];
  const double h_fail = 1.0 - in_lo_[sw];
  const double cf = k.cf_[sw];
  t2_fail_[i] = h_fail + band > 0.0
                    ? std::pow(cf / (h_fail + band), inv) * (1.0 - g)
                    : kInf;
  const double h_half = 0.5 * h_pass;
  if (h_half > band) {
    t2_pass_[i] = std::pow(cf / (h_half - band), inv) * (1.0 + g);
    pass_limit_[i] = 1.0 - h_half;
  } else if (h_pass > band) {
    // Too little headroom to halve: certify at the current level; any
    // further in-raw growth triggers another refresh (h <= 2*band, so
    // this branch drains within a few adds).
    t2_pass_[i] = std::pow(cf / (h_pass - band), inv) * (1.0 + g);
    pass_limit_[i] = in_hi_[sw];
  } else {
    // No certifiable pass side at the bracket's upper end.  Final unless
    // a CatchUp tightens the bracket back above the band (the in-band
    // exact path refreshes after catching up).
    t2_pass_[i] = kInf;
    pass_limit_[i] = kInf;
  }
}

bool FarFieldAccumulator::BudgetWithinHalf(int v) const {
  const FarFieldKernel& k = *kernel_;
  if (k.uniform_power_ && k.epsilon_ > 0.0) {
    const FarFieldKernel::Interval in_b = CandidateInClampedBounds(v);
    const FarFieldKernel::Interval out_b = CandidateOutClampedBounds(v);
    const double lower = in_b.lower + out_b.lower;
    const double upper = in_b.upper + out_b.upper;
    if (upper <= 0.5 - FarFieldKernel::kBand) {
      FarFieldCertifiedAcceptCounter().Add();
      return true;
    }
    if (lower > 0.5 + FarFieldKernel::kBand) {
      FarFieldCertifiedRejectCounter().Add();
      return false;
    }
    FarFieldExactFallbackCounter().Add();
  }
  return ExactBudget(v) <= 0.5;
}

bool FarFieldAccumulator::IsSeparatedFromMembers(int v, double eta,
                                                 double zeta) const {
  const FarFieldKernel& k = *kernel_;
  const double inv_zeta = 1.0 / zeta;
  const double eta_pow = std::pow(eta, zeta);  // as SeparationOracle's ctor
  const double fvv = k.link_decay_[static_cast<std::size_t>(v)];
  const double thr = eta_pow * fvv;
  const double thr_lo = thr * (1.0 - kSepBand);
  const double thr_hi = thr * (1.0 + kSepBand);
  // d^2 certification radii with doubled bands: m = min d^alpha over the
  // four endpoint pairs, so every pair distance^2 above r2_hi certifies the
  // dense oracle's clearly-separated branch, and any pair below r2_lo its
  // clearly-too-close branch.
  const double r2_hi = std::pow(thr * (1.0 + 2.0 * kSepBand), 2.0 / k.alpha_) *
                       (1.0 + FarFieldKernel::kGuard);
  const double r2_lo = std::pow(thr * (1.0 - 2.0 * kSepBand), 2.0 / k.alpha_) *
                       (1.0 - FarFieldKernel::kGuard);
  const geom::Vec2 sv_pos = k.senders_[static_cast<std::size_t>(v)];
  const geom::Vec2 rv_pos = k.receivers_[static_cast<std::size_t>(v)];

  // Whole member cells beyond the certification radius from both of the
  // candidate's endpoints are separated wholesale; only members of nearer
  // cells (by sender or receiver) run a per-member verdict.
  sep_scratch_.clear();
  const auto collect = [&](const std::vector<int>& touched,
                           const std::vector<std::vector<int>>& cell_members,
                           const std::vector<FarFieldKernel::CellAgg>& cells) {
    for (int c : touched) {
      const auto& cell = cells[static_cast<std::size_t>(c)];
      if (FarFieldKernel::BoxDistanceSqLower(cell, sv_pos) > r2_hi &&
          FarFieldKernel::BoxDistanceSqLower(cell, rv_pos) > r2_hi) {
        continue;
      }
      for (int w : cell_members[static_cast<std::size_t>(c)]) {
        const std::size_t sw = static_cast<std::size_t>(w);
        if (!sep_mark_[sw]) {
          sep_mark_[sw] = 1;
          sep_scratch_.push_back(w);
        }
      }
    }
  };
  collect(scell_touched_, scell_members_, k.sender_cells_);
  collect(rcell_touched_, rcell_members_, k.receiver_cells_);

  bool separated = true;
  for (int w : sep_scratch_) {
    sep_mark_[static_cast<std::size_t>(w)] = 0;  // reset while draining
    if (!separated || w == v) continue;
    const geom::Vec2 sw_pos = k.senders_[static_cast<std::size_t>(w)];
    const geom::Vec2 rw_pos = k.receivers_[static_cast<std::size_t>(w)];
    const double m2 =
        std::min(std::min((sv_pos - rw_pos).NormSq(), (sw_pos - rv_pos).NormSq()),
                 std::min((sv_pos - sw_pos).NormSq(), (rv_pos - rw_pos).NormSq()));
    if (m2 > r2_hi) continue;
    if (m2 < r2_lo) {
      separated = false;
      continue;
    }
    // Inside the certification band: the dense oracle's exact expressions.
    // MinPairDecay's entries are the space's pow(distance, alpha) values,
    // min-nested exactly as KernelCache::Build stores them.
    const double sv_rw = geom::GeometricDecay(sv_pos, rw_pos, k.alpha_);
    const double sw_rv = geom::GeometricDecay(sw_pos, rv_pos, k.alpha_);
    const double sv_sw = geom::GeometricDecay(sv_pos, sw_pos, k.alpha_);
    const double rv_rw = geom::GeometricDecay(rv_pos, rw_pos, k.alpha_);
    const double m = std::min(std::min(sv_rw, sw_rv), std::min(sv_sw, rv_rw));
    if (m > thr_hi) continue;
    if (m < thr_lo) {
      separated = false;
      continue;
    }
    if (std::pow(m, inv_zeta) < eta * std::pow(fvv, inv_zeta)) {
      separated = false;
    }
  }
  return separated;
}

// --- far-field admission pipelines ------------------------------------------

namespace {

std::vector<int> FarDecayOrder(const FarFieldKernel& kernel,
                               std::span<const int> candidates) {
  std::vector<int> order(candidates.begin(), candidates.end());
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return kernel.LinkDecay(a) < kernel.LinkDecay(b);
  });
  return order;
}

std::vector<int> FarAllLinks(const FarFieldKernel& kernel) {
  std::vector<int> all(static_cast<std::size_t>(kernel.NumLinks()));
  std::iota(all.begin(), all.end(), 0);
  return all;
}

}  // namespace

FarFieldAlg1Result FarFieldRunAlgorithm1(const FarFieldKernel& kernel,
                                         double zeta,
                                         std::span<const int> candidates) {
  DL_CHECK(zeta > 0.0, "zeta must be positive");
  const std::vector<int> order = FarDecayOrder(kernel, candidates);
  FarFieldAccumulator acc(kernel);
  const double eta = zeta / 2.0;
  for (int v : order) {
    if (acc.Contains(v)) continue;
    if (!kernel.CanOvercomeNoise(v)) continue;
    if (!acc.IsSeparatedFromMembers(v, eta, zeta)) continue;
    if (acc.BudgetWithinHalf(v)) acc.Add(v);
  }
  FarFieldAlg1Result result;
  result.admitted = acc.members();
  for (int v : result.admitted) {
    if (acc.In(v) <= 1.0) result.selected.push_back(v);
  }
  return result;
}

FarFieldAlg1Result FarFieldRunAlgorithm1(const FarFieldKernel& kernel,
                                         double zeta) {
  return FarFieldRunAlgorithm1(kernel, zeta, FarAllLinks(kernel));
}

std::vector<int> FarFieldGreedyFeasible(const FarFieldKernel& kernel,
                                        std::span<const int> candidates) {
  FarFieldAccumulator acc(kernel);
  for (int v : FarDecayOrder(kernel, candidates)) {
    if (acc.Contains(v)) continue;
    if (!kernel.CanOvercomeNoise(v)) continue;
    if (acc.CanAddFeasibly(v)) acc.Add(v);
  }
  return acc.members();
}

std::vector<int> FarFieldGreedyFeasible(const FarFieldKernel& kernel) {
  return FarFieldGreedyFeasible(kernel, FarAllLinks(kernel));
}

FarFieldSchedule FarFieldScheduleLinks(const FarFieldKernel& kernel,
                                       double zeta,
                                       std::span<const int> candidates) {
  FarFieldSchedule schedule;
  std::vector<int> remaining(candidates.begin(), candidates.end());
  while (!remaining.empty()) {
    std::vector<int> slot = FarFieldRunAlgorithm1(kernel, zeta, remaining).selected;
    if (slot.empty()) {
      const auto shortest = std::min_element(
          remaining.begin(), remaining.end(), [&](int a, int b) {
            return kernel.LinkDecay(a) < kernel.LinkDecay(b);
          });
      slot.push_back(*shortest);
    }
    std::set<int> scheduled(slot.begin(), slot.end());
    std::vector<int> rest;
    rest.reserve(remaining.size() - slot.size());
    for (int v : remaining) {
      if (scheduled.find(v) == scheduled.end()) rest.push_back(v);
    }
    remaining.swap(rest);
    schedule.slots.push_back(std::move(slot));
  }
  return schedule;
}

FarFieldSchedule FarFieldScheduleLinks(const FarFieldKernel& kernel,
                                       double zeta) {
  return FarFieldScheduleLinks(kernel, zeta, FarAllLinks(kernel));
}

bool FarFieldValidateSchedule(const FarFieldKernel& kernel,
                              const FarFieldSchedule& schedule,
                              std::span<const int> candidates) {
  std::multiset<int> scheduled;
  for (const auto& slot : schedule.slots) {
    if (slot.size() > 1 && !kernel.IsFeasibleCertified(slot)) return false;
    scheduled.insert(slot.begin(), slot.end());
  }
  std::multiset<int> wanted(candidates.begin(), candidates.end());
  return scheduled == wanted;
}

}  // namespace decaylib::sinr
