// Links, SINR, affectance and feasibility over decay spaces (Sec. 2.1, 2.4).
//
// A link l_v = (s_v, r_v) is an ordered sender/receiver pair of nodes in a
// decay space D = (V, f).  With power assignment P, sender s_u's
// interference at receiver r_v is P_u / f(s_u, r_v); transmission of a set S
// succeeds at l_v iff
//     SINR_v = (P_v / f_vv) / (N + sum_{u in S, u != v} P_u / f(s_u, r_v))
//            >= beta.
//
// The affectance reformulation (Sec. 2.4) normalises interference to the
// received signal:
//     a_w(v) = min(1, c_v * (P_w / P_v) * (f_vv / f_wv)),
//     c_v    = beta / (1 - beta N f_vv / P_v)  > beta,
// where f_wv = f(s_w, r_v).  A set S is feasible iff the in-affectance
// a_S(v) = sum_{w in S} a_w(v) is at most 1 for every l_v in S, and
// K-feasible iff a_S(v) <= 1/K.  Without the min-clamp the two forms are
// algebraically equivalent; tests pin this equivalence down.
//
// Link distances use the induced quasi-distance d = f^{1/zeta}:
//     d(l_v, l_w) = min{d(s_v,r_w), d(s_w,r_v), d(s_v,s_w), d(r_v,r_w)},
// and l_v is eta-separated from a set L iff d(l_v, l_w) >= eta * d_vv for
// every l_w in L (Sec. 2.4) -- the separation notion driving Algorithm 1 and
// the partition lemmas.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/decay_space.h"

namespace decaylib::sinr {

struct Link {
  int sender = 0;
  int receiver = 0;
  friend bool operator==(const Link&, const Link&) = default;
};

// Converts (sender, receiver) pairs -- e.g. spaces::LinkInstance::links --
// into Link values.
std::vector<Link> LinksFromPairs(std::span<const std::pair<int, int>> pairs);

struct SinrConfig {
  double beta = 1.0;   // SINR threshold (>= 1 in the paper's model)
  double noise = 0.0;  // ambient noise N
};

// Power assignments index by link id.
using PowerAssignment = std::vector<double>;

// A set of links over a decay space, with the SINR machinery.
// Holds a reference to the space: the space must outlive the system.
class LinkSystem {
 public:
  LinkSystem(const core::DecaySpace& space, std::vector<Link> links,
             SinrConfig config = {});

  int NumLinks() const noexcept { return static_cast<int>(links_.size()); }
  const core::DecaySpace& space() const noexcept { return *space_; }
  const SinrConfig& config() const noexcept { return config_; }
  const Link& link(int v) const { return links_[static_cast<std::size_t>(v)]; }
  const std::vector<Link>& links() const noexcept { return links_; }

  // f_vv = f(s_v, r_v): the decay (inverse gain) of link v itself.
  double LinkDecay(int v) const;

  // f_wv = f(s_w, r_v): decay from w's sender to v's receiver.
  double CrossDecay(int w, int v) const;

  // True iff l_v alone meets the SINR threshold: P_v / f_vv >= beta * N.
  // (With noise 0 this is always true.)  Affectance requires strict >.
  bool CanOvercomeNoise(int v, const PowerAssignment& power) const;

  // c_v = beta / (1 - beta N f_vv / P_v); equals beta when N = 0.
  // Requires CanOvercomeNoise strictly.
  double NoiseFactor(int v, const PowerAssignment& power) const;

  // a_w(v) per Sec. 2.4; a_v(v) = 0 by definition.
  double Affectance(int w, int v, const PowerAssignment& power) const;

  // a_w(v) without the min(1, .) clamp.  Feasibility checks use this form:
  // sum_w raw-a_w(v) <= 1 is *exactly* SINR_v >= beta, whereas the clamp can
  // under-count a single overwhelming interferer (e.g. the edge pairs of the
  // Theorem 3/6 constructions, whose affectance is 1 + epsilon).
  double AffectanceRaw(int w, int v, const PowerAssignment& power) const;

  // a_S(v) and a_v(S); links equal to v inside S contribute 0.
  double InAffectance(std::span<const int> S, int v,
                      const PowerAssignment& power) const;
  double OutAffectance(int v, std::span<const int> S,
                       const PowerAssignment& power) const;

  // Raw SINR of l_v when exactly the links in S transmit (v need not be in S;
  // its own entry is skipped if present).  Infinity when noise and
  // interference are both zero.
  double Sinr(int v, std::span<const int> S,
              const PowerAssignment& power) const;

  // Feasibility in the affectance form: a_S(v) <= 1 for all v in S, summing
  // *unclamped* affectances (equivalent to SINR_v >= beta for every link).
  bool IsFeasible(std::span<const int> S, const PowerAssignment& power) const;

  // K-feasibility: a_S(v) <= 1/K for all v in S (unclamped sums).
  bool IsKFeasible(std::span<const int> S, double K,
                   const PowerAssignment& power) const;

  // Feasibility in the raw SINR >= beta form (used to cross-check, and by
  // the distributed simulator).
  bool IsSinrFeasible(std::span<const int> S,
                      const PowerAssignment& power) const;

  // max_{v in S} a_S(v); 0 for sets of size < 2.
  double MaxInAffectance(std::span<const int> S,
                         const PowerAssignment& power) const;

  // --- quasi-distance geometry of links ---------------------------------

  // d_vv = d(s_v, r_v) = f_vv^{1/zeta}.
  double LinkLength(int v, double zeta) const;

  // d(l_v, l_w): min over the four endpoint quasi-distances.
  double LinkDistance(int v, int w, double zeta) const;

  // True iff d(l_v, l_w) >= eta * d_vv for all w in L (v's own entry,
  // if present, is skipped).
  bool IsSeparatedFrom(int v, std::span<const int> L, double eta,
                       double zeta) const;

  // True iff every link of L is eta-separated from the rest of L.
  bool IsSeparatedSet(std::span<const int> L, double eta, double zeta) const;

  // Link ids 0..NumLinks()-1 sorted by non-decreasing link decay f_vv --
  // the total order "prec" of Sec. 2.4 (ties by id).
  std::vector<int> OrderByDecay() const;

 private:
  const core::DecaySpace* space_;
  std::vector<Link> links_;
  SinrConfig config_;
};

// All link ids of a system: {0, 1, ..., n-1}.
std::vector<int> AllLinks(const LinkSystem& system);

}  // namespace decaylib::sinr
