// Rayleigh fading and the thresholding reduction (Dams-Kesselheim-Hoefer
// [10], cited in Sec. 2.1: models with a randomized filter "can be
// efficiently simulated by thresholding algorithms").
//
// Under Rayleigh fading every received power is an independent exponential
// with mean equal to its deterministic value.  The success probability of
// link v against transmitter set S has the classic closed form
//     P[success] = exp(-beta N / mu_v) * prod_{u in S\{v}} 1/(1 + beta mu_uv / mu_v),
// where mu_v = P_v / f_vv and mu_uv = P_u / f_uv.  Two facts make the
// reduction work, both checkable here:
//   * P[success] >= exp(-(c_v-normalised) affectance sum): feasible sets in
//     the thresholding model keep constant success probability under
//     Rayleigh;
//   * P[success] <= 1/(1 + max term): heavily affected links fail often.
#pragma once

#include <span>

#include "geom/rng.h"
#include "sinr/link_system.h"

namespace decaylib::sinr {

// Closed-form Rayleigh success probability of link v when S transmits
// (v's own entry in S is ignored).
double RayleighSuccessProbability(const LinkSystem& system, int v,
                                  std::span<const int> S,
                                  const PowerAssignment& power);

// Monte Carlo estimate of the same probability (draws independent
// exponential fades per transmitter); for validating the closed form.
double RayleighSuccessMonteCarlo(const LinkSystem& system, int v,
                                 std::span<const int> S,
                                 const PowerAssignment& power, int samples,
                                 geom::Rng& rng);

// The [10]-style lower bound exp(-beta N/mu_v) * exp(-sum beta mu_uv/mu_v):
// always <= RayleighSuccessProbability (since 1/(1+x) >= e^{-x}).
double RayleighSuccessLowerBound(const LinkSystem& system, int v,
                                 std::span<const int> S,
                                 const PowerAssignment& power);

}  // namespace decaylib::sinr
