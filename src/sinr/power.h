// Power assignments and the monotonicity property of Sec. 2.4.
//
// The paper works with a total order "prec" on links where l_v prec l_w
// implies f_vv <= f_ww.  A power assignment P is *monotone* if both
// P_v <= P_w and P_w / f_ww <= P_v / f_vv hold whenever l_v prec l_w:
// longer (higher-decay) links use no less power but receive no more signal.
// This captures the standard oblivious strategies:
//   uniform  P_v = P                    (both conditions tight/slack),
//   linear   P_v ∝ f_vv                 (received signal constant),
//   mean     P_v ∝ sqrt(f_vv)           (the geometric compromise),
// all special cases of the power-law family P_v ∝ f_vv^tau, tau in [0, 1].
#pragma once

#include "sinr/link_system.h"

namespace decaylib::sinr {

// P_v = level for every link.
PowerAssignment UniformPower(const LinkSystem& system, double level = 1.0);

// P_v = scale * f_vv^tau; tau in [0, 1] keeps the assignment monotone.
// tau = 0 is uniform, tau = 1 linear, tau = 1/2 mean power.
PowerAssignment PowerLaw(const LinkSystem& system, double tau,
                         double scale = 1.0);

PowerAssignment LinearPower(const LinkSystem& system, double scale = 1.0);
PowerAssignment MeanPower(const LinkSystem& system, double scale = 1.0);

// Checks the Sec. 2.4 monotonicity conditions over the decay order, with a
// relative tolerance for floating-point comparisons.
bool IsMonotonePower(const LinkSystem& system, const PowerAssignment& power,
                     double tol = 1e-9);

// Scales the assignment so that every link can overcome noise with margin
// (min_v P_v / (beta * N * f_vv) = margin); no-op when noise is 0.
PowerAssignment ScaledToOvercomeNoise(const LinkSystem& system,
                                      PowerAssignment power,
                                      double margin = 2.0);

}  // namespace decaylib::sinr
