#include "graph/generators.h"

#include "core/check.h"

namespace decaylib::graph {

Graph RandomGnp(int n, double p, geom::Rng& rng) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Chance(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph UnitDisk(std::span<const geom::Vec2> points, double radius) {
  const int n = static_cast<int>(points.size());
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (geom::Distance(points[static_cast<std::size_t>(u)],
                         points[static_cast<std::size_t>(v)]) <= radius) {
        g.AddEdge(u, v);
      }
    }
  }
  return g;
}

Graph Path(int n) {
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

Graph Cycle(int n) {
  DL_CHECK(n >= 3, "cycle needs at least 3 vertices");
  Graph g = Path(n);
  g.AddEdge(n - 1, 0);
  return g;
}

Graph Complete(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

Graph Star(int n) {
  DL_CHECK(n >= 1, "star needs at least the center");
  Graph g(n);
  for (int v = 1; v < n; ++v) g.AddEdge(0, v);
  return g;
}

Graph CliqueUnion(int k, int s) {
  DL_CHECK(k >= 1 && s >= 1, "clique union needs positive parameters");
  Graph g(k * s);
  for (int c = 0; c < k; ++c) {
    for (int i = 0; i < s; ++i) {
      for (int j = i + 1; j < s; ++j) {
        g.AddEdge(c * s + i, c * s + j);
      }
    }
  }
  return g;
}

}  // namespace decaylib::graph
