// Simple undirected graph on dense vertex ids 0..n-1.
//
// Used by the hardness constructions of Theorems 3 and 6 (reductions between
// MAX INDEPENDENT SET and CAPACITY) and by the separation-partitioning
// machinery (Lemma B.3 colours a conflict graph first-fit along an inductive
// ordering).
#pragma once

#include <span>
#include <vector>

namespace decaylib::graph {

class Graph {
 public:
  explicit Graph(int n);

  int size() const noexcept { return n_; }
  int NumEdges() const noexcept { return num_edges_; }

  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const noexcept {
    return adj_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(v)];
  }
  int Degree(int v) const noexcept {
    return static_cast<int>(neighbors_[static_cast<std::size_t>(v)].size());
  }
  // Neighbours of v in insertion order.
  std::span<const int> Neighbors(int v) const noexcept {
    return neighbors_[static_cast<std::size_t>(v)];
  }

  // True iff no two vertices of `vs` are adjacent.
  bool IsIndependentSet(std::span<const int> vs) const noexcept;

  // Induced subgraph on `vs` (vertex i of the result is vs[i]).
  Graph InducedSubgraph(std::span<const int> vs) const;

  // Complement graph (no self loops).
  Graph Complement() const;

 private:
  int n_;
  int num_edges_ = 0;
  std::vector<char> adj_;  // dense n x n adjacency (char avoids bitset proxy)
  std::vector<std::vector<int>> neighbors_;
};

}  // namespace decaylib::graph
