// Random and structured graph generators.
#pragma once

#include <span>

#include "geom/point.h"
#include "geom/rng.h"
#include "graph/graph.h"

namespace decaylib::graph {

// Erdos-Renyi G(n, p).
Graph RandomGnp(int n, double p, geom::Rng& rng);

// Unit-disk graph: edge iff |p_i - p_j| <= radius.
Graph UnitDisk(std::span<const geom::Vec2> points, double radius);

// Path 0-1-2-...-(n-1).
Graph Path(int n);

// Cycle on n >= 3 vertices.
Graph Cycle(int n);

// Complete graph K_n.
Graph Complete(int n);

// Star with center 0 and n-1 leaves.
Graph Star(int n);

// Disjoint union of k cliques of size s (n = k*s vertices); its maximum
// independent set has size exactly k, a handy ground truth for tests.
Graph CliqueUnion(int k, int s);

}  // namespace decaylib::graph
