#include "graph/coloring.h"

#include <algorithm>

namespace decaylib::graph {

DegeneracyResult DegeneracyOrder(const Graph& g) {
  const int n = g.size();
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  std::vector<char> removed(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) degree[static_cast<std::size_t>(v)] = g.Degree(v);
  DegeneracyResult result;
  result.order.reserve(static_cast<std::size_t>(n));
  for (int step = 0; step < n; ++step) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (removed[static_cast<std::size_t>(v)]) continue;
      if (best == -1 || degree[static_cast<std::size_t>(v)] <
                            degree[static_cast<std::size_t>(best)]) {
        best = v;
      }
    }
    result.degeneracy =
        std::max(result.degeneracy, degree[static_cast<std::size_t>(best)]);
    result.order.push_back(best);
    removed[static_cast<std::size_t>(best)] = 1;
    for (int u : g.Neighbors(best)) {
      if (!removed[static_cast<std::size_t>(u)]) {
        --degree[static_cast<std::size_t>(u)];
      }
    }
  }
  // Smallest-last convention: reverse so each vertex has few *later*
  // neighbours... in fact removal order already has that property with
  // respect to *remaining* vertices; we keep removal order, which is the
  // inductive order used by Lemma B.3.
  return result;
}

std::vector<int> FirstFitColoring(const Graph& g, std::span<const int> order) {
  const int n = g.size();
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  std::vector<char> used;
  for (int v : order) {
    used.assign(static_cast<std::size_t>(n) + 1, 0);
    for (int u : g.Neighbors(v)) {
      const int cu = color[static_cast<std::size_t>(u)];
      if (cu >= 0) used[static_cast<std::size_t>(cu)] = 1;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[static_cast<std::size_t>(v)] = c;
  }
  return color;
}

std::vector<int> DegeneracyColoring(const Graph& g) {
  // Colour in *reverse* removal order: each vertex then has at most
  // `degeneracy` already-coloured neighbours, so first-fit needs at most
  // degeneracy + 1 colours.
  std::vector<int> order = DegeneracyOrder(g).order;
  std::reverse(order.begin(), order.end());
  return FirstFitColoring(g, order);
}

std::vector<std::vector<int>> ColorClasses(std::span<const int> coloring) {
  int num_colors = 0;
  for (int c : coloring) num_colors = std::max(num_colors, c + 1);
  std::vector<std::vector<int>> classes(static_cast<std::size_t>(num_colors));
  for (std::size_t v = 0; v < coloring.size(); ++v) {
    classes[static_cast<std::size_t>(coloring[v])].push_back(
        static_cast<int>(v));
  }
  return classes;
}

}  // namespace decaylib::graph
