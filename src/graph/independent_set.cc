#include "graph/independent_set.h"

#include <algorithm>
#include <numeric>

namespace decaylib::graph {

namespace {

class Solver {
 public:
  explicit Solver(const Graph& g) : g_(g) {}

  std::vector<int> Solve() {
    std::vector<int> active(static_cast<std::size_t>(g_.size()));
    std::iota(active.begin(), active.end(), 0);
    std::vector<int> current;
    Recurse(active, current);
    std::sort(best_.begin(), best_.end());
    return best_;
  }

 private:
  void Recurse(const std::vector<int>& active, std::vector<int>& current) {
    if (current.size() + active.size() <= best_.size()) return;
    if (active.empty()) {
      best_ = current;
      return;
    }
    int pivot = active.front();
    int pivot_deg = -1;
    for (int v : active) {
      int deg = 0;
      for (int u : active) {
        if (g_.HasEdge(v, u)) ++deg;
      }
      if (deg > pivot_deg) {
        pivot_deg = deg;
        pivot = v;
      }
    }
    std::vector<int> included;
    included.reserve(active.size());
    for (int v : active) {
      if (v != pivot && !g_.HasEdge(pivot, v)) included.push_back(v);
    }
    current.push_back(pivot);
    Recurse(included, current);
    current.pop_back();
    if (pivot_deg > 0) {
      std::vector<int> excluded;
      excluded.reserve(active.size() - 1);
      for (int v : active) {
        if (v != pivot) excluded.push_back(v);
      }
      Recurse(excluded, current);
    }
  }

  const Graph& g_;
  std::vector<int> best_;
};

}  // namespace

std::vector<int> MaxIndependentSet(const Graph& g) {
  return Solver(g).Solve();
}

std::vector<int> GreedyIndependentSet(const Graph& g) {
  const int n = g.size();
  std::vector<char> removed(static_cast<std::size_t>(n), 0);
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) degree[static_cast<std::size_t>(v)] = g.Degree(v);
  std::vector<int> chosen;
  int remaining = n;
  while (remaining > 0) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (removed[static_cast<std::size_t>(v)]) continue;
      if (best == -1 || degree[static_cast<std::size_t>(v)] <
                            degree[static_cast<std::size_t>(best)]) {
        best = v;
      }
    }
    chosen.push_back(best);
    removed[static_cast<std::size_t>(best)] = 1;
    --remaining;
    for (int u : g.Neighbors(best)) {
      if (!removed[static_cast<std::size_t>(u)]) {
        removed[static_cast<std::size_t>(u)] = 1;
        --remaining;
        for (int w : g.Neighbors(u)) {
          --degree[static_cast<std::size_t>(w)];
        }
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace decaylib::graph
