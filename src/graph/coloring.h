// Degeneracy orderings and first-fit colouring.
//
// Lemma B.3 of the paper partitions a tau-separated link set into
// eta-separated classes by colouring a conflict graph first-fit along a
// rho-inductive (rho-degenerate) ordering; these are the graph primitives it
// uses.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace decaylib::graph {

struct DegeneracyResult {
  std::vector<int> order;  // vertices in removal order
  int degeneracy = 0;      // max back-degree along the ordering
};

// Smallest-last (degeneracy) ordering: repeatedly remove a minimum-degree
// vertex.  The returned `order` lists vertices so that each has at most
// `degeneracy` neighbours *later* in the order.
DegeneracyResult DegeneracyOrder(const Graph& g);

// First-fit colouring along the given vertex order (each vertex gets the
// smallest colour unused by already-coloured neighbours).  Returns the colour
// of each vertex; number of colours = 1 + max entry.
std::vector<int> FirstFitColoring(const Graph& g, std::span<const int> order);

// Convenience: first-fit along a degeneracy order; uses at most
// degeneracy + 1 colours.
std::vector<int> DegeneracyColoring(const Graph& g);

// Groups vertices by colour: result[c] lists the vertices with colour c.
std::vector<std::vector<int>> ColorClasses(std::span<const int> coloring);

}  // namespace decaylib::graph
