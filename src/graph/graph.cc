#include "graph/graph.h"

#include "core/check.h"

namespace decaylib::graph {

Graph::Graph(int n) : n_(n) {
  DL_CHECK(n >= 0, "negative vertex count");
  adj_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  neighbors_.resize(static_cast<std::size_t>(n));
}

void Graph::AddEdge(int u, int v) {
  DL_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_, "vertex out of range");
  DL_CHECK(u != v, "self loops are not allowed");
  if (HasEdge(u, v)) return;
  adj_[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
       static_cast<std::size_t>(v)] = 1;
  adj_[static_cast<std::size_t>(v) * static_cast<std::size_t>(n_) +
       static_cast<std::size_t>(u)] = 1;
  neighbors_[static_cast<std::size_t>(u)].push_back(v);
  neighbors_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
}

bool Graph::IsIndependentSet(std::span<const int> vs) const noexcept {
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      if (HasEdge(vs[i], vs[j])) return false;
    }
  }
  return true;
}

Graph Graph::InducedSubgraph(std::span<const int> vs) const {
  Graph sub(static_cast<int>(vs.size()));
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      if (HasEdge(vs[i], vs[j])) {
        sub.AddEdge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return sub;
}

Graph Graph::Complement() const {
  Graph comp(n_);
  for (int u = 0; u < n_; ++u) {
    for (int v = u + 1; v < n_; ++v) {
      if (!HasEdge(u, v)) comp.AddEdge(u, v);
    }
  }
  return comp;
}

}  // namespace decaylib::graph
