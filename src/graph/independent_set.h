// Maximum independent set: exact branch and bound and a greedy baseline.
//
// The hardness reductions of Theorems 3 and 6 map independent sets to
// feasible link sets one-to-one, so an exact MIS solver gives exact CAPACITY
// ground truth on the constructed decay spaces.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace decaylib::graph {

// Exact maximum independent set via branch and bound (include/exclude on a
// max-degree pivot with cardinality bound).  Practical to n ~ 60 on sparse
// and ~ 40 on dense graphs.
std::vector<int> MaxIndependentSet(const Graph& g);

// Greedy minimum-degree independent set: repeatedly take a vertex of minimum
// degree in the remaining graph and delete its neighbourhood.
std::vector<int> GreedyIndependentSet(const Graph& g);

}  // namespace decaylib::graph
