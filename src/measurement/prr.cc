#include "measurement/prr.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace decaylib::measurement {

double CaptureModel::ReceptionProbability(double sinr) const {
  if (sinr <= 0.0) return 0.0;
  return 1.0 / (1.0 + std::pow(beta / sinr, steepness));
}

std::vector<std::vector<double>> SimulatePrr(const core::DecaySpace& truth,
                                             const PrrConfig& config,
                                             geom::Rng& rng) {
  DL_CHECK(config.probes >= 1, "need at least one probe");
  DL_CHECK(config.noise > 0.0, "noise must be positive for probing");
  const int n = truth.size();
  std::vector<std::vector<double>> prr(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const double sinr = config.tx_power / (config.noise * truth(u, v));
      const double p = config.capture.ReceptionProbability(sinr);
      int received = 0;
      for (int k = 0; k < config.probes; ++k) {
        if (rng.Chance(p)) ++received;
      }
      prr[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] =
          static_cast<double>(received) / config.probes;
    }
  }
  return prr;
}

core::DecaySpace InferDecayFromPrr(
    const std::vector<std::vector<double>>& prr, const PrrConfig& config) {
  const int n = static_cast<int>(prr.size());
  DL_CHECK(n >= 1, "empty PRR table");
  const double clamp = 1.0 / (2.0 * config.probes);
  core::DecaySpace space(n);
  for (int u = 0; u < n; ++u) {
    DL_CHECK(static_cast<int>(prr[static_cast<std::size_t>(u)].size()) == n,
             "ragged PRR table");
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const double p = std::clamp(
          prr[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)], clamp,
          1.0 - clamp);
      // Invert p = 1 / (1 + (beta/sinr)^k):  sinr = beta * (1/p - 1)^{-1/k}.
      const double sinr =
          config.capture.beta *
          std::pow(1.0 / p - 1.0, -1.0 / config.capture.steepness);
      const double gain = sinr * config.noise / config.tx_power;
      space.Set(u, v, 1.0 / gain);
    }
  }
  return space;
}

}  // namespace decaylib::measurement
