#include "measurement/rssi.h"

#include <cmath>

#include "core/check.h"

namespace decaylib::measurement {

RssiTable SimulateRssi(const core::DecaySpace& truth, const RssiConfig& config,
                       geom::Rng& rng) {
  DL_CHECK(config.readings_per_pair >= 1, "need at least one reading");
  const int n = truth.size();
  RssiTable table(static_cast<std::size_t>(n),
                  std::vector<std::optional<double>>(
                      static_cast<std::size_t>(n), std::nullopt));
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const double true_rssi =
          config.tx_power_dbm - 10.0 * std::log10(truth(u, v));
      double sum = 0.0;
      for (int k = 0; k < config.readings_per_pair; ++k) {
        sum += true_rssi + rng.Normal(0.0, config.noise_sigma_db);
      }
      double rssi = sum / config.readings_per_pair;
      if (config.quantization_db > 0.0) {
        rssi = std::round(rssi / config.quantization_db) *
               config.quantization_db;
      }
      if (rssi >= config.sensitivity_dbm) {
        table[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = rssi;
      }
    }
  }
  return table;
}

core::DecaySpace InferDecayFromRssi(const RssiTable& table,
                                    const RssiConfig& config,
                                    double censored_decay) {
  const int n = static_cast<int>(table.size());
  DL_CHECK(n >= 1, "empty table");
  core::DecaySpace space(n);
  for (int u = 0; u < n; ++u) {
    DL_CHECK(static_cast<int>(table[static_cast<std::size_t>(u)].size()) == n,
             "ragged RSSI table");
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto& rssi =
          table[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
      if (rssi.has_value()) {
        space.Set(u, v,
                  std::pow(10.0, (config.tx_power_dbm - *rssi) / 10.0));
      } else {
        space.Set(u, v, censored_decay);
      }
    }
  }
  return space;
}

double CensoredFraction(const RssiTable& table) {
  const auto n = table.size();
  if (n <= 1) return 0.0;
  int censored = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v && !table[u][v].has_value()) ++censored;
    }
  }
  return static_cast<double>(censored) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace decaylib::measurement
