// RSSI-based population of decay spaces.
//
// Sec. 2.2 of the paper: decay matrices "are relatively easily obtained by
// measurements, which even the cheapest gadgets today provide".  This module
// simulates that measurement pipeline -- a transmitter beacons at a known
// power, receivers log quantised, noisy RSSI -- and inverts it back to a
// decay matrix, so experiments can quantify how much the measurement chain
// (quantisation, thermal noise, sensitivity censoring) distorts the inferred
// metricity.
#pragma once

#include <optional>
#include <vector>

#include "core/decay_space.h"
#include "geom/rng.h"

namespace decaylib::measurement {

struct RssiConfig {
  double tx_power_dbm = 0.0;       // beacon transmit power
  double quantization_db = 1.0;    // register granularity (0 = continuous)
  double noise_sigma_db = 0.5;     // per-reading measurement noise
  double sensitivity_dbm = -95.0;  // readings below this are censored
  int readings_per_pair = 8;       // averaged before quantisation
};

// One measured RSSI table: entry (u,v) is the averaged, quantised RSSI (dBm)
// at v of u's beacons, or nullopt if censored (below sensitivity).
using RssiTable = std::vector<std::vector<std::optional<double>>>;

// Simulates the beaconing campaign over ground-truth decays.
// RSSI_uv = tx_power_dbm - 10 log10 f(u,v) + noise, averaged, quantised.
RssiTable SimulateRssi(const core::DecaySpace& truth, const RssiConfig& config,
                       geom::Rng& rng);

// Inverts a table back to decays: f(u,v) = 10^{(tx_power - rssi)/10}.
// Censored entries get `censored_decay` (a conservative huge decay); pass the
// table's config so the inversion matches the simulation.
core::DecaySpace InferDecayFromRssi(const RssiTable& table,
                                    const RssiConfig& config,
                                    double censored_decay = 1e12);

// Fraction of ordered pairs censored in the table.
double CensoredFraction(const RssiTable& table);

}  // namespace decaylib::measurement
