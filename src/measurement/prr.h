// Packet-reception-rate based decay inference.
//
// The paper notes decays "can also be inferred by packet reception rates".
// The bridge is the SINR capture model validated by the experimental studies
// the paper cites: reception probability is a steep logistic in the SINR
// margin above the hardware threshold beta.  Probing a link with no
// concurrent transmitter makes SINR = P / (N f), so an observed PRR can be
// inverted for f.  The same logistic is reused by the distributed simulator
// as its optional soft-capture reception rule.
#pragma once

#include <vector>

#include "core/decay_space.h"
#include "geom/rng.h"

namespace decaylib::measurement {

struct CaptureModel {
  double beta = 2.0;           // SINR threshold (50% reception point)
  double steepness = 8.0;      // logistic slope in dB^-1 units (per ln)
  // P(receive | sinr) = 1 / (1 + (beta/sinr)^steepness): a smooth threshold
  // that tends to the hard SINR >= beta rule as steepness -> infinity.
  double ReceptionProbability(double sinr) const;
};

struct PrrConfig {
  CaptureModel capture;
  double tx_power = 1.0;
  double noise = 1e-6;
  int probes = 200;  // packets sent per ordered pair
};

// PRR table: fraction of probes received, per ordered pair.
std::vector<std::vector<double>> SimulatePrr(const core::DecaySpace& truth,
                                             const PrrConfig& config,
                                             geom::Rng& rng);

// Inverts a PRR table to decays via the capture model.  PRRs are clamped to
// [1/(2*probes), 1 - 1/(2*probes)] before inversion so 0%/100% rates map to
// finite decays.
core::DecaySpace InferDecayFromPrr(
    const std::vector<std::vector<double>>& prr, const PrrConfig& config);

}  // namespace decaylib::measurement
