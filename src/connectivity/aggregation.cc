#include "connectivity/aggregation.h"

#include <algorithm>
#include <limits>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::connectivity {

AggregationTree BuildAggregationTree(const core::DecaySpace& space,
                                     int sink) {
  const int n = space.size();
  DL_CHECK(sink >= 0 && sink < n, "sink out of range");
  AggregationTree tree;
  tree.sink = sink;
  tree.parent.assign(static_cast<std::size_t>(n), -1);

  // Prim: grow the tree from the sink; attach the outside node whose uplink
  // decay into the tree is smallest.
  std::vector<char> in_tree(static_cast<std::size_t>(n), 0);
  std::vector<double> best_decay(static_cast<std::size_t>(n),
                                 std::numeric_limits<double>::infinity());
  std::vector<int> best_parent(static_cast<std::size_t>(n), -1);
  in_tree[static_cast<std::size_t>(sink)] = 1;
  for (int v = 0; v < n; ++v) {
    if (v == sink) continue;
    best_decay[static_cast<std::size_t>(v)] = space(v, sink);
    best_parent[static_cast<std::size_t>(v)] = sink;
  }
  std::vector<int> attach_order;
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      if (pick == -1 || best_decay[static_cast<std::size_t>(v)] <
                            best_decay[static_cast<std::size_t>(pick)]) {
        pick = v;
      }
    }
    in_tree[static_cast<std::size_t>(pick)] = 1;
    tree.parent[static_cast<std::size_t>(pick)] =
        best_parent[static_cast<std::size_t>(pick)];
    tree.total_decay += best_decay[static_cast<std::size_t>(pick)];
    attach_order.push_back(pick);
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      if (space(v, pick) < best_decay[static_cast<std::size_t>(v)]) {
        best_decay[static_cast<std::size_t>(v)] = space(v, pick);
        best_parent[static_cast<std::size_t>(v)] = pick;
      }
    }
  }
  // Uplinks leaves-first: order nodes by decreasing depth.
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  for (int v : attach_order) {
    depth[static_cast<std::size_t>(v)] =
        1 + depth[static_cast<std::size_t>(
                tree.parent[static_cast<std::size_t>(v)])];
  }
  std::vector<int> nodes = attach_order;
  std::stable_sort(nodes.begin(), nodes.end(), [&](int a, int b) {
    return depth[static_cast<std::size_t>(a)] >
           depth[static_cast<std::size_t>(b)];
  });
  for (int v : nodes) {
    tree.uplinks.push_back({v, tree.parent[static_cast<std::size_t>(v)]});
  }
  return tree;
}

AggregationSchedule ScheduleAggregation(const core::DecaySpace& space,
                                        int sink, sinr::SinrConfig config) {
  AggregationSchedule result;
  result.tree = BuildAggregationTree(space, sink);
  const int n = space.size();

  const sinr::LinkSystem system(space, result.tree.uplinks, config);
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  // children_left[v] = number of v's children whose uplink is unscheduled.
  std::vector<int> children_left(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    const int p = result.tree.parent[static_cast<std::size_t>(v)];
    if (p >= 0) ++children_left[static_cast<std::size_t>(p)];
  }
  std::vector<char> done(static_cast<std::size_t>(system.NumLinks()), 0);
  int remaining = system.NumLinks();
  const std::vector<int> decay_order = system.OrderByDecay();

  while (remaining > 0) {
    std::vector<int> slot;
    std::vector<int> senders_this_slot;  // node ids transmitting in the slot
    for (int id : decay_order) {
      if (done[static_cast<std::size_t>(id)]) continue;
      const sinr::Link& link = system.link(id);
      if (children_left[static_cast<std::size_t>(link.sender)] > 0) continue;
      // Convergecast: a node cannot send and receive in the same slot, so
      // skip links whose parent is itself transmitting this slot (and links
      // whose sender is some scheduled link's receiver -- impossible here
      // since a node's uplink waits for all children).
      if (std::find(senders_this_slot.begin(), senders_this_slot.end(),
                    link.receiver) != senders_this_slot.end()) {
        continue;
      }
      slot.push_back(id);
      if (system.IsFeasible(slot, power)) {
        senders_this_slot.push_back(link.sender);
      } else {
        slot.pop_back();
      }
    }
    if (slot.empty()) {
      // Serve the shortest ready link alone (always exists: a deepest
      // unscheduled node has no pending children).
      for (int id : decay_order) {
        if (done[static_cast<std::size_t>(id)]) continue;
        const sinr::Link& link = system.link(id);
        if (children_left[static_cast<std::size_t>(link.sender)] == 0) {
          slot.push_back(id);
          break;
        }
      }
      DL_CHECK(!slot.empty(), "no schedulable uplink found");
    }
    for (int id : slot) {
      done[static_cast<std::size_t>(id)] = 1;
      --remaining;
      const sinr::Link& link = system.link(id);
      --children_left[static_cast<std::size_t>(link.receiver)];
    }
    result.schedule.slots.push_back(std::move(slot));
  }
  result.slots = result.schedule.Length();

  // Validate convergecast precedence: replay and check children-before-
  // parent plus per-slot feasibility.
  std::vector<int> pending = children_left;  // all zeros now; rebuild
  for (int v = 0; v < n; ++v) {
    pending[static_cast<std::size_t>(v)] = 0;
  }
  for (int v = 0; v < n; ++v) {
    const int p = result.tree.parent[static_cast<std::size_t>(v)];
    if (p >= 0) ++pending[static_cast<std::size_t>(p)];
  }
  result.convergecast_valid = true;
  for (const auto& slot : result.schedule.slots) {
    if (slot.size() > 1 && !system.IsFeasible(slot, power)) {
      result.convergecast_valid = false;
    }
    for (int id : slot) {
      const sinr::Link& link = system.link(id);
      if (pending[static_cast<std::size_t>(link.sender)] != 0) {
        result.convergecast_valid = false;
      }
    }
    for (int id : slot) {
      const sinr::Link& link = system.link(id);
      --pending[static_cast<std::size_t>(link.receiver)];
    }
  }
  return result;
}

}  // namespace decaylib::connectivity
