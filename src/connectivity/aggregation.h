// Connectivity and aggregation over decay spaces (transfer list's
// [51, 52, 34, 31, 6]: strong connectivity / data aggregation in
// polylogarithmic slots).
//
// The pipeline those works share: connect the nodes by a low-cost spanning
// structure (nearest-neighbor / MST-style in the metric, here in the decay
// space), orient it towards a sink, and schedule the resulting links.  Their
// analyses only use metric properties plus fading, so by Prop. 1 they apply
// in decay spaces with alpha -> zeta; this module builds the structure and
// schedules it so the benches can measure aggregation slot counts directly.
#pragma once

#include <vector>

#include "core/decay_space.h"
#include "scheduling/scheduler.h"
#include "sinr/link_system.h"

namespace decaylib::connectivity {

struct AggregationTree {
  int sink = 0;
  // parent[v] = parent node of v in the tree (parent[sink] = -1).
  std::vector<int> parent;
  // The tree's links, child -> parent, ordered leaves-first (a child always
  // appears before its parent's own uplink).
  std::vector<sinr::Link> uplinks;
  double total_decay = 0.0;  // sum of link decays (the "cost" of the tree)
};

// Minimum-decay spanning tree rooted at `sink` (Prim's algorithm on the
// decay matrix, using decay *towards the parent* f(child, parent) as edge
// weight -- the direction data flows).
AggregationTree BuildAggregationTree(const core::DecaySpace& space, int sink);

struct AggregationSchedule {
  AggregationTree tree;
  scheduling::Schedule schedule;   // slots of simultaneously feasible uplinks
  int slots = 0;
  bool convergecast_valid = false; // children scheduled before their parent
};

// Builds the tree and schedules its uplinks subject to convergecast
// precedence: a node's uplink may only be scheduled after all its children's
// uplinks (so aggregated data flows in one pass).  Greedy per slot: scan
// ready links (all children done) in decay order, admit while feasible.
AggregationSchedule ScheduleAggregation(const core::DecaySpace& space,
                                        int sink, sinr::SinrConfig config);

}  // namespace decaylib::connectivity
