// Minimal JSON document model: parse, navigate, serialise.
//
// The checkpoint/resume layer of the sweep runner (sweep/checkpoint.h)
// needs to read back the JSON sidecars it writes; the existing report
// writers (engine/report.cc, sweep/sweep_report.cc) only ever emit.  This
// module provides the round trip: a small value type over the six JSON
// kinds, a strict recursive-descent parser that returns core::Status
// diagnostics (with character offsets) instead of aborting on malformed
// input -- a checkpoint file is runtime input, possibly truncated by the
// very crash it is there to survive -- and a writer whose number format
// (%.17g) round-trips doubles bit-exactly through the parser.
//
// Deliberate limits, fine for sidecar-sized documents: numbers are doubles
// (integers above 2^53 lose precision), object keys keep insertion order
// and may repeat (lookup returns the first), nesting depth is capped, and
// non-finite numbers are *not* emitted by Dump -- callers that need
// inf/nan round trips store them as strings (checkpoint.cc does, for empty
// MetricSummary min/max sentinels).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace decaylib::io {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, Json>;

  Json() = default;  // null
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  static Json String(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  // Typed accessors; calling one on the wrong kind is a programmer error
  // (DL_CHECK) -- validate with kind() first when handling foreign input.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Json>& Items() const;    // array elements
  const std::vector<Member>& Members() const;  // object members, in order

  // Array/object builders.
  void Append(Json value);                       // array
  void Set(std::string key, Json value);         // object

  // First member named `key`, or nullptr (object kind required).
  const Json* Find(const std::string& key) const;

  // Strict parse of a complete document (trailing junk is an error).
  static core::StatusOr<Json> Parse(const std::string& text);

  // Compact serialisation ("%.17g" numbers, escaped strings).  Non-finite
  // numbers are a programmer error (store them as strings instead).
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

// Escapes a string for embedding inside a JSON string literal (quotes,
// backslashes, control characters; no surrounding quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace decaylib::io
