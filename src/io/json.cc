#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace decaylib::io {

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::String(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::AsBool() const {
  DL_CHECK(kind_ == Kind::kBool, "Json::AsBool on a non-bool value");
  return bool_;
}

double Json::AsNumber() const {
  DL_CHECK(kind_ == Kind::kNumber, "Json::AsNumber on a non-number value");
  return number_;
}

const std::string& Json::AsString() const {
  DL_CHECK(kind_ == Kind::kString, "Json::AsString on a non-string value");
  return string_;
}

const std::vector<Json>& Json::Items() const {
  DL_CHECK(kind_ == Kind::kArray, "Json::Items on a non-array value");
  return items_;
}

const std::vector<Json::Member>& Json::Members() const {
  DL_CHECK(kind_ == Kind::kObject, "Json::Members on a non-object value");
  return members_;
}

void Json::Append(Json value) {
  DL_CHECK(kind_ == Kind::kArray, "Json::Append on a non-array value");
  items_.push_back(std::move(value));
}

void Json::Set(std::string key, Json value) {
  DL_CHECK(kind_ == Kind::kObject, "Json::Set on a non-object value");
  members_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::Find(const std::string& key) const {
  DL_CHECK(kind_ == Kind::kObject, "Json::Find on a non-object value");
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a complete in-memory document.  Positions
// are byte offsets; errors carry the offset so truncated checkpoints are
// diagnosable.  Depth is capped to keep adversarial nesting from
// overflowing the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  core::StatusOr<Json> Run() {
    Json value;
    core::Status s = ParseValue(value, 0);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  core::Status Error(const std::string& what) const {
    return core::Status::IoError("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    std::size_t p = pos_;
    for (const char* c = word; *c != '\0'; ++c, ++p) {
      if (p >= text_.size() || text_[p] != *c) return false;
    }
    pos_ = p;
    return true;
  }

  core::Status ParseValue(Json& out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (core::Status st = ParseString(s); !st.ok()) return st;
        out = Json::String(std::move(s));
        return core::Status::Ok();
      }
      case 't':
        if (ConsumeWord("true")) {
          out = Json::Bool(true);
          return core::Status::Ok();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          out = Json::Bool(false);
          return core::Status::Ok();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          out = Json::Null();
          return core::Status::Ok();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  core::Status ParseObject(Json& out, int depth) {
    ++pos_;  // '{'
    out = Json::Object();
    SkipSpace();
    if (Consume('}')) return core::Status::Ok();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      if (core::Status st = ParseString(key); !st.ok()) return st;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      if (core::Status st = ParseValue(value, depth + 1); !st.ok()) return st;
      out.Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return core::Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  core::Status ParseArray(Json& out, int depth) {
    ++pos_;  // '['
    out = Json::Array();
    SkipSpace();
    if (Consume(']')) return core::Status::Ok();
    while (true) {
      Json value;
      if (core::Status st = ParseValue(value, depth + 1); !st.ok()) return st;
      out.Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return core::Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  core::Status ParseString(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return core::Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // \uXXXX; non-ASCII code points are passed through as UTF-8.
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  core::Status ParseNumber(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
      pos_ = start;
      return Error("invalid number '" + token + "'");
    }
    out = Json::Number(value);
    return core::Status::Ok();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

core::StatusOr<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      DL_CHECK(std::isfinite(number_),
               "Dump cannot emit non-finite numbers; store them as strings");
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      return buf;
    }
    case Kind::kString: {
      std::string out = "\"";
      out += JsonEscape(string_);
      out += '"';
      return out;
    }
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ",";
        out += items_[i].Dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        out += '"';
        out += JsonEscape(members_[i].first);
        out += "\":";
        out += members_[i].second.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace decaylib::io
