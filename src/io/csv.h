// Reading and writing decay matrices as CSV.
//
// The whole point of decay spaces is that the matrix *is* the model
// (Sec. 2.2: "decay space can either represent the truth-on-the-ground, or
// its representation/approximation as data").  This module provides the data
// interchange: square CSV matrices of decays, with the diagonal written as 0
// and ignored on read.  Parsing is strict -- a malformed matrix should fail
// loudly at the boundary rather than produce a subtly wrong space.
// Besides matrices, the module writes generic CSV tables (header + string
// rows, RFC-4180-style quoting) -- the export path of the sweep engine's
// per-cell results.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/decay_space.h"

namespace decaylib::io {

struct ParseResult {
  std::optional<core::DecaySpace> space;  // engaged on success
  std::string error;                      // human-readable reason on failure
};

// Parses a square CSV matrix of decays.  Accepts comments (# ...), blank
// lines, and scientific notation.  Diagonal entries must parse but are
// ignored; off-diagonal entries must be positive and finite.
ParseResult ReadDecayCsv(std::istream& in);
ParseResult ReadDecayCsvFile(const std::string& path);

// Writes the matrix with full round-trip precision (%.17g).
void WriteDecayCsv(const core::DecaySpace& space, std::ostream& out);
bool WriteDecayCsvFile(const core::DecaySpace& space, const std::string& path);

// One CSV cell, quoted per RFC 4180 when it contains a comma, a double
// quote, or a line break (embedded quotes are doubled).
std::string CsvEscape(const std::string& cell);

// Writes a header row followed by data rows.  Rows may be ragged; each is
// emitted as-is (no padding to the header width).
void WriteCsvTable(std::span<const std::string> header,
                   std::span<const std::vector<std::string>> rows,
                   std::ostream& out);
bool WriteCsvTableFile(std::span<const std::string> header,
                       std::span<const std::vector<std::string>> rows,
                       const std::string& path);

}  // namespace decaylib::io
