#include "io/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace decaylib::io {

namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

ParseResult ReadDecayCsv(std::istream& in) {
  std::vector<std::vector<double>> rows;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<double> row;
    std::stringstream ss(trimmed);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      const std::string value = Trim(cell);
      if (value.empty()) {
        return {std::nullopt, "line " + std::to_string(line_number) +
                                  ": empty cell"};
      }
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return {std::nullopt, "line " + std::to_string(line_number) +
                                  ": unparsable cell '" + value + "'"};
      }
      row.push_back(parsed);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return {std::nullopt, "no data rows"};
  const std::size_t n = rows.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i].size() != n) {
      return {std::nullopt,
              "matrix is not square: row " + std::to_string(i + 1) + " has " +
                  std::to_string(rows[i].size()) + " cells, expected " +
                  std::to_string(n)};
    }
  }
  core::DecaySpace space(static_cast<int>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;  // diagonal ignored
      const double v = rows[i][j];
      if (!(v > 0.0) || !std::isfinite(v)) {
        return {std::nullopt,
                "entry (" + std::to_string(i) + "," + std::to_string(j) +
                    ") must be a positive finite decay, got " +
                    std::to_string(v)};
      }
      space.Set(static_cast<int>(i), static_cast<int>(j), v);
    }
  }
  return {std::move(space), ""};
}

ParseResult ReadDecayCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {std::nullopt, "cannot open '" + path + "'"};
  return ReadDecayCsv(in);
}

void WriteDecayCsv(const core::DecaySpace& space, std::ostream& out) {
  const int n = space.size();
  char buf[64];
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::snprintf(buf, sizeof(buf), "%.17g", space(i, j));
      out << buf << (j + 1 < n ? "," : "\n");
    }
  }
}

bool WriteDecayCsvFile(const core::DecaySpace& space,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteDecayCsv(space, out);
  return out.good();
}

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void WriteCsvTable(std::span<const std::string> header,
                   std::span<const std::vector<std::string>> rows,
                   std::ostream& out) {
  const auto write_row = [&out](std::span<const std::string> row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << CsvEscape(row[c]) << (c + 1 < row.size() ? "," : "");
    }
    out << "\n";
  };
  write_row(header);
  for (const std::vector<std::string>& row : rows) write_row(row);
}

bool WriteCsvTableFile(std::span<const std::string> header,
                       std::span<const std::vector<std::string>> rows,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteCsvTable(header, rows, out);
  return out.good();
}

}  // namespace decaylib::io
