// Randomized distributed local broadcast (Sec. 3.3's flagship application).
//
// Every node holds one message and must deliver it to every node of its
// r-neighborhood.  The protocols are the standard decay-space adaptations of
// the randomized local-broadcast algorithms cited in the paper ([22, 68, 69,
// 32]): nodes transmit with a probability chosen so that the *expected*
// number of transmissions per neighborhood stays constant; the annulus
// argument (Theorem 2) then bounds the expected affectance at any listener
// by a function of the fading parameter gamma, which is what makes progress
// per round constant-probability.  Rounds-to-completion therefore tracks
// gamma -- the quantity bench e11 sweeps across spaces.
#pragma once

#include <vector>

#include "distributed/simulator.h"
#include "geom/rng.h"

namespace decaylib::distributed {

enum class BroadcastPolicy {
  kFixedProbability,     // every active node sends w.p. p each round
  kContentionInverse,    // node v sends w.p. min(p, c / active-neighbors)
};

struct BroadcastConfig {
  double neighborhood_r = 8.0;  // decay radius defining neighborhoods
  BroadcastPolicy policy = BroadcastPolicy::kContentionInverse;
  double probability = 0.1;     // p for kFixedProbability (also the cap)
  double contention_constant = 1.0;  // c for kContentionInverse
  int max_rounds = 100000;
};

struct BroadcastResult {
  bool completed = false;
  int rounds = 0;               // rounds executed
  long long transmissions = 0;  // total send events
  long long deliveries = 0;     // total (sender, neighbor) deliveries
  // deliveries_remaining[v]: undelivered neighbors of v at exit (empty sets
  // when completed).
  std::vector<int> deliveries_remaining;
};

// Runs local broadcast until every node delivered to its whole neighborhood
// or max_rounds elapsed.
BroadcastResult RunLocalBroadcast(const RoundSimulator& simulator,
                                  const BroadcastConfig& config,
                                  geom::Rng& rng);

}  // namespace decaylib::distributed
