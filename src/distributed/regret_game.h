// No-regret capacity game ([1] Asgeirsson-Mitra; extended in [11, 19, 12]).
//
// Every link plays {transmit, idle} with multiplicative-weights updates: the
// utility of transmitting is +1 on success and -penalty on failure, idling
// is worth 0.  On h(zeta)-amicable instances (Theorem 4), the long-run
// average number of concurrent successes is a constant fraction of
// OPT / h(zeta); bench e07/e08 compare the empirical average against
// Algorithm 1 and OPT.
#pragma once

#include <vector>

#include "geom/rng.h"
#include "sinr/link_system.h"

namespace decaylib::distributed {

struct RegretConfig {
  double learning_rate = 0.1;   // multiplicative-weights eta
  double failure_penalty = 1.0; // cost of a failed transmission
  int rounds = 2000;
  int measure_tail = 500;       // rounds at the end used for averaging
};

struct RegretResult {
  double average_successes = 0.0;  // mean concurrent successes in the tail
  double transmit_rate = 0.0;      // mean fraction of links transmitting
  std::vector<double> final_transmit_probability;  // per link
};

RegretResult RunRegretGame(const sinr::LinkSystem& system,
                           const RegretConfig& config, geom::Rng& rng);

}  // namespace decaylib::distributed
