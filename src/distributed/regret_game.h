// No-regret capacity game ([1] Asgeirsson-Mitra; extended in [11, 19, 12]).
//
// Every link plays {transmit, idle} with multiplicative-weights updates: the
// utility of transmitting is +1 on success and -penalty on failure, idling
// is worth 0.  On h(zeta)-amicable instances (Theorem 4), the long-run
// average number of concurrent successes is a constant fraction of
// OPT / h(zeta); bench e07/e08 compare the empirical average against
// Algorithm 1 and OPT.
//
// The hot path runs on a sinr::KernelCache: the per-round success checks
// read the cached cross-decay matrix instead of re-deriving every
// interference term from the decay space, so one O(n^2) kernel build serves
// the whole game.  The LinkSystem entry point keeps its historical
// uniform-power semantics and dispatches on size: below
// kRegretKernelCrossover links the O(n^2) kernel build costs more than the
// direct Sinr evaluations it would save (BENCH_E21 measured the cached
// route ~1.6x slower at n=96), so small systems take the naive route; at
// and above the crossover it builds one kernel and delegates.  The two
// routes are bit-identical at a fixed seed (the Sinr checks are the
// identical expression and both paths draw the same randomness stream), so
// the dispatch is result-invisible; the original per-round implementation
// survives as RunRegretGameNaive, the test oracle and bench A/B baseline.
#pragma once

#include <vector>

#include "geom/rng.h"
#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::distributed {

struct RegretConfig {
  double learning_rate = 0.1;   // multiplicative-weights eta, in (0, 1)
  double failure_penalty = 1.0; // cost of a failed transmission, >= 0
  int rounds = 2000;
  int measure_tail = 500;       // rounds at the end used for averaging
};

struct RegretResult {
  double average_successes = 0.0;  // mean concurrent successes in the tail
  double transmit_rate = 0.0;      // mean fraction of links transmitting
  std::vector<double> final_transmit_probability;  // per link

  // Bitwise equality over every field: the naive-vs-cached exactness gates
  // (tests, bench_e21) compare whole results, so a new field is covered
  // automatically.
  friend bool operator==(const RegretResult&, const RegretResult&) = default;
};

// Link count at which a one-off kernel build starts paying for itself for
// a *single* game (callers that already hold a warm kernel should use the
// KernelCache overload regardless of size).
inline constexpr int kRegretKernelCrossover = 128;

// Runs the game against a warm kernel (and its power assignment).
RegretResult RunRegretGame(const sinr::KernelCache& kernel,
                           const RegretConfig& config, geom::Rng& rng);

// Historical entry point (uniform power): naive evaluation below
// kRegretKernelCrossover links, one kernel build + the cached overload at
// or above it.  Bit-identical to the naive reference either way.
RegretResult RunRegretGame(const sinr::LinkSystem& system,
                           const RegretConfig& config, geom::Rng& rng);

// Naive reference (per-round LinkSystem::Sinr under uniform power): kept as
// the test oracle and bench A/B baseline for the cached path.
RegretResult RunRegretGameNaive(const sinr::LinkSystem& system,
                                const RegretConfig& config, geom::Rng& rng);

}  // namespace decaylib::distributed
