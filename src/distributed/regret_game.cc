#include "distributed/regret_game.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::distributed {

namespace {

// Shared game driver: sender sampling, the multiplicative-weights update and
// the tail accounting are common code, so at a fixed seed the naive and
// cached paths draw the identical randomness stream and can only differ
// through `succeeds` -- the per-sender SINR success check each path
// implements against its own machinery.
template <typename SuccessCheck>
RegretResult RunRegretLoop(int n, const RegretConfig& config, geom::Rng& rng,
                           SuccessCheck&& succeeds) {
  DL_CHECK(config.rounds >= config.measure_tail && config.measure_tail >= 1,
           "rounds must cover the measurement tail");
  DL_CHECK(config.learning_rate > 0.0 && config.learning_rate < 1.0,
           "learning rate must be in (0,1)");
  DL_CHECK(std::isfinite(config.failure_penalty) &&
               config.failure_penalty >= 0.0,
           "failure penalty must be a non-negative finite cost");

  // Weights for the two actions per link: [transmit, idle].
  std::vector<double> w_tx(static_cast<std::size_t>(n), 1.0);
  std::vector<double> w_idle(static_cast<std::size_t>(n), 1.0);

  RegretResult result;
  long long tail_successes = 0;
  long long tail_transmissions = 0;
  std::vector<int> senders;
  for (int round = 0; round < config.rounds; ++round) {
    senders.clear();
    for (int v = 0; v < n; ++v) {
      const double p = w_tx[static_cast<std::size_t>(v)] /
                       (w_tx[static_cast<std::size_t>(v)] +
                        w_idle[static_cast<std::size_t>(v)]);
      if (rng.Chance(p)) senders.push_back(v);
    }
    int successes = 0;
    for (int v : senders) {
      const bool ok = succeeds(v, senders);
      if (ok) ++successes;
      const double utility = ok ? 1.0 : -config.failure_penalty;
      // Multiplicative weights on the realised utility of the played action;
      // idle always has utility 0, so only the transmit weight moves.
      w_tx[static_cast<std::size_t>(v)] *=
          std::exp(config.learning_rate * utility);
      // Keep weights bounded for numeric safety.
      const double scale = w_tx[static_cast<std::size_t>(v)] +
                           w_idle[static_cast<std::size_t>(v)];
      if (scale > 1e100 || scale < 1e-100) {
        w_tx[static_cast<std::size_t>(v)] /= scale;
        w_idle[static_cast<std::size_t>(v)] /= scale;
      }
    }
    if (round >= config.rounds - config.measure_tail) {
      tail_successes += successes;
      tail_transmissions += static_cast<long long>(senders.size());
    }
  }
  result.average_successes =
      static_cast<double>(tail_successes) / config.measure_tail;
  result.transmit_rate = n == 0 ? 0.0
                                : static_cast<double>(tail_transmissions) /
                                      (static_cast<double>(config.measure_tail) * n);
  result.final_transmit_probability.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    result.final_transmit_probability.push_back(
        w_tx[static_cast<std::size_t>(v)] /
        (w_tx[static_cast<std::size_t>(v)] + w_idle[static_cast<std::size_t>(v)]));
  }
  return result;
}

}  // namespace

RegretResult RunRegretGame(const sinr::KernelCache& kernel,
                           const RegretConfig& config, geom::Rng& rng) {
  const double beta = kernel.system().config().beta;
  return RunRegretLoop(kernel.NumLinks(), config, rng,
                       [&](int v, const std::vector<int>& senders) {
                         return kernel.Sinr(v, senders) >= beta;
                       });
}

RegretResult RunRegretGame(const sinr::LinkSystem& system,
                           const RegretConfig& config, geom::Rng& rng) {
  if (system.NumLinks() < kRegretKernelCrossover) {
    return RunRegretGameNaive(system, config, rng);
  }
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return RunRegretGame(kernel, config, rng);
}

RegretResult RunRegretGameNaive(const sinr::LinkSystem& system,
                                const RegretConfig& config, geom::Rng& rng) {
  const sinr::PowerAssignment power = sinr::UniformPower(system);
  const double beta = system.config().beta;
  return RunRegretLoop(system.NumLinks(), config, rng,
                       [&](int v, const std::vector<int>& senders) {
                         return system.Sinr(v, senders, power) >= beta;
                       });
}

}  // namespace decaylib::distributed
