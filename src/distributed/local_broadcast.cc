#include "distributed/local_broadcast.h"

#include <algorithm>

#include "core/check.h"

namespace decaylib::distributed {

BroadcastResult RunLocalBroadcast(const RoundSimulator& simulator,
                                  const BroadcastConfig& config,
                                  geom::Rng& rng) {
  DL_CHECK(config.probability > 0.0 && config.probability <= 1.0,
           "probability must be in (0,1]");
  DL_CHECK(config.max_rounds >= 1, "need at least one round");
  const int n = simulator.space().size();

  // pending[v] = neighbors of v that have not yet received v's message.
  std::vector<std::vector<int>> pending(static_cast<std::size_t>(n));
  int active_count = 0;
  for (int v = 0; v < n; ++v) {
    pending[static_cast<std::size_t>(v)] =
        simulator.Neighborhood(v, config.neighborhood_r);
    if (!pending[static_cast<std::size_t>(v)].empty()) ++active_count;
  }

  BroadcastResult result;
  std::vector<int> transmitters;
  for (int round = 0; round < config.max_rounds && active_count > 0; ++round) {
    result.rounds = round + 1;
    transmitters.clear();
    for (int v = 0; v < n; ++v) {
      if (pending[static_cast<std::size_t>(v)].empty()) continue;
      double p = config.probability;
      if (config.policy == BroadcastPolicy::kContentionInverse) {
        // Contention = active nodes within v's neighborhood (v included).
        int contenders = 1;
        for (int u : simulator.Neighborhood(v, config.neighborhood_r)) {
          if (!pending[static_cast<std::size_t>(u)].empty()) ++contenders;
        }
        p = std::min(config.probability,
                     config.contention_constant / contenders);
      }
      if (rng.Chance(p)) transmitters.push_back(v);
    }
    result.transmissions += static_cast<long long>(transmitters.size());
    if (transmitters.empty()) continue;
    const std::vector<int> heard = simulator.Round(transmitters);
    for (int listener = 0; listener < n; ++listener) {
      const int sender = heard[static_cast<std::size_t>(listener)];
      if (sender < 0) continue;
      auto& waitlist = pending[static_cast<std::size_t>(sender)];
      const auto it = std::find(waitlist.begin(), waitlist.end(), listener);
      if (it != waitlist.end()) {
        waitlist.erase(it);
        ++result.deliveries;
        if (waitlist.empty()) --active_count;
      }
    }
  }
  result.completed = active_count == 0;
  result.deliveries_remaining.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    result.deliveries_remaining.push_back(
        static_cast<int>(pending[static_cast<std::size_t>(v)].size()));
  }
  return result;
}

}  // namespace decaylib::distributed
