// Slotted-round SINR network simulator over decay spaces.
//
// Each round, a set of nodes transmits with uniform power; every listening
// node receives the message of the (unique, since beta >= 1) transmitter
// whose SINR at the listener clears the threshold:
//     SINR(u -> v) = (P / f(u,v)) / (N + sum_{u' != u, transmitting} P / f(u',v)).
// This is exactly the reception model under which the randomized distributed
// algorithms of Sec. 3.3 operate; their analyses hinge on the fading
// parameter gamma of the space (the annulus argument), which bench e11
// demonstrates by running the same protocol on spaces of different gamma.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/decay_space.h"

namespace decaylib::distributed {

struct RadioConfig {
  double power = 1.0;
  double beta = 2.0;
  double noise = 1e-9;
};

class RoundSimulator {
 public:
  RoundSimulator(const core::DecaySpace& space, RadioConfig config);

  const core::DecaySpace& space() const noexcept { return *space_; }
  const RadioConfig& config() const noexcept { return config_; }

  // The transmitter heard by `listener` in a round where exactly
  // `transmitters` transmit, or nullopt (collision / silence / listener is
  // itself transmitting).
  std::optional<int> Heard(int listener,
                           std::span<const int> transmitters) const;

  // Reception report for all listeners: result[v] = heard sender or -1.
  std::vector<int> Round(std::span<const int> transmitters) const;

  // The r-neighborhood of node v in decay terms: nodes u != v with
  // f(v, u) <= r (v's message, sent at power P, arrives at u with signal at
  // least P/r).  The natural "direct communication" range of Sec. 3.
  std::vector<int> Neighborhood(int v, double r) const;

  // Largest decay r such that a lone transmitter at v still reaches every
  // node of its r-neighborhood over noise alone: r <= P / (beta * N).
  double MaxNoiseLimitedRange() const;

 private:
  const core::DecaySpace* space_;
  RadioConfig config_;
  // Cached received power, [listener * n + sender] = P / f(sender, listener):
  // Heard() runs over a contiguous row instead of re-deriving each gain from
  // the decay space per round.
  std::vector<double> recv_gain_;
};

}  // namespace decaylib::distributed
