// Distributed contention resolution for links (Kesselheim-Vocking style,
// [45] in the paper's transfer list).
//
// Each link keeps a transmission probability; every slot it transmits with
// that probability, doubling it (up to a cap) after a successful slot and
// halving it after a failed transmission.  A link retires after its first
// success.  The analysis in [45] only uses metric properties, so by Prop. 1
// it transfers to decay spaces with alpha replaced by zeta; the simulation
// here lets benches measure the slots-to-completion against the space's
// parameters rather than assume them.
#pragma once

#include <vector>

#include "geom/rng.h"
#include "sinr/link_system.h"

namespace decaylib::distributed {

struct ContentionConfig {
  double initial_probability = 0.25;
  double max_probability = 0.25;
  double min_probability = 1e-4;
  int max_slots = 100000;
};

struct ContentionResult {
  bool completed = false;      // all links succeeded at least once
  int slots = 0;               // slots executed
  long long transmissions = 0;
  std::vector<int> success_slot;  // per link, slot of first success (-1 if none)
};

// Runs the protocol with uniform power until every link has had one
// successful transmission (raw SINR >= beta rule) or max_slots elapsed.
ContentionResult RunContentionResolution(const sinr::LinkSystem& system,
                                         const ContentionConfig& config,
                                         geom::Rng& rng);

}  // namespace decaylib::distributed
