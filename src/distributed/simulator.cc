#include "distributed/simulator.h"

#include <algorithm>
#include <limits>

#include "core/check.h"

namespace decaylib::distributed {

RoundSimulator::RoundSimulator(const core::DecaySpace& space,
                               RadioConfig config)
    : space_(&space), config_(config) {
  DL_CHECK(config.power > 0.0, "power must be positive");
  DL_CHECK(config.beta >= 1.0, "thresholding model assumes beta >= 1");
  DL_CHECK(config.noise >= 0.0, "noise must be non-negative");
  // Precompute the received-power kernel once; a protocol run queries it
  // n times per round for many rounds.
  const std::size_t n = static_cast<std::size_t>(space.size());
  recv_gain_.resize(n * n);
  for (int listener = 0; listener < space.size(); ++listener) {
    double* row = recv_gain_.data() + static_cast<std::size_t>(listener) * n;
    for (int sender = 0; sender < space.size(); ++sender) {
      row[sender] =
          sender == listener ? 0.0 : config_.power / space(sender, listener);
    }
  }
}

std::optional<int> RoundSimulator::Heard(
    int listener, std::span<const int> transmitters) const {
  // A transmitting node hears nothing (half-duplex).
  if (std::find(transmitters.begin(), transmitters.end(), listener) !=
      transmitters.end()) {
    return std::nullopt;
  }
  const double* gains = recv_gain_.data() + static_cast<std::size_t>(listener) *
                                                static_cast<std::size_t>(
                                                    space_->size());
  // Total received power at the listener, and the strongest sender -- with
  // beta >= 1 at most one sender can clear the threshold, so the strongest
  // is the only candidate.
  double total = 0.0;
  std::optional<int> best;
  double best_signal = 0.0;
  for (int u : transmitters) {
    const double signal = gains[static_cast<std::size_t>(u)];
    total += signal;
    if (signal > best_signal) {
      best_signal = signal;
      best = u;
    }
  }
  if (!best.has_value()) return std::nullopt;
  const double interference = config_.noise + (total - best_signal);
  if (interference <= 0.0) return best;
  if (best_signal / interference >= config_.beta) return best;
  return std::nullopt;
}

std::vector<int> RoundSimulator::Round(
    std::span<const int> transmitters) const {
  std::vector<int> heard(static_cast<std::size_t>(space_->size()), -1);
  for (int v = 0; v < space_->size(); ++v) {
    const auto sender = Heard(v, transmitters);
    if (sender.has_value()) heard[static_cast<std::size_t>(v)] = *sender;
  }
  return heard;
}

std::vector<int> RoundSimulator::Neighborhood(int v, double r) const {
  std::vector<int> neighbors;
  for (int u = 0; u < space_->size(); ++u) {
    if (u != v && (*space_)(v, u) <= r) neighbors.push_back(u);
  }
  return neighbors;
}

double RoundSimulator::MaxNoiseLimitedRange() const {
  if (config_.noise <= 0.0) return std::numeric_limits<double>::infinity();
  return config_.power / (config_.beta * config_.noise);
}

}  // namespace decaylib::distributed
