#include "distributed/contention.h"

#include <algorithm>

#include "core/check.h"
#include "sinr/power.h"

namespace decaylib::distributed {

ContentionResult RunContentionResolution(const sinr::LinkSystem& system,
                                         const ContentionConfig& config,
                                         geom::Rng& rng) {
  DL_CHECK(config.initial_probability > 0.0 &&
               config.initial_probability <= 1.0,
           "initial probability must be in (0,1]");
  const int n = system.NumLinks();
  const sinr::PowerAssignment power = sinr::UniformPower(system);

  ContentionResult result;
  result.success_slot.assign(static_cast<std::size_t>(n), -1);
  std::vector<double> prob(static_cast<std::size_t>(n),
                           config.initial_probability);
  int active = n;
  std::vector<int> senders;
  for (int slot = 0; slot < config.max_slots && active > 0; ++slot) {
    result.slots = slot + 1;
    senders.clear();
    for (int v = 0; v < n; ++v) {
      if (result.success_slot[static_cast<std::size_t>(v)] >= 0) continue;
      if (rng.Chance(prob[static_cast<std::size_t>(v)])) senders.push_back(v);
    }
    result.transmissions += static_cast<long long>(senders.size());
    for (int v : senders) {
      const double sinr = system.Sinr(v, senders, power);
      auto& p = prob[static_cast<std::size_t>(v)];
      if (sinr >= system.config().beta) {
        result.success_slot[static_cast<std::size_t>(v)] = slot;
        --active;
        p = std::min(2.0 * p, config.max_probability);
      } else {
        p = std::max(p / 2.0, config.min_probability);
      }
    }
  }
  result.completed = active == 0;
  return result;
}

}  // namespace decaylib::distributed
