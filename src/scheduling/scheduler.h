// Link scheduling by repeated capacity extraction (theory transfer of the
// SCHEDULING results listed in Sec. 2.3).
//
// SCHEDULING asks for a partition of the link set into the fewest feasible
// slots.  Extracting an approximate maximum feasible subset per round gives
// an O(rho log n)-approximation when the extractor is rho-approximate -- the
// standard reduction the paper's transfer list relies on ([16, 17, 43]).
// Two extractors are provided: Algorithm 1 (zeta-aware) and the
// general-metric greedy baseline.
#pragma once

#include <span>
#include <vector>

#include "sinr/kernel.h"
#include "sinr/link_system.h"

namespace decaylib::scheduling {

enum class Extractor {
  kAlgorithm1,      // paper's Algorithm 1 per slot
  kGreedyFeasible,  // general-metric greedy per slot
};

struct Schedule {
  std::vector<std::vector<int>> slots;
  int Length() const noexcept { return static_cast<int>(slots.size()); }
};

// Schedules all candidate links (uniform power).  `zeta` is the metricity of
// the underlying space (used by Algorithm 1's separation test).  Guarantees
// termination: if an extraction round returns an empty set while links
// remain, the shortest remaining link is scheduled alone.  The KernelCache
// overload reuses a prebuilt kernel (e.g. across the tasks of a batched
// scenario run); the LinkSystem signatures build a uniform-power kernel
// internally and produce identical schedules.
Schedule ScheduleLinks(const sinr::KernelCache& kernel, double zeta,
                       Extractor extractor, std::span<const int> candidates);

Schedule ScheduleLinks(const sinr::LinkSystem& system, double zeta,
                       Extractor extractor, std::span<const int> candidates);

Schedule ScheduleLinks(const sinr::LinkSystem& system, double zeta,
                       Extractor extractor);

// True iff every slot is feasible under uniform power and the slots
// partition exactly the given candidate set.
bool ValidateSchedule(const sinr::KernelCache& kernel, const Schedule& schedule,
                      std::span<const int> candidates);
bool ValidateSchedule(const sinr::LinkSystem& system, const Schedule& schedule,
                      std::span<const int> candidates);

}  // namespace decaylib::scheduling
