#include "scheduling/scheduler.h"

#include <algorithm>
#include <set>

#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "core/check.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

namespace decaylib::scheduling {

Schedule ScheduleLinks(const sinr::KernelCache& kernel, double zeta,
                       Extractor extractor, std::span<const int> candidates) {
  Schedule schedule;
  std::vector<int> remaining(candidates.begin(), candidates.end());
  while (!remaining.empty()) {
    std::vector<int> slot;
    switch (extractor) {
      case Extractor::kAlgorithm1:
        slot = capacity::RunAlgorithm1(kernel, zeta, remaining).selected;
        break;
      case Extractor::kGreedyFeasible:
        slot = capacity::GreedyFeasible(kernel, remaining);
        break;
    }
    if (slot.empty()) {
      // Fall back to scheduling the shortest remaining link alone so the
      // schedule always completes (e.g. links that fail noise-margin tests
      // inside the extractor still occupy a slot of their own).
      const auto shortest = std::min_element(
          remaining.begin(), remaining.end(), [&](int a, int b) {
            return kernel.LinkDecay(a) < kernel.LinkDecay(b);
          });
      slot.push_back(*shortest);
    }
    std::set<int> scheduled(slot.begin(), slot.end());
    std::vector<int> rest;
    rest.reserve(remaining.size() - slot.size());
    for (int v : remaining) {
      if (scheduled.find(v) == scheduled.end()) rest.push_back(v);
    }
    remaining.swap(rest);
    schedule.slots.push_back(std::move(slot));
  }
  return schedule;
}

Schedule ScheduleLinks(const sinr::LinkSystem& system, double zeta,
                       Extractor extractor, std::span<const int> candidates) {
  // One kernel build serves every slot extraction: the affectance and
  // distance kernels do not depend on the shrinking candidate set.
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return ScheduleLinks(kernel, zeta, extractor, candidates);
}

Schedule ScheduleLinks(const sinr::LinkSystem& system, double zeta,
                       Extractor extractor) {
  const std::vector<int> all = sinr::AllLinks(system);
  return ScheduleLinks(system, zeta, extractor, all);
}

bool ValidateSchedule(const sinr::KernelCache& kernel, const Schedule& schedule,
                      std::span<const int> candidates) {
  std::multiset<int> scheduled;
  for (const auto& slot : schedule.slots) {
    if (slot.size() > 1 && !kernel.IsFeasible(slot)) return false;
    scheduled.insert(slot.begin(), slot.end());
  }
  std::multiset<int> wanted(candidates.begin(), candidates.end());
  return scheduled == wanted;
}

bool ValidateSchedule(const sinr::LinkSystem& system, const Schedule& schedule,
                      std::span<const int> candidates) {
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  return ValidateSchedule(kernel, schedule, candidates);
}

}  // namespace decaylib::scheduling
