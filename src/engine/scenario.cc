#include "engine/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <tuple>
#include <utility>

#include "core/check.h"
#include "core/metricity.h"
#include "geom/grid.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "obs/registry.h"
#include "sinr/power.h"
#include "spaces/samplers.h"

namespace decaylib::engine {

namespace {

// Registry handles of the geometry cache's LRU layer, resolved once.
// Metric name catalogue: docs/observability.md.
obs::Counter& GenerationHitCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("engine.geometry_generation_hits");
  return counter;
}

obs::Counter& GenerationEvictionCounter() {
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("engine.geometry_evictions");
  return counter;
}

// Seed policy: one independent, reproducible stream per (family, instance).
std::uint64_t InstanceSeed(std::uint64_t base, int index) {
  return geom::Mix64(base +
                     0x9e3779b97f4a7c15ULL *
                         (static_cast<std::uint64_t>(index) + 1));
}

// A decay space plus the planar points it was sampled from; `points` stays
// empty when the space is not coordinate-backed (no registered topology
// produces such a space today, but the pairing dispatch is written for it).
struct SampledSpace {
  core::DecaySpace space;
  std::vector<geom::Vec2> points;
};

// Geometric space over explicit points, with the spec's shadowing regime.
core::DecaySpace SpaceFromPoints(const ScenarioSpec& spec,
                                 const std::vector<geom::Vec2>& pts,
                                 geom::Rng& rng) {
  if (spec.sigma_db > 0.0) {
    return spaces::ShadowedGeometric(pts, spec.alpha, spec.sigma_db, rng,
                                     spec.symmetric_shadowing);
  }
  return core::DecaySpace::Geometric(pts, spec.alpha);
}

// --- topology generators ---------------------------------------------------
//
// Each produces a decay space over `points` nodes at roughly constant
// density, so instance difficulty scales with size rather than crowding.

SampledSpace UniformTopology(const ScenarioSpec& spec, int points,
                             geom::Rng& rng) {
  const double box = 2.0 * std::sqrt(static_cast<double>(points));
  std::vector<geom::Vec2> pts = geom::SampleUniform(points, box, box, rng);
  core::DecaySpace space = SpaceFromPoints(spec, pts, rng);
  return {std::move(space), std::move(pts)};
}

SampledSpace ClusteredTopology(const ScenarioSpec& spec, int points,
                               geom::Rng& rng) {
  const double box = 2.0 * std::sqrt(static_cast<double>(points));
  std::vector<geom::Vec2> pts;
  core::DecaySpace space = spaces::ClusteredGeometric(
      points, spec.hotspots, box, spec.cluster_sigma, spec.alpha,
      spec.sigma_db, rng, spec.symmetric_shadowing, &pts);
  return {std::move(space), std::move(pts)};
}

SampledSpace CorridorTopology(const ScenarioSpec& spec, int points,
                              geom::Rng& rng) {
  const double length = 2.0 * static_cast<double>(points);
  std::vector<geom::Vec2> pts;
  core::DecaySpace space = spaces::CorridorSpace(
      points, length, spec.corridor_width, spec.alpha, spec.sigma_db, rng,
      spec.symmetric_shadowing, &pts);
  return {std::move(space), std::move(pts)};
}

SampledSpace GridTopology(const ScenarioSpec& spec, int points,
                          geom::Rng& rng) {
  // Cell centers on a regular grid (spacing ~2), each jittered inside its
  // cell: a cellular layout with one node per cell.
  const double side = 2.0 * std::ceil(std::sqrt(static_cast<double>(points)));
  std::vector<geom::Vec2> pts = geom::SampleGrid(points, side, side);
  for (geom::Vec2& p : pts) {
    p.x += rng.Uniform(-0.5, 0.5);
    p.y += rng.Uniform(-0.5, 0.5);
  }
  core::DecaySpace space = SpaceFromPoints(spec, pts, rng);
  return {std::move(space), std::move(pts)};
}

using TopologyGenerator = SampledSpace (*)(const ScenarioSpec&, int,
                                           geom::Rng&);

const std::vector<std::pair<std::string, TopologyGenerator>>& TopologyTable() {
  static const std::vector<std::pair<std::string, TopologyGenerator>> table = {
      {"uniform", &UniformTopology},
      {"clustered", &ClusteredTopology},
      {"corridor", &CorridorTopology},
      {"grid", &GridTopology},
  };
  return table;
}

TopologyGenerator FindTopology(const std::string& name) {
  for (const auto& [key, gen] : TopologyTable()) {
    if (key == name) return gen;
  }
  return nullptr;
}

// Orientation shared by both pairing paths: along the weaker-decay
// direction (ties keep the lower id as sender), so the link's own decay
// f_vv is the pair's best case.
sinr::Link OrientPair(const core::DecaySpace& space, int i, int j) {
  if (space(i, j) <= space(j, i)) return {i, j};
  return {j, i};
}

}  // namespace

ScenarioInstance::ScenarioInstance(
    std::shared_ptr<const core::DecaySpace> space,
    std::vector<sinr::Link> links, sinr::SinrConfig config, double zeta)
    : space_(std::move(space)),
      system_(std::make_unique<sinr::LinkSystem>(*space_, std::move(links),
                                                 config)),
      power_(sinr::UniformPower(*system_)),
      zeta_(zeta) {}

std::vector<std::string> RegisteredTopologies() {
  std::vector<std::string> names;
  names.reserve(TopologyTable().size());
  for (const auto& [key, gen] : TopologyTable()) names.push_back(key);
  return names;
}

bool IsRegisteredTopology(const std::string& topology) {
  return FindTopology(topology) != nullptr;
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kDense: return "dense";
    case KernelMode::kFarField: return "farfield";
  }
  return "unknown";
}

std::optional<KernelMode> ParseKernelMode(const std::string& name) {
  if (name == "dense") return KernelMode::kDense;
  if (name == "farfield") return KernelMode::kFarField;
  return std::nullopt;
}

core::Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  using core::Status;
  if (!IsRegisteredTopology(spec.topology)) {
    return Status::InvalidArgument("unknown topology '" + spec.topology + "'");
  }
  if (spec.links < 1) {
    return Status::InvalidArgument("links must be >= 1");
  }
  if (spec.instances < 1) {
    return Status::InvalidArgument("instances must be >= 1");
  }
  if (!(std::isfinite(spec.alpha) && spec.alpha > 0.0)) {
    return Status::InvalidArgument(
        "alpha must be a positive finite decay exponent");
  }
  if (!(std::isfinite(spec.sigma_db) && spec.sigma_db >= 0.0)) {
    return Status::InvalidArgument(
        "sigma_db must be a non-negative finite shadowing spread");
  }
  if (!std::isfinite(spec.power_tau)) {
    return Status::InvalidArgument("power_tau must be finite");
  }
  // The SINR model requires beta >= 1 (LinkSystem's precondition); catching
  // it here keeps bad CLI/sweep input out of the constructor's DL_CHECK.
  if (!(std::isfinite(spec.beta) && spec.beta >= 1.0)) {
    return Status::InvalidArgument("beta must be a finite threshold >= 1");
  }
  if (!(std::isfinite(spec.noise) && spec.noise >= 0.0)) {
    return Status::InvalidArgument(
        "noise must be a non-negative finite ambient level");
  }
  if (!std::isfinite(spec.zeta)) {
    return Status::InvalidArgument(
        "zeta must be finite (> 0 explicit, 0 = alpha, < 0 = measured)");
  }
  if (spec.hotspots < 1) {
    return Status::InvalidArgument("hotspots must be >= 1");
  }
  if (!(std::isfinite(spec.cluster_sigma) && spec.cluster_sigma > 0.0)) {
    return Status::InvalidArgument("cluster_sigma must be positive and finite");
  }
  if (!(std::isfinite(spec.corridor_width) && spec.corridor_width > 0.0)) {
    return Status::InvalidArgument(
        "corridor_width must be positive and finite");
  }
  if (!(std::isfinite(spec.farfield_epsilon) && spec.farfield_epsilon >= 0.0)) {
    return Status::InvalidArgument(
        "farfield_epsilon must be a non-negative finite relative error bound");
  }
  // The far-field kernel pools geometric decay contributions per cell; the
  // certificate needs decays that are a pure function of distance (no
  // shadowing) and a uniform base power (the pooled factor c_v * f_vv must
  // not depend on the interferer).
  if (spec.kernel_mode == KernelMode::kFarField) {
    if (spec.sigma_db != 0.0) {
      return Status::InvalidArgument(
          "kernel_mode=farfield requires sigma_db == 0 (distance-pure decay)");
    }
    if (spec.power_tau != 0.0) {
      return Status::InvalidArgument(
          "kernel_mode=farfield requires uniform power (power_tau == 0)");
    }
  }
  // Dynamics knobs are validated unconditionally -- a spec is either valid
  // or it is not, independent of which tasks a given batch happens to run.
  const DynamicsSpec& dyn = spec.dynamics;
  if (!(std::isfinite(dyn.lambda) && dyn.lambda >= 0.0 && dyn.lambda <= 1.0)) {
    return Status::InvalidArgument(
        "lambda is a per-slot Bernoulli probability in [0, 1]");
  }
  if (dyn.queue_slots < 1) {
    return Status::InvalidArgument("queue_slots must be >= 1");
  }
  if (!(dyn.regret_learning_rate > 0.0 && dyn.regret_learning_rate < 1.0)) {
    return Status::InvalidArgument("regret learning rate must be in (0, 1)");
  }
  if (!(std::isfinite(dyn.regret_penalty) && dyn.regret_penalty >= 0.0)) {
    return Status::InvalidArgument(
        "regret penalty must be a non-negative finite cost");
  }
  if (dyn.regret_rounds < 1) {
    return Status::InvalidArgument("regret_rounds must be >= 1");
  }
  return Status::Ok();
}

std::vector<sinr::Link> PairLinksByDecay(const core::DecaySpace& space) {
  const int n = space.size();
  DL_CHECK(n >= 2 && n % 2 == 0, "pairing needs an even number of nodes");
  std::vector<std::tuple<double, int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) /
                2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      pairs.emplace_back(std::min(space(i, j), space(j, i)), i, j);
    }
  }
  // A full sort, deliberately: the greedy matching consumes nearly the
  // whole order before the last (far-apart) nodes pair up -- ~98% of the
  // n^2/2 candidates at n = 1024 nodes -- so lazy selection (heap pops)
  // only adds overhead.  PairLinksByDecayGrid sidesteps the order entirely
  // for coordinate-backed spaces.
  std::sort(pairs.begin(), pairs.end());
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  std::vector<sinr::Link> links;
  links.reserve(static_cast<std::size_t>(n / 2));
  for (const auto& [decay, i, j] : pairs) {
    if (used[static_cast<std::size_t>(i)] || used[static_cast<std::size_t>(j)])
      continue;
    used[static_cast<std::size_t>(i)] = 1;
    used[static_cast<std::size_t>(j)] = 1;
    links.push_back(OrientPair(space, i, j));
    if (static_cast<int>(links.size()) == n / 2) break;
  }
  return links;
}

std::vector<sinr::Link> PairLinksByDecayGrid(
    const core::DecaySpace& space, std::span<const geom::Vec2> points,
    double alpha) {
  const int n = space.size();
  DL_CHECK(n >= 2 && n % 2 == 0, "pairing needs an even number of nodes");
  DL_CHECK(static_cast<int>(points.size()) == n,
           "grid pairing needs one point per node");
  DL_CHECK(alpha > 0.0, "grid pairing needs a positive decay exponent");

  std::vector<int> alive(static_cast<std::size_t>(n));
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<int> best(static_cast<std::size_t>(n), -1);
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  // Matched pairs with their weights; sorted at the end so link ids come
  // out in exactly the ascending (weight, lo, hi) order the sorted greedy
  // emits them in.
  std::vector<std::tuple<double, int, int>> matched;
  matched.reserve(static_cast<std::size_t>(n / 2));

  while (!alive.empty()) {
    const geom::UniformGrid grid(points, alive);

    // Phase 1: every alive node's best alive partner under the greedy's
    // strict total order on pairs, (weight, lo id, hi id).  Weights are the
    // decay-matrix entries themselves; the expanding ring search stops once
    // the ring's distance bound proves -- via pow's weak monotonicity --
    // that no unvisited candidate can match the incumbent's weight, so ties
    // at equal weight (however the ids fall) are always still in play.
    for (const int i : alive) {
      const geom::Vec2 p = points[static_cast<std::size_t>(i)];
      int best_j = -1;
      double best_w = std::numeric_limits<double>::infinity();
      for (int ring = 0;; ++ring) {
        // The prune bound deliberately mirrors the space's
        // pow(distance, alpha) so the ring cutoff can never under-estimate
        // a candidate's decay.
        if (best_j >= 0 &&
            // decay-lint: allow(exactness-pow) -- mirrors the space's decay
            std::pow(grid.RingDistanceLowerBound(ring), alpha) > best_w) {
          break;
        }
        const bool any_cell = grid.VisitRing(p, ring, [&](int j) {
          if (j == i) return;
          const double w = std::min(space(i, j), space(j, i));
          if (best_j < 0 || w < best_w) {
            best_w = w;
            best_j = j;
          } else if (w == best_w) {
            const int lo = i < j ? i : j;
            const int hi = i < j ? j : i;
            const int blo = i < best_j ? i : best_j;
            const int bhi = i < best_j ? best_j : i;
            if (lo < blo || (lo == blo && hi < bhi)) best_j = j;
          }
        });
        if (!any_cell) break;
      }
      best[static_cast<std::size_t>(i)] = best_j;
    }

    // Phase 2: match every mutual-best pair (at least the globally minimal
    // pair is one, so every round makes progress) and drop it from play.
    for (const int i : alive) {
      const int j = best[static_cast<std::size_t>(i)];
      if (j > i && best[static_cast<std::size_t>(j)] == i) {
        matched.emplace_back(std::min(space(i, j), space(j, i)), i, j);
        used[static_cast<std::size_t>(i)] = 1;
        used[static_cast<std::size_t>(j)] = 1;
      }
    }
    std::erase_if(alive,
                  [&](int i) { return used[static_cast<std::size_t>(i)] != 0; });
  }

  std::sort(matched.begin(), matched.end());
  std::vector<sinr::Link> links;
  links.reserve(matched.size());
  for (const auto& [w, i, j] : matched) links.push_back(OrientPair(space, i, j));
  return links;
}

GeometryKey GeometryKeyOf(const ScenarioSpec& spec) {
  GeometryKey key;
  key.topology = spec.topology;
  key.links = spec.links;
  key.alpha = spec.alpha;
  key.sigma_db = spec.sigma_db;
  key.symmetric_shadowing = spec.symmetric_shadowing;
  key.seed = spec.seed;
  key.hotspots = spec.hotspots;
  key.cluster_sigma = spec.cluster_sigma;
  key.corridor_width = spec.corridor_width;
  return key;
}

ScenarioGeometry BuildGeometry(const ScenarioSpec& spec, int index,
                               PairingMode pairing) {
  DL_CHECK(spec.links >= 1, "scenario needs at least one link");
  DL_CHECK(index >= 0, "instance index must be non-negative");
  const TopologyGenerator generator = FindTopology(spec.topology);
  DL_CHECK(generator != nullptr, "unknown scenario topology");

  geom::Rng rng(InstanceSeed(spec.seed, index));
  const int points = 2 * spec.links;
  SampledSpace sampled = generator(spec, points, rng);

  ScenarioGeometry geometry;
  geometry.space = std::make_shared<const core::DecaySpace>(
      std::move(sampled.space));
  geometry.points = std::move(sampled.points);

  // Grid/MNN pairing requires decay to be a monotone function of point
  // distance, which shadowing destroys (the matrix is then arbitrary even
  // though points exist); both routes produce the identical matching.
  const bool monotone_geometry =
      !geometry.points.empty() && spec.sigma_db == 0.0;
  geometry.links =
      (pairing == PairingMode::kAuto && monotone_geometry)
          ? PairLinksByDecayGrid(*geometry.space, geometry.points, spec.alpha)
          : PairLinksByDecay(*geometry.space);
  return geometry;
}

double EnsureMeasuredZeta(ScenarioGeometry& geometry) {
  if (!geometry.zeta_measured) {
    geometry.measured_zeta = core::ComputeMetricity(*geometry.space).zeta;
    geometry.zeta_measured = true;
  }
  return geometry.measured_zeta;
}

ScenarioInstance ConfigureInstance(const ScenarioSpec& spec,
                                   const ScenarioGeometry& geometry) {
  // zeta policy: explicit > 0, geometric default (alpha) at 0, measured
  // per instance when negative (falling back to alpha for unconstrained
  // spaces, where any positive exponent works).
  double zeta = spec.zeta;
  if (zeta == 0.0) {
    zeta = spec.alpha;
  } else if (zeta < 0.0) {
    DL_CHECK(geometry.zeta_measured,
             "a zeta < 0 spec needs EnsureMeasuredZeta before configuring");
    zeta = geometry.measured_zeta > 0.0 ? geometry.measured_zeta : spec.alpha;
  }

  ScenarioInstance instance(geometry.space, geometry.links,
                            {spec.beta, spec.noise}, zeta);

  // The constructor's default power is already uniform; only replace it
  // when the spec asks for a power law or a noise-overcoming rescale.
  if (spec.power_tau != 0.0 || spec.noise > 0.0) {
    sinr::PowerAssignment power =
        spec.power_tau == 0.0
            ? instance.power()
            : sinr::PowerLaw(instance.system(), spec.power_tau);
    if (spec.noise > 0.0) {
      power = sinr::ScaledToOvercomeNoise(instance.system(), std::move(power));
    }
    instance.SetPower(std::move(power));
  }
  return instance;
}

ScenarioInstance BuildInstance(const ScenarioSpec& spec, int index,
                               PairingMode pairing) {
  ScenarioGeometry geometry = BuildGeometry(spec, index, pairing);
  if (spec.zeta < 0.0) EnsureMeasuredZeta(geometry);
  return ConfigureInstance(spec, geometry);
}

void GeometryCache::SetGenerations(int generations) {
  DL_CHECK(generations >= 1, "geometry cache needs at least one generation");
  capacity_ = generations;
  EvictOverCapacity();
}

void GeometryCache::EvictOverCapacity() {
  while (static_cast<int>(generations_.size()) > capacity_) {
    generations_.pop_back();
    ++evictions_;
    GenerationEvictionCounter().Add();
  }
}

void GeometryCache::Prepare(const ScenarioSpec& spec) {
  DL_CHECK(spec.instances >= 1, "geometry cache needs at least one instance");
  GeometryKey key = GeometryKeyOf(spec);
  auto it = std::find_if(
      generations_.begin(), generations_.end(),
      [&](const Generation& g) { return g.key == key; });
  if (it != generations_.end()) {
    // A generation's slots always match its key, so nothing invalidates:
    // splice the node to the front (no slot moves, warm references survive).
    if (it != generations_.begin()) {
      generations_.splice(generations_.begin(), generations_, it);
    }
    ++generation_hits_;
    GenerationHitCounter().Add();
  } else {
    generations_.emplace_front(Generation{std::move(key), {}});
    EvictOverCapacity();
  }
  std::deque<Slot>& slots = generations_.front().slots;
  if (static_cast<int>(slots.size()) < spec.instances) {
    slots.resize(static_cast<std::size_t>(spec.instances));
  }
}

const ScenarioGeometry& GeometryCache::Acquire(const ScenarioSpec& spec,
                                               int index, PairingMode pairing,
                                               bool* built) {
  DL_CHECK(!generations_.empty() &&
               GeometryKeyOf(spec) == generations_.front().key,
           "Acquire needs a Prepare with a key-equal spec first");
  std::deque<Slot>& slots = generations_.front().slots;
  DL_CHECK(index >= 0 && index < static_cast<int>(slots.size()),
           "instance index outside the prepared slot range");
  Slot& slot = slots[static_cast<std::size_t>(index)];
  if (built != nullptr) *built = !slot.valid;
  if (!slot.valid) {
    slot.geometry = BuildGeometry(spec, index, pairing);
    slot.valid = true;
    builds_.fetch_add(1, std::memory_order_relaxed);
  } else {
    reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  // The measurement is a geometry property; memoise it in the slot so a
  // grid that sweeps zeta across negative and explicit values pays the
  // O(n^3) scan once per geometry, not once per cell.
  if (spec.zeta < 0.0 && !slot.geometry.zeta_measured) {
    EnsureMeasuredZeta(slot.geometry);
  }
  return slot.geometry;
}

std::vector<ScenarioSpec> BuiltinScenarios() {
  std::vector<ScenarioSpec> specs;

  ScenarioSpec uniform;
  uniform.name = "uniform_dense";
  uniform.topology = "uniform";
  uniform.alpha = 3.0;
  uniform.seed = 101;
  specs.push_back(uniform);

  ScenarioSpec clustered;
  clustered.name = "clustered_hotspots";
  clustered.topology = "clustered";
  clustered.alpha = 3.5;
  clustered.hotspots = 6;
  clustered.cluster_sigma = 1.5;
  clustered.seed = 202;
  specs.push_back(clustered);

  ScenarioSpec corridor;
  corridor.name = "highway_corridor";
  corridor.topology = "corridor";
  corridor.alpha = 3.0;
  corridor.corridor_width = 2.0;
  corridor.seed = 303;
  specs.push_back(corridor);

  ScenarioSpec grid;
  grid.name = "grid_hetero_power";
  grid.topology = "grid";
  grid.alpha = 3.0;
  grid.power_tau = 0.5;  // mean power: heterogeneous but monotone
  grid.noise = 0.01;
  grid.seed = 404;
  specs.push_back(grid);

  ScenarioSpec shadowed_sym;
  shadowed_sym.name = "shadowed_symmetric";
  shadowed_sym.topology = "uniform";
  shadowed_sym.alpha = 3.0;
  shadowed_sym.sigma_db = 6.0;
  shadowed_sym.symmetric_shadowing = true;
  // Shadowing pushes metricity above alpha; 2 lg(shadow range) of headroom
  // keeps the separation test meaningful without measuring per instance.
  shadowed_sym.zeta = 4.0;
  shadowed_sym.seed = 505;
  specs.push_back(shadowed_sym);

  ScenarioSpec shadowed_asym;
  shadowed_asym.name = "shadowed_asymmetric";
  shadowed_asym.topology = "uniform";
  shadowed_asym.alpha = 3.0;
  shadowed_asym.sigma_db = 6.0;
  shadowed_asym.symmetric_shadowing = false;
  shadowed_asym.zeta = -1.0;  // measured per instance
  shadowed_asym.seed = 606;
  specs.push_back(shadowed_asym);

  return specs;
}

std::optional<ScenarioSpec> FindBuiltinScenario(const std::string& name) {
  for (ScenarioSpec& spec : BuiltinScenarios()) {
    if (spec.name == name) return std::move(spec);
  }
  return std::nullopt;
}

}  // namespace decaylib::engine
