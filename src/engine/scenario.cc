#include "engine/scenario.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "core/check.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "sinr/power.h"
#include "spaces/samplers.h"

namespace decaylib::engine {

namespace {

// Seed policy: one independent, reproducible stream per (family, instance).
std::uint64_t InstanceSeed(std::uint64_t base, int index) {
  return geom::Mix64(base +
                     0x9e3779b97f4a7c15ULL *
                         (static_cast<std::uint64_t>(index) + 1));
}

// Geometric space over explicit points, with the spec's shadowing regime.
core::DecaySpace SpaceFromPoints(const ScenarioSpec& spec,
                                 const std::vector<geom::Vec2>& pts,
                                 geom::Rng& rng) {
  if (spec.sigma_db > 0.0) {
    return spaces::ShadowedGeometric(pts, spec.alpha, spec.sigma_db, rng,
                                     spec.symmetric_shadowing);
  }
  return core::DecaySpace::Geometric(pts, spec.alpha);
}

// --- topology generators ---------------------------------------------------
//
// Each produces a decay space over `points` nodes at roughly constant
// density, so instance difficulty scales with size rather than crowding.

core::DecaySpace UniformTopology(const ScenarioSpec& spec, int points,
                                 geom::Rng& rng) {
  const double box = 2.0 * std::sqrt(static_cast<double>(points));
  const auto pts = geom::SampleUniform(points, box, box, rng);
  return SpaceFromPoints(spec, pts, rng);
}

core::DecaySpace ClusteredTopology(const ScenarioSpec& spec, int points,
                                   geom::Rng& rng) {
  const double box = 2.0 * std::sqrt(static_cast<double>(points));
  return spaces::ClusteredGeometric(points, spec.hotspots, box,
                                    spec.cluster_sigma, spec.alpha,
                                    spec.sigma_db, rng,
                                    spec.symmetric_shadowing);
}

core::DecaySpace CorridorTopology(const ScenarioSpec& spec, int points,
                                  geom::Rng& rng) {
  const double length = 2.0 * static_cast<double>(points);
  return spaces::CorridorSpace(points, length, spec.corridor_width,
                               spec.alpha, spec.sigma_db, rng,
                               spec.symmetric_shadowing);
}

core::DecaySpace GridTopology(const ScenarioSpec& spec, int points,
                              geom::Rng& rng) {
  // Cell centers on a regular grid (spacing ~2), each jittered inside its
  // cell: a cellular layout with one node per cell.
  const double side = 2.0 * std::ceil(std::sqrt(static_cast<double>(points)));
  std::vector<geom::Vec2> pts = geom::SampleGrid(points, side, side);
  for (geom::Vec2& p : pts) {
    p.x += rng.Uniform(-0.5, 0.5);
    p.y += rng.Uniform(-0.5, 0.5);
  }
  return SpaceFromPoints(spec, pts, rng);
}

using TopologyGenerator = core::DecaySpace (*)(const ScenarioSpec&, int,
                                               geom::Rng&);

const std::vector<std::pair<std::string, TopologyGenerator>>& TopologyTable() {
  static const std::vector<std::pair<std::string, TopologyGenerator>> table = {
      {"uniform", &UniformTopology},
      {"clustered", &ClusteredTopology},
      {"corridor", &CorridorTopology},
      {"grid", &GridTopology},
  };
  return table;
}

TopologyGenerator FindTopology(const std::string& name) {
  for (const auto& [key, gen] : TopologyTable()) {
    if (key == name) return gen;
  }
  return nullptr;
}

}  // namespace

ScenarioInstance::ScenarioInstance(std::unique_ptr<core::DecaySpace> space,
                                   std::vector<sinr::Link> links,
                                   sinr::SinrConfig config, double zeta)
    : space_(std::move(space)),
      system_(std::make_unique<sinr::LinkSystem>(*space_, std::move(links),
                                                 config)),
      power_(sinr::UniformPower(*system_)),
      zeta_(zeta) {}

std::vector<std::string> RegisteredTopologies() {
  std::vector<std::string> names;
  names.reserve(TopologyTable().size());
  for (const auto& [key, gen] : TopologyTable()) names.push_back(key);
  return names;
}

bool IsRegisteredTopology(const std::string& topology) {
  return FindTopology(topology) != nullptr;
}

std::vector<sinr::Link> PairLinksByDecay(const core::DecaySpace& space) {
  const int n = space.size();
  DL_CHECK(n >= 2 && n % 2 == 0, "pairing needs an even number of nodes");
  std::vector<std::tuple<double, int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) /
                2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      pairs.emplace_back(std::min(space(i, j), space(j, i)), i, j);
    }
  }
  // A full sort, deliberately: the greedy matching consumes nearly the
  // whole order before the last (far-apart) nodes pair up -- ~98% of the
  // n^2/2 candidates at n = 1024 nodes -- so lazy selection (heap pops)
  // only adds overhead.
  std::sort(pairs.begin(), pairs.end());
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  std::vector<sinr::Link> links;
  links.reserve(static_cast<std::size_t>(n / 2));
  for (const auto& [decay, i, j] : pairs) {
    if (used[static_cast<std::size_t>(i)] || used[static_cast<std::size_t>(j)])
      continue;
    used[static_cast<std::size_t>(i)] = 1;
    used[static_cast<std::size_t>(j)] = 1;
    // Orient along the weaker-decay direction (ties keep the lower id as
    // sender), so the link's own decay f_vv is the pair's best case.
    if (space(i, j) <= space(j, i)) {
      links.push_back({i, j});
    } else {
      links.push_back({j, i});
    }
    if (static_cast<int>(links.size()) == n / 2) break;
  }
  return links;
}

ScenarioInstance BuildInstance(const ScenarioSpec& spec, int index) {
  DL_CHECK(spec.links >= 1, "scenario needs at least one link");
  DL_CHECK(index >= 0, "instance index must be non-negative");
  const TopologyGenerator generator = FindTopology(spec.topology);
  DL_CHECK(generator != nullptr, "unknown scenario topology");

  geom::Rng rng(InstanceSeed(spec.seed, index));
  const int points = 2 * spec.links;
  auto space = std::make_unique<core::DecaySpace>(
      generator(spec, points, rng));

  // zeta policy: explicit > 0, geometric default (alpha) at 0, measured
  // per instance when negative (falling back to alpha for unconstrained
  // spaces, where any positive exponent works).
  double zeta = spec.zeta;
  if (zeta == 0.0) {
    zeta = spec.alpha;
  } else if (zeta < 0.0) {
    const double measured = core::ComputeMetricity(*space).zeta;
    zeta = measured > 0.0 ? measured : spec.alpha;
  }

  std::vector<sinr::Link> links = PairLinksByDecay(*space);
  ScenarioInstance instance(std::move(space), std::move(links),
                            {spec.beta, spec.noise}, zeta);

  // The constructor's default power is already uniform; only replace it
  // when the spec asks for a power law or a noise-overcoming rescale.
  if (spec.power_tau != 0.0 || spec.noise > 0.0) {
    sinr::PowerAssignment power =
        spec.power_tau == 0.0
            ? instance.power()
            : sinr::PowerLaw(instance.system(), spec.power_tau);
    if (spec.noise > 0.0) {
      power = sinr::ScaledToOvercomeNoise(instance.system(), std::move(power));
    }
    instance.SetPower(std::move(power));
  }
  return instance;
}

std::vector<ScenarioSpec> BuiltinScenarios() {
  std::vector<ScenarioSpec> specs;

  ScenarioSpec uniform;
  uniform.name = "uniform_dense";
  uniform.topology = "uniform";
  uniform.alpha = 3.0;
  uniform.seed = 101;
  specs.push_back(uniform);

  ScenarioSpec clustered;
  clustered.name = "clustered_hotspots";
  clustered.topology = "clustered";
  clustered.alpha = 3.5;
  clustered.hotspots = 6;
  clustered.cluster_sigma = 1.5;
  clustered.seed = 202;
  specs.push_back(clustered);

  ScenarioSpec corridor;
  corridor.name = "highway_corridor";
  corridor.topology = "corridor";
  corridor.alpha = 3.0;
  corridor.corridor_width = 2.0;
  corridor.seed = 303;
  specs.push_back(corridor);

  ScenarioSpec grid;
  grid.name = "grid_hetero_power";
  grid.topology = "grid";
  grid.alpha = 3.0;
  grid.power_tau = 0.5;  // mean power: heterogeneous but monotone
  grid.noise = 0.01;
  grid.seed = 404;
  specs.push_back(grid);

  ScenarioSpec shadowed_sym;
  shadowed_sym.name = "shadowed_symmetric";
  shadowed_sym.topology = "uniform";
  shadowed_sym.alpha = 3.0;
  shadowed_sym.sigma_db = 6.0;
  shadowed_sym.symmetric_shadowing = true;
  // Shadowing pushes metricity above alpha; 2 lg(shadow range) of headroom
  // keeps the separation test meaningful without measuring per instance.
  shadowed_sym.zeta = 4.0;
  shadowed_sym.seed = 505;
  specs.push_back(shadowed_sym);

  ScenarioSpec shadowed_asym;
  shadowed_asym.name = "shadowed_asymmetric";
  shadowed_asym.topology = "uniform";
  shadowed_asym.alpha = 3.0;
  shadowed_asym.sigma_db = 6.0;
  shadowed_asym.symmetric_shadowing = false;
  shadowed_asym.zeta = -1.0;  // measured per instance
  shadowed_asym.seed = 606;
  specs.push_back(shadowed_asym);

  return specs;
}

std::optional<ScenarioSpec> FindBuiltinScenario(const std::string& name) {
  for (ScenarioSpec& spec : BuiltinScenarios()) {
    if (spec.name == name) return std::move(spec);
  }
  return std::nullopt;
}

}  // namespace decaylib::engine
