// Report sinks for batched scenario runs: human-readable markdown tables
// and a machine-readable BENCH_<id>.json record in the schema-v2 format of
// obs/bench_harness.h.
//
// The record carries one phase per scenario for batch wall / kernel build /
// task time (each phase keeps the v1 "name"/"n"/"wall_ms" keys old parsers
// read), a provenance block, and a "scenarios" extra member with the
// deterministic aggregates -- an extra key schema-v2 parsers ignore, the
// same way v1 parsers ignore the v2 keys.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "engine/batch_runner.h"
#include "io/json.h"

namespace decaylib::engine {

// Fixed-point formatting helper shared by the report layers.
std::string FmtFixed(double v, int digits = 2);

// Looks a named metric up in a result's aggregate; nullptr when absent or
// empty (count == 0).
const MetricSummary* FindAggregateMetric(const ScenarioResult& result,
                                         const std::string& name);

// Prints a right-aligned markdown table (also used by the sweep reports).
void PrintMarkdownTable(const std::vector<std::string>& headers,
                        const std::vector<std::vector<std::string>>& rows);

// Prints one markdown table over all scenarios (per-family capacity,
// rounds, throughput) followed by a per-metric aggregate block.
void PrintReport(std::span<const ScenarioResult> results);

// Total number of feasibility/validation violations across all scenarios
// (the alg1_infeasible + schedule_invalid counters); anything non-zero
// means an algorithm produced an infeasible set or an invalid schedule.
long long ViolationCount(std::span<const ScenarioResult> results);

// The per-scenario deterministic aggregates as a JSON array: name,
// topology, links, instances, throughput, non-empty metric summaries and
// stage wall-time totals per scenario.  Attached to the BENCH record as the
// "scenarios" member; also usable standalone.
io::Json ScenariosJson(std::span<const ScenarioResult> results);

// Writes BENCH_<id>.json (schema v2, re-parse-validated through io::Json)
// in the working directory.  Returns false (and prints to stderr) when the
// file cannot be written or fails validation.
bool WriteJsonReport(const std::string& id,
                     std::span<const ScenarioResult> results);

}  // namespace decaylib::engine
