// Report sinks for batched scenario runs: human-readable markdown tables
// and a machine-readable JSON file compatible with the BENCH_<id>.json
// timing-record format of bench/bench_util.h.
//
// The JSON keeps the exact `{"bench": id, "phases": [{"name", "n",
// "wall_ms"}...]}` shape existing tooling parses (one phase per scenario
// for batch wall / kernel build / task time), and adds a `"scenarios"`
// array carrying the deterministic aggregates -- extra keys old parsers
// simply ignore.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "engine/batch_runner.h"

namespace decaylib::engine {

// Fixed-point formatting helper shared by the report layers.
std::string FmtFixed(double v, int digits = 2);

// Looks a named metric up in a result's aggregate; nullptr when absent or
// empty (count == 0).
const MetricSummary* FindAggregateMetric(const ScenarioResult& result,
                                         const std::string& name);

// Prints a right-aligned markdown table (also used by the sweep reports).
void PrintMarkdownTable(const std::vector<std::string>& headers,
                        const std::vector<std::vector<std::string>>& rows);

// Prints one markdown table over all scenarios (per-family capacity,
// rounds, throughput) followed by a per-metric aggregate block.
void PrintReport(std::span<const ScenarioResult> results);

// Total number of feasibility/validation violations across all scenarios
// (the alg1_infeasible + schedule_invalid counters); anything non-zero
// means an algorithm produced an infeasible set or an invalid schedule.
long long ViolationCount(std::span<const ScenarioResult> results);

// Writes BENCH_<id>.json in the working directory.  Returns false (and
// prints to stderr) when the file cannot be written.
bool WriteJsonReport(const std::string& id,
                     std::span<const ScenarioResult> results);

}  // namespace decaylib::engine
