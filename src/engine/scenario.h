// Declarative deployment scenarios (the workload layer of the library).
//
// A ScenarioSpec describes a *family* of deployments as pure data: which
// topology generator lays out the nodes, how many links and instances, the
// decay model (path-loss exponent + shadowing regime), the power assignment,
// the SINR configuration, and the seed/zeta policies.  BuildInstance turns
// (spec, instance index) into a concrete ScenarioInstance -- deterministic:
// the same pair always yields bit-identical decay matrices, links and
// powers, regardless of which thread or process builds it.
//
// Instance construction is split along the axis the sweep layer exploits:
//   * BuildGeometry samples everything that consumes randomness or scales
//     super-linearly -- the decay space (with its planar points, when the
//     topology is coordinate-backed), the greedy link pairing, and the
//     lazily measured metricity.  Geometry depends only on the spec fields
//     collected in GeometryKey plus the instance index.
//   * ConfigureInstance applies the cheap per-cell knobs (beta, noise,
//     power_tau, the zeta policy) to a geometry, costing O(links).
// BuildInstance is exactly BuildGeometry + ConfigureInstance; GeometryCache
// keeps one grid cell's worth of geometries warm so sweep cells that differ
// only in non-geometric axes skip the sampling entirely (batch_runner.h
// wires it into the worker pool, sweep_runner.h shares one across a grid).
//
// Topology generators are looked up in a registry by name; the built-in
// kinds cover uniform boxes, Matérn-style clustered hotspots, line/highway
// corridors and jittered grid cells (spaces/samplers.h provides the
// underlying decay-space samplers).  A generator produces a decay space
// over 2 * links nodes (plus the sampled coordinates, when it is
// geometric); links are then formed by a topology-agnostic greedy pairing
// that repeatedly matches the two unused nodes with the smallest
// symmetrised decay, so every topology yields short, plausible
// sender/receiver pairs without bespoke per-topology link logic.  For
// coordinate-backed, shadowing-free topologies the pairing runs as
// mutual-nearest-neighbour rounds over a geom::UniformGrid -- near-linear
// instead of O(n^2 log n), provably the identical matching -- with the
// full-sort path kept as the fallback for matrix-only spaces and as the
// test oracle (PairingMode selects explicitly).
//
// BuiltinScenarios() is the registry of named presets the batch runner,
// scenario_runner CLI and benches share: one spec per deployment family
// (uniform, clustered, corridor, heterogeneous-power grid, symmetric and
// asymmetric shadowing).  docs/scenarios.md documents the schema and how to
// add a new scenario.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/decay_space.h"
#include "core/status.h"
#include "dynamics/queue_system.h"
#include "geom/point.h"
#include "sinr/link_system.h"

namespace decaylib::engine {

// Traffic/dynamics knobs consumed by TaskKind::kQueue and kRegret (ignored
// by every other task).  Non-geometric: two specs differing only here share
// a GeometryKey, so a sweep whose trailing axis is lambda or regret_penalty
// reuses one sampled geometry across the whole row.  Out-of-range values
// are rejected by ValidateScenarioSpec before any worker starts (lambda is
// a per-slot Bernoulli probability; feeding Rng::Chance anything outside
// [0, 1] would silently distort the arrival process).
struct DynamicsSpec {
  double lambda = 0.1;  // per-link Bernoulli arrival rate, in [0, 1]
  dynamics::Scheduler scheduler = dynamics::Scheduler::kLongestQueueFirst;
  int queue_slots = 400;  // simulated slots; warmup = queue_slots / 10

  double regret_learning_rate = 0.1;  // multiplicative-weights eta, in (0, 1)
  double regret_penalty = 1.0;        // failed-transmission cost, >= 0
  int regret_rounds = 400;            // game rounds; tail = rounds / 4

  friend bool operator==(const DynamicsSpec&, const DynamicsSpec&) = default;
};

// Which affectance kernel the batch runner builds per instance.
//   * kDense: the O(n^2) sinr::KernelCache (the default; exact, and the
//     bit-exactness reference every other mode is gated against).
//   * kFarField: the matrix-free sinr::FarFieldKernel for the tasks that
//     support it (algorithm1, greedy, schedule) -- O(n) memory, pooled
//     distant-cell affectance with certified relative error
//     farfield_epsilon; at epsilon == 0 every query is exact and results
//     are bit-identical to dense.  Requires a coordinate-backed,
//     shadowing-free spec with uniform base power (sigma_db == 0,
//     power_tau == 0; ValidateScenarioSpec rejects the rest).  Tasks
//     without a far-field path still build the dense kernel lazily.
enum class KernelMode { kDense, kFarField };

// Stable name of a kernel mode ("dense" / "farfield"), and its inverse for
// CLI / sweep-axis input (nullopt on an unknown name).
const char* KernelModeName(KernelMode mode);
std::optional<KernelMode> ParseKernelMode(const std::string& name);

// Pure-data description of a deployment family.  Every field has a sane
// default so specs can be written as designated initialisers.
struct ScenarioSpec {
  std::string name;                  // display name of the family
  std::string topology = "uniform";  // registered topology kind

  int links = 64;      // links per instance (2 * links nodes)
  int instances = 8;   // instances in a batch

  // Decay model.
  double alpha = 3.0;     // path-loss exponent
  double sigma_db = 0.0;  // lognormal shadowing std dev in dB (0 = none)
  bool symmetric_shadowing = true;

  // Power and SINR regime.
  double power_tau = 0.0;  // P_v proportional to f_vv^tau (0 = uniform)
  double beta = 1.0;       // SINR threshold
  double noise = 0.0;      // ambient noise (power is rescaled to overcome it)

  // zeta policy: > 0 uses the value as-is, == 0 uses alpha (the geometric
  // bound), < 0 measures ComputeMetricity per instance (exact but O(n^3)).
  double zeta = 0.0;

  // Seed policy: instance i seeds its generator stream with
  // Mix64(seed + golden * (i + 1)) (InstanceSeed in scenario.cc), so
  // instances are independent and reproducible.
  std::uint64_t seed = 1;

  // Kernel path (non-geometric: two specs differing only here share a
  // GeometryKey).  farfield_epsilon is the certified relative error bound
  // of pooled far-field affectance queries; 0 forces every query exact
  // (dense-bit-identical results).  Ignored under kDense.
  KernelMode kernel_mode = KernelMode::kDense;
  double farfield_epsilon = 1e-3;

  // Topology shape knobs (ignored by topologies that do not use them).
  int hotspots = 5;             // clustered: number of hotspot centers
  double cluster_sigma = 1.5;   // clustered: point spread around a center
  double corridor_width = 2.0;  // corridor: strip width (length scales w/ n)

  // Traffic/dynamics knobs (TaskKind::kQueue / kRegret only).
  DynamicsSpec dynamics;
};

// How link pairing runs inside BuildGeometry / BuildInstance.
enum class PairingMode {
  // Grid-accelerated mutual-nearest-neighbour rounds when the topology is
  // coordinate-backed and shadowing-free (decay monotone in distance);
  // sort-greedy otherwise.  Produces the identical matching either way.
  kAuto,
  // Always the O(n^2 log n) full-sort reference path (the test oracle and
  // the bench A/B baseline).
  kSortGreedy,
};

// The sampled, cell-invariant part of an instance: the decay space, the
// planar points behind it (empty for matrix-only spaces), the greedy link
// pairing, and -- measured lazily, only when a spec's zeta policy asks --
// the metricity of the space.  Everything downstream of the spec's
// GeometryKey and the instance index; nothing here depends on beta, noise,
// power_tau or the (explicit) zeta.
struct ScenarioGeometry {
  std::shared_ptr<const core::DecaySpace> space;
  std::vector<geom::Vec2> points;  // 2 * links entries when coordinate-backed
  std::vector<sinr::Link> links;
  double measured_zeta = 0.0;  // valid iff zeta_measured
  bool zeta_measured = false;
};

// The spec fields whose change invalidates sampled geometry.  Two specs
// with equal keys produce bit-identical ScenarioGeometry per instance
// index; power_tau / beta / noise / zeta / instances may differ freely.
struct GeometryKey {
  std::string topology;
  int links = 0;
  double alpha = 0.0;
  double sigma_db = 0.0;
  bool symmetric_shadowing = true;
  std::uint64_t seed = 0;
  int hotspots = 0;
  double cluster_sigma = 0.0;
  double corridor_width = 0.0;

  friend bool operator==(const GeometryKey&, const GeometryKey&) = default;
};

GeometryKey GeometryKeyOf(const ScenarioSpec& spec);

// One realised deployment: a decay space, a link system over it, a power
// assignment and the resolved zeta.  The space is held behind a shared
// pointer so instances configured from a cached geometry alias its matrix
// instead of copying it; the LinkSystem holds a reference into it, so
// instances stay freely movable either way.
class ScenarioInstance {
 public:
  ScenarioInstance(std::shared_ptr<const core::DecaySpace> space,
                   std::vector<sinr::Link> links, sinr::SinrConfig config,
                   double zeta);

  const core::DecaySpace& space() const noexcept { return *space_; }
  const sinr::LinkSystem& system() const noexcept { return *system_; }
  const sinr::PowerAssignment& power() const noexcept { return power_; }
  double zeta() const noexcept { return zeta_; }
  int NumLinks() const noexcept { return system_->NumLinks(); }

  void SetPower(sinr::PowerAssignment power) { power_ = std::move(power); }

 private:
  std::shared_ptr<const core::DecaySpace> space_;
  std::unique_ptr<sinr::LinkSystem> system_;
  sinr::PowerAssignment power_;
  double zeta_;
};

// Registered topology kinds, in registration order.
std::vector<std::string> RegisteredTopologies();
bool IsRegisteredTopology(const std::string& topology);

// Runtime-input validation of a spec: registered topology, positive sizes,
// finite decay/SINR knobs in their documented ranges (beta >= 1, the
// dynamics knobs' probability/positivity constraints, ...).  Returns the
// first violation as Status::InvalidArgument naming the field; specs are
// user/CLI/sweep input, so rejection is an expected error path, not a
// DL_CHECK abort (core/status.h).  BatchRunner::RunOne throws the result as
// core::StatusError; CLI tools and the sweep runner's per-cell isolation
// surface it as a message instead.
core::Status ValidateScenarioSpec(const ScenarioSpec& spec);

// Samples the geometry of instance `index`: decay space (+ points), link
// pairing.  Deterministic in (GeometryKeyOf(spec), index, pairing is
// result-invisible).  Does NOT measure metricity; see EnsureMeasuredZeta.
ScenarioGeometry BuildGeometry(const ScenarioSpec& spec, int index,
                               PairingMode pairing = PairingMode::kAuto);

// Measures (once) and caches the metricity of the geometry's space.
// Returns the measured value; subsequent calls are free.
double EnsureMeasuredZeta(ScenarioGeometry& geometry);

// Applies the cheap per-cell knobs to a geometry: builds the LinkSystem
// under (beta, noise), resolves the zeta policy, assigns power.  O(links)
// beyond the LinkSystem construction.  A spec with zeta < 0 requires
// geometry.zeta_measured (DL_CHECK) -- callers run EnsureMeasuredZeta
// first, as BuildInstance and GeometryCache::Acquire do.
ScenarioInstance ConfigureInstance(const ScenarioSpec& spec,
                                   const ScenarioGeometry& geometry);

// Builds instance `index` of the family: BuildGeometry + (if needed)
// EnsureMeasuredZeta + ConfigureInstance.  Deterministic in (spec, index);
// the pairing mode never changes the result, only the route taken.
// Aborts (DL_CHECK) on an unknown topology or non-positive sizes.
ScenarioInstance BuildInstance(const ScenarioSpec& spec, int index,
                               PairingMode pairing = PairingMode::kAuto);

// Topology-agnostic sender/receiver pairing over an even-sized decay space:
// repeatedly links the two unused nodes with the smallest symmetrised decay
// (ties by node ids), orienting each link along its weaker-decay direction.
// Deterministic; O(n^2 log n).  The reference path and test oracle.
std::vector<sinr::Link> PairLinksByDecay(const core::DecaySpace& space);

// The same matching, computed as iterated mutual-nearest-neighbour rounds
// over a geom::UniformGrid instead of a full sort -- near-linear for the
// typical constant-density deployment.  Exactness: a pair that is mutually
// best under the strict total order (weight, lo id, hi id) is matched by
// the sorted greedy before anything else touches its endpoints, so matching
// all mutual-best pairs and recursing on the remainder reproduces the
// greedy matching exactly; candidate weights are read from the decay
// matrix itself and the grid only *prunes* via pow's weak monotonicity
// (decay >= pow(ring distance bound, alpha)).  Requires space ==
// DecaySpace::Geometric(points, alpha) -- i.e. symmetric, shadowing-free
// decays; BuildGeometry dispatches here exactly when that holds.
std::vector<sinr::Link> PairLinksByDecayGrid(const core::DecaySpace& space,
                                             std::span<const geom::Vec2> points,
                                             double alpha);

// Warm geometries, kept per GeometryKey *generation*: within a generation,
// slot i holds the geometry of instance i.  Prepare(spec) -- called between
// batches, single-threaded -- moves the spec's generation to the front of
// an LRU list, creating it when absent and evicting the least recently
// used generation beyond the capacity (default 1: exactly the historical
// single-generation behaviour and memory bound); Acquire(spec, i) then
// returns slot i of the front generation, building it (and measuring
// metricity, when the spec's zeta policy needs it) on first touch.  More
// generations pay memory for reuse across *interleaved* keys -- the access
// pattern of a sweep whose geometric axis is not the slowest, where a
// single generation thrashes (docs/sweeps.md).  Thread contract: concurrent
// Acquire calls must use distinct instance indices (the batch runner's
// work-stealing pool claims each index exactly once), and Prepare /
// SetGenerations must not race with Acquire; the runners' pool joins give
// the needed ordering.
class GeometryCache {
 public:
  // LRU capacity in generations (>= 1).  Shrinking evicts the excess least
  // recently used generations immediately.
  void SetGenerations(int generations);
  int generations() const noexcept { return capacity_; }

  // Adopts the spec's key: splices its generation to the front when cached
  // (a generation hit), creates a fresh front generation otherwise
  // (evicting beyond capacity), and ensures at least spec.instances slots
  // exist in it.
  void Prepare(const ScenarioSpec& spec);

  // The geometry of instance `index` under the prepared key; builds into
  // the slot when cold.  The reference stays valid until the slot's
  // generation is evicted (generations are list nodes and slots live in
  // deques, so neither splices nor growth move warm slots).  `built`
  // (optional) reports whether this call sampled the slot fresh (true) or
  // served it warm (false) -- the per-instance cache-hit fact the batch
  // runner's stage breakdown and the obs registry record.
  const ScenarioGeometry& Acquire(const ScenarioSpec& spec, int index,
                                  PairingMode pairing = PairingMode::kAuto,
                                  bool* built = nullptr);

  // Accounting (deterministic in the sequence of Prepare/Acquire calls).
  long long builds() const noexcept { return builds_.load(); }
  long long reuses() const noexcept { return reuses_.load(); }
  // Prepares served by an already-cached generation / generations dropped
  // by LRU pressure.  Mirrored into the obs registry as
  // engine.geometry_generation_hits / engine.geometry_evictions.
  long long generation_hits() const noexcept { return generation_hits_; }
  long long evictions() const noexcept { return evictions_; }

 private:
  struct Slot {
    ScenarioGeometry geometry;
    bool valid = false;
  };
  struct Generation {
    GeometryKey key;
    std::deque<Slot> slots;  // deque: growth never moves warm slots
  };

  void EvictOverCapacity();

  std::list<Generation> generations_;  // front = most recently used
  int capacity_ = 1;
  std::atomic<long long> builds_{0};
  std::atomic<long long> reuses_{0};
  long long generation_hits_ = 0;  // mutated only in Prepare (single-threaded)
  long long evictions_ = 0;
};

// The named scenario presets shared by the batch runner, the CLI and the
// benches: one per deployment family, each with a distinct base seed.
std::vector<ScenarioSpec> BuiltinScenarios();

// Looks a builtin up by name.
std::optional<ScenarioSpec> FindBuiltinScenario(const std::string& name);

}  // namespace decaylib::engine
