// Declarative deployment scenarios (the workload layer of the library).
//
// A ScenarioSpec describes a *family* of deployments as pure data: which
// topology generator lays out the nodes, how many links and instances, the
// decay model (path-loss exponent + shadowing regime), the power assignment,
// the SINR configuration, and the seed/zeta policies.  BuildInstance turns
// (spec, instance index) into a concrete ScenarioInstance -- deterministic:
// the same pair always yields bit-identical decay matrices, links and
// powers, regardless of which thread or process builds it.
//
// Topology generators are looked up in a registry by name; the built-in
// kinds cover uniform boxes, Matérn-style clustered hotspots, line/highway
// corridors and jittered grid cells (spaces/samplers.h provides the
// underlying decay-space samplers).  A generator only produces a decay
// space over 2 * links nodes; links are then formed by a topology-agnostic
// greedy pairing that repeatedly matches the two unused nodes with the
// smallest symmetrised decay, so every topology yields short, plausible
// sender/receiver pairs without bespoke per-topology link logic.
//
// BuiltinScenarios() is the registry of named presets the batch runner,
// scenario_runner CLI and benches share: one spec per deployment family
// (uniform, clustered, corridor, heterogeneous-power grid, symmetric and
// asymmetric shadowing).  docs/scenarios.md documents the schema and how to
// add a new scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/decay_space.h"
#include "sinr/link_system.h"

namespace decaylib::engine {

// Pure-data description of a deployment family.  Every field has a sane
// default so specs can be written as designated initialisers.
struct ScenarioSpec {
  std::string name;                  // display name of the family
  std::string topology = "uniform";  // registered topology kind

  int links = 64;      // links per instance (2 * links nodes)
  int instances = 8;   // instances in a batch

  // Decay model.
  double alpha = 3.0;     // path-loss exponent
  double sigma_db = 0.0;  // lognormal shadowing std dev in dB (0 = none)
  bool symmetric_shadowing = true;

  // Power and SINR regime.
  double power_tau = 0.0;  // P_v proportional to f_vv^tau (0 = uniform)
  double beta = 1.0;       // SINR threshold
  double noise = 0.0;      // ambient noise (power is rescaled to overcome it)

  // zeta policy: > 0 uses the value as-is, == 0 uses alpha (the geometric
  // bound), < 0 measures ComputeMetricity per instance (exact but O(n^3)).
  double zeta = 0.0;

  // Seed policy: instance i seeds its generator stream with
  // Mix64(seed + golden * (i + 1)) (InstanceSeed in scenario.cc), so
  // instances are independent and reproducible.
  std::uint64_t seed = 1;

  // Topology shape knobs (ignored by topologies that do not use them).
  int hotspots = 5;             // clustered: number of hotspot centers
  double cluster_sigma = 1.5;   // clustered: point spread around a center
  double corridor_width = 2.0;  // corridor: strip width (length scales w/ n)
};

// One realised deployment: a decay space, a link system over it, a power
// assignment and the resolved zeta.  Owns the space and system behind
// stable pointers, so instances can be moved around freely (the LinkSystem
// holds a reference to its space).
class ScenarioInstance {
 public:
  ScenarioInstance(std::unique_ptr<core::DecaySpace> space,
                   std::vector<sinr::Link> links, sinr::SinrConfig config,
                   double zeta);

  const core::DecaySpace& space() const noexcept { return *space_; }
  const sinr::LinkSystem& system() const noexcept { return *system_; }
  const sinr::PowerAssignment& power() const noexcept { return power_; }
  double zeta() const noexcept { return zeta_; }
  int NumLinks() const noexcept { return system_->NumLinks(); }

  void SetPower(sinr::PowerAssignment power) { power_ = std::move(power); }

 private:
  std::unique_ptr<core::DecaySpace> space_;
  std::unique_ptr<sinr::LinkSystem> system_;
  sinr::PowerAssignment power_;
  double zeta_;
};

// Registered topology kinds, in registration order.
std::vector<std::string> RegisteredTopologies();
bool IsRegisteredTopology(const std::string& topology);

// Builds instance `index` of the family.  Deterministic in (spec, index).
// Aborts (DL_CHECK) on an unknown topology or non-positive sizes.
ScenarioInstance BuildInstance(const ScenarioSpec& spec, int index);

// Topology-agnostic sender/receiver pairing over an even-sized decay space:
// repeatedly links the two unused nodes with the smallest symmetrised decay
// (ties by node ids), orienting each link along its weaker-decay direction.
// Deterministic; O(n^2 log n).
std::vector<sinr::Link> PairLinksByDecay(const core::DecaySpace& space);

// The named scenario presets shared by the batch runner, the CLI and the
// benches: one per deployment family, each with a distinct base seed.
std::vector<ScenarioSpec> BuiltinScenarios();

// Looks a builtin up by name.
std::optional<ScenarioSpec> FindBuiltinScenario(const std::string& name);

}  // namespace decaylib::engine
