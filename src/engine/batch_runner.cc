#include "engine/batch_runner.h"

// decay-lint: allowlist-file(clock-read) -- the engine's timing surfaces
// (geometry_ms/kernel_ms/task_kind_ms/build_ms, PR 7) are measured here as
// plain clocks by design.  Every reading flows only into *_ms report fields
// and StageStats; none may feed signatures, task logic, or retry decisions
// (the determinism gates in engine_test would catch it if one did).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <thread>

#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "capacity/partitions.h"
#include "capacity/weighted.h"
#include "core/check.h"
#include "distributed/regret_game.h"
#include "dynamics/queue_system.h"
#include "geom/rng.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "scheduling/scheduler.h"
#include "sinr/farfield.h"
#include "sinr/kernel.h"
#include "sinr/power_control.h"

namespace decaylib::engine {

namespace {

// Registry handles of the engine layer, resolved once.  Counters/histograms
// only tick when obs::Enabled(); the stage breakdown in ScenarioResult is
// populated always (it is plain wall clock, like build_ms/task_ms).
// Metric name catalogue: docs/observability.md.
struct EngineInstruments {
  obs::Counter& instances;
  obs::Counter& geometry_builds;
  obs::Counter& geometry_reuses;
  obs::Histogram& geometry_ms;
  obs::Histogram& kernel_build_ms;
  obs::Histogram& farfield_build_ms;
  obs::Histogram& instance_task_ms;
  obs::Gauge& threads;

  static EngineInstruments& Get() {
    static EngineInstruments* instruments = [] {
      obs::Registry& registry = obs::Registry::Global();
      return new EngineInstruments{
          registry.GetCounter("engine.instances"),
          registry.GetCounter("engine.geometry_builds"),
          registry.GetCounter("engine.geometry_reuses"),
          registry.GetHistogram("engine.geometry_ms"),
          registry.GetHistogram("engine.kernel_build_ms"),
          registry.GetHistogram("engine.farfield_build_ms"),
          registry.GetHistogram("engine.instance_task_ms"),
          registry.GetGauge("engine.threads"),
      };
    }();
    return *instruments;
  }
};

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Per-task rng streams: independent of the instance builder's stream and of
// each other (distinct salts), deterministic in (spec.seed, index) -- a
// worker's identity never reaches any task's randomness.
geom::Rng TaskRng(const ScenarioSpec& spec, std::uint64_t salt, int index) {
  return geom::Rng(geom::Mix64(spec.seed ^ salt) +
                   0x9e3779b97f4a7c15ULL *
                       (static_cast<std::uint64_t>(index) + 1));
}

constexpr std::uint64_t kWeightStreamSalt = 0xa5b35705f00dfeedULL;
constexpr std::uint64_t kQueueStreamSalt = 0x517cc1b727220a95ULL;
constexpr std::uint64_t kRegretStreamSalt = 0x2545f4914f6cdd1dULL;

// Per-instance task weights for the weighted-capacity task.
std::vector<double> InstanceWeights(const ScenarioSpec& spec, int index,
                                    int n) {
  geom::Rng rng = TaskRng(spec, kWeightStreamSalt, index);
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (double& w : weights) w = rng.Uniform(0.5, 2.0);
  return weights;
}

// Iteration/tolerance budget of the per-task power-control oracle: enough
// to settle well-separated sets in tens of iterations while bounding the
// near-threshold worst case (the verdict at the cap -- judge by the last
// growth rate -- is deterministic either way).
constexpr int kPowerControlIterations = 300;
constexpr double kPowerControlTol = 1e-7;

// Greedy admission in decay order with the cached power-control oracle: a
// link joins when the grown set has no pairwise obstruction (the O(|S|)
// certificate runs first) and the Foschini-Miljanic iteration contracts.
// The power-control analogue of GreedyFeasible; comparing the two sizes is
// the uniform-vs-power-control feasibility gap.
std::vector<int> GreedyPowerControlFeasible(const sinr::KernelCache& kernel) {
  const double beta = kernel.system().config().beta;
  std::vector<int> S;
  for (const int v : kernel.OrderByDecay()) {
    bool obstructed = false;
    for (const int w : S) {
      if (sinr::PairwiseAffectanceProduct(kernel, v, w) > beta * beta) {
        obstructed = true;
        break;
      }
    }
    if (obstructed) continue;
    S.push_back(v);
    if (!sinr::FeasibleWithPowerControl(kernel, S, kPowerControlIterations,
                                        kPowerControlTol)
             .feasible) {
      S.pop_back();
    }
  }
  return S;
}

// Builds the instance, warms its kernel once, and runs every configured
// task against it.  Deterministic in (spec, index, tasks); the arena and
// geometry cache, when provided, only change where matrices live and
// whether sampling re-runs -- never the bits of any result.
InstanceRecord RunInstance(const ScenarioSpec& spec, int index,
                           const BatchConfig& config,
                           sinr::KernelArena* arena) {
  const std::vector<TaskKind>& tasks = config.tasks;
  GeometryCache* geometry = config.geometry;
  const PairingMode pairing = config.pairing;
  if (index == config.fault_instance) {
    throw InjectedFault(config.fault_message);
  }
  InstanceRecord rec;
  rec.index = index;

  // The record's stage timers (geometry_ms / kernel_ms / task_kind_ms) are
  // plain clocks, measured always -- they feed the StageStats breakdown the
  // reports show.  The obs::Spans alongside them are the opt-in layer:
  // trace events + registry histograms, inert and near-free when disabled.
  obs::Span instance_span("instance");
  const auto build_start = std::chrono::steady_clock::now();
  // The geometry is kept alive alongside the configured instance: the
  // far-field kernel is built from its planar points (matrix-free), which
  // ConfigureInstance does not carry over.
  std::optional<ScenarioGeometry> local_geom;
  const ScenarioGeometry* geom_ptr = nullptr;
  std::optional<ScenarioInstance> built;
  {
    obs::Span span("geometry", &EngineInstruments::Get().geometry_ms);
    if (geometry != nullptr) {
      bool sampled = true;
      geom_ptr = &geometry->Acquire(spec, index, pairing, &sampled);
      rec.geometry_reused = !sampled;
    } else {
      // Exactly BuildInstance's route, with the geometry retained.
      local_geom.emplace(BuildGeometry(spec, index, pairing));
      if (spec.zeta < 0.0) EnsureMeasuredZeta(*local_geom);
      geom_ptr = &*local_geom;
    }
    built.emplace(ConfigureInstance(spec, *geom_ptr));
    rec.geometry_ms = ElapsedMs(build_start);
  }
  const ScenarioInstance& instance = *built;

  // The dense kernel: built eagerly under kDense (the historical layout --
  // build_ms covers it), lazily under kFarField (only a task without a
  // far-field path pays the O(n^2) slabs; its wall time then lands in that
  // task's bucket).
  std::optional<sinr::KernelCache> local;
  const sinr::KernelCache* kernel_ptr = nullptr;
  const auto ensure_kernel = [&]() -> const sinr::KernelCache& {
    if (kernel_ptr == nullptr) {
      obs::Span span("kernel_build", &EngineInstruments::Get().kernel_build_ms);
      const auto kernel_start = std::chrono::steady_clock::now();
      if (arena != nullptr) {
        kernel_ptr = &arena->Rebuild(instance.system(), instance.power());
      } else {
        local.emplace(instance.system(), instance.power());
        kernel_ptr = &*local;
      }
      rec.kernel_ms = ElapsedMs(kernel_start);
      rec.kernel_built = true;
    }
    return *kernel_ptr;
  };

  std::optional<sinr::FarFieldKernel> farfield;
  if (spec.kernel_mode == KernelMode::kFarField) {
    DL_CHECK(!geom_ptr->points.empty(),
             "kernel_mode=farfield needs a coordinate-backed topology");
    obs::Span span("farfield_build",
                   &EngineInstruments::Get().farfield_build_ms);
    const auto ff_start = std::chrono::steady_clock::now();
    sinr::FarFieldConfig fc;
    fc.epsilon = spec.farfield_epsilon;
    farfield.emplace(geom_ptr->points, instance.system().links(), spec.alpha,
                     instance.system().config(), instance.power(), fc);
    rec.farfield_ms = ElapsedMs(ff_start);
  } else {
    ensure_kernel();
  }
  rec.build_ms = ElapsedMs(build_start);
  rec.links = instance.NumLinks();
  rec.zeta = instance.zeta();

  const auto task_start = std::chrono::steady_clock::now();
  const std::vector<int> all = sinr::AllLinks(instance.system());
  const double zeta = instance.zeta();

  // Algorithm 1's feasible set feeds the partition task too; run it at most
  // once per instance.
  std::optional<capacity::Algorithm1Result> alg1;
  const auto ensure_alg1 = [&] {
    if (!alg1) alg1 = capacity::RunAlgorithm1(ensure_kernel(), zeta);
  };

  for (const TaskKind task : tasks) {
    const std::size_t kind = static_cast<std::size_t>(task);
    obs::Span task_span(std::string("task.") + TaskKindName(task),
                        &EngineInstruments::Get().instance_task_ms, "task");
    const auto kind_start = std::chrono::steady_clock::now();
    switch (task) {
      case TaskKind::kAlgorithm1: {
        if (farfield) {
          const sinr::FarFieldAlg1Result res =
              sinr::FarFieldRunAlgorithm1(*farfield, zeta);
          rec.alg1_size = static_cast<int>(res.selected.size());
          rec.alg1_admitted = static_cast<int>(res.admitted.size());
          rec.alg1_feasible = res.selected.size() <= 1 ||
                              farfield->IsFeasibleCertified(res.selected);
        } else {
          ensure_alg1();
          rec.alg1_size = static_cast<int>(alg1->selected.size());
          rec.alg1_admitted = static_cast<int>(alg1->admitted.size());
          rec.alg1_feasible = alg1->selected.size() <= 1 ||
                              ensure_kernel().IsFeasible(alg1->selected);
        }
        break;
      }
      case TaskKind::kGreedyBaseline: {
        rec.greedy_size = static_cast<int>(
            farfield ? sinr::FarFieldGreedyFeasible(*farfield).size()
                     : capacity::GreedyFeasible(ensure_kernel(), all).size());
        break;
      }
      case TaskKind::kWeighted: {
        const std::vector<double> weights =
            InstanceWeights(spec, index, rec.links);
        const capacity::WeightedResult res =
            capacity::WeightedAlgorithm1(ensure_kernel(), weights, zeta);
        rec.weighted_value = res.weight;
        rec.weighted_size = static_cast<int>(res.selected.size());
        break;
      }
      case TaskKind::kPartitions: {
        ensure_alg1();
        rec.partition_classes = static_cast<int>(
            capacity::Lemma41Partition(ensure_kernel(), alg1->selected, zeta)
                .size());
        break;
      }
      case TaskKind::kSchedule: {
        if (farfield) {
          const sinr::FarFieldSchedule schedule =
              sinr::FarFieldScheduleLinks(*farfield, zeta);
          rec.schedule_slots = static_cast<int>(schedule.slots.size());
          rec.schedule_valid =
              sinr::FarFieldValidateSchedule(*farfield, schedule, all);
        } else {
          const sinr::KernelCache& kernel = ensure_kernel();
          const scheduling::Schedule schedule = scheduling::ScheduleLinks(
              kernel, zeta, scheduling::Extractor::kAlgorithm1, all);
          rec.schedule_slots = schedule.Length();
          rec.schedule_valid =
              scheduling::ValidateSchedule(kernel, schedule, all);
        }
        break;
      }
      case TaskKind::kPowerControl: {
        const sinr::KernelCache& kernel = ensure_kernel();
        rec.pc_greedy_size =
            static_cast<int>(GreedyPowerControlFeasible(kernel).size());
        rec.pc_all_feasible =
            sinr::FeasibleWithPowerControl(kernel, all, kPowerControlIterations,
                                           kPowerControlTol)
                    .feasible
                ? 1
                : 0;
        rec.pc_obstructed = sinr::HasPairwiseObstruction(kernel, all) ? 1 : 0;
        break;
      }
      case TaskKind::kQueue: {
        dynamics::QueueConfig qc;
        qc.arrival_rates.assign(static_cast<std::size_t>(rec.links),
                                spec.dynamics.lambda);
        qc.scheduler = spec.dynamics.scheduler;
        qc.slots = spec.dynamics.queue_slots;
        qc.warmup = spec.dynamics.queue_slots / 10;
        geom::Rng rng = TaskRng(spec, kQueueStreamSalt, index);
        const dynamics::QueueStats stats =
            dynamics::RunQueueSimulation(ensure_kernel(), qc, rng);
        rec.queue_throughput = stats.throughput;
        rec.queue_mean_queue = stats.mean_queue;
        rec.queue_backlog_growth = stats.backlog_growth;
        // Growth alone misfires on near-empty queues (the ratio of two tiny
        // backlog sums is noise): flag unstable only when the backlog is
        // also non-trivial -- more than one slot's worth of arrivals queued
        // on time-average.
        rec.queue_unstable =
            stats.backlog_growth > dynamics::kUnstableGrowthThreshold &&
                    stats.mean_queue > stats.offered_load
                ? 1
                : 0;
        break;
      }
      case TaskKind::kRegret: {
        distributed::RegretConfig rc;
        rc.learning_rate = spec.dynamics.regret_learning_rate;
        rc.failure_penalty = spec.dynamics.regret_penalty;
        rc.rounds = spec.dynamics.regret_rounds;
        rc.measure_tail = std::max(1, spec.dynamics.regret_rounds / 4);
        geom::Rng rng = TaskRng(spec, kRegretStreamSalt, index);
        const distributed::RegretResult res =
            distributed::RunRegretGame(ensure_kernel(), rc, rng);
        rec.regret_successes = res.average_successes;
        rec.regret_transmit_rate = res.transmit_rate;
        break;
      }
    }
    // A kind listed twice in the task set accumulates; -1 stays reserved
    // for "never ran".
    if (rec.task_kind_ms[kind] < 0.0) rec.task_kind_ms[kind] = 0.0;
    rec.task_kind_ms[kind] += ElapsedMs(kind_start);
  }
  rec.task_ms = ElapsedMs(task_start);
  return rec;
}

// Folds the per-instance stage timers into the result's StageStats (always)
// and the process-wide registry (when enabled).  Runs in the sequential
// post-pool reduction, so no synchronisation is needed.
void AggregateStages(ScenarioResult& result) {
  EngineInstruments& ins = EngineInstruments::Get();
  ins.instances.Add(static_cast<long long>(result.instances.size()));
  for (const InstanceRecord& rec : result.instances) {
    if (rec.geometry_reused) {
      result.stage_stats.Record("geometry_reuse", rec.geometry_ms);
      ins.geometry_reuses.Add();
    } else {
      result.stage_stats.Record("geometry_build", rec.geometry_ms);
      ins.geometry_builds.Add();
    }
    if (rec.kernel_built) {
      result.stage_stats.Record("kernel_build", rec.kernel_ms);
    }
    if (rec.farfield_ms >= 0.0) {
      result.stage_stats.Record("farfield_build", rec.farfield_ms);
    }
    for (int k = 0; k < kNumTaskKinds; ++k) {
      const double ms = rec.task_kind_ms[static_cast<std::size_t>(k)];
      if (ms < 0.0) continue;
      result.stage_stats.Record(
          std::string("task.") + TaskKindName(static_cast<TaskKind>(k)), ms);
    }
  }
}

// Sequential, instance-ordered reduction of the deterministic metrics.
void Aggregate(ScenarioResult& result) {
  MetricSummary zeta, alg1_size, alg1_admitted, greedy_size, weighted_value,
      weighted_size, partition_classes, schedule_slots, alg1_infeasible,
      schedule_invalid, pc_greedy_size, pc_all_feasible, pc_obstructed,
      pc_gain, queue_throughput, queue_mean_queue, queue_backlog_growth,
      queue_unstable, regret_successes, regret_transmit_rate;
  for (const InstanceRecord& rec : result.instances) {
    zeta.Add(rec.zeta);
    if (rec.alg1_size >= 0) {
      alg1_size.Add(rec.alg1_size);
      alg1_admitted.Add(rec.alg1_admitted);
      alg1_infeasible.Add(rec.alg1_feasible ? 0.0 : 1.0);
    }
    if (rec.greedy_size >= 0) greedy_size.Add(rec.greedy_size);
    if (rec.weighted_size >= 0) {
      weighted_value.Add(rec.weighted_value);
      weighted_size.Add(rec.weighted_size);
    }
    if (rec.partition_classes >= 0) {
      partition_classes.Add(rec.partition_classes);
    }
    if (rec.schedule_slots >= 0) {
      schedule_slots.Add(rec.schedule_slots);
      schedule_invalid.Add(rec.schedule_valid ? 0.0 : 1.0);
    }
    if (rec.pc_greedy_size >= 0) {
      pc_greedy_size.Add(rec.pc_greedy_size);
      pc_all_feasible.Add(rec.pc_all_feasible);
      pc_obstructed.Add(rec.pc_obstructed);
      // The feasibility gap, per instance, when the uniform greedy also ran.
      if (rec.greedy_size >= 0) {
        pc_gain.Add(rec.pc_greedy_size - rec.greedy_size);
      }
    }
    if (rec.queue_throughput >= 0.0) {
      queue_throughput.Add(rec.queue_throughput);
      queue_mean_queue.Add(rec.queue_mean_queue);
      queue_backlog_growth.Add(rec.queue_backlog_growth);
      queue_unstable.Add(rec.queue_unstable);
    }
    if (rec.regret_successes >= 0.0) {
      regret_successes.Add(rec.regret_successes);
      regret_transmit_rate.Add(rec.regret_transmit_rate);
    }
  }
  result.aggregate = {
      {"zeta", zeta},
      {"alg1_size", alg1_size},
      {"alg1_admitted", alg1_admitted},
      {"alg1_infeasible", alg1_infeasible},
      {"greedy_size", greedy_size},
      {"weighted_value", weighted_value},
      {"weighted_size", weighted_size},
      {"partition_classes", partition_classes},
      {"schedule_slots", schedule_slots},
      {"schedule_invalid", schedule_invalid},
      {"pc_greedy_size", pc_greedy_size},
      {"pc_all_feasible", pc_all_feasible},
      {"pc_obstructed", pc_obstructed},
      {"pc_gain_vs_uniform", pc_gain},
      {"queue_throughput", queue_throughput},
      {"queue_mean_queue", queue_mean_queue},
      {"queue_backlog_growth", queue_backlog_growth},
      {"queue_unstable", queue_unstable},
      {"regret_successes", regret_successes},
      {"regret_transmit_rate", regret_transmit_rate},
  };
}

}  // namespace

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kAlgorithm1: return "algorithm1";
    case TaskKind::kGreedyBaseline: return "greedy";
    case TaskKind::kWeighted: return "weighted";
    case TaskKind::kPartitions: return "partitions";
    case TaskKind::kSchedule: return "schedule";
    case TaskKind::kPowerControl: return "power_control";
    case TaskKind::kQueue: return "queue";
    case TaskKind::kRegret: return "regret";
  }
  return "unknown";
}

std::vector<TaskKind> AllTasks() {
  return {TaskKind::kAlgorithm1, TaskKind::kGreedyBaseline,
          TaskKind::kWeighted,   TaskKind::kPartitions,
          TaskKind::kSchedule,   TaskKind::kPowerControl,
          TaskKind::kQueue,      TaskKind::kRegret};
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return static_cast<int>(hc == 0 ? 1 : hc);
}

void MetricSummary::Add(double v) {
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++count;
}

BatchRunner::BatchRunner(BatchConfig config) : config_(std::move(config)) {}

ScenarioResult BatchRunner::RunOne(const ScenarioSpec& spec) const {
  // Runtime input is rejected as a recoverable error before any worker
  // starts; an invalid lambda, say, would otherwise flow straight into
  // Rng::Chance and silently distort the Bernoulli arrival process.
  core::ThrowIfError(ValidateScenarioSpec(spec));
  ScenarioResult result;
  result.spec = spec;
  result.instances.resize(static_cast<std::size_t>(spec.instances));

  int threads = ResolveThreads(config_.threads);
  DL_CHECK(config_.arenas.empty() ||
               static_cast<int>(config_.arenas.size()) >= threads,
           "arena span must cover every worker thread");
  threads = std::min(threads, spec.instances);
  // Measured-zeta specs run ComputeMetricity per instance, which splits
  // its outer loop across all hardware threads once the space reaches 64
  // nodes (WorkerCount in core/metricity.cc); running those builds from a
  // pool of workers would oversubscribe the machine quadratically.
  // Serialise the instances instead and let each metricity scan use the
  // cores (the aggregate is thread-count invariant either way).  Below the
  // threshold the metricity scan is single-threaded, so the pool keeps its
  // workers.
  if (spec.zeta < 0.0 && 2 * spec.links >= 64) threads = 1;

  // Adopt the cell's geometry key before workers start: slots invalidate
  // exactly when a geometry field changed, and the pool join below orders
  // this against every worker's Acquire.
  if (config_.geometry != nullptr) config_.geometry->Prepare(spec);

  EngineInstruments::Get().threads.Set(threads);
  obs::Span batch_span("batch." + spec.name, nullptr, "batch");
  const auto batch_start = std::chrono::steady_clock::now();
  // Work stealing over instance indices; records land in their own slot, so
  // nothing about the interleaving survives into the results.  A worker
  // that throws records the failure in its instance's slot and keeps
  // stealing -- every instance gets its attempt regardless of scheduling,
  // so the lowest failed index (the one rethrown below) is deterministic
  // under any thread count.
  std::vector<std::string> errors(static_cast<std::size_t>(spec.instances));
  std::vector<char> failed(static_cast<std::size_t>(spec.instances), 0);
  std::atomic<int> next{0};
  const auto worker = [&](int t) {
    sinr::KernelArena* arena =
        t < static_cast<int>(config_.arenas.size()) ? &config_.arenas[t]
                                                    : nullptr;
    for (int i = next.fetch_add(1); i < spec.instances;
         i = next.fetch_add(1)) {
      const std::size_t slot = static_cast<std::size_t>(i);
      try {
        result.instances[slot] = RunInstance(spec, i, config_, arena);
      } catch (const std::exception& e) {
        failed[slot] = 1;
        errors[slot] = e.what();
      } catch (...) {
        failed[slot] = 1;
        errors[slot] = "unknown exception";
      }
    }
  };
  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }
  result.batch_wall_ms = ElapsedMs(batch_start);

  for (int i = 0; i < spec.instances; ++i) {
    if (failed[static_cast<std::size_t>(i)]) {
      throw core::StatusError(core::Status::Internal(
          "instance " + std::to_string(i) + ": " +
          errors[static_cast<std::size_t>(i)]));
    }
  }

  for (const InstanceRecord& rec : result.instances) {
    result.build_ms_total += rec.build_ms;
    result.task_ms_total += rec.task_ms;
  }
  AggregateStages(result);
  Aggregate(result);
  return result;
}

std::vector<ScenarioResult> BatchRunner::Run(
    std::span<const ScenarioSpec> specs) const {
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) results.push_back(RunOne(spec));
  return results;
}

core::Status AggregateHealth(const ScenarioResult& result) {
  for (const auto& [name, m] : result.aggregate) {
    if (m.count <= 0) continue;  // empty summaries keep their inf sentinels
    if (!std::isfinite(m.sum) || !std::isfinite(m.min) ||
        !std::isfinite(m.max)) {
      return core::Status::NumericError("non-finite aggregate " + name);
    }
  }
  return core::Status::Ok();
}

std::string AggregateSignature(std::span<const ScenarioResult> results) {
  std::string out;
  char buf[256];
  for (const ScenarioResult& r : results) {
    std::snprintf(buf, sizeof(buf), "%s topology=%s links=%d instances=%zu\n",
                  r.spec.name.c_str(), r.spec.topology.c_str(), r.spec.links,
                  r.instances.size());
    out += buf;
    for (const auto& [name, m] : r.aggregate) {
      std::snprintf(buf, sizeof(buf),
                    "  %s sum=%.17g min=%.17g max=%.17g count=%lld\n",
                    name.c_str(), m.sum, m.min, m.max, m.count);
      out += buf;
    }
  }
  return out;
}

}  // namespace decaylib::engine
