#include "engine/report.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace decaylib::engine {

std::string FmtFixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

const MetricSummary* FindAggregateMetric(const ScenarioResult& result,
                                         const std::string& name) {
  for (const auto& [key, m] : result.aggregate) {
    if (key == name && m.count > 0) return &m;
  }
  return nullptr;
}

void PrintMarkdownTable(const std::vector<std::string>& headers,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) width[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      line += " " + std::string(width[c] - cell.size(), ' ') + cell + " |";
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows) print_row(row);
}

namespace {

// Scenario names are free-form user data; escape them before interpolating
// into JSON string literals.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string MeanOf(const ScenarioResult& r, const std::string& name,
                   int digits = 1) {
  const MetricSummary* m = FindAggregateMetric(r, name);
  return m != nullptr ? FmtFixed(m->Mean(), digits) : "-";
}

}  // namespace

void PrintReport(std::span<const ScenarioResult> results) {
  std::vector<std::vector<std::string>> rows;
  for (const ScenarioResult& r : results) {
    rows.push_back({r.spec.name, r.spec.topology, std::to_string(r.spec.links),
                    std::to_string(r.instances.size()),
                    MeanOf(r, "zeta", 2), MeanOf(r, "alg1_size"),
                    MeanOf(r, "greedy_size"), MeanOf(r, "pc_greedy_size"),
                    MeanOf(r, "schedule_slots"),
                    MeanOf(r, "queue_throughput", 2),
                    MeanOf(r, "regret_successes"),
                    FmtFixed(r.batch_wall_ms, 1), FmtFixed(r.Throughput(), 1)});
  }
  PrintMarkdownTable({"scenario", "topology", "links", "inst", "zeta",
                      "|S| alg1", "|S| greedy", "|S| pc", "slots", "q tput",
                      "regret", "batch ms", "inst/s"},
                     rows);

  // Per-stage wall-time breakdown (worker-summed; totals can exceed batch
  // wall time when several workers overlap).
  std::vector<std::vector<std::string>> stage_rows;
  for (const ScenarioResult& r : results) {
    for (const obs::StageStats::Stage& s : r.stage_stats.stages) {
      stage_rows.push_back({r.spec.name, s.name, std::to_string(s.count),
                            FmtFixed(s.total_ms, 1), FmtFixed(s.MeanMs(), 3),
                            FmtFixed(s.min_ms, 3), FmtFixed(s.max_ms, 3)});
    }
  }
  if (!stage_rows.empty()) {
    std::printf("\nstage breakdown (worker-summed wall time)\n");
    PrintMarkdownTable({"scenario", "stage", "count", "total ms", "mean ms",
                        "min ms", "max ms"},
                       stage_rows);
  }

  std::printf("feasibility/validation violations: %lld\n",
              ViolationCount(results));
}

long long ViolationCount(std::span<const ScenarioResult> results) {
  long long violations = 0;
  for (const ScenarioResult& r : results) {
    for (const auto& [name, m] : r.aggregate) {
      if (name == "alg1_infeasible" || name == "schedule_invalid") {
        violations += static_cast<long long>(m.sum);
      }
    }
  }
  return violations;
}

bool WriteJsonReport(const std::string& id,
                     std::span<const ScenarioResult> results) {
  const std::string path = "BENCH_" + id + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "WriteJsonReport: cannot write %s\n", path.c_str());
    return false;
  }

  std::fprintf(out, "{\"bench\": \"%s\", \"phases\": [",
               EscapeJson(id).c_str());
  bool first = true;
  for (const ScenarioResult& r : results) {
    const auto phase = [&](const char* suffix, double wall_ms) {
      std::fprintf(out,
                   "%s\n  {\"name\": \"%s.%s\", \"n\": %d, \"wall_ms\": %.6g}",
                   first ? "" : ",", EscapeJson(r.spec.name).c_str(), suffix,
                   r.spec.links, wall_ms);
      first = false;
    };
    phase("batch", r.batch_wall_ms);
    phase("kernel_build", r.build_ms_total);
    phase("tasks", r.task_ms_total);
  }
  std::fprintf(out, "\n],\n\"scenarios\": [");

  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(out,
                 "%s\n  {\"name\": \"%s\", \"topology\": \"%s\", "
                 "\"links\": %d, \"instances\": %zu, "
                 "\"throughput_per_s\": %.6g, \"metrics\": {",
                 i == 0 ? "" : ",", EscapeJson(r.spec.name).c_str(),
                 EscapeJson(r.spec.topology).c_str(), r.spec.links,
                 r.instances.size(), r.Throughput());
    bool first_metric = true;
    for (const auto& [name, m] : r.aggregate) {
      if (m.count == 0) continue;
      std::fprintf(out,
                   "%s\n    \"%s\": {\"sum\": %.17g, \"mean\": %.17g, "
                   "\"min\": %.17g, \"max\": %.17g, \"count\": %lld}",
                   first_metric ? "" : ",", name.c_str(), m.sum, m.Mean(),
                   m.min, m.max, m.count);
      first_metric = false;
    }
    std::fprintf(out, "\n  }, \"stages\": {");
    bool first_stage = true;
    for (const obs::StageStats::Stage& s : r.stage_stats.stages) {
      if (s.count <= 0) continue;  // keep inf sentinels out of the file
      std::fprintf(out,
                   "%s\n    \"%s\": {\"count\": %lld, \"total_ms\": %.6g, "
                   "\"min_ms\": %.6g, \"max_ms\": %.6g}",
                   first_stage ? "" : ",", EscapeJson(s.name).c_str(), s.count,
                   s.total_ms, s.min_ms, s.max_ms);
      first_stage = false;
    }
    std::fprintf(out, "\n  }}");
  }
  std::fprintf(out, "\n]}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu scenarios)\n", path.c_str(), results.size());
  return true;
}

}  // namespace decaylib::engine
