#include "engine/report.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench_harness.h"

namespace decaylib::engine {

std::string FmtFixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

const MetricSummary* FindAggregateMetric(const ScenarioResult& result,
                                         const std::string& name) {
  for (const auto& [key, m] : result.aggregate) {
    if (key == name && m.count > 0) return &m;
  }
  return nullptr;
}

void PrintMarkdownTable(const std::vector<std::string>& headers,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) width[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      line += ' ';
      line.append(width[c] - cell.size(), ' ');
      line += cell;
      line += " |";
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows) print_row(row);
}

namespace {

std::string MeanOf(const ScenarioResult& r, const std::string& name,
                   int digits = 1) {
  const MetricSummary* m = FindAggregateMetric(r, name);
  return m != nullptr ? FmtFixed(m->Mean(), digits) : "-";
}

}  // namespace

void PrintReport(std::span<const ScenarioResult> results) {
  std::vector<std::vector<std::string>> rows;
  for (const ScenarioResult& r : results) {
    rows.push_back({r.spec.name, r.spec.topology, std::to_string(r.spec.links),
                    std::to_string(r.instances.size()),
                    MeanOf(r, "zeta", 2), MeanOf(r, "alg1_size"),
                    MeanOf(r, "greedy_size"), MeanOf(r, "pc_greedy_size"),
                    MeanOf(r, "schedule_slots"),
                    MeanOf(r, "queue_throughput", 2),
                    MeanOf(r, "regret_successes"),
                    FmtFixed(r.batch_wall_ms, 1), FmtFixed(r.Throughput(), 1)});
  }
  PrintMarkdownTable({"scenario", "topology", "links", "inst", "zeta",
                      "|S| alg1", "|S| greedy", "|S| pc", "slots", "q tput",
                      "regret", "batch ms", "inst/s"},
                     rows);

  // Per-stage wall-time breakdown (worker-summed; totals can exceed batch
  // wall time when several workers overlap).
  std::vector<std::vector<std::string>> stage_rows;
  for (const ScenarioResult& r : results) {
    for (const obs::StageStats::Stage& s : r.stage_stats.stages) {
      stage_rows.push_back({r.spec.name, s.name, std::to_string(s.count),
                            FmtFixed(s.total_ms, 1), FmtFixed(s.MeanMs(), 3),
                            FmtFixed(s.min_ms, 3), FmtFixed(s.max_ms, 3)});
    }
  }
  if (!stage_rows.empty()) {
    std::printf("\nstage breakdown (worker-summed wall time)\n");
    PrintMarkdownTable({"scenario", "stage", "count", "total ms", "mean ms",
                        "min ms", "max ms"},
                       stage_rows);
  }

  std::printf("feasibility/validation violations: %lld\n",
              ViolationCount(results));
}

long long ViolationCount(std::span<const ScenarioResult> results) {
  long long violations = 0;
  for (const ScenarioResult& r : results) {
    for (const auto& [name, m] : r.aggregate) {
      if (name == "alg1_infeasible" || name == "schedule_invalid") {
        violations += static_cast<long long>(m.sum);
      }
    }
  }
  return violations;
}

io::Json ScenariosJson(std::span<const ScenarioResult> results) {
  io::Json scenarios = io::Json::Array();
  for (const ScenarioResult& r : results) {
    io::Json entry = io::Json::Object();
    entry.Set("name", io::Json::String(r.spec.name));
    entry.Set("topology", io::Json::String(r.spec.topology));
    entry.Set("links", io::Json::Number(r.spec.links));
    entry.Set("instances",
              io::Json::Number(static_cast<double>(r.instances.size())));
    entry.Set("throughput_per_s", io::Json::Number(r.Throughput()));
    io::Json metrics = io::Json::Object();
    for (const auto& [name, m] : r.aggregate) {
      if (m.count == 0) continue;  // keep inf sentinels out of the file
      io::Json summary = io::Json::Object();
      summary.Set("sum", io::Json::Number(m.sum));
      summary.Set("mean", io::Json::Number(m.Mean()));
      summary.Set("min", io::Json::Number(m.min));
      summary.Set("max", io::Json::Number(m.max));
      summary.Set("count", io::Json::Number(static_cast<double>(m.count)));
      metrics.Set(name, std::move(summary));
    }
    entry.Set("metrics", std::move(metrics));
    io::Json stages = io::Json::Object();
    for (const obs::StageStats::Stage& s : r.stage_stats.stages) {
      if (s.count <= 0) continue;  // keep inf sentinels out of the file
      io::Json stage = io::Json::Object();
      stage.Set("count", io::Json::Number(static_cast<double>(s.count)));
      stage.Set("total_ms", io::Json::Number(s.total_ms));
      stage.Set("min_ms", io::Json::Number(s.min_ms));
      stage.Set("max_ms", io::Json::Number(s.max_ms));
      stages.Set(s.name, std::move(stage));
    }
    entry.Set("stages", std::move(stages));
    scenarios.Append(std::move(entry));
  }
  return scenarios;
}

bool WriteJsonReport(const std::string& id,
                     std::span<const ScenarioResult> results) {
  obs::BenchHarness harness(
      id, obs::BenchHarness::Options{.write_json = true});
  for (const ScenarioResult& r : results) {
    harness.Record(r.spec.name + ".batch", r.spec.links, r.batch_wall_ms);
    harness.Record(r.spec.name + ".kernel_build", r.spec.links,
                   r.build_ms_total);
    harness.Record(r.spec.name + ".tasks", r.spec.links, r.task_ms_total);
  }
  harness.SetExtra("scenarios", ScenariosJson(results));
  return harness.Close() == 0;
}

}  // namespace decaylib::engine
