// Batched multi-instance execution of deployment scenarios over warm
// kernel caches.
//
// BatchRunner takes a list of ScenarioSpecs, instantiates every instance of
// every family, builds each instance's sinr::KernelCache exactly once, and
// runs a pluggable set of algorithm tasks (Algorithm 1, the greedy baseline,
// weighted capacity, the Lemma 4.1 partition, full scheduling, the cached
// power-control oracle) against the warm cache.  Work items are distributed
// over a thread pool, but every deterministic statistic is invariant under
// the thread count:
//   * instances are built from (spec, index) alone (see BuildInstance), so
//     a worker's identity never leaks into an instance;
//   * per-instance records land in a preallocated slot indexed by instance,
//     not in arrival order;
//   * aggregates are reduced sequentially in instance order after the pool
//     drains, so floating-point sums always associate the same way.
// AggregateSignature() serialises exactly the deterministic part of a
// report; tests and benches assert it is bit-identical between 1-thread and
// N-thread runs.  Wall-clock fields (build/task/batch times, throughput)
// are measured per run and are the only non-deterministic outputs.
#pragma once

#include <array>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "engine/scenario.h"
#include "obs/stage_stats.h"
#include "sinr/kernel.h"

namespace decaylib::engine {

// The algorithm tasks a batch can run against each instance's warm kernel.
// Every task runs on the instance's actual power assignment; for specs with
// power_tau != 0 the kernels are non-uniform, where feasibility, schedule
// validity and class budgets remain exact (affectance is power-aware) but
// the paper's *guarantees* for kAlgorithm1/kPartitions -- approximation
// factor, zeta-separation of the Lemma 4.1 classes -- are stated for
// uniform power only and carry over heuristically.
enum class TaskKind {
  kAlgorithm1,      // RunAlgorithm1 at the instance's zeta
  kGreedyBaseline,  // GreedyFeasible over all links
  kWeighted,        // WeightedAlgorithm1 with per-instance random weights
  kPartitions,      // Lemma41Partition of Algorithm 1's feasible set
  kSchedule,        // ScheduleLinks (Algorithm 1 extractor)
  kPowerControl,    // cached Foschini-Miljanic oracle: greedy admission under
                    // arbitrary power control + all-links verdicts, charting
                    // the uniform-vs-power-control feasibility gap
  kQueue,           // Bernoulli-arrival queueing simulation over the warm
                    // kernel (spec.dynamics: lambda, scheduler, slots);
                    // charts throughput / backlog / the stability indicator
  kRegret,          // Asgeirsson-Mitra no-regret capacity game over the warm
                    // kernel (spec.dynamics: learning rate, penalty, rounds)
};

// All tasks, in the canonical execution order.
std::vector<TaskKind> AllTasks();

// Number of TaskKind values (the per-kind timing arrays below are indexed
// by static_cast<int>(kind)).
inline constexpr int kNumTaskKinds = 8;

// Short stable name of a task kind ("algorithm1", "queue", ...): the
// per-stage key used by StageStats ("task.<name>"), trace span names and
// the metric catalogue.
const char* TaskKindName(TaskKind kind);

struct BatchConfig {
  int threads = 0;  // worker threads; 0 = hardware concurrency
  std::vector<TaskKind> tasks = AllTasks();
  // Optional per-worker kernel arenas: worker t rebuilds every instance
  // kernel in arenas[t] instead of allocating a fresh KernelCache.  When
  // non-empty the span must cover the resolved thread count and outlive
  // every Run; results are bit-identical either way (the sweep runner uses
  // this to keep matrix slabs warm across an entire parameter grid).
  std::span<sinr::KernelArena> arenas = {};
  // Optional shared geometry cache: instances are configured from warm
  // ScenarioGeometry slots instead of re-sampled, so consecutive specs
  // that differ only in non-geometric fields (power_tau, beta, noise,
  // explicit zeta) skip space sampling and link pairing entirely.  The
  // cache must outlive every Run and must not be used by two concurrent
  // Runs; results are bit-identical with or without it (the sweep runner
  // shares one across a whole grid).
  GeometryCache* geometry = nullptr;
  // Link-pairing route inside instance builds; kSortGreedy forces the
  // O(n^2 log n) reference path (A/B baseline).  Result-invisible.
  PairingMode pairing = PairingMode::kAuto;
  // Fault injection: when >= 0, the worker that picks up this instance
  // index throws InjectedFault{fault_message} instead of running it.  The
  // sweep runner arms this per cell/attempt to exercise its failure
  // isolation and retry paths end to end, through the real worker pool.
  int fault_instance = -1;
  std::string fault_message = "injected fault";
};

// The exception an armed BatchConfig::fault_instance raises inside a
// worker.  Deliberately a plain runtime_error subtype: the recovery path
// must not be able to special-case it.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Per-instance outcome.  Algorithm fields are -1 when the task was not in
// the batch's task set; everything except the *_ms fields is deterministic.
struct InstanceRecord {
  int index = -1;
  int links = 0;
  double zeta = 0.0;

  int alg1_size = -1;
  int alg1_admitted = -1;
  bool alg1_feasible = true;
  int greedy_size = -1;
  double weighted_value = -1.0;
  int weighted_size = -1;
  int partition_classes = -1;
  int schedule_slots = -1;
  bool schedule_valid = true;
  int pc_greedy_size = -1;   // greedy admission with the power-control oracle
  int pc_all_feasible = -1;  // 1 iff all links feasible under some power
  int pc_obstructed = -1;    // 1 iff some pair can never coexist
  // Dynamics tasks (negative when not run).  Both simulate over the warm
  // kernel with an rng stream deterministic in (spec.seed, instance index).
  double queue_throughput = -1.0;     // post-warmup served packets per slot
  double queue_mean_queue = -1.0;     // time-average backlog, post warmup
  double queue_backlog_growth = -1.0; // Q4/Q3 backlog ratio (~1 when stable)
  int queue_unstable = -1;  // 1 iff growth above threshold AND backlog
                            // non-trivial (> one slot of arrivals queued)
  double regret_successes = -1.0;     // mean concurrent successes in the tail
  double regret_transmit_rate = -1.0; // mean fraction of links transmitting

  // Wall clock, non-deterministic: instance + kernel build, then all tasks.
  double build_ms = 0.0;
  double task_ms = 0.0;
  // Stage-resolved wall clock (build_ms = geometry_ms + kernel_ms [+
  // farfield_ms] up to clock overhead; task_kind_ms entries sum to
  // task_ms).  -1 marks a task kind that was not in the batch's task set.
  // The sequential reduction folds these into ScenarioResult::stage_stats.
  // Under KernelMode::kFarField the dense kernel is built lazily, only when
  // a task without a far-field path runs: kernel_built records whether it
  // was, and kernel_ms then lands inside the triggering task's wall time.
  double geometry_ms = 0.0;  // sampling / cache acquire + ConfigureInstance
  double kernel_ms = 0.0;    // KernelCache build or arena rebuild
  double farfield_ms = -1.0;  // FarFieldKernel build; -1 under kDense
  bool kernel_built = false;  // dense kernel was built for this instance
  bool geometry_reused = false;  // served from a warm GeometryCache slot
  std::array<double, kNumTaskKinds> task_kind_ms = [] {
    std::array<double, kNumTaskKinds> ms{};
    ms.fill(-1.0);
    return ms;
  }();
};

// Running sum/min/max/count of one metric, reduced in instance order.
struct MetricSummary {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  long long count = 0;

  void Add(double v);
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  friend bool operator==(const MetricSummary&, const MetricSummary&) = default;
};

// One scenario family's batch outcome.
struct ScenarioResult {
  ScenarioSpec spec;
  std::vector<InstanceRecord> instances;  // ordered by instance index
  // Deterministic aggregate: (metric name, summary) in a fixed order.
  std::vector<std::pair<std::string, MetricSummary>> aggregate;

  // Non-deterministic timing.
  double build_ms_total = 0.0;
  double task_ms_total = 0.0;
  double batch_wall_ms = 0.0;  // wall time of the whole batch section
  // Worker-summed per-stage breakdown (geometry_build / geometry_reuse /
  // kernel_build / task.<kind>), reduced sequentially from the instance
  // records after the pool drains.  Like every *_ms field it is
  // non-deterministic and never enters AggregateSignature.
  obs::StageStats stage_stats;

  double Throughput() const {  // instances per second of batch wall time
    return batch_wall_ms > 0.0
               ? 1000.0 * static_cast<double>(instances.size()) / batch_wall_ms
               : 0.0;
  }
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchConfig config = {});

  // Runs every instance of every spec through the pool; one KernelCache per
  // instance, all configured tasks against the warm cache.
  //
  // Runtime-input failures surface as core::StatusError: an invalid spec
  // (ValidateScenarioSpec) throws before any worker starts, and a worker
  // that throws -- injected fault or real -- is captured per instance, the
  // remaining instances still run, and the lowest failed index is rethrown
  // as kInternal after the pool drains (so the error is deterministic under
  // any thread count).  Contract violations (short arena span) stay
  // DL_CHECKs.
  std::vector<ScenarioResult> Run(std::span<const ScenarioSpec> specs) const;

  ScenarioResult RunOne(const ScenarioSpec& spec) const;

  const BatchConfig& config() const noexcept { return config_; }

 private:
  BatchConfig config_;
};

// Serialises the deterministic part of a report (spec identity + per-metric
// summaries, %.17g so doubles round-trip exactly).  Two runs of the same
// specs agree bit-for-bit on this string regardless of thread count.
std::string AggregateSignature(std::span<const ScenarioResult> results);

// The worker-pool size a config's `threads` value resolves to:
// the value itself when positive, hardware concurrency (min 1) at 0.
int ResolveThreads(int requested);

// Numeric-health check over a batch outcome: kNumericError naming the first
// aggregate whose populated summary (count > 0) carries a non-finite
// sum/min/max, Ok otherwise.  A NaN that leaks out of a kernel or simulator
// would silently poison every downstream mean; the sweep runner treats a
// failed check like any other cell failure.
core::Status AggregateHealth(const ScenarioResult& result);

}  // namespace decaylib::engine
