// Anisotropic antenna patterns.
//
// A pattern maps the departure/arrival direction (relative to the antenna's
// boresight orientation) to a linear power gain.  Patterns multiply into the
// channel gain on both the transmit and receive side, which makes the
// resulting decay space asymmetric whenever orientations differ -- one of the
// effects the paper cites as breaking geometric models.
#pragma once

#include <memory>

#include "geom/point.h"

namespace decaylib::env {

class AntennaPattern {
 public:
  virtual ~AntennaPattern() = default;
  // Linear gain towards `direction` for an antenna whose boresight points
  // along `boresight`.  Must be > 0 (a floor keeps decays finite).
  virtual double Gain(geom::Vec2 boresight, geom::Vec2 direction) const = 0;
};

// Gain 1 in all directions.
class IsotropicAntenna final : public AntennaPattern {
 public:
  double Gain(geom::Vec2, geom::Vec2) const override { return 1.0; }
};

// Cardioid: gain = floor + (1 - floor) * ((1 + cos(theta)) / 2)^sharpness,
// where theta is the angle off boresight.  Smooth directional pattern.
class CardioidAntenna final : public AntennaPattern {
 public:
  explicit CardioidAntenna(double sharpness = 1.0, double floor = 0.01);
  double Gain(geom::Vec2 boresight, geom::Vec2 direction) const override;

 private:
  double sharpness_;
  double floor_;
};

// Sector antenna: full gain within +-beamwidth/2 of boresight, `backlobe`
// gain outside.
class SectorAntenna final : public AntennaPattern {
 public:
  explicit SectorAntenna(double beamwidth_radians, double backlobe = 0.01);
  double Gain(geom::Vec2 boresight, geom::Vec2 direction) const override;

 private:
  double half_beam_;
  double backlobe_;
};

}  // namespace decaylib::env
