#include "env/environment.h"

#include "core/check.h"

namespace decaylib::env {

Environment::Environment() {
  materials_.push_back({"drywall", 6.0, 0.3});
}

MaterialId Environment::AddMaterial(Material material) {
  DL_CHECK(material.penetration_loss_db >= 0.0, "negative wall loss");
  DL_CHECK(material.reflectivity >= 0.0 && material.reflectivity <= 1.0,
           "reflectivity must be in [0,1]");
  materials_.push_back(std::move(material));
  return static_cast<MaterialId>(materials_.size() - 1);
}

const Material& Environment::MaterialAt(MaterialId id) const {
  DL_CHECK(id >= 0 && id < NumMaterials(), "unknown material");
  return materials_[static_cast<std::size_t>(id)];
}

void Environment::AddWall(geom::Segment segment, MaterialId material) {
  DL_CHECK(material >= 0 && material < NumMaterials(), "unknown material");
  walls_.push_back({segment, material});
}

void Environment::AddRoom(geom::Vec2 lo, geom::Vec2 hi, MaterialId material) {
  AddWall({{lo.x, lo.y}, {hi.x, lo.y}}, material);
  AddWall({{hi.x, lo.y}, {hi.x, hi.y}}, material);
  AddWall({{hi.x, hi.y}, {lo.x, hi.y}}, material);
  AddWall({{lo.x, hi.y}, {lo.x, lo.y}}, material);
}

double Environment::PenetrationLossDb(geom::Vec2 from, geom::Vec2 to,
                                      int skip) const {
  const geom::Segment path{from, to};
  double loss = 0.0;
  for (std::size_t i = 0; i < walls_.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    if (geom::SegmentsIntersect(path, walls_[i].segment)) {
      loss += MaterialAt(walls_[i].material).penetration_loss_db;
    }
  }
  return loss;
}

int Environment::WallsCrossed(geom::Vec2 from, geom::Vec2 to) const {
  const geom::Segment path{from, to};
  int crossings = 0;
  for (const Wall& wall : walls_) {
    if (geom::SegmentsIntersect(path, wall.segment)) ++crossings;
  }
  return crossings;
}

Environment Environment::OfficeGrid(double w, double h, int rooms_x,
                                    int rooms_y, double door) {
  DL_CHECK(rooms_x >= 1 && rooms_y >= 1, "need at least one room");
  Environment env;
  const MaterialId concrete =
      env.AddMaterial({"concrete", 12.0, 0.5});
  // Outer shell in concrete.
  env.AddRoom({0.0, 0.0}, {w, h}, concrete);
  // Inner partitions in default drywall (material 0), with a door gap in the
  // middle of every partition.
  for (int i = 1; i < rooms_x; ++i) {
    const double x = w * i / rooms_x;
    const double mid = h / 2.0;
    env.AddWall({{x, 0.0}, {x, mid - door / 2.0}});
    env.AddWall({{x, mid + door / 2.0}, {x, h}});
  }
  for (int j = 1; j < rooms_y; ++j) {
    const double y = h * j / rooms_y;
    const double mid = w / 2.0;
    env.AddWall({{0.0, y}, {mid - door / 2.0, y}});
    env.AddWall({{mid + door / 2.0, y}, {w, y}});
  }
  return env;
}

}  // namespace decaylib::env
