// Channel-gain computation and decay-matrix generation.
//
// The channel gain between two placed nodes combines, in linear power terms:
//   * large-scale path loss (free-space d^-alpha or log-distance),
//   * per-wall penetration loss along the direct ray,
//   * static lognormal shadowing (hashed per ordered pair: a fixed
//     environment yields a fixed matrix, matching the paper's "invariability
//     of wireless conditions in static environments"),
//   * transmit/receive antenna pattern gains,
//   * optionally, first-order specular reflections off walls via the image
//     method, whose powers add to the direct path (additive multi-path).
//
// The decay is the reciprocal of the gain: f(u, v) = 1 / G_uv (Sec. 2.2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/decay_space.h"
#include "env/antenna.h"
#include "env/environment.h"
#include "geom/point.h"

namespace decaylib::env {

enum class PathLossLaw {
  kPowerLaw,     // gain = (d0 / max(d, d_min))^alpha
  kLogDistance,  // gain_dB = -10 alpha log10(max(d, d_min)/d0)
};
// (The two laws coincide; both are provided so configs can be written in
// either engineering convention.)

struct PropagationConfig {
  PathLossLaw law = PathLossLaw::kPowerLaw;
  double alpha = 2.8;          // path loss exponent
  double reference_distance = 1.0;
  double min_distance = 0.1;   // near-field clamp
  double shadowing_sigma_db = 0.0;  // lognormal shadowing std dev
  bool symmetric_shadowing = true;  // one draw per unordered pair
  bool enable_reflections = false;  // first-order image method
  std::uint64_t seed = 1;           // environment realisation seed
};

// A radio node: position, antenna boresight and pattern.
struct PlacedNode {
  geom::Vec2 position;
  geom::Vec2 boresight{1.0, 0.0};
  const AntennaPattern* antenna = nullptr;  // null = isotropic
};

// Linear channel gain from node u to node v in `environment`.
double ChannelGain(const Environment& environment,
                   const PropagationConfig& config, const PlacedNode& from,
                   const PlacedNode& to, std::uint64_t pair_key);

// Builds the full decay matrix over `nodes`: f(u,v) = 1 / gain(u,v).
core::DecaySpace BuildDecaySpace(const Environment& environment,
                                 const PropagationConfig& config,
                                 const std::vector<PlacedNode>& nodes);

// Convenience: isotropic nodes at the given positions.
std::vector<PlacedNode> PlaceIsotropic(const std::vector<geom::Vec2>& points);

}  // namespace decaylib::env
