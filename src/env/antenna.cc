#include "env/antenna.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace decaylib::env {

namespace {

// Angle between two directions in [0, pi]; degenerate inputs count as aligned.
double AngleBetween(geom::Vec2 a, geom::Vec2 b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  const double c = std::clamp(a.Dot(b) / (na * nb), -1.0, 1.0);
  return std::acos(c);
}

}  // namespace

CardioidAntenna::CardioidAntenna(double sharpness, double floor)
    : sharpness_(sharpness), floor_(floor) {
  DL_CHECK(sharpness > 0.0, "sharpness must be positive");
  DL_CHECK(floor > 0.0 && floor <= 1.0, "floor must be in (0,1]");
}

double CardioidAntenna::Gain(geom::Vec2 boresight, geom::Vec2 direction) const {
  const double theta = AngleBetween(boresight, direction);
  const double lobe = std::pow((1.0 + std::cos(theta)) / 2.0, sharpness_);
  return floor_ + (1.0 - floor_) * lobe;
}

SectorAntenna::SectorAntenna(double beamwidth_radians, double backlobe)
    : half_beam_(beamwidth_radians / 2.0), backlobe_(backlobe) {
  DL_CHECK(beamwidth_radians > 0.0 && beamwidth_radians <= 2.0 * M_PI,
           "beamwidth must be in (0, 2pi]");
  DL_CHECK(backlobe > 0.0 && backlobe <= 1.0, "backlobe must be in (0,1]");
}

double SectorAntenna::Gain(geom::Vec2 boresight, geom::Vec2 direction) const {
  return AngleBetween(boresight, direction) <= half_beam_ ? 1.0 : backlobe_;
}

}  // namespace decaylib::env
