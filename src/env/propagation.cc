#include "env/propagation.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "geom/rng.h"

namespace decaylib::env {

namespace {

const IsotropicAntenna kIsotropic;

double PathLossGain(const PropagationConfig& config, double distance) {
  const double d = std::max(distance, config.min_distance);
  switch (config.law) {
    case PathLossLaw::kPowerLaw:
      return std::pow(config.reference_distance / d, config.alpha);
    case PathLossLaw::kLogDistance: {
      const double loss_db =
          10.0 * config.alpha * std::log10(d / config.reference_distance);
      return std::pow(10.0, -loss_db / 10.0);
    }
  }
  return 0.0;  // unreachable
}

// Deterministic standard normal from a 64-bit key (Box-Muller over two
// hashed uniforms); gives each pair its static shadowing draw.
double HashedNormal(std::uint64_t key) {
  const std::uint64_t h1 = geom::Mix64(key);
  const std::uint64_t h2 = geom::Mix64(key ^ 0x9e3779b97f4a7c15ULL);
  const double u1 =
      (static_cast<double>(h1 >> 11) + 0.5) * 0x1.0p-53;  // in (0,1)
  const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double ShadowingFactor(const PropagationConfig& config,
                       std::uint64_t pair_key) {
  if (config.shadowing_sigma_db <= 0.0) return 1.0;
  const double db = config.shadowing_sigma_db * HashedNormal(pair_key);
  return std::pow(10.0, db / 10.0);
}

const AntennaPattern& PatternOf(const PlacedNode& node) {
  return node.antenna != nullptr ? *node.antenna : kIsotropic;
}

// Gain of the direct ray, before shadowing.
double DirectRayGain(const Environment& environment,
                     const PropagationConfig& config, const PlacedNode& from,
                     const PlacedNode& to) {
  const geom::Vec2 dir = to.position - from.position;
  const double distance = dir.Norm();
  double gain = PathLossGain(config, distance);
  const double wall_db =
      environment.PenetrationLossDb(from.position, to.position);
  gain *= std::pow(10.0, -wall_db / 10.0);
  gain *= PatternOf(from).Gain(from.boresight, dir);
  gain *= PatternOf(to).Gain(to.boresight, dir * -1.0);
  return gain;
}

// Total gain of first-order specular reflections (image method).  For each
// wall, mirror the transmitter across the wall's line; the specular path is
// valid iff the straight ray from the image to the receiver crosses the wall
// segment itself.  The bounce keeps the material's reflectivity fraction of
// the power; both legs accrue penetration losses from *other* walls.
double ReflectedGain(const Environment& environment,
                     const PropagationConfig& config, const PlacedNode& from,
                     const PlacedNode& to) {
  double total = 0.0;
  const auto& walls = environment.walls();
  for (std::size_t w = 0; w < walls.size(); ++w) {
    const Wall& wall = walls[w];
    const geom::Vec2 image =
        geom::MirrorAcrossLine(from.position, wall.segment);
    const auto bounce = geom::SegmentIntersection(
        {image, to.position}, wall.segment);
    if (!bounce.has_value()) continue;  // no valid specular point
    const double path_length = geom::Distance(image, to.position);
    if (path_length <= 0.0) continue;
    double gain = PathLossGain(config, path_length);
    gain *= environment.MaterialAt(wall.material).reflectivity;
    const double leg_db =
        environment.PenetrationLossDb(from.position, *bounce,
                                      static_cast<int>(w)) +
        environment.PenetrationLossDb(*bounce, to.position,
                                      static_cast<int>(w));
    gain *= std::pow(10.0, -leg_db / 10.0);
    // Antenna gains along departure/arrival directions of the bounce path.
    gain *= PatternOf(from).Gain(from.boresight, *bounce - from.position);
    gain *= PatternOf(to).Gain(to.boresight, *bounce - to.position);
    total += gain;
  }
  return total;
}

}  // namespace

double ChannelGain(const Environment& environment,
                   const PropagationConfig& config, const PlacedNode& from,
                   const PlacedNode& to, std::uint64_t pair_key) {
  double gain = DirectRayGain(environment, config, from, to);
  if (config.enable_reflections) {
    gain += ReflectedGain(environment, config, from, to);
  }
  gain *= ShadowingFactor(config, pair_key);
  DL_CHECK(gain > 0.0, "channel gain must be positive");
  return gain;
}

core::DecaySpace BuildDecaySpace(const Environment& environment,
                                 const PropagationConfig& config,
                                 const std::vector<PlacedNode>& nodes) {
  const int n = static_cast<int>(nodes.size());
  DL_CHECK(n >= 1, "no nodes placed");
  core::DecaySpace space(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      // Symmetric shadowing keys the unordered pair; directional effects
      // (antennas) still make the gain itself direction-dependent.
      const std::uint64_t a = static_cast<std::uint64_t>(
          config.symmetric_shadowing ? std::min(u, v) : u);
      const std::uint64_t b = static_cast<std::uint64_t>(
          config.symmetric_shadowing ? std::max(u, v) : v);
      const std::uint64_t pair_key =
          geom::Mix64(config.seed ^ (a * 0x1000193ULL + b));
      const double gain =
          ChannelGain(environment, config, nodes[static_cast<std::size_t>(u)],
                      nodes[static_cast<std::size_t>(v)], pair_key);
      space.Set(u, v, 1.0 / gain);
    }
  }
  return space;
}

std::vector<PlacedNode> PlaceIsotropic(const std::vector<geom::Vec2>& points) {
  std::vector<PlacedNode> nodes;
  nodes.reserve(points.size());
  for (const geom::Vec2& p : points) nodes.push_back({p, {1.0, 0.0}, nullptr});
  return nodes;
}

}  // namespace decaylib::env
