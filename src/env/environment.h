// Static 2-D propagation environments: materials, walls, floor plans.
//
// The paper's motivation is that real environments -- "assortments of walls,
// ceilings and obstacles, as well as complex interactions involving
// reflections, shadowing, multi-path signals, and anisotropic antennas" --
// break the geometric path-loss assumption.  The sibling measurement paper
// [24] populates decay spaces from testbed RSSI; lacking hardware, this
// module builds the same kind of matrices synthetically: polygonal wall
// layouts with per-material penetration loss and reflectivity, which
// propagation.h turns into decay matrices.  What matters downstream is only
// that the resulting f is a static pre-metric whose metricity exceeds the
// free-space alpha, which these layouts produce by construction.
#pragma once

#include <string>
#include <vector>

#include "geom/point.h"

namespace decaylib::env {

// A wall material: how much signal is lost crossing one wall of it, and how
// reflective its surface is.
struct Material {
  std::string name;
  double penetration_loss_db = 6.0;  // attenuation per crossing
  double reflectivity = 0.3;         // power fraction kept on specular bounce
};

// Ids into Environment::materials().
using MaterialId = int;

struct Wall {
  geom::Segment segment;
  MaterialId material = 0;
};

class Environment {
 public:
  Environment();

  // Registers a material and returns its id.  A default 6 dB material with
  // reflectivity 0.3 is pre-registered as id 0.
  MaterialId AddMaterial(Material material);
  const Material& MaterialAt(MaterialId id) const;
  int NumMaterials() const noexcept { return static_cast<int>(materials_.size()); }

  void AddWall(geom::Segment segment, MaterialId material = 0);
  const std::vector<Wall>& walls() const noexcept { return walls_; }

  // Axis-aligned rectangular room boundary (four walls).
  void AddRoom(geom::Vec2 lower_left, geom::Vec2 upper_right,
               MaterialId material = 0);

  // Total penetration loss (dB) along the straight segment from -> to,
  // summing the material loss of every crossed wall.  `skip` may name one
  // wall index to ignore (used by the image method for the reflecting wall).
  double PenetrationLossDb(geom::Vec2 from, geom::Vec2 to,
                           int skip = -1) const;

  // Number of walls crossed by the open segment from -> to.
  int WallsCrossed(geom::Vec2 from, geom::Vec2 to) const;

  // A standard synthetic office: a w x h outer shell with `rooms_x` by
  // `rooms_y` grid of inner drywall partitions, each with a centred door gap
  // of width `door`.  A compact model of the multi-wall environments used in
  // indoor propagation studies.
  static Environment OfficeGrid(double w, double h, int rooms_x, int rooms_y,
                                double door = 1.0);

 private:
  std::vector<Material> materials_;
  std::vector<Wall> walls_;
};

}  // namespace decaylib::env
