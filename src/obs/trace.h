// Scoped stage timers emitting Chrome trace_event JSON, viewable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// obs::Span is an RAII timer: construction snapshots the steady clock,
// destruction (or Finish) computes the duration and
//   * appends one complete ("ph": "X") trace event -- name, ts/dur in
//     microseconds since the process trace epoch, pid, and a small stable
//     per-thread tid -- to the global TraceSink when a trace is active, and
//   * observes the duration (in ms) into an optional obs::Histogram.
// Same-thread spans nest by construction order, so Perfetto renders the
// engine's geometry -> kernel -> task stack as nested slices per worker.
//
// Cost model: when obs::Enabled() is false at construction the span takes
// no clock snapshot and its destructor is a dead branch; when enabled but
// no trace is active, it costs two clock reads and a histogram update.
// Event capture takes one mutex acquisition per span *end* -- span
// granularity in this library is per instance / per cell, so the lock is
// far off any inner loop.
//
// The exported document is {"traceEvents": [...], "displayTimeUnit": "ms"},
// serialised via io::Json so tests (and the CLI itself) can re-parse what
// they wrote with the same strict parser.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "io/json.h"

namespace decaylib::obs {

class Histogram;

// Small stable id of the calling thread (1-based, assigned on first use).
int CurrentThreadId();

// One complete trace event ("ph": "X").
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   // start, microseconds since the trace epoch
  double dur_us = 0.0;  // duration, microseconds
  int tid = 0;
};

// Process-global collector of trace events.  Start clears the buffer and
// begins capture; Stop ends it (buffered events stay readable until the
// next Start or Clear).  Record is thread-safe.
class TraceSink {
 public:
  static TraceSink& Global();

  void Start();
  void Stop();
  void Clear();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  void Record(TraceEvent event);
  std::size_t EventCount() const;
  std::vector<TraceEvent> Events() const;  // snapshot copy

  // {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
  //  "tid"}, ...], "displayTimeUnit": "ms"} -- the Chrome trace-event JSON
  // object form, loadable in Perfetto.
  io::Json ToJson() const;

  // Dumps ToJson() to `path`; kIoError when the file cannot be written.
  core::Status WriteFile(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> active_{false};
  std::vector<TraceEvent> events_;
};

// RAII scoped timer; see the file comment for the emission rules.
class Span {
 public:
  explicit Span(std::string name, Histogram* histogram = nullptr,
                const char* category = "stage");
  ~Span() { Finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span early (idempotent); returns the measured duration in ms
  // (0 when the span was constructed disabled).
  double Finish();

 private:
  std::string name_;
  Histogram* histogram_;
  const char* category_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace decaylib::obs
