#include "obs/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>

namespace decaylib::obs {

namespace {

std::string FmtMs(double ms) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

std::string FmtPct(double rel) {
  if (std::isinf(rel)) return rel > 0.0 ? "+inf%" : "-inf%";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", rel * 100.0);
  return buffer;
}

// Counters whose deltas changed between the two runs: the behavioural
// explanation for a timing shift, when there is one.
std::string CounterNote(const BenchPhaseRecord& base,
                        const BenchPhaseRecord& current) {
  std::set<std::string> names;
  for (const auto& [name, value] : base.counters) names.insert(name);
  for (const auto& [name, value] : current.counters) names.insert(name);
  std::string note;
  int listed = 0;
  for (const std::string& name : names) {
    const auto b = base.counters.find(name);
    const auto c = current.counters.find(name);
    const long long base_value = b == base.counters.end() ? 0 : b->second;
    const long long cur_value = c == current.counters.end() ? 0 : c->second;
    if (base_value == cur_value) continue;
    if (listed == 3) {
      note += ", ...";
      break;
    }
    if (!note.empty()) note += ", ";
    note += name + " " + std::to_string(base_value) + "->" +
            std::to_string(cur_value);
    ++listed;
  }
  return note;
}

void CompareProvenance(const Provenance& base, const Provenance& current,
                       std::vector<std::string>* warnings) {
  const auto warn = [warnings](const std::string& what, const std::string& a,
                               const std::string& b) {
    warnings->push_back(what + " differs: base '" + a + "' vs current '" + b +
                        "'");
  };
  if (base.hostname != current.hostname) {
    warn("host", base.hostname, current.hostname);
  }
  if (base.build_type != current.build_type) {
    warn("build type", base.build_type, current.build_type);
  }
  if (base.ndebug != current.ndebug) {
    warn("NDEBUG", base.ndebug ? "on" : "off", current.ndebug ? "on" : "off");
  }
  if (base.sanitizers != current.sanitizers) {
    warn("sanitizers", base.sanitizers, current.sanitizers);
  }
  if (base.compiler != current.compiler) {
    warn("compiler", base.compiler, current.compiler);
  }
}

}  // namespace

const char* DeltaVerdictName(DeltaVerdict verdict) {
  switch (verdict) {
    case DeltaVerdict::kWithinNoise:
      return "within noise";
    case DeltaVerdict::kRegression:
      return "REGRESSION";
    case DeltaVerdict::kImprovement:
      return "improvement";
    case DeltaVerdict::kMissingPhase:
      return "MISSING";
    case DeltaVerdict::kNewPhase:
      return "new phase";
  }
  return "unknown";
}

CompareResult CompareBenchReports(const BenchReportData& base,
                                  const BenchReportData& current,
                                  const CompareOptions& options) {
  CompareResult result;
  CompareProvenance(base.provenance, current.provenance,
                    &result.provenance_warnings);
  for (const BenchPhaseRecord& base_phase : base.phases) {
    PhaseDelta delta;
    delta.name = base_phase.name;
    delta.base_ms = base_phase.stats.min_ms;
    const BenchPhaseRecord* cur_phase = current.Find(base_phase.name);
    if (cur_phase == nullptr) {
      delta.verdict = DeltaVerdict::kMissingPhase;
      if (!options.allow_missing) ++result.regressions;
      result.deltas.push_back(std::move(delta));
      continue;
    }
    delta.cur_ms = cur_phase->stats.min_ms;
    delta.delta_ms = delta.cur_ms - delta.base_ms;
    // A zero baseline (phase faster than the timer resolution) makes any
    // slowdown an infinite relative change: rel = +inf so the relative
    // guard always passes and the k-sigma / absolute guards decide alone,
    // instead of rel = 0 masking the regression as within noise.
    if (delta.base_ms > 0.0) {
      delta.rel = delta.delta_ms / delta.base_ms;
    } else {
      delta.rel = delta.delta_ms > 0.0
                      ? std::numeric_limits<double>::infinity()
                      : 0.0;
    }
    delta.noise_ms =
        options.k_sigma *
        std::max(base_phase.stats.stddev_ms, cur_phase->stats.stddev_ms);
    const double magnitude = std::abs(delta.delta_ms);
    const bool significant = std::abs(delta.rel) > options.rel_threshold &&
                             magnitude > delta.noise_ms &&
                             magnitude > options.min_abs_ms;
    if (significant) {
      delta.verdict = delta.delta_ms > 0.0 ? DeltaVerdict::kRegression
                                           : DeltaVerdict::kImprovement;
      if (delta.verdict == DeltaVerdict::kRegression) {
        ++result.regressions;
      } else {
        ++result.improvements;
      }
      delta.note = CounterNote(base_phase, *cur_phase);
    }
    result.deltas.push_back(std::move(delta));
  }
  for (const BenchPhaseRecord& cur_phase : current.phases) {
    if (base.Find(cur_phase.name) != nullptr) continue;
    PhaseDelta delta;
    delta.name = cur_phase.name;
    delta.verdict = DeltaVerdict::kNewPhase;
    delta.cur_ms = cur_phase.stats.min_ms;
    result.deltas.push_back(std::move(delta));
  }
  return result;
}

std::string CompareMarkdownTable(const CompareResult& result,
                                 const std::string& bench) {
  std::ostringstream out;
  out << "### " << bench << "\n\n";
  for (const std::string& warning : result.provenance_warnings) {
    out << "> warning: " << warning << "\n";
  }
  if (!result.provenance_warnings.empty()) out << "\n";
  out << "| phase | base min (ms) | current min (ms) | delta | rel | noise "
         "(ms) | verdict |\n";
  out << "|---|---:|---:|---:|---:|---:|---|\n";
  for (const PhaseDelta& delta : result.deltas) {
    out << "| " << delta.name << " | ";
    if (delta.verdict == DeltaVerdict::kNewPhase) {
      out << "- | " << FmtMs(delta.cur_ms) << " | - | - | - | ";
    } else if (delta.verdict == DeltaVerdict::kMissingPhase) {
      out << FmtMs(delta.base_ms) << " | - | - | - | - | ";
    } else {
      out << FmtMs(delta.base_ms) << " | " << FmtMs(delta.cur_ms) << " | "
          << FmtMs(delta.delta_ms) << " | " << FmtPct(delta.rel) << " | "
          << FmtMs(delta.noise_ms) << " | ";
    }
    out << DeltaVerdictName(delta.verdict);
    if (!delta.note.empty()) out << " (" << delta.note << ")";
    out << " |\n";
  }
  out << "\n" << result.regressions << " regression(s), "
      << result.improvements << " improvement(s), " << result.deltas.size()
      << " phase(s) compared\n";
  return out.str();
}

}  // namespace decaylib::obs
