#include "obs/trace.h"

#include <cstdio>

#include "obs/registry.h"

namespace decaylib::obs {

namespace {

// The trace epoch: first call wins, so every ts is a small non-negative
// offset instead of a raw steady_clock reading.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

double MicrosSinceEpoch(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - TraceEpoch()).count();
}

}  // namespace

int CurrentThreadId() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();  // leaked: outlives all users
  return *sink;
}

void TraceSink::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  (void)TraceEpoch();  // pin the epoch no later than the first event
  active_.store(true, std::memory_order_relaxed);
}

void TraceSink::Stop() { active_.store(false, std::memory_order_relaxed); }

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void TraceSink::Record(TraceEvent event) {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t TraceSink::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

io::Json TraceSink::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  io::Json events = io::Json::Array();
  for (const TraceEvent& e : events_) {
    io::Json event = io::Json::Object();
    event.Set("name", io::Json::String(e.name));
    event.Set("cat", io::Json::String(e.category));
    event.Set("ph", io::Json::String("X"));
    event.Set("ts", io::Json::Number(e.ts_us));
    event.Set("dur", io::Json::Number(e.dur_us));
    event.Set("pid", io::Json::Number(1.0));
    event.Set("tid", io::Json::Number(static_cast<double>(e.tid)));
    events.Append(std::move(event));
  }
  io::Json out = io::Json::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", io::Json::String("ms"));
  return out;
}

core::Status TraceSink::WriteFile(const std::string& path) const {
  const std::string text = ToJson().Dump();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return core::Status::IoError("cannot write trace file " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), out);
  const bool flushed = std::fclose(out) == 0;
  if (written != text.size() || !flushed) {
    return core::Status::IoError("short write to trace file " + path);
  }
  return core::Status::Ok();
}

Span::Span(std::string name, Histogram* histogram, const char* category)
    : name_(std::move(name)),
      histogram_(histogram),
      category_(category),
      armed_(Enabled()) {
  if (armed_) start_ = std::chrono::steady_clock::now();
}

double Span::Finish() {
  if (!armed_) return 0.0;
  armed_ = false;
  const auto end = std::chrono::steady_clock::now();
  const double dur_ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  if (histogram_ != nullptr) histogram_->Observe(dur_ms);
  TraceSink& sink = TraceSink::Global();
  if (sink.active()) {
    TraceEvent event;
    event.name = std::move(name_);
    event.category = category_;
    event.ts_us = MicrosSinceEpoch(start_);
    event.dur_us = 1e3 * dur_ms;
    event.tid = CurrentThreadId();
    sink.Record(std::move(event));
  }
  return dur_ms;
}

}  // namespace decaylib::obs
