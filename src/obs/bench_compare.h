// Noise-aware comparison of two BENCH v2 records (obs/bench_harness.h).
//
// A single wall-clock delta between two bench runs is meaningless on a
// shared machine: the question is whether the delta clears the run's own
// measured dispersion.  CompareBenchReports matches phases by name and
// flags a delta only when it exceeds *all three* guards at once --
// a relative bound (rel_threshold), a dispersion bound (k_sigma times the
// larger of the two runs' stddevs), and an absolute floor (min_abs_ms,
// which keeps microsecond phases from tripping percentage thresholds on
// scheduler jitter).  Everything else is reported as within noise.
//
// The headline metric is min_ms: the minimum over samples is the standard
// low-noise estimator for "how fast can this code go" (one-sided noise --
// interference only ever adds time).  The dispersion guard still uses the
// full-sample stddev.
//
// Provenance is compared too: a host/build-type/NDEBUG mismatch between the
// two records does not fail the comparison, but it is surfaced in the
// result so a CI gate against baselines from different hardware can say
// why its thresholds are loose (tools/bench_compare prints the warning).
#pragma once

#include <string>
#include <vector>

#include "obs/bench_harness.h"

namespace decaylib::obs {

struct CompareOptions {
  double rel_threshold = 0.25;  // flag only |delta| / base beyond this
  double k_sigma = 3.0;         // ... and |delta| > k * max(stddevs)
  double min_abs_ms = 0.5;      // ... and |delta| above this floor
  bool allow_missing = false;   // base phase absent from current: note vs fail
};

enum class DeltaVerdict {
  kWithinNoise,
  kRegression,    // current slower, beyond every guard
  kImprovement,   // current faster, beyond every guard
  kMissingPhase,  // in base, absent from current (regression unless allowed)
  kNewPhase,      // in current only; informational
};

const char* DeltaVerdictName(DeltaVerdict verdict);

// One matched (or unmatched) phase pair.
struct PhaseDelta {
  std::string name;
  DeltaVerdict verdict = DeltaVerdict::kWithinNoise;
  double base_ms = 0.0;   // base min_ms (0 for kNewPhase)
  double cur_ms = 0.0;    // current min_ms (0 for kMissingPhase)
  double delta_ms = 0.0;  // cur - base
  double rel = 0.0;       // delta_ms / base_ms (+inf when base is 0 and
                          // current is slower; 0 when both are 0)
  double noise_ms = 0.0;  // k_sigma * max(base stddev, current stddev)
  std::string note;       // counter-delta attribution, when any
};

struct CompareResult {
  std::vector<PhaseDelta> deltas;  // base order, then new phases
  int regressions = 0;
  int improvements = 0;
  // Provenance mismatches worth a warning next to any verdict.
  std::vector<std::string> provenance_warnings;

  bool ok() const { return regressions == 0; }
};

CompareResult CompareBenchReports(const BenchReportData& base,
                                  const BenchReportData& current,
                                  const CompareOptions& options);

// GitHub-flavoured markdown delta table plus provenance warnings and a
// one-line summary; what tools/bench_compare prints per matched pair.
std::string CompareMarkdownTable(const CompareResult& result,
                                 const std::string& bench);

}  // namespace decaylib::obs
