// Statistics-aware bench harness: the BENCH v2 timing-record layer.
//
// bench::JsonReport (PR 1) emitted one unrepeated wall_ms per phase with no
// run provenance and no dispersion, so no two BENCH files were comparable:
// a silent regression was indistinguishable from a noisy run or a different
// build type.  BenchHarness replaces it with the same memoize-and-compare
// discipline the kernel layer applies to results -- stamp each measurement
// with everything needed to compare it later, then let bench_compare
// (obs/bench_compare.h, tools/bench_compare) diff two records with
// noise-aware thresholds.
//
// Per phase the harness records:
//   * dispersion statistics over warmup + repeated timed samples
//     (min/mean/median/p90/stddev; --reps and --min-time-ms control the
//     sample count, defaulting to one sample so existing CI invocations
//     keep their cost), via the same QuantileFromSorted helper the metrics
//     histograms use;
//   * an obs::Registry counter delta (nonzero counters only): the timed
//     section runs with obs::Enabled() on -- inert by the library-wide
//     contract, so results are bit-identical and the small uniform counter
//     cost cancels out of any comparison between two harness runs -- so a
//     timing shift can be attributed to a behavioural change
//     (arena_rebuilds, geometry_reuses, admission_checks, ...) instead of
//     just observed.
//
// The record carries a Provenance block (git sha + dirty flag, build type,
// compiler, NDEBUG/sanitizers, thread count, hostname, UTC timestamp) and
// is written through io::Json, then re-read and re-parse-validated: a
// write or validation failure is a non-zero exit (Close()), so CI cannot
// silently lose a record the way JsonReport's fopen-failure-then-exit-0
// could.
//
// Schema v2 ({"bench", "schema": 2, "provenance", "phases": [...]}) keeps
// the v1 keys ("name", "n", "wall_ms" = the min sample) inside each phase,
// so v1 consumers keep parsing the files they already understand.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/json.h"
#include "obs/provenance.h"

namespace decaylib::obs {

// Dispersion statistics over a phase's timed samples.  stddev is the
// population standard deviation (0 for a single sample); median/p90 use
// the shared QuantileFromSorted linear-interpolation rule (obs/registry.h).
struct SampleStats {
  int reps = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double median_ms = 0.0;
  double p90_ms = 0.0;
  double stddev_ms = 0.0;

  static SampleStats FromSamples(std::span<const double> samples_ms);
};

// One parsed BENCH v2 phase record (also the in-memory shape bench_compare
// diffs).
struct BenchPhaseRecord {
  std::string name;
  long long n = 0;
  SampleStats stats;
  std::vector<double> samples_ms;
  std::map<std::string, long long> counters;  // nonzero obs counter deltas
};

// One parsed BENCH v2 document.
struct BenchReportData {
  std::string bench;
  int schema = 0;
  Provenance provenance;
  std::vector<BenchPhaseRecord> phases;

  const BenchPhaseRecord* Find(const std::string& name) const;
};

// Strict schema-v2 validation/parse of a BENCH document; kInvalidArgument
// names the first offending field.  Beyond shape checks, the stored stats
// are cross-checked against samples_ms (reps must equal the sample count
// and min/mean/median/p90/stddev/total must match a recomputation), so a
// hand-edited or inconsistent record cannot pass validation and silently
// skew a bench_compare run.  LoadBenchReport adds the file read and
// io::Json::Parse in front (kIoError on read/parse failures).
core::StatusOr<BenchReportData> ParseBenchReport(const io::Json& doc);
core::StatusOr<BenchReportData> LoadBenchReport(const std::string& path);

class BenchHarness {
 public:
  struct Options {
    int reps = 1;             // timed samples per phase (>= 1)
    int warmup = 0;           // untimed runs per Time() phase
    double min_time_ms = 0.0;  // keep sampling past reps until this total
    bool write_json = false;   // write BENCH_<id>.json on Close()
  };

  // Monotonic clock in milliseconds; injectable so tests can drive the
  // sample statistics deterministically.
  using Clock = std::function<double()>;

  // CLI constructor: scans argv for the harness flags --json, --reps N,
  // --warmup N, --min-time-ms T, which override `defaults` (a bench's own
  // flags, e.g. e21's --repeat, arrive through `defaults`).  A malformed
  // harness flag prints a diagnostic and clears args_ok(); benches exit 2
  // on that, same as for their own flags.
  BenchHarness(std::string id, int argc, char** argv, Options defaults);
  BenchHarness(std::string id, int argc, char** argv);

  // Direct constructor (tests, report writers): no argv scan; `clock`
  // defaults to the steady clock, tests inject their own.
  BenchHarness(std::string id, Options options, Clock clock = nullptr);

  BenchHarness(const BenchHarness&) = delete;
  BenchHarness& operator=(const BenchHarness&) = delete;

  // True when `arg` is one of the harness's own CLI flags, so strict bench
  // parsers can skip it (and its value slot when *takes_value is set).
  static bool IsHarnessFlag(const char* arg, bool* takes_value);

  bool args_ok() const { return args_ok_; }
  bool enabled() const { return options_.write_json; }
  const Options& options() const { return options_; }

  // Runs `fn` warmup times untimed, then samples it until both the rep
  // count and min_time_ms are satisfied (capped at kMaxSamplesPerPhase).
  // The whole phase runs with obs enabled; the returned stats come from
  // the timed samples and the recorded counter delta spans them all.
  //
  // Returns by value (SampleStats is a handful of doubles): phases_ grows
  // with every phase, so a reference into it would dangle as soon as the
  // next Time()/AddSamples() call reallocated the vector.
  SampleStats Time(const std::string& name, long long n,
                   const std::function<void()>& fn);

  // Records caller-timed samples (benches that interleave A/B modes or
  // share warmup across phases time themselves).  Pass the counter delta
  // from a ScopedCounterCapture when attribution is wanted.  Returns by
  // value, same rationale as Time().
  SampleStats AddSamples(
      const std::string& name, long long n, std::vector<double> samples_ms,
      std::map<std::string, long long> counters = {});

  // Single caller-timed sample -- JsonReport::Record's shape, for phases
  // that are inherently one-shot.
  void Record(const std::string& name, long long n, double wall_ms);

  // Attaches an extra top-level member to the written document (e.g. the
  // scenario aggregates of bench_e19); unknown keys are ignored by
  // ParseBenchReport, mirroring how v1 consumers treat v2 keys.
  void SetExtra(const std::string& key, io::Json value);

  std::size_t PhaseCount() const { return phases_.size(); }

  // The complete BENCH v2 document.
  io::Json ToJson() const;

  // Writes BENCH_<id>.json in the working directory, re-reads it, and
  // validates the round trip through ParseBenchReport.
  core::Status Write() const;

  // Exit-code helper for bench main()s: 0 when --json was not requested or
  // Write() succeeded; 1 (after a stderr diagnostic) otherwise.
  int Close() const;

  static constexpr int kMaxSamplesPerPhase = 1000;

 private:
  void ParseArgs(int argc, char** argv, const Options& defaults);

  std::string id_;
  Options options_;
  Clock clock_;
  bool args_ok_ = true;
  std::vector<BenchPhaseRecord> phases_;
  std::vector<std::pair<std::string, io::Json>> extras_;
};

// RAII counter-delta capture for caller-timed phases: construction
// snapshots the registry counters and turns obs on; Take() restores the
// previous enabled state and returns the nonzero deltas.  Inert on
// results by the obs contract.
class ScopedCounterCapture {
 public:
  ScopedCounterCapture();
  ~ScopedCounterCapture();

  std::map<std::string, long long> Take();

 private:
  std::map<std::string, long long> before_;
  bool was_enabled_ = false;
  bool taken_ = false;
};

}  // namespace decaylib::obs
