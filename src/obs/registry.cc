#include "obs/registry.h"

#include <algorithm>
#include <array>

#include "core/check.h"

namespace decaylib::obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

// Relaxed CAS add for atomic<double>; C++20's fetch_add on floating-point
// atomics is still patchy across standard libraries.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double expected = target.load(std::memory_order_relaxed);
  while (v < expected && !target.compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double expected = target.load(std::memory_order_relaxed);
  while (v > expected && !target.compare_exchange_weak(
                             expected, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double QuantileRank(double q, long long count) {
  if (count <= 1) return 0.0;
  const double rank = q * static_cast<double>(count - 1);
  return std::min(std::max(rank, 0.0), static_cast<double>(count - 1));
}

double QuantileFromSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = QuantileRank(q, static_cast<long long>(sorted.size()));
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
           "histogram bucket bounds must ascend");
  buckets_ = std::vector<std::atomic<long long>>(bounds_.size() + 1);
}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  const std::size_t bucket =
      static_cast<std::size_t>(std::upper_bound(bounds_.begin(), bounds_.end(),
                                                v) -
                               bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

std::vector<long long> Histogram::BucketCounts() const {
  std::vector<long long> counts;
  counts.reserve(buckets_.size());
  for (const std::atomic<long long>& b : buckets_) {
    counts.push_back(b.load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::QuantileEstimate(double q) const {
  const long long total = count();
  if (total <= 0) return 0.0;
  const double lo_clamp = min();
  const double hi_clamp = max();
  const double rank = QuantileRank(q, total);
  const std::vector<long long> counts = BucketCounts();
  long long below = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    // Samples in bucket i occupy order-statistic indices
    // [below, below + counts[i] - 1].
    if (rank <= static_cast<double>(below + counts[i] - 1) ||
        below + counts[i] >= total) {
      const double lo = i == 0 ? std::min(0.0, lo_clamp) : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : hi_clamp;
      const double frac = (rank - static_cast<double>(below) + 0.5) /
                          static_cast<double>(counts[i]);
      const double estimate =
          lo + std::min(std::max(frac, 0.0), 1.0) * (hi - lo);
      return std::min(std::max(estimate, lo_clamp), hi_clamp);
    }
    below += counts[i];
  }
  return hi_clamp;  // unreachable: the loop always lands in some bucket
}

void Histogram::Reset() {
  for (std::atomic<long long>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::span<const double> DefaultLatencyBoundsMs() {
  static constexpr std::array<double, 13> kBounds = {
      0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
      5000.0, 10000.0};
  return kBounds;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  DL_CHECK(gauges_.find(name) == gauges_.end() &&
               histograms_.find(name) == histograms_.end(),
           "instrument name already registered with a different kind");
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  DL_CHECK(counters_.find(name) == counters_.end() &&
               histograms_.find(name) == histograms_.end(),
           "instrument name already registered with a different kind");
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  DL_CHECK(counters_.find(name) == counters_.end() &&
               gauges_.find(name) == gauges_.end(),
           "instrument name already registered with a different kind");
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBoundsMs();
    slot = std::make_unique<Histogram>(
        std::vector<double>(bounds.begin(), bounds.end()));
  }
  return *slot;
}

std::map<std::string, long long> Registry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, long long> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

io::Json Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  io::Json counters = io::Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, io::Json::Number(
                           static_cast<double>(counter->value())));
  }
  io::Json gauges = io::Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, io::Json::Number(gauge->value()));
  }
  io::Json histograms = io::Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    io::Json h = io::Json::Object();
    const long long count = histogram->count();
    h.Set("count", io::Json::Number(static_cast<double>(count)));
    h.Set("sum", io::Json::Number(histogram->sum()));
    if (count > 0) {  // inf sentinels are not JSON numbers
      h.Set("min", io::Json::Number(histogram->min()));
      h.Set("max", io::Json::Number(histogram->max()));
      h.Set("p50", io::Json::Number(histogram->QuantileEstimate(0.50)));
      h.Set("p90", io::Json::Number(histogram->QuantileEstimate(0.90)));
      h.Set("p99", io::Json::Number(histogram->QuantileEstimate(0.99)));
    }
    io::Json buckets = io::Json::Array();
    const std::vector<long long> counts = histogram->BucketCounts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      io::Json bucket = io::Json::Object();
      if (i < histogram->bounds().size()) {
        bucket.Set("le", io::Json::Number(histogram->bounds()[i]));
      } else {
        bucket.Set("le", io::Json::String("+inf"));
      }
      bucket.Set("count", io::Json::Number(static_cast<double>(counts[i])));
      buckets.Append(std::move(bucket));
    }
    h.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(h));
  }
  io::Json out = io::Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

}  // namespace decaylib::obs
