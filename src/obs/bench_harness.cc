#include "obs/bench_harness.h"

// decay-lint: allowlist-file(status-io) -- BenchHarness is the bench CLI
// surface: flag diagnostics print to stderr and Close() turns a failed
// write/re-parse into a non-zero exit code (docs/performance.md).  Library
// callers still get core::Status from Write()/LoadBenchReport().

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/check.h"
#include "obs/registry.h"

namespace decaylib::obs {

namespace {

// Strict numeric parsing, same contract as tools/tool_args.h (which lives
// outside the library's include tree): whole token, in range, finite.
bool ParseLongStrict(const char* text, long long min_value,
                     long long max_value, long long* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

bool ParseDoubleStrict(const char* text, double min_value, double max_value,
                       double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return false;
  if (!(value >= min_value && value <= max_value)) return false;
  *out = value;
  return true;
}

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::Status SchemaError(const std::string& context, const char* what) {
  return core::Status::InvalidArgument("BENCH v2: " + context + ": " + what);
}

// Stored stats vs a recomputation from samples_ms: harness-written records
// round-trip doubles exactly (io::Json dumps %.17g and FromSamples sums in
// sorted order both times), so the tolerance only absorbs records whose
// numbers were legitimately rounded by an external tool.
bool StatMatches(double stored, double recomputed) {
  const double tolerance =
      1e-9 * std::max({1.0, std::abs(stored), std::abs(recomputed)});
  return std::abs(stored - recomputed) <= tolerance;
}

const io::Json* RequireKind(const io::Json& obj, const char* key,
                            io::Json::Kind want) {
  const io::Json* member = obj.Find(key);
  if (member == nullptr || member->kind() != want) return nullptr;
  return member;
}

}  // namespace

SampleStats SampleStats::FromSamples(std::span<const double> samples_ms) {
  SampleStats stats;
  stats.reps = static_cast<int>(samples_ms.size());
  if (samples_ms.empty()) return stats;
  std::vector<double> sorted(samples_ms.begin(), samples_ms.end());
  std::sort(sorted.begin(), sorted.end());
  for (const double s : sorted) stats.total_ms += s;
  stats.min_ms = sorted.front();
  stats.mean_ms = stats.total_ms / static_cast<double>(stats.reps);
  stats.median_ms = QuantileFromSorted(sorted, 0.5);
  stats.p90_ms = QuantileFromSorted(sorted, 0.9);
  double variance = 0.0;
  for (const double s : sorted) {
    const double d = s - stats.mean_ms;
    variance += d * d;
  }
  stats.stddev_ms = std::sqrt(variance / static_cast<double>(stats.reps));
  return stats;
}

const BenchPhaseRecord* BenchReportData::Find(const std::string& name) const {
  for (const BenchPhaseRecord& phase : phases) {
    if (phase.name == name) return &phase;
  }
  return nullptr;
}

core::StatusOr<BenchReportData> ParseBenchReport(const io::Json& doc) {
  if (!doc.is_object()) return SchemaError("document", "expected an object");
  BenchReportData data;
  const io::Json* bench = RequireKind(doc, "bench", io::Json::Kind::kString);
  if (bench == nullptr) {
    return SchemaError("document", "missing string field 'bench'");
  }
  data.bench = bench->AsString();
  const io::Json* schema = RequireKind(doc, "schema", io::Json::Kind::kNumber);
  if (schema == nullptr) {
    return SchemaError(data.bench, "missing number field 'schema'");
  }
  data.schema = static_cast<int>(schema->AsNumber());
  if (data.schema != 2) {
    return SchemaError(data.bench, "unsupported schema version (want 2)");
  }
  const io::Json* provenance = doc.Find("provenance");
  if (provenance == nullptr) {
    return SchemaError(data.bench, "missing field 'provenance'");
  }
  core::StatusOr<Provenance> parsed_provenance =
      Provenance::FromJson(*provenance);
  if (!parsed_provenance.ok()) return parsed_provenance.status();
  data.provenance = std::move(*parsed_provenance);
  const io::Json* phases = RequireKind(doc, "phases", io::Json::Kind::kArray);
  if (phases == nullptr) {
    return SchemaError(data.bench, "missing array field 'phases'");
  }
  for (const io::Json& entry : phases->Items()) {
    if (!entry.is_object()) {
      return SchemaError(data.bench, "phase entries must be objects");
    }
    BenchPhaseRecord phase;
    const io::Json* name = RequireKind(entry, "name", io::Json::Kind::kString);
    if (name == nullptr) {
      return SchemaError(data.bench, "phase missing string field 'name'");
    }
    phase.name = name->AsString();
    const std::string context = data.bench + " phase '" + phase.name + "'";
    const io::Json* n = RequireKind(entry, "n", io::Json::Kind::kNumber);
    if (n == nullptr) return SchemaError(context, "missing number field 'n'");
    phase.n = static_cast<long long>(n->AsNumber());
    const io::Json* reps = RequireKind(entry, "reps", io::Json::Kind::kNumber);
    if (reps == nullptr) {
      return SchemaError(context, "missing number field 'reps'");
    }
    phase.stats.reps = static_cast<int>(reps->AsNumber());
    if (phase.stats.reps < 1) {
      return SchemaError(context, "'reps' must be >= 1");
    }
    const struct {
      const char* key;
      double* out;
    } stat_fields[] = {
        {"total_ms", &phase.stats.total_ms}, {"min_ms", &phase.stats.min_ms},
        {"mean_ms", &phase.stats.mean_ms},
        {"median_ms", &phase.stats.median_ms},
        {"p90_ms", &phase.stats.p90_ms},
        {"stddev_ms", &phase.stats.stddev_ms},
    };
    for (const auto& field : stat_fields) {
      const io::Json* value =
          RequireKind(entry, field.key, io::Json::Kind::kNumber);
      if (value == nullptr) {
        return SchemaError(context, (std::string("missing number field '") +
                                     field.key + "'")
                                        .c_str());
      }
      *field.out = value->AsNumber();
    }
    const io::Json* samples =
        RequireKind(entry, "samples_ms", io::Json::Kind::kArray);
    if (samples == nullptr) {
      return SchemaError(context, "missing array field 'samples_ms'");
    }
    for (const io::Json& sample : samples->Items()) {
      if (sample.kind() != io::Json::Kind::kNumber) {
        return SchemaError(context, "'samples_ms' entries must be numbers");
      }
      phase.samples_ms.push_back(sample.AsNumber());
    }
    if (phase.samples_ms.empty()) {
      return SchemaError(context, "'samples_ms' must be non-empty");
    }
    // Consistency gate: the stored stats must be derivable from samples_ms,
    // or bench_compare would trust dispersion numbers the samples do not
    // support (a hand-edited min_ms, a truncated sample list, ...).
    if (phase.stats.reps != static_cast<int>(phase.samples_ms.size())) {
      return SchemaError(context,
                         "'reps' does not match the samples_ms count");
    }
    const SampleStats recomputed = SampleStats::FromSamples(phase.samples_ms);
    const struct {
      const char* key;
      double stored;
      double recomputed;
    } consistency[] = {
        {"total_ms", phase.stats.total_ms, recomputed.total_ms},
        {"min_ms", phase.stats.min_ms, recomputed.min_ms},
        {"mean_ms", phase.stats.mean_ms, recomputed.mean_ms},
        {"median_ms", phase.stats.median_ms, recomputed.median_ms},
        {"p90_ms", phase.stats.p90_ms, recomputed.p90_ms},
        {"stddev_ms", phase.stats.stddev_ms, recomputed.stddev_ms},
    };
    for (const auto& check : consistency) {
      if (!StatMatches(check.stored, check.recomputed)) {
        return SchemaError(context,
                           (std::string("'") + check.key +
                            "' is inconsistent with samples_ms")
                               .c_str());
      }
    }
    const io::Json* counters =
        RequireKind(entry, "counters", io::Json::Kind::kObject);
    if (counters == nullptr) {
      return SchemaError(context, "missing object field 'counters'");
    }
    for (const auto& [key, value] : counters->Members()) {
      if (value.kind() != io::Json::Kind::kNumber) {
        return SchemaError(context, "'counters' values must be numbers");
      }
      phase.counters[key] = static_cast<long long>(value.AsNumber());
    }
    data.phases.push_back(std::move(phase));
  }
  return data;
}

core::StatusOr<BenchReportData> LoadBenchReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Status::IoError("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  core::StatusOr<io::Json> doc = io::Json::Parse(buffer.str());
  if (!doc.ok()) {
    return core::Status::IoError(path + ": " + doc.status().ToString());
  }
  core::StatusOr<BenchReportData> parsed = ParseBenchReport(*doc);
  if (!parsed.ok()) {
    return core::Status::InvalidArgument(path + ": " +
                                         parsed.status().message());
  }
  return parsed;
}

BenchHarness::BenchHarness(std::string id, int argc, char** argv,
                           Options defaults)
    : id_(std::move(id)), clock_(SteadyNowMs) {
  ParseArgs(argc, argv, defaults);
}

BenchHarness::BenchHarness(std::string id, int argc, char** argv)
    : BenchHarness(std::move(id), argc, argv, Options{}) {}

BenchHarness::BenchHarness(std::string id, Options options, Clock clock)
    : id_(std::move(id)), options_(options), clock_(std::move(clock)) {
  if (clock_ == nullptr) clock_ = SteadyNowMs;
}

bool BenchHarness::IsHarnessFlag(const char* arg, bool* takes_value) {
  *takes_value = false;
  if (std::strcmp(arg, "--json") == 0) return true;
  if (std::strcmp(arg, "--reps") == 0 || std::strcmp(arg, "--warmup") == 0 ||
      std::strcmp(arg, "--min-time-ms") == 0) {
    *takes_value = true;
    return true;
  }
  return false;
}

void BenchHarness::ParseArgs(int argc, char** argv, const Options& defaults) {
  options_ = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool takes_value = false;
    if (!IsHarnessFlag(arg, &takes_value)) continue;
    if (!takes_value) {  // --json
      options_.write_json = true;
      continue;
    }
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    ++i;
    long long int_value = 0;
    double double_value = 0.0;
    if (std::strcmp(arg, "--reps") == 0) {
      if (ParseLongStrict(value, 1, kMaxSamplesPerPhase, &int_value)) {
        options_.reps = static_cast<int>(int_value);
        continue;
      }
      std::fprintf(stderr, "--reps: expected an integer in [1, %d], got '%s'\n",
                   kMaxSamplesPerPhase, value == nullptr ? "" : value);
    } else if (std::strcmp(arg, "--warmup") == 0) {
      if (ParseLongStrict(value, 0, kMaxSamplesPerPhase, &int_value)) {
        options_.warmup = static_cast<int>(int_value);
        continue;
      }
      std::fprintf(stderr,
                   "--warmup: expected an integer in [0, %d], got '%s'\n",
                   kMaxSamplesPerPhase, value == nullptr ? "" : value);
    } else {  // --min-time-ms
      if (ParseDoubleStrict(value, 0.0, 1e9, &double_value)) {
        options_.min_time_ms = double_value;
        continue;
      }
      std::fprintf(stderr,
                   "--min-time-ms: expected a number in [0, 1e9], got '%s'\n",
                   value == nullptr ? "" : value);
    }
    args_ok_ = false;
  }
}

SampleStats BenchHarness::Time(const std::string& name, long long n,
                               const std::function<void()>& fn) {
  for (int w = 0; w < options_.warmup; ++w) fn();
  ScopedCounterCapture capture;
  std::vector<double> samples;
  double total = 0.0;
  const int reps = std::max(1, options_.reps);
  while (static_cast<int>(samples.size()) < reps ||
         total < options_.min_time_ms) {
    if (static_cast<int>(samples.size()) >= kMaxSamplesPerPhase) break;
    const double start = clock_();
    fn();
    const double elapsed = std::max(0.0, clock_() - start);
    samples.push_back(elapsed);
    total += elapsed;
  }
  return AddSamples(name, n, std::move(samples), capture.Take());
}

SampleStats BenchHarness::AddSamples(
    const std::string& name, long long n, std::vector<double> samples_ms,
    std::map<std::string, long long> counters) {
  DL_CHECK(!samples_ms.empty(), "a bench phase needs at least one sample");
  BenchPhaseRecord phase;
  phase.name = name;
  phase.n = n;
  phase.stats = SampleStats::FromSamples(samples_ms);
  phase.samples_ms = std::move(samples_ms);
  phase.counters = std::move(counters);
  phases_.push_back(std::move(phase));
  return phases_.back().stats;
}

void BenchHarness::Record(const std::string& name, long long n,
                          double wall_ms) {
  AddSamples(name, n, {wall_ms});
}

void BenchHarness::SetExtra(const std::string& key, io::Json value) {
  extras_.emplace_back(key, std::move(value));
}

io::Json BenchHarness::ToJson() const {
  io::Json doc = io::Json::Object();
  doc.Set("bench", io::Json::String(id_));
  doc.Set("schema", io::Json::Number(2));
  doc.Set("provenance", Provenance::Collect().ToJson());
  io::Json phases = io::Json::Array();
  for (const BenchPhaseRecord& phase : phases_) {
    io::Json entry = io::Json::Object();
    entry.Set("name", io::Json::String(phase.name));
    entry.Set("n", io::Json::Number(static_cast<double>(phase.n)));
    entry.Set("reps", io::Json::Number(phase.stats.reps));
    // v1 compatibility: "wall_ms" stays the headline (minimum) sample.
    entry.Set("wall_ms", io::Json::Number(phase.stats.min_ms));
    entry.Set("total_ms", io::Json::Number(phase.stats.total_ms));
    entry.Set("min_ms", io::Json::Number(phase.stats.min_ms));
    entry.Set("mean_ms", io::Json::Number(phase.stats.mean_ms));
    entry.Set("median_ms", io::Json::Number(phase.stats.median_ms));
    entry.Set("p90_ms", io::Json::Number(phase.stats.p90_ms));
    entry.Set("stddev_ms", io::Json::Number(phase.stats.stddev_ms));
    io::Json samples = io::Json::Array();
    for (const double sample : phase.samples_ms) {
      samples.Append(io::Json::Number(sample));
    }
    entry.Set("samples_ms", std::move(samples));
    io::Json counters = io::Json::Object();
    for (const auto& [counter, delta] : phase.counters) {
      counters.Set(counter, io::Json::Number(static_cast<double>(delta)));
    }
    entry.Set("counters", std::move(counters));
    phases.Append(std::move(entry));
  }
  doc.Set("phases", std::move(phases));
  for (const auto& [key, value] : extras_) doc.Set(key, value);
  return doc;
}

core::Status BenchHarness::Write() const {
  const std::string path = "BENCH_" + id_ + ".json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return core::Status::IoError("cannot write " + path);
    out << ToJson().Dump() << "\n";
    out.flush();
    if (!out) return core::Status::IoError("write to " + path + " failed");
  }
  // Round-trip gate: the file on disk must re-parse as valid schema v2, so
  // a truncated or malformed record fails the bench instead of poisoning
  // the baseline store.
  const core::StatusOr<BenchReportData> parsed = LoadBenchReport(path);
  if (!parsed.ok()) return parsed.status();
  std::printf("wrote %s (%zu phases, schema v2)\n", path.c_str(),
              phases_.size());
  return core::Status::Ok();
}

int BenchHarness::Close() const {
  if (!options_.write_json) return 0;
  if (const core::Status status = Write(); !status.ok()) {
    std::fprintf(stderr, "BenchHarness: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

ScopedCounterCapture::ScopedCounterCapture()
    : before_(Registry::Global().CounterValues()), was_enabled_(Enabled()) {
  SetEnabled(true);
}

ScopedCounterCapture::~ScopedCounterCapture() {
  if (!taken_) SetEnabled(was_enabled_);
}

std::map<std::string, long long> ScopedCounterCapture::Take() {
  if (!taken_) {
    SetEnabled(was_enabled_);
    taken_ = true;
  }
  std::map<std::string, long long> delta;
  for (const auto& [name, value] : Registry::Global().CounterValues()) {
    const auto it = before_.find(name);
    const long long base = it == before_.end() ? 0 : it->second;
    if (value != base) delta[name] = value - base;
  }
  return delta;
}

}  // namespace decaylib::obs
