#include "obs/stage_stats.h"

#include <algorithm>

namespace decaylib::obs {

namespace {

StageStats::Stage* FindMutable(std::vector<StageStats::Stage>& stages,
                               std::string_view name) {
  for (StageStats::Stage& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

}  // namespace

void StageStats::Record(std::string_view name, double ms) {
  Stage* stage = FindMutable(stages, name);
  if (stage == nullptr) {
    stages.push_back(Stage{std::string(name)});
    stage = &stages.back();
  }
  ++stage->count;
  stage->total_ms += ms;
  stage->min_ms = std::min(stage->min_ms, ms);
  stage->max_ms = std::max(stage->max_ms, ms);
}

void StageStats::Merge(const StageStats& other) {
  for (const Stage& theirs : other.stages) {
    Stage* mine = FindMutable(stages, theirs.name);
    if (mine == nullptr) {
      stages.push_back(theirs);
      continue;
    }
    mine->count += theirs.count;
    mine->total_ms += theirs.total_ms;
    mine->min_ms = std::min(mine->min_ms, theirs.min_ms);
    mine->max_ms = std::max(mine->max_ms, theirs.max_ms);
  }
}

const StageStats::Stage* StageStats::Find(std::string_view name) const {
  for (const Stage& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

double StageStats::TotalMs() const {
  double total = 0.0;
  for (const Stage& stage : stages) total += stage.total_ms;
  return total;
}

}  // namespace decaylib::obs
