// Per-stage wall-time breakdowns carried inside batch and sweep results.
//
// A StageStats is the result-local sibling of the global registry: where
// Registry aggregates over the whole process, a StageStats rides inside one
// ScenarioResult / SweepResult and answers "where did *this* batch's time
// go" -- count / total / min / max milliseconds per named stage (geometry
// build vs reuse, kernel build, each TaskKind, checkpoint writes).  It is
// built by the sequential post-pool reduction from per-instance wall-clock
// fields, so it needs no synchronisation and -- like every *_ms field --
// is explicitly non-deterministic: it never enters AggregateSignature or
// SweepSignature, and populating it cannot perturb any result
// (the observability-inertness contract, gated in --smoke).
//
// Stage totals are *worker-summed* CPU-side wall time: under a T-thread
// pool they can legitimately exceed the batch's wall clock by up to T; on
// one thread they sum to it (within measurement overhead -- sweep_report
// prints the coverage ratio per cell).
#pragma once

#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace decaylib::obs {

struct StageStats {
  struct Stage {
    std::string name;
    long long count = 0;
    double total_ms = 0.0;
    double min_ms = std::numeric_limits<double>::infinity();
    double max_ms = -std::numeric_limits<double>::infinity();

    double MeanMs() const {
      return count > 0 ? total_ms / static_cast<double>(count) : 0.0;
    }
  };

  std::vector<Stage> stages;  // first-recorded order

  // Adds one observation of `ms` to the named stage, creating it on first
  // use.  Linear scan: breakdowns hold a dozen-odd stages.
  void Record(std::string_view name, double ms);

  // Folds another breakdown in (count/total add, min/max widen).
  void Merge(const StageStats& other);

  const Stage* Find(std::string_view name) const;
  double TotalMs() const;  // sum over all stages
  bool empty() const { return stages.empty(); }
};

}  // namespace decaylib::obs
