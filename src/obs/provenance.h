// Run provenance for the BENCH v2 timing records (obs/bench_harness.h).
//
// A timing number without its context is unfalsifiable: the same phase is
// legitimately 30x slower in an Assert build than in Release, 5x slower
// under ASan, and arbitrarily different across hosts.  Provenance stamps
// every BENCH record with exactly the facts a reader (or bench_compare)
// needs to decide whether two runs are comparable at all: the git commit
// (plus a dirty flag -- a number from an uncommitted tree pins nothing),
// the build type and compiler, whether DL_CHECK was compiled out (NDEBUG)
// and which sanitizers were baked in, the host's name and hardware thread
// count, and a UTC timestamp.
//
// Collect() reads the compile-time facts from macros and the runtime facts
// from the environment (git via subprocess; "unknown" when unavailable --
// a bench run from an exported tarball still produces a valid record).
// The struct round-trips through io::Json so BENCH files re-parse through
// the same strict parser the checkpoint sidecars use.
#pragma once

#include <string>

#include "core/status.h"
#include "io/json.h"

namespace decaylib::obs {

struct Provenance {
  std::string git_sha = "unknown";  // HEAD commit, or "unknown" without git
  bool git_dirty = false;           // uncommitted changes in the work tree
  std::string build_type = "unknown";  // CMAKE_BUILD_TYPE baked in at compile
  std::string compiler = "unknown";    // e.g. "gcc 12.2.0"
  bool ndebug = false;                 // DL_CHECK compiled out
  std::string sanitizers = "none";     // compiler-visible sanitizers
  int hardware_threads = 0;
  std::string hostname = "unknown";
  std::string timestamp_utc;  // ISO 8601, e.g. "2026-08-07T12:34:56Z"

  // Gathers the calling process's provenance.  Never fails: fields that
  // cannot be determined stay at their "unknown" defaults.
  static Provenance Collect();

  // {"git_sha": ..., "git_dirty": ..., "build_type": ..., "compiler": ...,
  //  "ndebug": ..., "sanitizers": ..., "hardware_threads": ...,
  //  "hostname": ..., "timestamp_utc": ...}
  io::Json ToJson() const;

  // Strict inverse of ToJson: every field present with the right JSON kind
  // or kInvalidArgument.
  static core::StatusOr<Provenance> FromJson(const io::Json& json);

  friend bool operator==(const Provenance&, const Provenance&) = default;
};

}  // namespace decaylib::obs
