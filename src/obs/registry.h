// Process-wide metrics registry: named counters, gauges and fixed-bucket
// latency histograms, atomic and thread-safe, near-zero cost when disabled.
//
// The engine stack (kernel builds, geometry cache, batch workers, sweep
// cells) needs an answer to "which stage is hot, per cell, per worker"
// without perturbing the results it measures.  The registry holds one
// instrument per name -- registration takes a mutex once, the returned
// handle is a stable reference whose updates are lock-free atomics -- and
// every mutation first reads a single process-global enable flag
// (obs::Enabled, a relaxed atomic bool), so an instrumented binary that
// never opts in pays one predictable branch per update site.
//
// Inertness contract, carried from every runner in the library: nothing in
// this module reads or influences randomness, iteration order or
// floating-point results.  Metrics on vs off is invisible in every
// deterministic statistic (AggregateSignature / SweepSignature); tests and
// the sweep_runner --smoke gate assert it.
//
// Snapshots serialise through io::Json (MetricsJson / Registry::ToJson), so
// a dumped --metrics file round-trips through the same strict parser the
// checkpoint sidecars use.  Count-0 histograms keep +/-inf min/max
// sentinels internally but omit them from JSON (io::Json refuses non-finite
// numbers by design).
#pragma once

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "io/json.h"

namespace decaylib::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// Global observability switch.  Default off: every instrument mutation is a
// relaxed load + branch.  CLI tools flip it on for --trace / --metrics.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

// Monotonic event count.  Add is a relaxed fetch_add when enabled.
class Counter {
 public:
  void Add(long long delta = 1) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

// Last-written instantaneous value (thread counts, grid sizes).
class Gauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// The linear-interpolation quantile rule shared by the histogram estimates
// below and the bench-harness sample statistics (obs/bench_harness.h):
// QuantileRank maps q in [0, 1] to the fractional 0-based order-statistic
// index q * (count - 1), clamped to [0, count - 1]; QuantileFromSorted
// evaluates it exactly over sorted samples by interpolating between the
// two adjacent order statistics.
double QuantileRank(double q, long long count);
double QuantileFromSorted(std::span<const double> sorted, double q);

// Fixed-bucket histogram: ascending finite upper bounds plus an implicit
// +inf overflow bucket.  Observe is wait-free per bucket (relaxed
// fetch_add) with CAS loops only for the double-valued sum/min/max; the
// count is exact under any interleaving, the sum is order-dependent in the
// usual floating-point sense (it never feeds a deterministic result).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<long long> BucketCounts() const;
  // Estimated quantile (q in [0, 1]) from the bucket counts: the
  // QuantileRank order statistic is located in its bucket, interpolated
  // linearly at the midpoint-adjusted fraction (rank - below + 0.5) /
  // bucket_count between the bucket's lower and upper bounds (the overflow
  // bucket's upper bound is the observed max), and clamped to the exact
  // observed [min, max].  0 when the histogram is empty.
  double QuantileEstimate(double q) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long long>> buckets_;
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// The default latency bucket bounds, in milliseconds: half-decade steps
// from 10us to 10s, wide enough for a kernel build and a whole sweep cell.
std::span<const double> DefaultLatencyBoundsMs();

// Name -> instrument map.  Get* registers on first use (mutex) and returns
// a reference that stays valid for the registry's lifetime; instruments are
// never removed.  One name names one instrument kind -- requesting an
// existing name with a different kind is a programmer error (DL_CHECK).
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` applies only on first registration (empty = default latency
  // buckets); later calls return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          std::span<const double> bounds = {});

  // Zeroes every registered instrument (names stay registered; handles
  // stay valid).  CLI runs call this before the measured section so a
  // --metrics dump covers exactly one run.
  void ResetAll();

  // Snapshot of every registered counter's current value, in name order.
  // The bench harness diffs two of these around a phase to attribute a
  // timing shift to a behavioural change (obs/bench_harness.h).
  std::map<std::string, long long> CounterValues() const;

  // Snapshot as a JSON document:
  //   {"counters": {name: n, ...}, "gauges": {name: v, ...},
  //    "histograms": {name: {"count": n, "sum": s, "min": m, "max": M,
  //                          "p50": ..., "p90": ..., "p99": ...,
  //                          "buckets": [{"le": b, "count": c}, ...]}, ...}}
  // Maps iterate in name order, so two snapshots of the same state dump
  // byte-identically.  min/max and the QuantileEstimate percentiles are
  // omitted when count == 0 (inf sentinels).
  io::Json ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace decaylib::obs
