#include "obs/provenance.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>

namespace decaylib::obs {

namespace {

// First line of a shell command's stdout, trailing whitespace stripped;
// empty when the command cannot run or prints nothing.
std::string CommandLine(const char* command) {
  std::FILE* pipe = ::popen(command, "r");
  if (pipe == nullptr) return "";
  char buffer[256];
  std::string out;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out = buffer;
  ::pclose(pipe);
  while (!out.empty() &&
         (out.back() == '\n' || out.back() == '\r' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::string CompilerId() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

// Sanitizers the compiler exposes to the preprocessor.  UBSan defines no
// feature macro on either major compiler, so it cannot appear here; the
// address/thread/memory instrumentations (the ones that dominate timings)
// do.
std::string SanitizerList() {
#if defined(__has_feature)
#define DECAYLIB_HAS_FEATURE(x) __has_feature(x)
#else
#define DECAYLIB_HAS_FEATURE(x) 0
#endif
  std::string out;
  [[maybe_unused]] const auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
#if defined(__SANITIZE_ADDRESS__)
  add("address");
#elif DECAYLIB_HAS_FEATURE(address_sanitizer)
  add("address");
#endif
#if defined(__SANITIZE_THREAD__)
  add("thread");
#elif DECAYLIB_HAS_FEATURE(thread_sanitizer)
  add("thread");
#endif
#if DECAYLIB_HAS_FEATURE(memory_sanitizer)
  add("memory");
#endif
#undef DECAYLIB_HAS_FEATURE
  return out.empty() ? "none" : out;
}

// Requires kind `want` under `key`; writes the member pointer or an error.
core::Status Require(const io::Json& json, const char* key,
                     io::Json::Kind want, const io::Json** out) {
  const io::Json* member = json.Find(key);
  if (member == nullptr) {
    return core::Status::InvalidArgument(
        std::string("provenance: missing field '") + key + "'");
  }
  if (member->kind() != want) {
    return core::Status::InvalidArgument(
        std::string("provenance: field '") + key + "' has the wrong kind");
  }
  *out = member;
  return core::Status::Ok();
}

}  // namespace

Provenance Provenance::Collect() {
  Provenance p;
  const std::string sha = CommandLine("git rev-parse HEAD 2>/dev/null");
  if (!sha.empty()) {
    p.git_sha = sha;
    p.git_dirty =
        !CommandLine("git status --porcelain 2>/dev/null | head -1").empty();
  }
#ifdef DECAYLIB_BUILD_TYPE
  p.build_type = DECAYLIB_BUILD_TYPE;
#endif
  p.compiler = CompilerId();
#ifdef NDEBUG
  p.ndebug = true;
#endif
  p.sanitizers = SanitizerList();
  p.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p.hostname = host;
  }
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    char stamp[32];
    if (std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc) > 0) {
      p.timestamp_utc = stamp;
    }
  }
  return p;
}

io::Json Provenance::ToJson() const {
  io::Json out = io::Json::Object();
  out.Set("git_sha", io::Json::String(git_sha));
  out.Set("git_dirty", io::Json::Bool(git_dirty));
  out.Set("build_type", io::Json::String(build_type));
  out.Set("compiler", io::Json::String(compiler));
  out.Set("ndebug", io::Json::Bool(ndebug));
  out.Set("sanitizers", io::Json::String(sanitizers));
  out.Set("hardware_threads",
          io::Json::Number(static_cast<double>(hardware_threads)));
  out.Set("hostname", io::Json::String(hostname));
  out.Set("timestamp_utc", io::Json::String(timestamp_utc));
  return out;
}

core::StatusOr<Provenance> Provenance::FromJson(const io::Json& json) {
  if (!json.is_object()) {
    return core::Status::InvalidArgument("provenance: expected an object");
  }
  Provenance p;
  const io::Json* field = nullptr;
  if (core::Status s = Require(json, "git_sha", io::Json::Kind::kString,
                               &field);
      !s.ok()) {
    return s;
  }
  p.git_sha = field->AsString();
  if (core::Status s = Require(json, "git_dirty", io::Json::Kind::kBool,
                               &field);
      !s.ok()) {
    return s;
  }
  p.git_dirty = field->AsBool();
  if (core::Status s = Require(json, "build_type", io::Json::Kind::kString,
                               &field);
      !s.ok()) {
    return s;
  }
  p.build_type = field->AsString();
  if (core::Status s = Require(json, "compiler", io::Json::Kind::kString,
                               &field);
      !s.ok()) {
    return s;
  }
  p.compiler = field->AsString();
  if (core::Status s = Require(json, "ndebug", io::Json::Kind::kBool, &field);
      !s.ok()) {
    return s;
  }
  p.ndebug = field->AsBool();
  if (core::Status s = Require(json, "sanitizers", io::Json::Kind::kString,
                               &field);
      !s.ok()) {
    return s;
  }
  p.sanitizers = field->AsString();
  if (core::Status s = Require(json, "hardware_threads",
                               io::Json::Kind::kNumber, &field);
      !s.ok()) {
    return s;
  }
  p.hardware_threads = static_cast<int>(field->AsNumber());
  if (core::Status s = Require(json, "hostname", io::Json::Kind::kString,
                               &field);
      !s.ok()) {
    return s;
  }
  p.hostname = field->AsString();
  if (core::Status s = Require(json, "timestamp_utc", io::Json::Kind::kString,
                               &field);
      !s.ok()) {
    return s;
  }
  p.timestamp_utc = field->AsString();
  return p;
}

}  // namespace decaylib::obs
