// KernelArena reuse tests: a cache rebuilt into a warm arena slot must be
// bit-identical to a freshly constructed KernelCache over the same
// (system, power) -- across same-shape rebuilds, shape changes (grow and
// shrink), and every query surface including the power-control kernels
// added with the arena (CrossDecay, NormalizedGain).
#include <gtest/gtest.h>

#include <vector>

#include "core/decay_space.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

namespace decaylib::sinr {
namespace {

struct Instance {
  core::DecaySpace space;
  std::vector<Link> links;
  SinrConfig config;
};

Instance MakeInstance(std::uint64_t seed, int link_count, double beta,
                      double noise) {
  geom::Rng rng(seed);
  const auto pts = geom::SampleUniform(2 * link_count, 12.0, 12.0, rng);
  Instance inst{core::DecaySpace::Geometric(pts, 3.0), {}, {beta, noise}};
  for (int i = 0; i < link_count; ++i) inst.links.push_back({2 * i, 2 * i + 1});
  return inst;
}

void ExpectBitIdentical(const KernelCache& fresh, const KernelCache& rebuilt) {
  ASSERT_EQ(fresh.NumLinks(), rebuilt.NumLinks());
  const int n = fresh.NumLinks();
  EXPECT_EQ(fresh.HasUniformPower(), rebuilt.HasUniformPower());
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(fresh.LinkDecay(v), rebuilt.LinkDecay(v));
    EXPECT_EQ(fresh.CanOvercomeNoise(v), rebuilt.CanOvercomeNoise(v));
    EXPECT_EQ(fresh.NoiseFactor(v), rebuilt.NoiseFactor(v));
    for (int w = 0; w < n; ++w) {
      EXPECT_EQ(fresh.AffectanceRaw(w, v), rebuilt.AffectanceRaw(w, v));
      EXPECT_EQ(fresh.MinPairDecay(v, w), rebuilt.MinPairDecay(v, w));
      EXPECT_EQ(fresh.CrossDecay(w, v), rebuilt.CrossDecay(w, v));
      EXPECT_EQ(fresh.NormalizedGain(v, w), rebuilt.NormalizedGain(v, w));
    }
  }
}

TEST(KernelArenaTest, RebuildMatchesFreshCacheSameShape) {
  const Instance inst = MakeInstance(11, 20, 1.5, 0.0);
  const LinkSystem system(inst.space, inst.links, inst.config);
  const PowerAssignment power = UniformPower(system);

  KernelArena arena;
  arena.Rebuild(system, power);  // dirty the slot
  const KernelCache& rebuilt = arena.Rebuild(system, power);
  const KernelCache fresh(system, power);
  ExpectBitIdentical(fresh, rebuilt);
  EXPECT_EQ(arena.rebuilds(), 2);
}

TEST(KernelArenaTest, RebuildAcrossShapesAndRegimes) {
  // Grow, shrink, and switch noise/power regimes through one arena; each
  // rebuild must match a fresh cache exactly (nothing of the previous
  // instance may survive in the reused slabs).
  KernelArena arena;
  struct Shape {
    std::uint64_t seed;
    int links;
    double beta, noise, tau;
  };
  const std::vector<Shape> shapes = {
      {21, 12, 1.5, 0.0, 0.0},
      {22, 30, 1.0, 0.05, 0.0},  // bigger, noisy (some links drown)
      {23, 8, 2.0, 0.0, 0.6},    // smaller, power law
      {24, 30, 1.0, 0.01, 0.3},
  };
  for (const Shape& shape : shapes) {
    const Instance inst =
        MakeInstance(shape.seed, shape.links, shape.beta, shape.noise);
    const LinkSystem system(inst.space, inst.links, inst.config);
    const PowerAssignment power = shape.tau == 0.0
                                      ? UniformPower(system)
                                      : PowerLaw(system, shape.tau);
    const KernelCache& rebuilt = arena.Rebuild(system, power);
    const KernelCache fresh(system, power);
    ExpectBitIdentical(fresh, rebuilt);
  }
  EXPECT_EQ(arena.rebuilds(), static_cast<long long>(shapes.size()));
}

TEST(KernelArenaTest, AggregateQueriesMatchThroughArena) {
  const Instance inst = MakeInstance(31, 16, 1.0, 0.02);
  const LinkSystem system(inst.space, inst.links, inst.config);
  const PowerAssignment power = UniformPower(system);

  KernelArena arena;
  arena.Rebuild(system, power);
  // Interleave a different system, then come back: the warm slabs must not
  // leak between instances.
  const Instance other = MakeInstance(32, 24, 1.5, 0.0);
  const LinkSystem other_system(other.space, other.links, other.config);
  arena.Rebuild(other_system, UniformPower(other_system));
  const KernelCache& kernel = arena.Rebuild(system, power);

  const KernelCache fresh(system, power);
  const std::vector<int> all = AllLinks(system);
  EXPECT_EQ(fresh.IsFeasible(all), kernel.IsFeasible(all));
  for (int v = 0; v < system.NumLinks(); ++v) {
    EXPECT_EQ(fresh.InAffectance(all, v), kernel.InAffectance(all, v));
    EXPECT_EQ(fresh.OutAffectance(v, all), kernel.OutAffectance(v, all));
  }
  EXPECT_EQ(fresh.OrderByDecay(), kernel.OrderByDecay());
}

TEST(KernelArenaTest, RebuildCounterStartsAtZero) {
  KernelArena arena;
  EXPECT_EQ(arena.rebuilds(), 0);

  const Instance inst = MakeInstance(41, 6, 1.0, 0.0);
  const LinkSystem system(inst.space, inst.links, inst.config);
  const KernelCache& kernel = arena.Rebuild(system, UniformPower(system));
  EXPECT_EQ(kernel.NumLinks(), system.NumLinks());
  EXPECT_EQ(arena.rebuilds(), 1);
}

}  // namespace
}  // namespace decaylib::sinr
