#include "env/environment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/metricity.h"
#include "env/antenna.h"
#include "env/propagation.h"
#include "geom/samplers.h"

namespace decaylib::env {
namespace {

TEST(EnvironmentTest, DefaultMaterialExists) {
  const Environment env;
  EXPECT_EQ(env.NumMaterials(), 1);
  EXPECT_EQ(env.MaterialAt(0).name, "drywall");
}

TEST(EnvironmentTest, AddMaterialReturnsId) {
  Environment env;
  const MaterialId id = env.AddMaterial({"glass", 3.0, 0.7});
  EXPECT_EQ(id, 1);
  EXPECT_DOUBLE_EQ(env.MaterialAt(id).penetration_loss_db, 3.0);
}

TEST(EnvironmentTest, WallsCrossedCounting) {
  Environment env;
  env.AddWall({{1.0, -1.0}, {1.0, 1.0}});
  env.AddWall({{2.0, -1.0}, {2.0, 1.0}});
  EXPECT_EQ(env.WallsCrossed({0.0, 0.0}, {3.0, 0.0}), 2);
  EXPECT_EQ(env.WallsCrossed({0.0, 0.0}, {1.5, 0.0}), 1);
  EXPECT_EQ(env.WallsCrossed({0.0, 0.0}, {0.5, 0.0}), 0);
}

TEST(EnvironmentTest, PenetrationLossSumsMaterials) {
  Environment env;
  const MaterialId concrete = env.AddMaterial({"concrete", 12.0, 0.5});
  env.AddWall({{1.0, -1.0}, {1.0, 1.0}});            // drywall, 6 dB
  env.AddWall({{2.0, -1.0}, {2.0, 1.0}}, concrete);  // 12 dB
  EXPECT_DOUBLE_EQ(env.PenetrationLossDb({0.0, 0.0}, {3.0, 0.0}), 18.0);
}

TEST(EnvironmentTest, SkipWallExcluded) {
  Environment env;
  env.AddWall({{1.0, -1.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(env.PenetrationLossDb({0.0, 0.0}, {2.0, 0.0}, 0), 0.0);
}

TEST(EnvironmentTest, RoomAddsFourWalls) {
  Environment env;
  env.AddRoom({0.0, 0.0}, {4.0, 4.0});
  EXPECT_EQ(env.walls().size(), 4u);
  // A ray from inside to outside crosses exactly one wall.
  EXPECT_EQ(env.WallsCrossed({2.0, 2.0}, {6.0, 2.0}), 1);
}

TEST(EnvironmentTest, OfficeGridHasDoors) {
  const Environment env = Environment::OfficeGrid(20.0, 10.0, 2, 1, 2.0);
  // The doorway in the inner partition (x = 10) is centred at y = 5.
  EXPECT_EQ(env.WallsCrossed({9.0, 5.0}, {11.0, 5.0}), 0);   // through door
  EXPECT_EQ(env.WallsCrossed({9.0, 1.0}, {11.0, 1.0}), 1);   // through wall
}

TEST(AntennaTest, IsotropicAlwaysOne) {
  const IsotropicAntenna iso;
  EXPECT_DOUBLE_EQ(iso.Gain({1, 0}, {0, 1}), 1.0);
}

TEST(AntennaTest, CardioidBoresightAndBack) {
  const CardioidAntenna ant(1.0, 0.01);
  EXPECT_NEAR(ant.Gain({1, 0}, {1, 0}), 1.0, 1e-12);       // boresight
  EXPECT_NEAR(ant.Gain({1, 0}, {-1, 0}), 0.01, 1e-12);     // back
  const double side = ant.Gain({1, 0}, {0, 1});
  EXPECT_GT(side, 0.01);
  EXPECT_LT(side, 1.0);
}

TEST(AntennaTest, CardioidSharpnessNarrowsBeam) {
  const CardioidAntenna wide(1.0);
  const CardioidAntenna narrow(8.0);
  EXPECT_GT(wide.Gain({1, 0}, {1, 1}), narrow.Gain({1, 0}, {1, 1}));
}

TEST(AntennaTest, SectorInOut) {
  const SectorAntenna sector(M_PI / 2.0, 0.05);  // 90 degree beam
  EXPECT_DOUBLE_EQ(sector.Gain({1, 0}, {1, 0.3}), 1.0);   // ~17 deg off
  EXPECT_DOUBLE_EQ(sector.Gain({1, 0}, {0, 1}), 0.05);    // 90 deg off
}

PropagationConfig PlainConfig(double alpha) {
  PropagationConfig config;
  config.alpha = alpha;
  config.shadowing_sigma_db = 0.0;
  config.enable_reflections = false;
  return config;
}

TEST(PropagationTest, FreeSpaceGainMatchesPowerLaw) {
  const Environment env;  // no walls
  const PropagationConfig config = PlainConfig(2.0);
  const PlacedNode a{{0.0, 0.0}};
  const PlacedNode b{{5.0, 0.0}};
  EXPECT_NEAR(ChannelGain(env, config, a, b, 1), 1.0 / 25.0, 1e-12);
}

TEST(PropagationTest, LogDistanceLawAgreesWithPowerLaw) {
  const Environment env;
  PropagationConfig p = PlainConfig(3.0);
  PropagationConfig l = PlainConfig(3.0);
  l.law = PathLossLaw::kLogDistance;
  const PlacedNode a{{0.0, 0.0}};
  const PlacedNode b{{7.0, 3.0}};
  EXPECT_NEAR(ChannelGain(env, p, a, b, 1), ChannelGain(env, l, a, b, 1),
              1e-12);
}

TEST(PropagationTest, NearFieldClampPreventsBlowup) {
  const Environment env;
  const PropagationConfig config = PlainConfig(2.0);
  const PlacedNode a{{0.0, 0.0}};
  const PlacedNode b{{0.001, 0.0}};  // inside min_distance
  EXPECT_LE(ChannelGain(env, config, a, b, 1),
            1.0 / (config.min_distance * config.min_distance) + 1e-9);
}

TEST(PropagationTest, WallAttenuatesGain) {
  Environment walled;
  walled.AddWall({{2.0, -5.0}, {2.0, 5.0}});
  const Environment open;
  const PropagationConfig config = PlainConfig(2.8);
  const PlacedNode a{{0.0, 0.0}};
  const PlacedNode b{{5.0, 0.0}};
  const double with_wall = ChannelGain(walled, config, a, b, 1);
  const double without = ChannelGain(open, config, a, b, 1);
  EXPECT_NEAR(with_wall, without * std::pow(10.0, -0.6), 1e-12);  // 6 dB
}

TEST(PropagationTest, ReflectionAddsPower) {
  Environment env;
  env.AddWall({{0.0, 5.0}, {10.0, 5.0}});  // ceiling above the pair
  PropagationConfig direct = PlainConfig(2.0);
  PropagationConfig multi = PlainConfig(2.0);
  multi.enable_reflections = true;
  const PlacedNode a{{2.0, 0.0}};
  const PlacedNode b{{8.0, 0.0}};
  EXPECT_GT(ChannelGain(env, multi, a, b, 1),
            ChannelGain(env, direct, a, b, 1));
}

TEST(PropagationTest, ShadowingIsDeterministicPerKey) {
  const Environment env;
  PropagationConfig config = PlainConfig(2.5);
  config.shadowing_sigma_db = 6.0;
  const PlacedNode a{{0.0, 0.0}};
  const PlacedNode b{{5.0, 0.0}};
  EXPECT_DOUBLE_EQ(ChannelGain(env, config, a, b, 77),
                   ChannelGain(env, config, a, b, 77));
  EXPECT_NE(ChannelGain(env, config, a, b, 77),
            ChannelGain(env, config, a, b, 78));
}

TEST(PropagationTest, AnisotropicAntennaBreaksSymmetry) {
  const Environment env;
  const PropagationConfig config = PlainConfig(2.0);
  const CardioidAntenna cardioid(2.0, 0.01);
  // a points at b, b points away from a.
  const PlacedNode a{{0.0, 0.0}, {1.0, 0.0}, &cardioid};
  const PlacedNode b{{5.0, 0.0}, {1.0, 0.0}, &cardioid};
  const double ab = ChannelGain(env, config, a, b, 1);
  const double ba = ChannelGain(env, config, b, a, 1);
  // Both directions include one back-lobe factor here, so they match; but
  // rotate b to face a and the asymmetry disappears only in one direction.
  const PlacedNode b_facing{{5.0, 0.0}, {-1.0, 0.0}, &cardioid};
  const double ab_facing = ChannelGain(env, config, a, b_facing, 1);
  EXPECT_GT(ab_facing, ab);
  EXPECT_DOUBLE_EQ(ab, ba);
}

TEST(BuildDecaySpaceTest, ValidAndSymmetricWhenIsotropic) {
  Environment env = Environment::OfficeGrid(20.0, 20.0, 2, 2);
  PropagationConfig config = PlainConfig(2.8);
  config.shadowing_sigma_db = 4.0;
  config.symmetric_shadowing = true;
  geom::Rng rng(9);
  const auto nodes = PlaceIsotropic(geom::SampleUniform(12, 20.0, 20.0, rng));
  const core::DecaySpace space = BuildDecaySpace(env, config, nodes);
  EXPECT_FALSE(space.Validate().has_value());
  EXPECT_TRUE(space.IsSymmetric(1e-9));
}

TEST(BuildDecaySpaceTest, WallsRaiseMetricityAboveAlpha) {
  // The headline effect: in free space zeta <= alpha, while walls decorrelate
  // decay from distance and push zeta above alpha.
  geom::Rng rng(10);
  const auto pts = geom::SampleUniform(16, 30.0, 30.0, rng);
  const auto nodes = PlaceIsotropic(pts);
  const PropagationConfig config = PlainConfig(2.5);

  const Environment open;
  const double zeta_open =
      core::Metricity(BuildDecaySpace(open, config, nodes));

  Environment walled = Environment::OfficeGrid(30.0, 30.0, 3, 3, 1.0);
  const double zeta_walled =
      core::Metricity(BuildDecaySpace(walled, config, nodes));

  EXPECT_LE(zeta_open, 2.5 + 1e-6);
  EXPECT_GT(zeta_walled, zeta_open);
}

}  // namespace
}  // namespace decaylib::env
