#include "io/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/metricity.h"
#include "geom/rng.h"
#include "spaces/samplers.h"

namespace decaylib::io {
namespace {

TEST(CsvTest, RoundTripPreservesEveryEntry) {
  geom::Rng rng(1);
  const core::DecaySpace space = spaces::LogUniformSpace(9, 1e6, rng, false);
  std::stringstream buffer;
  WriteDecayCsv(space, buffer);
  const ParseResult parsed = ReadDecayCsv(buffer);
  ASSERT_TRUE(parsed.space.has_value()) << parsed.error;
  ASSERT_EQ(parsed.space->size(), 9);
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 9; ++j) {
      EXPECT_DOUBLE_EQ((*parsed.space)(i, j), space(i, j));
    }
  }
}

TEST(CsvTest, AcceptsCommentsAndBlankLines) {
  std::stringstream in(
      "# measured decays, campaign 3\n"
      "\n"
      "0, 2.5, 3e2\n"
      "2.5, 0, 1.25\n"
      "# trailing comment\n"
      "300, 1.25, 0\n");
  const ParseResult parsed = ReadDecayCsv(in);
  ASSERT_TRUE(parsed.space.has_value()) << parsed.error;
  EXPECT_DOUBLE_EQ((*parsed.space)(0, 2), 300.0);
  EXPECT_DOUBLE_EQ((*parsed.space)(1, 2), 1.25);
}

TEST(CsvTest, DiagonalValuesIgnored) {
  std::stringstream in("7, 1\n1, 9\n");
  const ParseResult parsed = ReadDecayCsv(in);
  ASSERT_TRUE(parsed.space.has_value()) << parsed.error;
  EXPECT_DOUBLE_EQ((*parsed.space)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((*parsed.space)(1, 1), 0.0);
}

TEST(CsvTest, RejectsNonSquare) {
  std::stringstream in("0, 1, 2\n1, 0, 1\n");
  const ParseResult parsed = ReadDecayCsv(in);
  EXPECT_FALSE(parsed.space.has_value());
  EXPECT_NE(parsed.error.find("square"), std::string::npos);
}

TEST(CsvTest, RejectsRaggedRow) {
  std::stringstream in("0, 1\n1\n");
  EXPECT_FALSE(ReadDecayCsv(in).space.has_value());
}

TEST(CsvTest, RejectsGarbageCell) {
  std::stringstream in("0, banana\n1, 0\n");
  const ParseResult parsed = ReadDecayCsv(in);
  EXPECT_FALSE(parsed.space.has_value());
  EXPECT_NE(parsed.error.find("banana"), std::string::npos);
}

TEST(CsvTest, RejectsNegativeDecay) {
  std::stringstream in("0, -1\n1, 0\n");
  const ParseResult parsed = ReadDecayCsv(in);
  EXPECT_FALSE(parsed.space.has_value());
  EXPECT_NE(parsed.error.find("positive"), std::string::npos);
}

TEST(CsvTest, RejectsZeroOffDiagonal) {
  std::stringstream in("0, 0\n1, 0\n");
  EXPECT_FALSE(ReadDecayCsv(in).space.has_value());
}

TEST(CsvTest, RejectsEmptyInput) {
  std::stringstream in("# only a comment\n");
  const ParseResult parsed = ReadDecayCsv(in);
  EXPECT_FALSE(parsed.space.has_value());
}

TEST(CsvTest, RejectsMissingFile) {
  const ParseResult parsed = ReadDecayCsvFile("/nonexistent/path.csv");
  EXPECT_FALSE(parsed.space.has_value());
  EXPECT_NE(parsed.error.find("cannot open"), std::string::npos);
}

TEST(CsvTest, FileRoundTrip) {
  geom::Rng rng(2);
  const core::DecaySpace space = spaces::LogUniformSpace(6, 100.0, rng);
  const std::string path = ::testing::TempDir() + "/decay_roundtrip.csv";
  ASSERT_TRUE(WriteDecayCsvFile(space, path));
  const ParseResult parsed = ReadDecayCsvFile(path);
  ASSERT_TRUE(parsed.space.has_value()) << parsed.error;
  EXPECT_NEAR(core::Metricity(*parsed.space), core::Metricity(space), 1e-12);
}

}  // namespace
}  // namespace decaylib::io
