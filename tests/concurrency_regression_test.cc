// Concurrency regression schedules for the TSan CI gate.
//
// The full ctest suite and the pooled sweep smoke run race-free under
// ThreadSanitizer (PR 10's audit), but TSan can only indict schedules that
// actually execute.  These tests pin the three shared-state paths the audit
// called out, each driven through a barrier so every run maximises
// contention on the exact first-touch / cold-slot / error-capture windows:
//
//   * obs::Registry handle creation -- every prior test created instruments
//     before spawning workers; here N threads race the first GetCounter /
//     GetGauge / GetHistogram for the same names.  A registry whose map
//     mutation were unlocked (or whose returned references moved on rehash)
//     fails here under TSan, and the stable-handle assertions fail anywhere.
//   * engine::GeometryCache cold Acquire -- workers fill distinct instance
//     slots of one prepared generation concurrently; slots must neither
//     move (deque growth contract) nor share accounting non-atomically.
//   * BatchRunner error capture -- a worker that throws records its failure
//     while siblings keep stealing; the rethrown error must be the lowest
//     failed index regardless of schedule (thread-count-deterministic
//     errors are part of the robustness contract).
#include <barrier>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/status.h"
#include "engine/batch_runner.h"
#include "engine/scenario.h"
#include "obs/registry.h"

namespace decaylib {
namespace {

constexpr int kThreads = 8;

class ConcurrencyRegressionTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::SetEnabled(false); }
};

TEST_F(ConcurrencyRegressionTest, RegistryFirstTouchHandleCreationIsRaceFree) {
  obs::SetEnabled(true);
  constexpr int kAdds = 2000;
  std::barrier gate(kThreads);
  std::vector<obs::Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      gate.arrive_and_wait();
      // Every thread races the first touch of the same instrument name.
      obs::Counter& counter =
          obs::Registry::Global().GetCounter("conc.first_touch_counter");
      handles[static_cast<std::size_t>(t)] = &counter;
      for (int i = 0; i < kAdds; ++i) counter.Add();
    });
  }
  for (std::thread& t : pool) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[0], handles[static_cast<std::size_t>(t)])
        << "GetCounter must hand every racer the same stable instrument";
  }
  // The counter may survive from a previous test binary invocation of this
  // name, so reset-then-recount would race the assertion; instead require
  // at least this run's adds and exactness modulo prior runs' multiples.
  EXPECT_GE(handles[0]->value(), static_cast<long long>(kThreads) * kAdds);
  EXPECT_EQ(handles[0]->value() % (static_cast<long long>(kThreads) * kAdds),
            0);
}

TEST_F(ConcurrencyRegressionTest, RegistryMixedKindCreationUnderContention) {
  obs::SetEnabled(true);
  std::barrier gate(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      gate.arrive_and_wait();
      // Distinct names force concurrent map insertions of all three kinds.
      const std::string suffix = std::to_string(t);
      obs::Registry::Global().GetCounter("conc.mixed_counter_" + suffix).Add();
      obs::Registry::Global().GetGauge("conc.mixed_gauge_" + suffix).Set(1.0);
      obs::Registry::Global()
          .GetHistogram("conc.mixed_histogram_" + suffix)
          .Observe(1.0);
    });
  }
  for (std::thread& t : pool) t.join();
  const std::map<std::string, long long> counters =
      obs::Registry::Global().CounterValues();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counters.count("conc.mixed_counter_" + std::to_string(t)), 1u);
  }
}

TEST_F(ConcurrencyRegressionTest, GeometryCacheColdAcquireFillsSlotsRaceFree) {
  engine::ScenarioSpec spec;
  spec.name = "conc_geometry";
  spec.links = 12;
  spec.instances = kThreads;
  spec.seed = 77;

  engine::GeometryCache cache;
  cache.SetGenerations(2);
  cache.Prepare(spec);

  std::barrier gate(kThreads);
  std::vector<const engine::ScenarioGeometry*> first(kThreads, nullptr);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      gate.arrive_and_wait();
      bool built = false;
      first[static_cast<std::size_t>(t)] =
          &cache.Acquire(spec, t, engine::PairingMode::kAuto, &built);
      EXPECT_TRUE(built) << "cold acquire of slot " << t;
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(cache.builds(), kThreads);
  EXPECT_EQ(cache.reuses(), 0);

  // Second concurrent round: every slot is warm, references must be stable
  // (the deque-backed slots may never move under growth or reuse).
  std::barrier gate2(kThreads);
  std::vector<std::thread> pool2;
  for (int t = 0; t < kThreads; ++t) {
    pool2.emplace_back([&, t] {
      gate2.arrive_and_wait();
      bool built = true;
      const engine::ScenarioGeometry* again =
          &cache.Acquire(spec, t, engine::PairingMode::kAuto, &built);
      EXPECT_FALSE(built) << "slot " << t << " must be warm";
      EXPECT_EQ(again, first[static_cast<std::size_t>(t)]);
    });
  }
  for (std::thread& t : pool2) t.join();
  EXPECT_EQ(cache.builds(), kThreads);
  EXPECT_EQ(cache.reuses(), kThreads);
}

TEST_F(ConcurrencyRegressionTest, PooledErrorCaptureIsScheduleDeterministic) {
  engine::ScenarioSpec spec;
  spec.name = "conc_fault";
  spec.links = 8;
  spec.instances = 12;
  spec.seed = 99;

  const auto capture = [&](int threads) -> std::string {
    engine::BatchConfig config;
    config.threads = threads;
    config.fault_instance = 3;
    config.fault_message = "conc capture probe";
    const engine::BatchRunner runner(config);
    try {
      (void)runner.RunOne(spec);
    } catch (const core::StatusError& e) {
      return e.status().ToString();
    }
    ADD_FAILURE() << "expected the armed fault to surface as StatusError";
    return {};
  };

  const std::string serial = capture(1);
  ASSERT_FALSE(serial.empty());
  // Same error text from a serial run and repeated pooled runs: the capture
  // path (per-slot record + lowest-failed-index rethrow after join) must be
  // independent of worker interleaving.
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(capture(kThreads), serial) << "round " << round;
  }
}

}  // namespace
}  // namespace decaylib
