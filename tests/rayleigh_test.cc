#include "sinr/rayleigh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "capacity/baselines.h"
#include "core/decay_space.h"
#include "geom/samplers.h"
#include "sinr/power.h"

namespace decaylib::sinr {
namespace {

struct Fixture {
  core::DecaySpace space;
  std::vector<Link> links;

  Fixture(int n, double box, std::uint64_t seed) : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{1.0, 0.0}.Rotated(rng.Uniform(0.0, 6.28)));
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

TEST(RayleighTest, NoInterferenceNoNoiseAlwaysSucceeds) {
  const Fixture fixture(2, 30.0, 1);
  const LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  const std::vector<int> alone{0};
  EXPECT_DOUBLE_EQ(RayleighSuccessProbability(system, 0, alone, power), 1.0);
}

TEST(RayleighTest, NoiseOnlyClosedForm) {
  const Fixture fixture(1, 10.0, 2);
  const LinkSystem system(fixture.space, fixture.links, {2.0, 0.01});
  const PowerAssignment power = UniformPower(system);
  const std::vector<int> alone{0};
  const double mu = power[0] / system.LinkDecay(0);
  EXPECT_NEAR(RayleighSuccessProbability(system, 0, alone, power),
              std::exp(-2.0 * 0.01 / mu), 1e-12);
}

TEST(RayleighTest, ClosedFormMatchesMonteCarlo) {
  const Fixture fixture(6, 15.0, 3);
  const LinkSystem system(fixture.space, fixture.links, {1.5, 1e-5});
  const PowerAssignment power = UniformPower(system);
  const auto all = AllLinks(system);
  geom::Rng rng(4);
  for (int v = 0; v < system.NumLinks(); ++v) {
    const double closed = RayleighSuccessProbability(system, v, all, power);
    const double mc =
        RayleighSuccessMonteCarlo(system, v, all, power, 40000, rng);
    EXPECT_NEAR(mc, closed, 0.015) << "link " << v;
  }
}

TEST(RayleighTest, LowerBoundIsALowerBound) {
  const Fixture fixture(8, 12.0, 5);
  const LinkSystem system(fixture.space, fixture.links, {2.0, 1e-6});
  const PowerAssignment power = UniformPower(system);
  const auto all = AllLinks(system);
  for (int v = 0; v < system.NumLinks(); ++v) {
    EXPECT_LE(RayleighSuccessLowerBound(system, v, all, power),
              RayleighSuccessProbability(system, v, all, power) + 1e-12);
  }
}

TEST(RayleighTest, FeasibleSetsKeepConstantSuccessProbability) {
  // The [10] reduction: on a thresholding-feasible set, every link's
  // Rayleigh success probability is at least e^{-(1+o(1)) * a_S(v)} --
  // with a_S(v) <= 1 that is at least ~ e^{-2} accounting for noise.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Fixture fixture(10, 20.0, seed);
    const LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
    const PowerAssignment power = UniformPower(system);
    const auto S = capacity::GreedyFeasible(system);
    for (int v : S) {
      const double p = RayleighSuccessProbability(system, v, S, power);
      EXPECT_GE(p, std::exp(-1.0) - 1e-9)
          << "seed " << seed << " link " << v;
    }
  }
}

TEST(RayleighTest, MoreInterferersLowerSuccess) {
  const Fixture fixture(6, 12.0, 7);
  const LinkSystem system(fixture.space, fixture.links, {1.5, 0.0});
  const PowerAssignment power = UniformPower(system);
  const std::vector<int> few{0, 1};
  const std::vector<int> many{0, 1, 2, 3, 4, 5};
  EXPECT_GT(RayleighSuccessProbability(system, 0, few, power),
            RayleighSuccessProbability(system, 0, many, power));
}

}  // namespace
}  // namespace decaylib::sinr
