#include "core/dimensions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/decay_space.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "spaces/constructions.h"

namespace decaylib::core {
namespace {

TEST(BallTest, ContainsCenterAndNearNodes) {
  const DecaySpace space = spaces::LineSpace(5, 1.0, 1.0);
  // Nodes at positions 0..4, decay = distance.
  const auto ball = Ball(space, 2, 1.5);
  EXPECT_EQ(ball, (std::vector<int>{1, 2, 3}));
}

TEST(BallTest, TinyRadiusIsJustCenter) {
  const DecaySpace space = spaces::LineSpace(5, 1.0, 1.0);
  EXPECT_EQ(Ball(space, 0, 0.5), (std::vector<int>{0}));
}

TEST(BallTest, HugeRadiusIsEverything) {
  const DecaySpace space = spaces::LineSpace(5, 1.0, 1.0);
  EXPECT_EQ(Ball(space, 0, 100.0).size(), 5u);
}

TEST(IsPackingTest, RespectsTwoTSeparation) {
  const DecaySpace space = spaces::LineSpace(10, 1.0, 1.0);
  const std::vector<int> spread{0, 3, 6, 9};  // pairwise decay >= 3
  EXPECT_TRUE(IsPacking(space, spread, 1.4));   // need > 2.8: ok
  EXPECT_FALSE(IsPacking(space, spread, 1.5));  // need > 3.0: 3 fails
}

TEST(PackingNumberTest, ExactOnLine) {
  const DecaySpace space = spaces::LineSpace(9, 1.0, 1.0);
  std::vector<int> body(9);
  for (int i = 0; i < 9; ++i) body[static_cast<std::size_t>(i)] = i;
  // t = 1: need pairwise decay > 2, i.e. positions 3 apart: {0,3,6} -> 3.
  EXPECT_EQ(PackingNumberExact(space, body, 1.0), 3);
}

TEST(PackingNumberTest, GreedyNeverExceedsExact) {
  geom::Rng rng(3);
  const auto pts = geom::SampleUniform(14, 5.0, 5.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 2.0);
  std::vector<int> body(14);
  for (int i = 0; i < 14; ++i) body[static_cast<std::size_t>(i)] = i;
  for (const double t : {0.5, 1.0, 2.0, 4.0}) {
    const int exact = PackingNumberExact(space, body, t);
    const auto greedy = GreedyPacking(space, body, t);
    EXPECT_LE(static_cast<int>(greedy.size()), exact) << "t=" << t;
    EXPECT_TRUE(IsPacking(space, greedy, t));
  }
}

TEST(AssouadTest, LineSpaceDimensionIsInverseAlpha) {
  // Decay d^alpha on a line: an (r/q)-packing of B(x, r) has
  // ~ (2q)^{1/alpha} points, so A ~ 1/alpha; the regression slope recovers
  // it up to finite-size truncation.
  double previous = 2.0;
  for (const double alpha : {1.0, 2.0, 4.0}) {
    const DecaySpace space = spaces::LineSpace(33, 1.0, alpha);
    const std::vector<double> qs{4.0, 8.0, 16.0, 32.0};
    const AssouadEstimate est = EstimateAssouadDimension(space, qs);
    EXPECT_NEAR(est.dimension, 1.0 / alpha, 0.4) << "alpha=" << alpha;
    EXPECT_LT(est.dimension, previous) << "alpha=" << alpha;  // monotone
    previous = est.dimension;
  }
}

TEST(AssouadTest, PlanarAlphaFourIsFadingSpace) {
  // Plane with alpha = 4: A ~ 2/alpha = 0.5 < 1 (a fading space).
  const auto pts = geom::SampleGrid(49, 6.0, 6.0);
  const DecaySpace space = DecaySpace::Geometric(pts, 4.0);
  const std::vector<double> qs{4.0, 9.0, 16.0, 36.0};
  const AssouadEstimate est = EstimateAssouadDimension(space, qs);
  EXPECT_LT(est.dimension, 1.0);
  EXPECT_GT(est.dimension, 0.15);
}

TEST(AssouadTest, StarSpacePackingGrowsWithK) {
  // Sec. 3.4: the star's doubling dimension is unbounded -- concretely, the
  // ball around the center at radius just above k^2 admits a packing at
  // ratio q = 2.5 whose size grows linearly with k (all far leaves plus the
  // center), so no fixed (C, A) can bound packings at a fixed ratio.
  for (const int k : {4, 8, 16}) {
    const DecaySpace space = spaces::StarSpace(k, 1.0);
    const double r = static_cast<double>(k) * k * (1.0 + 1e-9);
    const std::vector<int> body = Ball(space, 0, r * 1.0000001);
    const int packed = PackingNumberExact(space, body, r / 2.5);
    EXPECT_GE(packed, k) << "k=" << k;
  }
}

TEST(IndependenceTest, UniformSpaceHasDimensionOne) {
  const DecaySpace space = spaces::UniformSpace(8);
  EXPECT_EQ(IndependenceDimension(space), 1);
}

TEST(IndependenceTest, IsIndependentWrtStrictness) {
  const DecaySpace space = spaces::UniformSpace(4);
  const std::vector<int> pair{1, 2};
  EXPECT_FALSE(IsIndependentWrt(space, 0, pair));  // ties break independence
  const std::vector<int> single{1};
  EXPECT_TRUE(IsIndependentWrt(space, 0, single));
}

TEST(IndependenceTest, LineHasDimensionTwo) {
  // On a line, at most one independent point per side of x.
  const DecaySpace space = spaces::LineSpace(9, 1.0, 1.0);
  EXPECT_EQ(IndependenceDimension(space), 2);
}

TEST(IndependenceTest, PlaneAtMostFive) {
  // Welzl: independence dimension of the Euclidean plane is 5 (unit vectors
  // at pairwise angles > 60 degrees).
  geom::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = geom::SampleUniform(16, 10.0, 10.0, rng);
    const DecaySpace space = DecaySpace::Geometric(pts, 3.0);
    EXPECT_LE(IndependenceDimension(space), 5) << "trial " << trial;
  }
}

TEST(IndependenceTest, WelzlSpaceIsUnbounded) {
  // Sec. 4.1: V \ {v_{-1}} is independent with respect to v_{-1}.
  const int n = 7;
  const DecaySpace space = spaces::WelzlSpace(n);
  std::vector<int> others;
  for (int i = 1; i < space.size(); ++i) others.push_back(i);
  EXPECT_TRUE(IsIndependentWrt(space, 0, others));
  EXPECT_EQ(static_cast<int>(MaxIndependentWrt(space, 0).size()), n + 1);
}

TEST(IndependenceTest, MaxIndependentIsIndependent) {
  geom::Rng rng(6);
  const auto pts = geom::SampleUniform(12, 10.0, 10.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 2.0);
  for (int x = 0; x < space.size(); ++x) {
    const auto best = MaxIndependentWrt(space, x);
    EXPECT_TRUE(IsIndependentWrt(space, x, best));
  }
}

TEST(GuardsTest, GreedyGuardsGuard) {
  geom::Rng rng(7);
  const auto pts = geom::SampleUniform(15, 10.0, 10.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 2.5);
  for (int x = 0; x < space.size(); ++x) {
    const auto guards = GreedyGuards(space, x);
    EXPECT_TRUE(GuardsNode(space, x, guards)) << "x=" << x;
  }
}

TEST(GuardsTest, GuardCountBoundedByIndependenceDimension) {
  // Welzl: in symmetric spaces, greedily built guard sets are independent
  // w.r.t. x, so their size is at most the independence dimension.
  geom::Rng rng(8);
  const auto pts = geom::SampleUniform(15, 10.0, 10.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 2.5);
  const int dim = IndependenceDimension(space);
  for (int x = 0; x < space.size(); ++x) {
    const auto guards = GreedyGuards(space, x);
    EXPECT_LE(static_cast<int>(guards.size()), dim);
  }
}

TEST(GuardsTest, UniformSpaceNeedsOneGuard) {
  const DecaySpace space = spaces::UniformSpace(6);
  const auto guards = GreedyGuards(space, 0);
  EXPECT_EQ(guards.size(), 1u);
  EXPECT_TRUE(GuardsNode(space, 0, guards));
}

TEST(GuardsTest, TheoremSixSpaceHasIndependenceDimensionAtMostThree) {
  // Appendix C: two points from one line + one from the other.
  graph::Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const auto instance = spaces::Theorem6Instance(g, 2.0);
  EXPECT_LE(IndependenceDimension(instance.space), 3);
}

TEST(AssouadTest, SlowerDecayMeansHigherDimension) {
  // Plane with alpha = 2 sits at the fading threshold (A ~ 1) while
  // alpha = 4 is comfortably fading (A ~ 0.5): the estimates must order.
  const auto pts = geom::SampleGrid(36, 5.0, 5.0);
  const DecaySpace fast = DecaySpace::Geometric(pts, 4.0);
  const DecaySpace slow = DecaySpace::Geometric(pts, 2.0);
  const std::vector<double> qs{4.0, 9.0, 16.0, 36.0};
  const double dim_fast = EstimateAssouadDimension(fast, qs).dimension;
  const double dim_slow = EstimateAssouadDimension(slow, qs).dimension;
  EXPECT_GT(dim_slow, dim_fast + 0.1);
}

}  // namespace
}  // namespace decaylib::core
