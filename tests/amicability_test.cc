#include "capacity/amicability.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "capacity/baselines.h"
#include "core/decay_space.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "sinr/power.h"

namespace decaylib::capacity {
namespace {

struct Instance {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  Instance(int link_count, double box, double alpha, std::uint64_t seed)
      : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < link_count; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{rng.Uniform(0.5, 1.2), 0.0}.Rotated(angle));
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, alpha);
  }
};

TEST(AmicabilityTest, WitnessStructure) {
  const Instance inst(30, 20.0, 3.0, 1);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const double zeta = std::max(1.0, core::Metricity(inst.space));
  const auto S = GreedyFeasible(system);
  ASSERT_GE(S.size(), 3u);
  const auto witness = BuildAmicabilityWitness(system, S, zeta);

  // S' subseteq S-hat subseteq S.
  const std::set<int> in_s(S.begin(), S.end());
  const std::set<int> in_hat(witness.s_hat.begin(), witness.s_hat.end());
  for (int v : witness.s_hat) EXPECT_TRUE(in_s.count(v));
  for (int v : witness.s_prime) EXPECT_TRUE(in_hat.count(v));

  // S-hat is zeta-separated (guaranteed by Lemma 4.1 partition).
  EXPECT_TRUE(system.IsSeparatedSet(witness.s_hat, zeta, zeta));

  // At least half of S-hat survives the out-affectance filter (Markov step
  // in the Theorem 4 proof).
  EXPECT_GE(2 * witness.s_prime.size(), witness.s_hat.size());
}

TEST(AmicabilityTest, OutAffectanceBoundedByTheorem4Constant) {
  // Theorem 4: a_v(S') <= (1 + 2e^2) D for every link v of L; on the plane
  // D <= 5.
  const double kBound = (1.0 + 2.0 * std::exp(4.0)) * 5.0;  // (1+2e^2... see below
  // Note: the proof bounds a_v(S_i) <= 1 + e^2 * a_{g_i}(S_i) with
  // a_{g_i}(S_i) <= 2, i.e. 1 + 2e^2 per guard class and (1 + 2e^2) D
  // overall; we allow e^4 slack because our guard sets are greedy rather
  // than optimal, which can only increase the realised constant slightly.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst(24, 18.0, 3.0, seed);
    const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
    const double zeta = std::max(1.0, core::Metricity(inst.space));
    const auto S = GreedyFeasible(system);
    if (S.size() < 2) continue;
    const auto witness = BuildAmicabilityWitness(system, S, zeta);
    EXPECT_LE(witness.max_out_affectance, kBound) << "seed " << seed;
  }
}

TEST(AmicabilityTest, EmptyFeasibleSetYieldsEmptyWitness) {
  const Instance inst(5, 10.0, 3.0, 9);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const std::vector<int> empty;
  const auto witness = BuildAmicabilityWitness(system, empty, 3.0);
  EXPECT_TRUE(witness.s_hat.empty());
  EXPECT_TRUE(witness.s_prime.empty());
  EXPECT_DOUBLE_EQ(witness.shrink_factor, 0.0);
}

TEST(AmicabilityTest, ShrinkFactorIsModest) {
  // The realised h(zeta) should be far from exponential: check it stays
  // below |S| (trivial) and typically below a small polynomial in zeta.
  const Instance inst(40, 22.0, 4.0, 2);
  const sinr::LinkSystem system(inst.space, inst.links, {1.0, 0.0});
  const double zeta = std::max(1.0, core::Metricity(inst.space));
  const auto S = GreedyFeasible(system);
  ASSERT_GE(S.size(), 4u);
  const auto witness = BuildAmicabilityWitness(system, S, zeta);
  ASSERT_FALSE(witness.s_prime.empty());
  EXPECT_LE(witness.shrink_factor, static_cast<double>(S.size()));
  EXPECT_GE(witness.shrink_factor, 1.0);
}

}  // namespace
}  // namespace decaylib::capacity
