#include "geom/samplers.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/metricity.h"
#include "spaces/samplers.h"

namespace decaylib::geom {
namespace {

TEST(SampleUniformTest, CountAndBounds) {
  Rng rng(1);
  const auto pts = SampleUniform(200, 10.0, 5.0, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 5.0);
  }
}

TEST(SampleGridTest, ExactCountAndCorners) {
  const auto pts = SampleGrid(16, 3.0, 3.0);
  ASSERT_EQ(pts.size(), 16u);
  EXPECT_EQ(pts.front(), (Vec2{0.0, 0.0}));
  EXPECT_EQ(pts.back(), (Vec2{3.0, 3.0}));
}

TEST(SampleGridTest, NonSquareCountTruncates) {
  const auto pts = SampleGrid(10, 1.0, 1.0);
  EXPECT_EQ(pts.size(), 10u);
}

TEST(SampleGridTest, SinglePointCentered) {
  const auto pts = SampleGrid(1, 4.0, 6.0);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0], (Vec2{2.0, 3.0}));
}

TEST(SampleClustersTest, CountMatches) {
  Rng rng(2);
  const auto pts = SampleClusters(100, 4, 10.0, 10.0, 0.5, rng);
  EXPECT_EQ(pts.size(), 100u);
}

TEST(SampleLineTest, PointsOnSegment) {
  Rng rng(3);
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 10.0};
  const auto pts = SampleLine(50, a, b, rng);
  ASSERT_EQ(pts.size(), 50u);
  for (const Vec2& p : pts) {
    EXPECT_NEAR(p.x, p.y, 1e-12);  // on the diagonal
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
  }
}

TEST(SampleAnnulusTest, RadiiRespected) {
  Rng rng(4);
  const Vec2 center{5.0, 5.0};
  const auto pts = SampleAnnulus(300, center, 2.0, 4.0, rng);
  ASSERT_EQ(pts.size(), 300u);
  for (const Vec2& p : pts) {
    const double r = Distance(center, p);
    EXPECT_GE(r, 2.0 - 1e-9);
    EXPECT_LE(r, 4.0 + 1e-9);
  }
}

class MinDistanceTest : public ::testing::TestWithParam<double> {};

TEST_P(MinDistanceTest, PairwiseSeparationHolds) {
  Rng rng(5);
  const double min_dist = GetParam();
  const auto pts = SampleMinDistance(60, 20.0, 20.0, min_dist, rng);
  EXPECT_GT(pts.size(), 0u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(Distance(pts[i], pts[j]), min_dist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Separations, MinDistanceTest,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0));

TEST(SampleMinDistanceTest, CrowdedBoxReturnsFewer) {
  Rng rng(6);
  // 100 points at pairwise distance 5 cannot fit a 10x10 box.
  const auto pts = SampleMinDistance(100, 10.0, 10.0, 5.0, rng, 200);
  EXPECT_LT(pts.size(), 100u);
  EXPECT_GE(pts.size(), 1u);
}

TEST(ClusteredGeometricTest, ValidSpaceWithGeometricMetricityBound) {
  Rng rng(7);
  const core::DecaySpace space =
      spaces::ClusteredGeometric(30, 4, 12.0, 0.8, 3.0, 0.0, rng);
  ASSERT_EQ(space.size(), 30);
  EXPECT_FALSE(space.Validate().has_value());
  EXPECT_TRUE(space.IsSymmetric(1e-12));
  // Planar geometric space: zeta <= alpha, and the dense hotspots make
  // near-collinear triplets (zeta near alpha) essentially certain.
  const double zeta = core::Metricity(space);
  EXPECT_LE(zeta, 3.0 + 1e-6);
  EXPECT_GT(zeta, 2.0);
}

TEST(ClusteredGeometricTest, ShadowingBreaksSymmetryWhenAsked) {
  Rng rng(8);
  const core::DecaySpace space = spaces::ClusteredGeometric(
      16, 3, 10.0, 1.0, 3.0, 6.0, rng, /*symmetric=*/false);
  EXPECT_FALSE(space.Validate().has_value());
  EXPECT_FALSE(space.IsSymmetric(1e-6));
  Rng rng2(8);
  const core::DecaySpace sym = spaces::ClusteredGeometric(
      16, 3, 10.0, 1.0, 3.0, 6.0, rng2, /*symmetric=*/true);
  EXPECT_TRUE(sym.IsSymmetric(1e-12));
}

TEST(CorridorSpaceTest, NearlyCollinearMetricityApproachesAlpha) {
  Rng rng(9);
  const double alpha = 3.0;
  const core::DecaySpace space =
      spaces::CorridorSpace(48, 100.0, 0.0, alpha, 0.0, rng);
  ASSERT_EQ(space.size(), 48);
  EXPECT_FALSE(space.Validate().has_value());
  // width = 0: points are exactly collinear, so zeta <= alpha with
  // near-equality from the nearly evenly split triplets of a dense line.
  const double zeta = core::Metricity(space);
  EXPECT_LE(zeta, alpha + 1e-6);
  EXPECT_GT(zeta, alpha - 0.5);
}

TEST(CorridorSpaceTest, WidthStaysInsideStrip) {
  Rng rng(10);
  // Reconstruct nothing geometric here -- just check validity and the
  // doubling-friendly shape: a wide strip is still a valid planar space.
  const core::DecaySpace space =
      spaces::CorridorSpace(40, 80.0, 2.0, 3.5, 0.0, rng);
  EXPECT_FALSE(space.Validate().has_value());
  EXPECT_LE(core::Metricity(space), 3.5 + 1e-6);
}

}  // namespace
}  // namespace decaylib::geom
