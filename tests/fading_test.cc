#include "core/fading.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/decay_space.h"
#include "core/dimensions.h"
#include "core/numerics.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "spaces/constructions.h"

namespace decaylib::core {
namespace {

TEST(RiemannZetaTest, KnownValues) {
  EXPECT_NEAR(RiemannZeta(2.0), M_PI * M_PI / 6.0, 1e-10);
  EXPECT_NEAR(RiemannZeta(4.0), std::pow(M_PI, 4) / 90.0, 1e-10);
  // zetahat(1.5) ~ 2.612375348685488
  EXPECT_NEAR(RiemannZeta(1.5), 2.612375348685488, 1e-9);
}

TEST(RiemannZetaTest, DecreasingInX) {
  EXPECT_GT(RiemannZeta(1.2), RiemannZeta(1.5));
  EXPECT_GT(RiemannZeta(1.5), RiemannZeta(3.0));
  EXPECT_GT(RiemannZeta(3.0), 1.0);
}

TEST(SeparatedSetTest, StrictThreshold) {
  const DecaySpace space = spaces::LineSpace(10, 1.0, 1.0);
  const std::vector<int> nodes{0, 4, 8};  // pairwise decay >= 4
  EXPECT_TRUE(IsSeparatedNodeSet(space, nodes, 3.9));
  EXPECT_FALSE(IsSeparatedNodeSet(space, nodes, 4.0));  // needs strict >
}

TEST(FadingValueTest, ExactAtLeastGreedy) {
  geom::Rng rng(1);
  const auto pts = geom::SampleUniform(14, 8.0, 8.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 3.0);
  for (int z = 0; z < space.size(); z += 3) {
    const FadingValue exact = FadingValueExact(space, z, 4.0);
    const FadingValue greedy = FadingValueGreedy(space, z, 4.0);
    EXPECT_GE(exact.gamma, greedy.gamma - 1e-12);
    EXPECT_TRUE(IsSeparatedNodeSet(space, exact.witness, 4.0));
    EXPECT_TRUE(IsSeparatedNodeSet(space, greedy.witness, 4.0));
  }
}

TEST(FadingValueTest, WitnessAttainsGamma) {
  geom::Rng rng(2);
  const auto pts = geom::SampleUniform(12, 8.0, 8.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 2.5);
  const double r = 2.0;
  const FadingValue value = FadingValueExact(space, 0, r);
  double total = 0.0;
  for (int x : value.witness) total += 1.0 / space(x, 0);
  EXPECT_NEAR(value.gamma, r * total, 1e-12);
}

TEST(FadingValueTest, WitnessExcludesListener) {
  const DecaySpace space = spaces::LineSpace(8, 1.0, 2.0);
  const FadingValue value = FadingValueExact(space, 3, 2.0);
  for (int x : value.witness) EXPECT_NE(x, 3);
}

TEST(FadingParameterTest, MonotoneDecreasingInSeparation) {
  // Larger separation only removes candidate sets, and gamma scales with r:
  // gamma(r) = r * max sum; the max sum shrinks at least linearly, so over a
  // doubling space gamma stays bounded; check the weaker monotone property
  // of the max-sum itself.
  const DecaySpace space = spaces::LineSpace(16, 1.0, 3.0);
  const double g2 = FadingParameter(space, 2.0) / 2.0;   // max-sum at r=2
  const double g8 = FadingParameter(space, 8.0) / 8.0;   // max-sum at r=8
  EXPECT_GE(g2, g8);
}

TEST(Theorem2BoundTest, FormulaMatchesDefinition) {
  const double C = 2.0;
  const double A = 0.5;
  EXPECT_NEAR(Theorem2Bound(C, A),
              C * std::pow(2.0, 1.5) * (RiemannZeta(1.5) - 1.0), 1e-12);
}

// Theorem 2: gamma(r) <= C 2^{A+1} (zetahat(2-A) - 1) for spaces of Assouad
// dimension A < 1.  A line with decay d^alpha has A ~ 1/alpha and the
// packing constant C is small; we verify with a conservative (C, A) pair
// admissible for the instance (checked via the packing inequality).
class FadingBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(FadingBoundTest, LineSpacesRespectTheorem2) {
  const double alpha = GetParam();
  const DecaySpace space = spaces::LineSpace(24, 1.0, alpha);
  const double A = 1.0 / alpha;
  // Verify C = 3 witnesses the packing property P(B(x, tR), R) <= C t^A for
  // the realised packings (greedy gives a lower bound on the max, so test
  // exact on small bodies).
  const double C = 3.0;
  std::vector<int> body;
  for (int i = 0; i < space.size(); ++i) body.push_back(i);
  for (const double R : {1.0, 2.0, 4.0}) {
    for (const double t : {2.0, 4.0, 8.0}) {
      const auto ball = Ball(space, space.size() / 2, t * R);
      const int packed = PackingNumberExact(space, ball, R);
      EXPECT_LE(packed, C * std::pow(t, A) + 1e-9)
          << "alpha=" << alpha << " R=" << R << " t=" << t;
    }
  }
  for (const double r : {2.0, 4.0, 8.0}) {
    const double gamma = FadingParameter(space, r);
    EXPECT_LE(gamma, Theorem2Bound(C, A) + 1e-9)
        << "alpha=" << alpha << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, FadingBoundTest,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0, 6.0));

TEST(StarSpaceFadingTest, BoundedGammaDespiteUnboundedDoubling) {
  // Sec. 3.4: the center x_0 (decay exactly r from x_{-1}) is the intended
  // transmitter and is excluded from the interferer set; the k far leaves
  // contribute k / (r + k^2) ~ 1/k total gain, so gamma_{x_{-1}}(r) ~ r/k
  // stays bounded (indeed vanishes) even though the doubling dimension is k.
  for (const int k : {8, 32, 128}) {
    const double r = 2.0;
    const DecaySpace space = spaces::StarSpace(k, r);
    const FadingValue v = FadingValueExact(space, 1, r);  // z = x_{-1}
    const double expected = r * k / (r + static_cast<double>(k) * k);
    EXPECT_NEAR(v.gamma, expected, 1e-9) << "k=" << k;
    EXPECT_EQ(v.witness.size(), static_cast<std::size_t>(k)) << "k=" << k;
  }
}

TEST(StarSpaceFadingTest, GammaShrinksWithK) {
  const double r = 4.0;
  const double g_small =
      FadingValueGreedy(spaces::StarSpace(8, r), 1, r).gamma;
  const double g_large =
      FadingValueGreedy(spaces::StarSpace(64, r), 1, r).gamma;
  EXPECT_GT(g_small, g_large);
}

TEST(FadingParameterTest, GreedyModeRuns) {
  geom::Rng rng(5);
  const auto pts = geom::SampleUniform(30, 10.0, 10.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 3.0);
  const double exact_like = FadingParameter(space, 4.0, /*exact=*/false);
  EXPECT_GT(exact_like, 0.0);
}

}  // namespace
}  // namespace decaylib::core
