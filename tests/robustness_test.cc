// Failure-injection tests: the public API's DL_CHECK preconditions must
// abort loudly on misuse rather than corrupt state (C++ Core Guidelines I.5:
// state preconditions, and here enforce them).
#include <gtest/gtest.h>

#include "core/decay_space.h"
#include "core/fading.h"
#include "core/metricity.h"
#include "core/numerics.h"
#include "geom/rng.h"
#include "graph/graph.h"
#include "sinr/link_system.h"
#include "spaces/constructions.h"

namespace decaylib {
namespace {

using DeathTest = ::testing::Test;

TEST(DecaySpaceDeathTest, RejectsNonPositiveDecay) {
  core::DecaySpace space(3);
  EXPECT_DEATH(space.Set(0, 1, 0.0), "positive");
  EXPECT_DEATH(space.Set(0, 1, -2.0), "positive");
}

TEST(DecaySpaceDeathTest, RejectsDiagonalWrites) {
  core::DecaySpace space(3);
  EXPECT_DEATH(space.Set(1, 1, 5.0), "diagonal");
}

TEST(DecaySpaceDeathTest, RejectsOutOfRangeIds) {
  core::DecaySpace space(3);
  EXPECT_DEATH(space.Set(0, 3, 1.0), "range");
  EXPECT_DEATH(space.Set(-1, 0, 1.0), "range");
}

TEST(DecaySpaceDeathTest, RejectsEmptySpace) {
  EXPECT_DEATH(core::DecaySpace(0), "at least one node");
}

TEST(DecaySpaceDeathTest, GeometricRejectsCoincidentPoints) {
  const std::vector<geom::Vec2> pts{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DEATH(core::DecaySpace::Geometric(pts, 2.0), "coincident");
}

TEST(QuasiMetricDeathTest, RejectsNonPositiveZeta) {
  const core::DecaySpace space(3);
  EXPECT_DEATH(core::QuasiMetric(space, 0.0), "positive");
}

TEST(NumericsDeathTest, ZetaFunctionNeedsConvergence) {
  EXPECT_DEATH(core::RiemannZeta(1.0), "x > 1");
  EXPECT_DEATH(core::RiemannZeta(0.5), "x > 1");
}

TEST(FadingDeathTest, RejectsBadArguments) {
  const core::DecaySpace space = spaces::UniformSpace(4);
  EXPECT_DEATH(core::FadingValueExact(space, 9, 1.0), "range");
  EXPECT_DEATH(core::FadingValueExact(space, 0, 0.0), "positive");
}

TEST(Theorem2BoundDeathTest, RequiresFadingDimension) {
  EXPECT_DEATH(core::Theorem2Bound(1.0, 1.0), "below 1");
}

TEST(GraphDeathTest, RejectsSelfLoopsAndBadIds) {
  graph::Graph g(3);
  EXPECT_DEATH(g.AddEdge(1, 1), "[Ss]elf");
  EXPECT_DEATH(g.AddEdge(0, 5), "range");
}

TEST(LinkSystemDeathTest, RejectsDegenerateLinks) {
  const core::DecaySpace space = spaces::UniformSpace(4);
  EXPECT_DEATH(sinr::LinkSystem(space, {{0, 0}}, {1.0, 0.0}), "differ");
  EXPECT_DEATH(sinr::LinkSystem(space, {{0, 7}}, {1.0, 0.0}), "range");
}

TEST(LinkSystemDeathTest, RejectsSubUnitBeta) {
  const core::DecaySpace space = spaces::UniformSpace(4);
  EXPECT_DEATH(sinr::LinkSystem(space, {{0, 1}}, {0.5, 0.0}), "beta");
}

TEST(LinkSystemDeathTest, NoiseFactorNeedsNoiseMargin) {
  core::DecaySpace space(2, 10.0);
  const sinr::LinkSystem system(space, {{0, 1}}, {2.0, 1.0});
  const sinr::PowerAssignment power{1.0};  // signal 0.1 < beta * noise = 2
  EXPECT_DEATH(system.NoiseFactor(0, power), "threshold");
}

TEST(StarSpaceDeathTest, RejectsDegenerateParameters) {
  EXPECT_DEATH(spaces::StarSpace(0, 1.0), "leaf");
  EXPECT_DEATH(spaces::StarSpace(3, 0.0), "positive");
}

TEST(WelzlSpaceDeathTest, RejectsLargeEps) {
  EXPECT_DEATH(spaces::WelzlSpace(4, 0.3), "eps");
}

}  // namespace
}  // namespace decaylib
