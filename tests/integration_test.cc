// Cross-module integration tests: the full pipelines the benches rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "capacity/exact.h"
#include "core/decay_space.h"
#include "core/fading.h"
#include "core/metricity.h"
#include "env/propagation.h"
#include "geom/samplers.h"
#include "graph/generators.h"
#include "graph/independent_set.h"
#include "measurement/rssi.h"
#include "scheduling/scheduler.h"
#include "sinr/power.h"
#include "spaces/constructions.h"
#include "spaces/samplers.h"

namespace decaylib {
namespace {

// Proposition 1 (theory transfer): running an algorithm on the decay space D
// is the same as running it on the quasi-metric D' = (V, f^{1/zeta}) with
// path loss constant zeta.  We check the strongest form: Algorithm 1 and the
// greedy baseline return *identical* sets on D and on the re-materialised
// geometric space (f')^... = (f^{1/zeta})^{zeta}.
TEST(TheoryTransferTest, AlgorithmsIdenticalOnQuasiMetricReembedding) {
  geom::Rng rng(1);
  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  for (int i = 0; i < 16; ++i) {
    const geom::Vec2 s{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    pts.push_back(s);
    pts.push_back(s + geom::Vec2{1.0, 0.0}.Rotated(rng.Uniform(0.0, 6.28)));
    links.push_back({2 * i, 2 * i + 1});
  }
  geom::Rng shadow_rng(2);
  const core::DecaySpace noisy =
      spaces::ShadowedGeometric(pts, 3.0, 6.0, shadow_rng, true);
  const double zeta = core::Metricity(noisy);

  // Re-embed: take quasi-distances d = f^{1/zeta}, then rebuild decays as
  // d^zeta.  The result must be bit-close to the original space.
  const core::QuasiMetric d(noisy, zeta);
  core::DecaySpace rebuilt = core::DecaySpace::FromDistancePower(
      d.Matrix(), zeta);
  for (int i = 0; i < noisy.size(); ++i) {
    for (int j = 0; j < noisy.size(); ++j) {
      if (i != j) {
        ASSERT_NEAR(rebuilt(i, j) / noisy(i, j), 1.0, 1e-9);
      }
    }
  }

  const sinr::LinkSystem sys_a(noisy, links, {1.0, 0.0});
  const sinr::LinkSystem sys_b(rebuilt, links, {1.0, 0.0});
  EXPECT_EQ(capacity::RunAlgorithm1(sys_a, zeta).selected,
            capacity::RunAlgorithm1(sys_b, zeta).selected);
  EXPECT_EQ(capacity::GreedyFeasible(sys_a), capacity::GreedyFeasible(sys_b));
}

TEST(EnvToCapacityPipelineTest, EndToEnd) {
  // Floor plan -> decay matrix -> metricity -> capacity -> schedule.
  env::Environment office = env::Environment::OfficeGrid(24.0, 24.0, 3, 3);
  env::PropagationConfig config;
  config.alpha = 2.8;
  config.shadowing_sigma_db = 3.0;
  geom::Rng rng(3);

  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  for (int i = 0; i < 12; ++i) {
    const geom::Vec2 s{rng.Uniform(1.0, 23.0), rng.Uniform(1.0, 23.0)};
    pts.push_back(s);
    pts.push_back({std::min(23.0, s.x + 1.0), s.y});
    links.push_back({2 * i, 2 * i + 1});
  }
  const core::DecaySpace space =
      env::BuildDecaySpace(office, config, env::PlaceIsotropic(pts));
  ASSERT_FALSE(space.Validate().has_value());

  const double zeta = std::max(1.0, core::Metricity(space));
  EXPECT_GT(zeta, 0.0);

  const sinr::LinkSystem system(space, links, {1.0, 1e-12});
  const auto result = capacity::RunAlgorithm1(system, zeta);
  EXPECT_TRUE(system.IsFeasible(result.selected, sinr::UniformPower(system)));

  const auto schedule = scheduling::ScheduleLinks(
      system, zeta, scheduling::Extractor::kAlgorithm1);
  EXPECT_TRUE(
      scheduling::ValidateSchedule(system, schedule, sinr::AllLinks(system)));
}

TEST(HardnessPipelineTest, GreedyGapOnTheorem3Instances) {
  // The hardness construction manifests as a realised gap between greedy and
  // OPT on concrete graphs: on a star graph, greedy-by-decay can pick the
  // hub... here we simply check OPT==MIS and greedy <= OPT with both ends
  // feasible.
  geom::Rng rng(4);
  const graph::Graph g = graph::RandomGnp(10, 0.5, rng);
  const auto instance = spaces::Theorem3Instance(g);
  const sinr::LinkSystem system(instance.space,
                                sinr::LinksFromPairs(instance.links),
                                {1.0, 0.0});
  const auto opt = capacity::ExactCapacityUniform(system);
  const auto greedy = capacity::GreedyFeasible(system);
  EXPECT_EQ(opt.size(), graph::MaxIndependentSet(g).size());
  EXPECT_LE(greedy.size(), opt.size());
  EXPECT_TRUE(system.IsFeasible(greedy, sinr::UniformPower(system)));
}

TEST(MeasurementPipelineTest, InferredSpaceSupportsCapacity) {
  // Measure a ground-truth space via RSSI, then run capacity on the inferred
  // matrix: the selected set must be feasible on the *true* matrix too
  // (decays are recovered within quantisation, which only perturbs
  // affectance slightly; we verify with a 2x margin by checking
  // K-feasibility at K = 1 on truth for the set chosen on the inferred
  // space with admission margin built into Algorithm 1).
  geom::Rng rng(5);
  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  for (int i = 0; i < 10; ++i) {
    const geom::Vec2 s{rng.Uniform(0.0, 25.0), rng.Uniform(0.0, 25.0)};
    pts.push_back(s);
    pts.push_back(s + geom::Vec2{1.0, 0.0});
    links.push_back({2 * i, 2 * i + 1});
  }
  const core::DecaySpace truth = core::DecaySpace::Geometric(pts, 3.0);
  measurement::RssiConfig rssi;
  rssi.quantization_db = 0.5;
  rssi.noise_sigma_db = 0.25;
  rssi.readings_per_pair = 16;
  rssi.sensitivity_dbm = -1000.0;
  geom::Rng rng2(6);
  const auto table = measurement::SimulateRssi(truth, rssi, rng2);
  const core::DecaySpace inferred =
      measurement::InferDecayFromRssi(table, rssi);

  const double zeta = std::max(1.0, core::Metricity(inferred));
  const sinr::LinkSystem measured_system(inferred, links, {1.0, 0.0});
  const auto chosen = capacity::RunAlgorithm1(measured_system, zeta).selected;

  const sinr::LinkSystem true_system(truth, links, {1.0, 0.0});
  EXPECT_TRUE(
      true_system.IsFeasible(chosen, sinr::UniformPower(true_system)));
}

TEST(FadingPipelineTest, WallsIncreaseGammaAndSlowNothingDown) {
  // gamma of an office space exceeds gamma of the free-space version of the
  // same deployment (walls concentrate surviving interference paths through
  // doors, decorrelating decay from distance).
  geom::Rng rng(7);
  const auto pts = geom::SampleUniform(14, 20.0, 20.0, rng);
  const auto nodes = env::PlaceIsotropic(pts);
  env::PropagationConfig config;
  config.alpha = 3.0;

  const env::Environment open;
  env::Environment office = env::Environment::OfficeGrid(20.0, 20.0, 3, 3);
  const core::DecaySpace space_open =
      env::BuildDecaySpace(open, config, nodes);
  const core::DecaySpace space_office =
      env::BuildDecaySpace(office, config, nodes);

  const double r = 50.0;
  const double gamma_open = core::FadingParameter(space_open, r);
  const double gamma_office = core::FadingParameter(space_office, r);
  EXPECT_GT(gamma_open, 0.0);
  EXPECT_GT(gamma_office, 0.0);
  // No assertion on the ordering here (it depends on the deployment); the
  // bench reports the actual values.  What must hold: both are finite and
  // the spaces are valid.
  EXPECT_TRUE(std::isfinite(gamma_open) && std::isfinite(gamma_office));
}

}  // namespace
}  // namespace decaylib
