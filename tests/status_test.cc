#include "core/status.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "io/json.h"

namespace decaylib {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const core::Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), core::StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "ok");
  EXPECT_EQ(status, core::Status::Ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const struct {
    core::Status status;
    core::StatusCode code;
    const char* name;
  } cases[] = {
      {core::Status::InvalidArgument("bad input"),
       core::StatusCode::kInvalidArgument, "invalid_argument"},
      {core::Status::FailedPrecondition("wrong state"),
       core::StatusCode::kFailedPrecondition, "failed_precondition"},
      {core::Status::NumericError("nan"), core::StatusCode::kNumericError,
       "numeric_error"},
      {core::Status::IoError("unreadable"), core::StatusCode::kIoError,
       "io_error"},
      {core::Status::Internal("worker threw"), core::StatusCode::kInternal,
       "internal"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_STREQ(core::StatusCodeName(c.code), c.name);
    // ToString is "<code name>: <message>" -- what CLI error paths print.
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

TEST(StatusTest, ThrowIfErrorPreservesTheStatus) {
  EXPECT_NO_THROW(core::ThrowIfError(core::Status::Ok()));
  try {
    core::ThrowIfError(core::Status::NumericError("aggregate went inf"));
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& e) {
    EXPECT_EQ(e.status().code(), core::StatusCode::kNumericError);
    EXPECT_EQ(e.status().message(), "aggregate went inf");
    // what() must read as the full diagnostic even when caught as a plain
    // std::exception (the sweep runner's generic catch records it).
    EXPECT_STREQ(e.what(), "numeric_error: aggregate went inf");
  }
}

TEST(StatusOrTest, CarriesValueOrStatus) {
  const auto parse = [](double v) -> core::StatusOr<double> {
    if (!(v > 0.0)) return core::Status::InvalidArgument("needs v > 0");
    return std::sqrt(v);
  };
  const core::StatusOr<double> good = parse(4.0);
  ASSERT_TRUE(good.ok());
  EXPECT_DOUBLE_EQ(good.value(), 2.0);
  EXPECT_DOUBLE_EQ(*good, 2.0);
  EXPECT_TRUE(good.status().ok());

  const core::StatusOr<double> bad = parse(-1.0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.status().message(), "needs v > 0");
}

TEST(StatusOrTest, ArrowAndMutableAccess) {
  core::StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 3u);
  v->push_back(4);
  EXPECT_EQ(v.value().back(), 4);
}

TEST(StatusOrDeathTest, ValueOnFailureIsProgrammerError) {
  const core::StatusOr<int> failed = core::Status::IoError("gone");
  EXPECT_DEATH((void)failed.value(), "failed result");
}

// --- io::Json: the checkpoint sidecar's parser/writer --------------------

TEST(JsonTest, ParsesScalarsAndStructure) {
  const auto doc = io::Json::Parse(
      R"({"name":"smoke","grid":8,"done":true,"gap":null,)"
      R"("cells":[{"i":0,"sum":"1.5"},{"i":1,"sum":"-2.25"}]})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->Find("name")->AsString(), "smoke");
  EXPECT_EQ(doc->Find("grid")->AsNumber(), 8.0);
  EXPECT_TRUE(doc->Find("done")->AsBool());
  EXPECT_TRUE(doc->Find("gap")->is_null());
  EXPECT_EQ(doc->Find("missing"), nullptr);
  const auto& cells = doc->Find("cells")->Items();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1].Find("sum")->AsString(), "-2.25");
}

TEST(JsonTest, RejectsMalformedInputWithOffsets) {
  // Each of these is a way a sidecar can be torn by the crash it should
  // survive; all must come back as kIoError, never abort.
  const char* bad[] = {
      "",                        // empty file
      "{",                       // truncated object
      R"({"a":1,})",             // trailing comma
      R"({"a" 1})",              // missing colon
      R"({"a":1} x)",            // trailing junk
      R"({"a":"unterminated)",   // torn string
      R"([1, 2,)",               // truncated array
      R"({"a":1e})",             // malformed number
      R"({"a":nul})",            // torn literal
  };
  for (const char* text : bad) {
    const auto doc = io::Json::Parse(text);
    EXPECT_FALSE(doc.ok()) << text;
    EXPECT_EQ(doc.status().code(), core::StatusCode::kIoError) << text;
  }
  // Offsets point at the problem byte.
  const auto doc = io::Json::Parse(R"({"a":1} x)");
  EXPECT_NE(doc.status().message().find("offset"), std::string::npos)
      << doc.status().message();
}

TEST(JsonTest, DepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  const auto doc = io::Json::Parse(deep);
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), core::StatusCode::kIoError);
}

TEST(JsonTest, DumpParseRoundTripIsExact) {
  io::Json obj = io::Json::Object();
  obj.Set("label", io::Json::String("q\"uo\\te\n\tctrl"));
  obj.Set("count", io::Json::Number(12345.0));
  io::Json arr = io::Json::Array();
  // Values chosen to expose any sloppy number formatting.
  const double values[] = {0.1, 1.0 / 3.0, -2.5e-300, 6.02214076e23,
                           std::numeric_limits<double>::denorm_min(),
                           -std::numeric_limits<double>::max()};
  for (double v : values) arr.Append(io::Json::Number(v));
  obj.Set("values", std::move(arr));

  const std::string text = obj.Dump();
  const auto back = io::Json::Parse(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Find("label")->AsString(), "q\"uo\\te\n\tctrl");
  const auto& items = back->Find("values")->Items();
  ASSERT_EQ(items.size(), std::size(values));
  for (std::size_t i = 0; i < items.size(); ++i) {
    // %.17g must reproduce each double bit-exactly through the parser.
    EXPECT_EQ(items[i].AsNumber(), values[i]) << i;
  }
  // And the serialisation itself is stable (second dump identical).
  EXPECT_EQ(back->Dump(), text);
}

TEST(JsonDeathTest, NonFiniteNumbersAreProgrammerError) {
  io::Json v = io::Json::Number(std::numeric_limits<double>::infinity());
  EXPECT_DEATH((void)v.Dump(), "finite");
}

}  // namespace
}  // namespace decaylib
