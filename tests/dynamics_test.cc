#include "dynamics/queue_system.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/decay_space.h"
#include "geom/point.h"

namespace decaylib::dynamics {
namespace {

// Well-separated links: every subset feasible, so per-slot service capacity
// equals the number of backlogged links.
struct SparseFixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  explicit SparseFixture(int n, double spread = 50.0) : space(1) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back({i * spread, 0.0});
      pts.push_back({i * spread + 1.0, 0.0});
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

// All links stacked: at most one can be served per slot.
struct DenseFixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  explicit DenseFixture(int n) : space(1) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back({0.0, i * 0.05});
      pts.push_back({1.0, i * 0.05});
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

TEST(QueueSystemTest, SparseSystemIsStableAtHighLoad) {
  const SparseFixture fixture(6);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(1);
  const auto config =
      UniformArrivals(system, 0.8, Scheduler::kLongestQueueFirst, 4000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_LT(stats.mean_queue, 10.0);               // bounded backlog
  EXPECT_NEAR(stats.throughput, 6 * 0.8, 0.3);     // serves what arrives
  EXPECT_LT(stats.backlog_growth, 2.0);
}

TEST(QueueSystemTest, DenseSystemUnstableAboveOnePacketPerSlot) {
  const DenseFixture fixture(5);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(2);
  // Offered load 5 * 0.5 = 2.5 packets/slot >> 1 servable.
  const auto config =
      UniformArrivals(system, 0.5, Scheduler::kLongestQueueFirst, 4000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_NEAR(stats.throughput, 1.0, 0.1);  // capacity is one per slot
  EXPECT_GT(stats.backlog_growth, 1.2);     // queues keep growing
  EXPECT_GT(stats.mean_queue, 100.0);
}

TEST(QueueSystemTest, DenseSystemStableBelowCapacity) {
  const DenseFixture fixture(5);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(3);
  // Offered load 5 * 0.15 = 0.75 < 1.
  const auto config =
      UniformArrivals(system, 0.15, Scheduler::kLongestQueueFirst, 6000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_NEAR(stats.throughput, 0.75, 0.1);
  EXPECT_LT(stats.backlog_growth, 1.5);
}

TEST(QueueSystemTest, ConservationLaw) {
  const SparseFixture fixture(4);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(4);
  const auto config =
      UniformArrivals(system, 0.4, Scheduler::kGreedyByDecay, 2000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  const long long remaining = std::accumulate(stats.final_queues.begin(),
                                              stats.final_queues.end(), 0LL);
  EXPECT_EQ(stats.arrived_total, stats.served_total + remaining);
}

TEST(QueueSystemTest, RandomAccessServesSparseTraffic) {
  const SparseFixture fixture(5);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(5);
  auto config = UniformArrivals(system, 0.05, Scheduler::kRandomAccess, 6000);
  config.random_access_c = 1.0;
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_GT(stats.throughput, 0.15);       // serves most of the 0.25 offered
  EXPECT_LT(stats.backlog_growth, 3.0);
}

TEST(QueueSystemTest, LongestQueueFirstBeatsObliviousGreedyWhenAsymmetric) {
  // Unequal arrival rates: backlog-aware scheduling keeps the loaded link's
  // queue shorter than oblivious decay-order greedy does.
  const DenseFixture fixture(3);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  QueueConfig config;
  config.arrival_rates = {0.6, 0.05, 0.05};
  config.slots = 6000;
  config.scheduler = Scheduler::kLongestQueueFirst;
  geom::Rng rng_a(6);
  const QueueStats lqf = RunQueueSimulation(system, config, rng_a);
  config.scheduler = Scheduler::kGreedyByDecay;
  geom::Rng rng_b(6);
  const QueueStats greedy = RunQueueSimulation(system, config, rng_b);
  EXPECT_LE(lqf.mean_queue, greedy.mean_queue * 1.5);
  EXPECT_GT(lqf.throughput, 0.5);
}

TEST(QueueSystemTest, ZeroArrivalsZeroEverything) {
  const SparseFixture fixture(3);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(7);
  const auto config =
      UniformArrivals(system, 0.0, Scheduler::kLongestQueueFirst, 500);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_EQ(stats.arrived_total, 0);
  EXPECT_EQ(stats.served_total, 0);
  EXPECT_DOUBLE_EQ(stats.mean_queue, 0.0);
}

}  // namespace
}  // namespace decaylib::dynamics
