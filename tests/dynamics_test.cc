#include "dynamics/queue_system.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/decay_space.h"
#include "geom/point.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

namespace decaylib::dynamics {
namespace {

// Well-separated links: every subset feasible, so per-slot service capacity
// equals the number of backlogged links.
struct SparseFixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  explicit SparseFixture(int n, double spread = 50.0) : space(1) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back({i * spread, 0.0});
      pts.push_back({i * spread + 1.0, 0.0});
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

// All links stacked: at most one can be served per slot.
struct DenseFixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  explicit DenseFixture(int n) : space(1) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back({0.0, i * 0.05});
      pts.push_back({1.0, i * 0.05});
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

TEST(QueueSystemTest, SparseSystemIsStableAtHighLoad) {
  const SparseFixture fixture(6);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(1);
  const auto config =
      UniformArrivals(system, 0.8, Scheduler::kLongestQueueFirst, 4000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_LT(stats.mean_queue, 10.0);               // bounded backlog
  EXPECT_NEAR(stats.throughput, 6 * 0.8, 0.3);     // serves what arrives
  EXPECT_LT(stats.backlog_growth, 2.0);
}

TEST(QueueSystemTest, DenseSystemUnstableAboveOnePacketPerSlot) {
  const DenseFixture fixture(5);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(2);
  // Offered load 5 * 0.5 = 2.5 packets/slot >> 1 servable.
  const auto config =
      UniformArrivals(system, 0.5, Scheduler::kLongestQueueFirst, 4000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_NEAR(stats.throughput, 1.0, 0.1);  // capacity is one per slot
  EXPECT_GT(stats.backlog_growth, 1.2);     // queues keep growing
  EXPECT_GT(stats.mean_queue, 100.0);
}

TEST(QueueSystemTest, DenseSystemStableBelowCapacity) {
  const DenseFixture fixture(5);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(3);
  // Offered load 5 * 0.15 = 0.75 < 1.
  const auto config =
      UniformArrivals(system, 0.15, Scheduler::kLongestQueueFirst, 6000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_NEAR(stats.throughput, 0.75, 0.1);
  EXPECT_LT(stats.backlog_growth, 1.5);
}

TEST(QueueSystemTest, ConservationLaw) {
  const SparseFixture fixture(4);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(4);
  const auto config =
      UniformArrivals(system, 0.4, Scheduler::kGreedyByDecay, 2000);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  const long long remaining = std::accumulate(stats.final_queues.begin(),
                                              stats.final_queues.end(), 0LL);
  EXPECT_EQ(stats.arrived_total, stats.served_total + remaining);
}

TEST(QueueSystemTest, RandomAccessServesSparseTraffic) {
  const SparseFixture fixture(5);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(5);
  auto config = UniformArrivals(system, 0.05, Scheduler::kRandomAccess, 6000);
  config.random_access_c = 1.0;
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_GT(stats.throughput, 0.15);       // serves most of the 0.25 offered
  EXPECT_LT(stats.backlog_growth, 3.0);
}

TEST(QueueSystemTest, LongestQueueFirstBeatsObliviousGreedyWhenAsymmetric) {
  // Unequal arrival rates: backlog-aware scheduling keeps the loaded link's
  // queue shorter than oblivious decay-order greedy does.
  const DenseFixture fixture(3);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  QueueConfig config;
  config.arrival_rates = {0.6, 0.05, 0.05};
  config.slots = 6000;
  config.scheduler = Scheduler::kLongestQueueFirst;
  geom::Rng rng_a(6);
  const QueueStats lqf = RunQueueSimulation(system, config, rng_a);
  config.scheduler = Scheduler::kGreedyByDecay;
  geom::Rng rng_b(6);
  const QueueStats greedy = RunQueueSimulation(system, config, rng_b);
  EXPECT_LE(lqf.mean_queue, greedy.mean_queue * 1.5);
  EXPECT_GT(lqf.throughput, 0.5);
}

TEST(QueueSystemTest, ZeroArrivalsZeroEverything) {
  const SparseFixture fixture(3);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(7);
  const auto config =
      UniformArrivals(system, 0.0, Scheduler::kLongestQueueFirst, 500);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_EQ(stats.arrived_total, 0);
  EXPECT_EQ(stats.served_total, 0);
  EXPECT_DOUBLE_EQ(stats.mean_queue, 0.0);
}

// Regression: slots < 4 used to put every slot in the "fourth quarter"
// bucket (quarter == 0), so any backlog at all made backlog_growth read
// 1e9 -- an instability verdict off a three-slot run.  Short runs now
// report the neutral 1.0.
TEST(QueueSystemTest, BacklogGrowthNeutralOnShortRuns) {
  const DenseFixture fixture(4);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(11);
  const auto config =
      UniformArrivals(system, 0.9, Scheduler::kLongestQueueFirst, 3);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_GT(stats.arrived_total, 0);  // the run did see backlog
  EXPECT_DOUBLE_EQ(stats.backlog_growth, 1.0);
}

// Out-of-range arrival rates must be rejected, not silently clamped inside
// Rng::Chance (which would distort the Bernoulli process).
TEST(QueueSystemDeathTest, ArrivalRatesOutsideUnitIntervalRejected) {
  const SparseFixture fixture(3);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  QueueConfig config;
  config.arrival_rates = {0.5, 1.5, 0.5};
  config.slots = 100;
  config.warmup = 10;
  geom::Rng rng(12);
  EXPECT_DEATH(RunQueueSimulation(system, config, rng), "Bernoulli");
  config.arrival_rates = {0.5, -0.1, 0.5};
  EXPECT_DEATH(RunQueueSimulation(system, config, rng), "Bernoulli");
  EXPECT_DEATH(
      UniformArrivals(system, 1.2, Scheduler::kLongestQueueFirst, 100),
      "Bernoulli");
}

// Warmup accounting: the *_measured counters are exactly the events behind
// the reported rates, the *_total counters cover the whole run, and the
// conservation law holds for the totals.
TEST(QueueSystemTest, WarmupCountersAreConsistent) {
  const SparseFixture fixture(4);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  geom::Rng rng(13);
  const auto config =
      UniformArrivals(system, 0.5, Scheduler::kLongestQueueFirst, 2000);
  ASSERT_EQ(config.warmup, 200);
  const QueueStats stats = RunQueueSimulation(system, config, rng);
  EXPECT_GE(stats.served_total, stats.served_measured);
  EXPECT_GE(stats.arrived_total, stats.arrived_measured);
  EXPECT_GT(stats.served_measured, 0);
  // throughput is defined over the measurement window, bit-for-bit.
  EXPECT_EQ(stats.throughput,
            static_cast<double>(stats.served_measured) /
                (config.slots - config.warmup));
  const long long remaining = std::accumulate(stats.final_queues.begin(),
                                              stats.final_queues.end(), 0LL);
  EXPECT_EQ(stats.arrived_total, stats.served_total + remaining);
}

void ExpectSameStats(const QueueStats& a, const QueueStats& b) {
  // Whole-struct equality (defaulted operator==) keeps the gate covering
  // fields this helper does not yet name; the field checks below localise
  // a failure.
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.mean_queue, b.mean_queue);
  EXPECT_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.served_total, b.served_total);
  EXPECT_EQ(a.arrived_total, b.arrived_total);
  EXPECT_EQ(a.served_measured, b.served_measured);
  EXPECT_EQ(a.arrived_measured, b.arrived_measured);
  EXPECT_EQ(a.final_queues, b.final_queues);
  EXPECT_EQ(a.backlog_growth, b.backlog_growth);
}

// The cached path must reproduce the naive reference bit-for-bit at a fixed
// seed: identical randomness stream, identical admission decisions,
// identical statistics -- for every scheduler, on both a feasible-everywhere
// and a contention-heavy deployment, with and without ambient noise.
TEST(QueueSystemTest, CachedPathBitIdenticalToNaive) {
  const SparseFixture sparse(5);
  const DenseFixture dense(5);
  struct Case {
    const core::DecaySpace* space;
    const std::vector<sinr::Link>* links;
    sinr::SinrConfig config;
    double lambda;
  };
  const std::vector<Case> cases = {
      {&sparse.space, &sparse.links, {2.0, 0.0}, 0.6},
      {&dense.space, &dense.links, {2.0, 0.0}, 0.3},
      {&sparse.space, &sparse.links, {2.0, 1e-4}, 0.4},
  };
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const sinr::LinkSystem system(*cases[c].space, *cases[c].links,
                                  cases[c].config);
    const sinr::KernelCache kernel(system, sinr::UniformPower(system));
    for (const Scheduler scheduler :
         {Scheduler::kLongestQueueFirst, Scheduler::kGreedyByDecay,
          Scheduler::kRandomAccess}) {
      SCOPED_TRACE(testing::Message()
                   << "case " << c << " scheduler "
                   << SchedulerName(scheduler));
      const auto config =
          UniformArrivals(system, cases[c].lambda, scheduler, 600);
      geom::Rng rng_naive(21);
      const QueueStats naive =
          RunQueueSimulationNaive(system, config, rng_naive);
      geom::Rng rng_cached(21);
      const QueueStats cached = RunQueueSimulation(kernel, config, rng_cached);
      ExpectSameStats(naive, cached);
      // The historical LinkSystem entry point delegates to the same path.
      geom::Rng rng_entry(21);
      ExpectSameStats(naive, RunQueueSimulation(system, config, rng_entry));
    }
  }
}

TEST(QueueSystemTest, SchedulerNamesRoundTrip) {
  EXPECT_EQ(SchedulerNames().size(), 3u);
  for (const Scheduler scheduler :
       {Scheduler::kLongestQueueFirst, Scheduler::kGreedyByDecay,
        Scheduler::kRandomAccess}) {
    const auto parsed = SchedulerFromName(SchedulerName(scheduler));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, scheduler);
  }
  EXPECT_FALSE(SchedulerFromName("no_such_scheduler").has_value());
}

}  // namespace
}  // namespace decaylib::dynamics
