#include "core/metricity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/decay_space.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "spaces/constructions.h"
#include "spaces/samplers.h"

namespace decaylib::core {
namespace {

TEST(TripletZetaTest, UnconstrainedWhenLongestSideNotUnique) {
  EXPECT_DOUBLE_EQ(TripletZeta(1.0, 2.0, 0.5), 0.0);  // a <= b
  EXPECT_DOUBLE_EQ(TripletZeta(1.0, 0.5, 2.0), 0.0);  // a <= c
  EXPECT_DOUBLE_EQ(TripletZeta(2.0, 2.0, 2.0), 0.0);
}

TEST(TripletZetaTest, CollinearGeometricTriplet) {
  // Distances 1, 1, 2 raised to alpha: the root is exactly s = 1/alpha.
  for (const double alpha : {1.0, 2.0, 3.0, 4.5, 6.0}) {
    const double a = std::pow(2.0, alpha);
    EXPECT_NEAR(TripletZeta(a, 1.0, 1.0), alpha, 1e-6) << "alpha=" << alpha;
  }
}

TEST(TripletZetaTest, AsymmetricSides) {
  // b^s + c^s = a^s at the root; verify the returned zeta satisfies the
  // defining identity.
  const double zeta = TripletZeta(10.0, 2.0, 3.0);
  ASSERT_GT(zeta, 0.0);
  const double s = 1.0 / zeta;
  EXPECT_NEAR(std::pow(2.0, s) + std::pow(3.0, s), std::pow(10.0, s), 1e-6);
}

TEST(MetricityTest, UniformSpaceIsUnconstrained) {
  const DecaySpace space(5);
  EXPECT_DOUBLE_EQ(Metricity(space), 0.0);
  EXPECT_EQ(ComputeMetricity(space).arg_x, -1);
}

class LineSpaceMetricity : public ::testing::TestWithParam<double> {};

TEST_P(LineSpaceMetricity, EqualsAlphaExactly) {
  const double alpha = GetParam();
  const DecaySpace space = spaces::LineSpace(8, 1.0, alpha);
  EXPECT_NEAR(Metricity(space), alpha, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, LineSpaceMetricity,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0,
                                           6.0));

class PlanarMetricityBound : public ::testing::TestWithParam<double> {};

TEST_P(PlanarMetricityBound, AtMostAlpha) {
  const double alpha = GetParam();
  geom::Rng rng(42);
  const auto pts = geom::SampleUniform(24, 10.0, 10.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, alpha);
  EXPECT_LE(Metricity(space), alpha + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, PlanarMetricityBound,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0, 6.0));

TEST(MetricityTest, WitnessTripletAttainsZeta) {
  geom::Rng rng(7);
  const DecaySpace space = spaces::LogUniformSpace(10, 100.0, rng);
  const MetricityResult result = ComputeMetricity(space);
  ASSERT_GE(result.arg_x, 0);
  const double from_witness =
      TripletZeta(space(result.arg_x, result.arg_y),
                  space(result.arg_x, result.arg_z),
                  space(result.arg_z, result.arg_y));
  EXPECT_NEAR(from_witness, result.zeta, 1e-9);
}

TEST(MetricityTest, UpperBoundHolds) {
  geom::Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const DecaySpace space = spaces::LogUniformSpace(8, 50.0, rng, false);
    const double zeta = Metricity(space);
    // The remark after Def. 2.2: lg(max/min) always satisfies inequality (2).
    EXPECT_LE(zeta, std::max(0.0, MetricityUpperBound(space)) + 1e-9)
        << "trial " << trial;
  }
}

TEST(MetricityTest, ShadowingIncreasesMetricity) {
  geom::Rng rng(9);
  const auto pts = geom::SampleUniform(20, 10.0, 10.0, rng);
  const DecaySpace clean = DecaySpace::Geometric(pts, 3.0);
  geom::Rng rng2(10);
  const DecaySpace noisy =
      spaces::ShadowedGeometric(pts, 3.0, 8.0, rng2, true);
  EXPECT_GT(Metricity(noisy), Metricity(clean));
}

TEST(PhiTest, MetricSpaceHasSmallPhiFactor) {
  // In a metric (alpha = 1 geometric space) f_xz <= f_xy + f_yz, so the
  // factor is at most 1 (phi <= 0).
  const DecaySpace space = spaces::LineSpace(6, 1.0, 1.0);
  const PhiResult phi = ComputePhi(space);
  EXPECT_LE(phi.phi_factor, 1.0 + 1e-9);
  EXPECT_LE(phi.phi, 1e-9);
}

TEST(PhiTest, CollinearAlphaSpace) {
  // Collinear points with decay d^alpha: worst triplet is the doubling one,
  // phi_factor = 2^alpha / 2 = 2^{alpha-1}, so phi = alpha - 1.
  const double alpha = 3.0;
  const DecaySpace space = spaces::LineSpace(8, 1.0, alpha);
  const PhiResult phi = ComputePhi(space);
  EXPECT_NEAR(phi.phi, alpha - 1.0, 1e-6);
}

TEST(PhiTest, WitnessAttainsFactor) {
  geom::Rng rng(11);
  const DecaySpace space = spaces::LogUniformSpace(10, 1000.0, rng);
  const PhiResult phi = ComputePhi(space);
  ASSERT_GE(phi.arg_x, 0);
  const double check = space(phi.arg_x, phi.arg_z) /
                       (space(phi.arg_x, phi.arg_y) +
                        space(phi.arg_y, phi.arg_z));
  EXPECT_NEAR(check, phi.phi_factor, 1e-12);
}

// The provable direction of the zeta/phi relation (see metricity.h): the
// paper's own derivation gives f_xz <= 2^zeta (f_xy + f_yz), i.e. phi <= zeta
// for spaces where zeta >= 1.
class PhiAtMostZeta : public ::testing::TestWithParam<int> {};

TEST_P(PhiAtMostZeta, OnRandomSpaces) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DecaySpace space = spaces::LogUniformSpace(9, 500.0, rng, false);
  const double zeta = Metricity(space);
  const PhiResult phi = ComputePhi(space);
  if (zeta >= 1.0) {
    EXPECT_LE(phi.phi, zeta + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhiAtMostZeta, ::testing::Range(1, 21));

TEST(ZetaPhiTripleTest, PhiBoundedZetaGrows) {
  // Sec. 4.2: f_ab = 1, f_bc = q, f_ac = 2q has phi_factor < 2 for all q but
  // zeta = Theta(log q / log log q) -> unbounded.
  double last_zeta = 0.0;
  for (const double q : {1e2, 1e4, 1e8, 1e12}) {
    const DecaySpace space = spaces::ZetaPhiTriple(q);
    const PhiResult phi = ComputePhi(space);
    EXPECT_LT(phi.phi_factor, 2.0 + 1e-9);
    const double zeta = Metricity(space);
    EXPECT_GT(zeta, last_zeta);  // strictly growing along the sweep
    last_zeta = zeta;
  }
  EXPECT_GT(last_zeta, 4.0);  // far above the phi bound
}

// --- pruned/parallel vs naive equality -------------------------------------
//
// ComputeMetricity and ComputePhi prune against the incumbent and may split
// work across threads; they must still return the same extremum *and the
// same witness triplet* as the exhaustive reference scans (the prunes carry
// a tolerance slack and incumbents are chunk-local, so the update sequence
// is identical to the naive one).  Everything is compared exactly.

class PrunedMetricityEquality : public ::testing::TestWithParam<int> {};

TEST_P(PrunedMetricityEquality, MatchesNaiveOnRandomSpaces) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  geom::Rng rng(seed);
  const std::vector<DecaySpace> cases = {
      spaces::RandomGeometric(26, 12.0, 12.0, 3.0, rng),
      spaces::LogUniformSpace(22, 300.0, rng, /*symmetric=*/false),
      spaces::LogUniformSpace(20, 50.0, rng, /*symmetric=*/true),
      spaces::LineSpace(14, 1.0, 2.0 + 0.5 * static_cast<double>(seed % 5)),
      // Huge decay spread (dense hotspots, thin corridors) makes the
      // per-(x,z) row-min block prune of ComputePhi fire on most pairs;
      // these cases pin the pruned scan to the naive one where it matters.
      spaces::ClusteredGeometric(18, 3, 40.0, 0.2, 4.0, 0.0, rng),
      spaces::CorridorSpace(18, 200.0, 0.5, 3.0, 0.0, rng),
  };
  for (const DecaySpace& space : cases) {
    const MetricityResult pruned = ComputeMetricity(space);
    const MetricityResult naive = ComputeMetricityNaive(space);
    EXPECT_EQ(pruned.zeta, naive.zeta);
    EXPECT_EQ(pruned.arg_x, naive.arg_x);
    EXPECT_EQ(pruned.arg_y, naive.arg_y);
    EXPECT_EQ(pruned.arg_z, naive.arg_z);
    if (naive.zeta > 0.0) {
      ASSERT_GE(pruned.arg_x, 0);
      EXPECT_EQ(TripletZeta(space(pruned.arg_x, pruned.arg_y),
                            space(pruned.arg_x, pruned.arg_z),
                            space(pruned.arg_z, pruned.arg_y)),
                pruned.zeta);
    } else {
      EXPECT_EQ(pruned.arg_x, -1);
    }

    const PhiResult fast_phi = ComputePhi(space);
    const PhiResult naive_phi = ComputePhiNaive(space);
    EXPECT_EQ(fast_phi.phi_factor, naive_phi.phi_factor);
    EXPECT_EQ(fast_phi.phi, naive_phi.phi);
    EXPECT_EQ(fast_phi.arg_x, naive_phi.arg_x);
    EXPECT_EQ(fast_phi.arg_y, naive_phi.arg_y);
    EXPECT_EQ(fast_phi.arg_z, naive_phi.arg_z);
    if (naive_phi.phi_factor > 0.0) {
      ASSERT_GE(fast_phi.arg_x, 0);
      EXPECT_EQ(space(fast_phi.arg_x, fast_phi.arg_z) /
                    (space(fast_phi.arg_x, fast_phi.arg_y) +
                     space(fast_phi.arg_y, fast_phi.arg_z)),
                fast_phi.phi_factor);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedMetricityEquality,
                         ::testing::Range(1, 11));

TEST(PrunedMetricityEquality, MatchesNaiveAcrossThreadChunks) {
  // n >= 64 engages the multi-threaded path on machines with >1 core (and
  // the chunked merge either way).
  geom::Rng rng(99);
  const DecaySpace space = spaces::RandomGeometric(72, 15.0, 15.0, 2.8, rng);
  const MetricityResult pruned = ComputeMetricity(space);
  const MetricityResult naive = ComputeMetricityNaive(space);
  EXPECT_EQ(pruned.zeta, naive.zeta);
  EXPECT_EQ(pruned.arg_x, naive.arg_x);
  EXPECT_EQ(pruned.arg_y, naive.arg_y);
  EXPECT_EQ(pruned.arg_z, naive.arg_z);
  const PhiResult fast_phi = ComputePhi(space);
  const PhiResult naive_phi = ComputePhiNaive(space);
  EXPECT_EQ(fast_phi.phi_factor, naive_phi.phi_factor);
  EXPECT_EQ(fast_phi.arg_x, naive_phi.arg_x);
  EXPECT_EQ(fast_phi.arg_y, naive_phi.arg_y);
  EXPECT_EQ(fast_phi.arg_z, naive_phi.arg_z);
}

TEST(PrunedMetricityEquality, PhiBlockPruneMatchesNaiveOnAdversarialSpaces) {
  // Spaces engineered around the block prune's edge: (a) a space where the
  // first (x,z) blocks dominate and everything later prunes, (b) one where
  // the maximum sits in the very last block, so pruning must never skip a
  // winning pair, and (c) ties -- several triplets attaining the same
  // factor, where the naive scan's first-wins witness must survive.
  std::vector<DecaySpace> cases;
  {
    geom::Rng rng(31);
    cases.push_back(spaces::LogUniformSpace(24, 1e6, rng, false));
  }
  {
    DecaySpace space(12);  // uniform: every factor ties at 1/2
    cases.push_back(space);
  }
  {
    DecaySpace space(10, 1.0);
    space.SetSymmetric(8, 9, 1000.0);  // winner lives in the last rows
    cases.push_back(space);
  }
  for (const DecaySpace& space : cases) {
    const PhiResult fast = ComputePhi(space);
    const PhiResult naive = ComputePhiNaive(space);
    EXPECT_EQ(fast.phi_factor, naive.phi_factor);
    EXPECT_EQ(fast.phi, naive.phi);
    EXPECT_EQ(fast.arg_x, naive.arg_x);
    EXPECT_EQ(fast.arg_y, naive.arg_y);
    EXPECT_EQ(fast.arg_z, naive.arg_z);
  }
}

TEST(ZetaPhiTripleTest, ZetaMatchesAsymptoticShape) {
  // zeta(q) ~ log q / log log q within a moderate constant factor.
  const double q = 1e10;
  const DecaySpace space = spaces::ZetaPhiTriple(q);
  const double zeta = Metricity(space);
  const double prediction = std::log(q) / std::log(std::log(q));
  EXPECT_GT(zeta, prediction / 3.0);
  EXPECT_LT(zeta, prediction * 3.0);
}

}  // namespace
}  // namespace decaylib::core
