// Cross-cutting structural properties of the decay-space machinery --
// parameterized sweeps pinning down invariants the individual module tests
// do not cover.
#include <gtest/gtest.h>

#include <cmath>

#include "core/decay_space.h"
#include "core/dimensions.h"
#include "core/fading.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "spaces/constructions.h"
#include "spaces/samplers.h"

namespace decaylib::core {
namespace {

class SeededProperty : public ::testing::TestWithParam<int> {
 protected:
  geom::Rng MakeRng() const {
    return geom::Rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  }
};

// Removing nodes can only remove constraining triplets: metricity of any
// subspace is at most the metricity of the space.
TEST_P(SeededProperty, MetricityMonotoneUnderSubspaces) {
  geom::Rng rng = MakeRng();
  const DecaySpace space = spaces::LogUniformSpace(10, 1e4, rng, false);
  const double zeta = Metricity(space);
  std::vector<int> nodes{0, 2, 3, 5, 7, 9};
  const DecaySpace sub = space.Subspace(nodes);
  EXPECT_LE(Metricity(sub), zeta + 1e-9);
}

// The defining property: the quasi-metric at zeta satisfies the (directed)
// triangle inequality; at zeta * 0.9 it generically does not when zeta > 0.
TEST_P(SeededProperty, QuasiMetricTriangleAtZeta) {
  geom::Rng rng = MakeRng();
  const DecaySpace space = spaces::LogUniformSpace(8, 1e3, rng, true);
  const double zeta = Metricity(space);
  if (zeta <= 0.0) return;
  EXPECT_LE(QuasiMetric(space, zeta).MaxTriangleViolation(), 1e-7);
  EXPECT_LE(QuasiMetric(space, zeta * 1.5).MaxTriangleViolation(), 1e-7)
      << "raising the exponent must keep the triangle inequality";
}

// Scaling all decays by c != 1 changes metricity (the inequality is not
// homogeneous); specifically, scaling *up* by c >= 1 can only weaken the
// constraints when decays start above 1 (b^s+c^s grows slower than ...);
// we pin the direction empirically: scale-up with decays >= 1 lowers zeta.
TEST_P(SeededProperty, ScalingUpLowersMetricityForSuperUnitSpaces) {
  geom::Rng rng = MakeRng();
  const DecaySpace space = spaces::LogUniformSpace(8, 100.0, rng, true);
  ASSERT_GE(space.MinDecay(), 1.0);
  const double zeta = Metricity(space);
  const double zeta_scaled = Metricity(space.Scaled(10.0));
  EXPECT_LE(zeta_scaled, zeta + 1e-9);
}

// Symmetrisation by min/max brackets the asymmetric space's metricity from
// neither side in general -- but both symmetrisations are valid spaces and
// their metricities are finite; pin validity.
TEST_P(SeededProperty, SymmetrizationsRemainValid) {
  geom::Rng rng = MakeRng();
  const DecaySpace space = spaces::LogUniformSpace(8, 1e3, rng, false);
  EXPECT_FALSE(space.SymmetrizedMin().Validate().has_value());
  EXPECT_FALSE(space.SymmetrizedMax().Validate().has_value());
  EXPECT_FALSE(space.SymmetrizedGeomMean().Validate().has_value());
  EXPECT_TRUE(space.SymmetrizedGeomMean().IsSymmetric(1e-12));
}

// gamma_z(r) can only shrink when r grows past every realised decay gap:
// with fewer admissible sender sets and the same weights, the max-sum
// decreases; the r-prefactor means gamma itself need not be monotone, so we
// check the max-sum form.
TEST_P(SeededProperty, FadingMaxSumAntitoneInR) {
  geom::Rng rng = MakeRng();
  const auto pts = geom::SampleUniform(12, 10.0, 10.0, rng);
  const DecaySpace space = DecaySpace::Geometric(pts, 3.0);
  const double s_small = FadingValueExact(space, 0, 2.0).gamma / 2.0;
  const double s_large = FadingValueExact(space, 0, 20.0).gamma / 20.0;
  EXPECT_GE(s_small + 1e-12, s_large);
}

// Guards from the greedy construction always guard, on asymmetric spaces
// too (the construction never used symmetry).
TEST_P(SeededProperty, GreedyGuardsGuardAsymmetric) {
  geom::Rng rng = MakeRng();
  const DecaySpace space = spaces::LogUniformSpace(10, 100.0, rng, false);
  for (int x = 0; x < space.size(); x += 3) {
    EXPECT_TRUE(GuardsNode(space, x, GreedyGuards(space, x)));
  }
}

// Packings found greedily are packings, and exact >= greedy, at every scale.
TEST_P(SeededProperty, PackingSandwich) {
  geom::Rng rng = MakeRng();
  const DecaySpace space = spaces::LogUniformSpace(12, 1e3, rng, true);
  std::vector<int> body;
  for (int i = 0; i < space.size(); ++i) body.push_back(i);
  for (const double t : {1.0, 10.0, 100.0}) {
    const auto greedy = GreedyPacking(space, body, t);
    EXPECT_TRUE(IsPacking(space, greedy, t));
    EXPECT_GE(PackingNumberExact(space, body, t),
              static_cast<int>(greedy.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, ::testing::Range(1, 13));

// Deterministic cross-checks that don't need seeds.

TEST(PropertyTest, MetricityOfTheorem3MatchesClosedForm) {
  // On the empty graph no triplet constrains the space (every two-leg path
  // around a non-edge pair has a leg of the same decay n), so zeta = 0; on
  // a star graph the hub gives non-adjacent leaf pairs a short two-leg path
  // (1/2, 1/2) around their decay-n separation, so zeta is exactly
  // TripletZeta(n, 1/2, 1/2).
  graph::Graph empty(6);
  EXPECT_DOUBLE_EQ(Metricity(spaces::Theorem3Instance(empty).space), 0.0);

  graph::Graph star(6);
  for (int v = 1; v < 6; ++v) star.AddEdge(0, v);
  const double zeta = Metricity(spaces::Theorem3Instance(star).space);
  EXPECT_NEAR(zeta, TripletZeta(6.0, 0.5, 0.5), 1e-6);
}

TEST(PropertyTest, LineMetricityWitnessIsConsecutive) {
  const DecaySpace space = spaces::LineSpace(10, 1.0, 3.0);
  const MetricityResult result = ComputeMetricity(space);
  EXPECT_NEAR(result.zeta, 3.0, 1e-6);
  // The witness triplet must be collinear-with-midpoint: z strictly between
  // x and y at equal distance (positions differ by the same gap).
  const int gap_xz = std::abs(result.arg_x - result.arg_z);
  const int gap_zy = std::abs(result.arg_z - result.arg_y);
  EXPECT_EQ(gap_xz, gap_zy);
}

TEST(PropertyTest, UniformSpaceFadingValue) {
  // All decays 1: for r < 1 every singleton set is r-separated... and any
  // pair too (1 > r); gamma_z(r) = r * (n-1) / 1.
  const DecaySpace space = spaces::UniformSpace(6);
  const FadingValue v = FadingValueExact(space, 0, 0.5);
  EXPECT_DOUBLE_EQ(v.gamma, 0.5 * 5.0);
  // For r >= 1 no sender is separated from the listener: gamma = 0.
  EXPECT_DOUBLE_EQ(FadingValueExact(space, 0, 1.0).gamma, 0.0);
}

TEST(PropertyTest, WelzlGuardsForAnchor) {
  // v_{-1} needs many guards (its independent set is everything), while in
  // the uniform space one guard suffices: the two extremes bracket reality.
  const DecaySpace welzl = spaces::WelzlSpace(6);
  const auto guards = GreedyGuards(welzl, 0);
  EXPECT_TRUE(GuardsNode(welzl, 0, guards));
  EXPECT_GE(guards.size(), 6u);
}

}  // namespace
}  // namespace decaylib::core
