#include "capacity/inductive_independence.h"

#include <gtest/gtest.h>

#include "core/decay_space.h"
#include "geom/samplers.h"
#include "sinr/power.h"
#include "spaces/constructions.h"
#include "spaces/samplers.h"

namespace decaylib::capacity {
namespace {

struct Fixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  Fixture(int n, double box, double alpha, std::uint64_t seed) : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{rng.Uniform(0.5, 1.5), 0.0}.Rotated(
                            rng.Uniform(0.0, 6.28)));
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, alpha);
  }
};

TEST(InductiveIndependenceTest, LowerAtMostUpper) {
  const Fixture fixture(16, 15.0, 3.0, 1);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.0, 0.0});
  const auto result = EstimateInductiveIndependence(
      system, sinr::UniformPower(system));
  EXPECT_LE(result.greedy_lower, result.upper + 1e-9);
  EXPECT_GE(result.greedy_lower, 0.0);
  EXPECT_GE(result.arg_link, 0);
}

TEST(InductiveIndependenceTest, SingleLinkIsZero) {
  const Fixture fixture(1, 10.0, 3.0, 2);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.0, 0.0});
  const auto result = EstimateInductiveIndependence(
      system, sinr::UniformPower(system));
  EXPECT_DOUBLE_EQ(result.greedy_lower, 0.0);
  EXPECT_DOUBLE_EQ(result.upper, 0.0);
}

TEST(InductiveIndependenceTest, WellSeparatedLinksHaveTinyRho) {
  // Links 100 units apart with unit lengths: exchanged affectance ~ 1e-6.
  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  for (int i = 0; i < 6; ++i) {
    pts.push_back({i * 100.0, 0.0});
    pts.push_back({i * 100.0 + 1.0, 0.0});
    links.push_back({2 * i, 2 * i + 1});
  }
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const sinr::LinkSystem system(space, links, {1.0, 0.0});
  const auto result = EstimateInductiveIndependence(
      system, sinr::UniformPower(system));
  EXPECT_LT(result.upper, 0.01);
}

TEST(InductiveIndependenceTest, GrowsWithObstruction) {
  // In fading metrics rho is O(1); shadowing (higher zeta) can only raise
  // the exchanged-affectance mass.  Compare clean vs heavily shadowed on
  // the same deployment.
  geom::Rng rng(3);
  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  for (int i = 0; i < 14; ++i) {
    const geom::Vec2 s{rng.Uniform(0.0, 25.0), rng.Uniform(0.0, 25.0)};
    pts.push_back(s);
    pts.push_back(s + geom::Vec2{1.0, 0.0});
    links.push_back({2 * i, 2 * i + 1});
  }
  const core::DecaySpace clean = core::DecaySpace::Geometric(pts, 3.0);
  geom::Rng shadow(4);
  const core::DecaySpace noisy =
      spaces::ShadowedGeometric(pts, 3.0, 10.0, shadow, true);
  const sinr::LinkSystem sys_clean(clean, links, {1.0, 0.0});
  const sinr::LinkSystem sys_noisy(noisy, links, {1.0, 0.0});
  const auto r_clean = EstimateInductiveIndependence(
      sys_clean, sinr::UniformPower(sys_clean));
  const auto r_noisy = EstimateInductiveIndependence(
      sys_noisy, sinr::UniformPower(sys_noisy));
  EXPECT_GT(r_noisy.upper, r_clean.upper * 0.5);  // not collapsing
  SUCCEED() << "clean " << r_clean.greedy_lower << " noisy "
            << r_noisy.greedy_lower;
}

TEST(InductiveIndependenceTest, Theorem3InstanceHasLargeRho) {
  // On the hardness construction, a link adjacent to many others exchanges
  // clamped affectance ~ its degree -- rho scales with the graph.
  graph::Graph g(8);
  for (int v = 1; v < 8; ++v) g.AddEdge(0, v);  // star: vertex 0 meets all
  const auto instance = spaces::Theorem3Instance(g);
  const sinr::LinkSystem system(instance.space,
                                sinr::LinksFromPairs(instance.links),
                                {1.0, 0.0});
  const auto result = EstimateInductiveIndependence(
      system, sinr::UniformPower(system));
  EXPECT_GE(result.upper, 1.0);
}

}  // namespace
}  // namespace decaylib::capacity
