#include "capacity/weighted.h"

#include <gtest/gtest.h>

#include "capacity/exact.h"
#include "core/decay_space.h"
#include "core/metricity.h"
#include "geom/rng.h"
#include "sinr/power.h"

namespace decaylib::capacity {
namespace {

struct Fixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;
  std::vector<double> weights;

  Fixture(int n, double box, std::uint64_t seed) : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{1.0, 0.0}.Rotated(rng.Uniform(0.0, 6.28)));
      links.push_back({2 * i, 2 * i + 1});
      weights.push_back(rng.Uniform(0.5, 10.0));
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

TEST(WeightedTest, TotalWeightSums) {
  const std::vector<double> weights{1.0, 2.0, 4.0};
  const std::vector<int> S{0, 2};
  EXPECT_DOUBLE_EQ(TotalWeight(S, weights), 5.0);
}

TEST(WeightedTest, GreedyIsFeasibleAndCountsWeight) {
  const Fixture fixture(14, 15.0, 1);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.0, 0.0});
  const auto result = WeightedGreedy(system, fixture.weights);
  EXPECT_TRUE(system.IsFeasible(result.selected,
                                sinr::UniformPower(system)));
  EXPECT_NEAR(result.weight, TotalWeight(result.selected, fixture.weights),
              1e-12);
  EXPECT_GT(result.weight, 0.0);
}

TEST(WeightedTest, Algorithm1VariantIsFeasible) {
  const Fixture fixture(14, 15.0, 2);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.0, 0.0});
  const double zeta = std::max(1.0, core::Metricity(fixture.space));
  const auto result = WeightedAlgorithm1(system, fixture.weights, zeta);
  EXPECT_TRUE(system.IsFeasible(result.selected,
                                sinr::UniformPower(system)));
}

TEST(WeightedTest, ExactDominatesHeuristics) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Fixture fixture(12, 10.0, seed);
    const sinr::LinkSystem system(fixture.space, fixture.links, {1.0, 0.0});
    const auto exact = ExactWeightedCapacity(system, fixture.weights);
    const auto greedy = WeightedGreedy(system, fixture.weights);
    const double zeta = std::max(1.0, core::Metricity(fixture.space));
    const auto alg1 = WeightedAlgorithm1(system, fixture.weights, zeta);
    EXPECT_GE(exact.weight, greedy.weight - 1e-9) << "seed " << seed;
    EXPECT_GE(exact.weight, alg1.weight - 1e-9) << "seed " << seed;
    EXPECT_TRUE(system.IsFeasible(exact.selected,
                                  sinr::UniformPower(system)));
  }
}

TEST(WeightedTest, UnitWeightsReduceToCardinality) {
  const Fixture fixture(12, 10.0, 7);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.0, 0.0});
  const std::vector<double> unit(12, 1.0);
  const auto weighted = ExactWeightedCapacity(system, unit);
  const auto unweighted = ExactCapacityUniform(system);
  EXPECT_DOUBLE_EQ(weighted.weight,
                   static_cast<double>(unweighted.size()));
}

TEST(WeightedTest, HeavyLinkDominatesWhenConflicting) {
  // Two crossed links that cannot coexist: exact must take the heavier one.
  core::DecaySpace space(4, 1.0);
  space.SetSymmetric(0, 1, 100.0);
  space.SetSymmetric(2, 3, 100.0);
  const sinr::LinkSystem system(space, {{0, 1}, {2, 3}}, {1.0, 0.0});
  const std::vector<double> weights{1.0, 5.0};
  const auto result = ExactWeightedCapacity(system, weights);
  EXPECT_EQ(result.selected, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(result.weight, 5.0);
}

TEST(WeightedTest, ZeroWeightLinksNeverSelected) {
  const Fixture fixture(8, 12.0, 9);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.0, 0.0});
  std::vector<double> weights(8, 0.0);
  weights[3] = 2.0;
  const auto greedy = WeightedGreedy(system, weights);
  EXPECT_EQ(greedy.selected, (std::vector<int>{3}));
  const auto exact = ExactWeightedCapacity(system, weights);
  EXPECT_EQ(exact.selected, (std::vector<int>{3}));
}

}  // namespace
}  // namespace decaylib::capacity
