#include "distributed/simulator.h"

#include <gtest/gtest.h>

#include "core/decay_space.h"
#include "distributed/contention.h"
#include "distributed/local_broadcast.h"
#include "distributed/regret_game.h"
#include "geom/samplers.h"
#include "sinr/kernel.h"
#include "sinr/power.h"
#include "spaces/constructions.h"

namespace decaylib::distributed {
namespace {

TEST(RoundSimulatorTest, LoneTransmitterHeardInRange) {
  const core::DecaySpace space = spaces::LineSpace(5, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 1e-6});
  const std::vector<int> tx{0};
  const auto heard = sim.Round(tx);
  EXPECT_EQ(heard[0], -1);  // transmitter hears nothing
  EXPECT_EQ(heard[1], 0);   // decay 1: strong
  EXPECT_EQ(heard[2], 0);   // decay 4
  // The far node at decay 16: SINR = (1/16)/1e-6 >> beta -- also heard.
  EXPECT_EQ(heard[4], 0);
}

TEST(RoundSimulatorTest, NoiseLimitsRange) {
  const core::DecaySpace space = spaces::LineSpace(5, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 0.05});
  // Range limit: P/(beta N) = 1/(2*0.05) = 10: nodes with decay <= 10 hear.
  EXPECT_DOUBLE_EQ(sim.MaxNoiseLimitedRange(), 10.0);
  const std::vector<int> tx{0};
  const auto heard = sim.Round(tx);
  EXPECT_EQ(heard[1], 0);    // decay 1
  EXPECT_EQ(heard[3], 0);    // decay 9
  EXPECT_EQ(heard[4], -1);   // decay 16: below threshold
}

TEST(RoundSimulatorTest, TwoNearbyTransmittersCollide) {
  const core::DecaySpace space = spaces::LineSpace(4, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 0.0});
  // Transmitters at 0 and 1; listener at 2: signals 1 (decay 1) and 1/4,
  // SINR = (1/1)/(1/4) = 4 >= 2 for node 1's signal -- node 2 hears node 1.
  // Listener 3: signals 1/4 (node 1, distance 2... wait node1->node3 decay 4)
  // and 1/9; SINR = (1/4)/(1/9) = 2.25 >= 2: hears node 1.
  const std::vector<int> tx{0, 1};
  const auto heard = sim.Round(tx);
  EXPECT_EQ(heard[2], 1);
  EXPECT_EQ(heard[3], 1);
}

TEST(RoundSimulatorTest, EqualSignalsCollide) {
  const core::DecaySpace space = spaces::UniformSpace(4, 2.0);
  const RoundSimulator sim(space, {1.0, 1.5, 0.0});
  const std::vector<int> tx{0, 1};
  // Listener 2 gets equal power from both: SINR = 1 < 1.5.
  const auto heard = sim.Round(tx);
  EXPECT_EQ(heard[2], -1);
  EXPECT_EQ(heard[3], -1);
}

TEST(RoundSimulatorTest, NeighborhoodByDecay) {
  const core::DecaySpace space = spaces::LineSpace(6, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 0.0});
  EXPECT_EQ(sim.Neighborhood(0, 4.5), (std::vector<int>{1, 2}));
}

TEST(LocalBroadcastTest, CompletesOnSmallInstance) {
  const core::DecaySpace space = spaces::LineSpace(8, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 1e-9});
  BroadcastConfig config;
  config.neighborhood_r = 4.5;  // two hops each side
  config.max_rounds = 20000;
  geom::Rng rng(1);
  const BroadcastResult result = RunLocalBroadcast(sim, config, rng);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.rounds, 0);
  EXPECT_GT(result.deliveries, 0);
  for (int remaining : result.deliveries_remaining) EXPECT_EQ(remaining, 0);
}

TEST(LocalBroadcastTest, FixedProbabilityAlsoCompletes) {
  const core::DecaySpace space = spaces::LineSpace(6, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 1e-9});
  BroadcastConfig config;
  config.policy = BroadcastPolicy::kFixedProbability;
  config.probability = 0.15;
  config.neighborhood_r = 4.5;
  config.max_rounds = 50000;
  geom::Rng rng(2);
  const BroadcastResult result = RunLocalBroadcast(sim, config, rng);
  EXPECT_TRUE(result.completed);
}

TEST(LocalBroadcastTest, DeterministicGivenSeed) {
  const core::DecaySpace space = spaces::LineSpace(6, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 1e-9});
  BroadcastConfig config;
  config.neighborhood_r = 4.5;
  geom::Rng rng_a(3);
  geom::Rng rng_b(3);
  const BroadcastResult a = RunLocalBroadcast(sim, config, rng_a);
  const BroadcastResult b = RunLocalBroadcast(sim, config, rng_b);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.transmissions, b.transmissions);
}

TEST(LocalBroadcastTest, RespectsRoundBudget) {
  const core::DecaySpace space = spaces::LineSpace(10, 1.0, 2.0);
  const RoundSimulator sim(space, {1.0, 2.0, 1e-9});
  BroadcastConfig config;
  config.neighborhood_r = 4.5;
  config.max_rounds = 1;
  geom::Rng rng(4);
  const BroadcastResult result = RunLocalBroadcast(sim, config, rng);
  EXPECT_LE(result.rounds, 1);
  EXPECT_FALSE(result.completed);
}

struct LinkFixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;

  explicit LinkFixture(int link_count, double spread = 10.0) : space(1) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < link_count; ++i) {
      pts.push_back({i * spread, 0.0});
      pts.push_back({i * spread + 1.0, 0.0});
      links.push_back({2 * i, 2 * i + 1});
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

TEST(ContentionTest, CompletesOnSparseInstance) {
  const LinkFixture fixture(6, 12.0);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  ContentionConfig config;
  geom::Rng rng(5);
  const ContentionResult result =
      RunContentionResolution(system, config, rng);
  EXPECT_TRUE(result.completed);
  for (int slot : result.success_slot) EXPECT_GE(slot, 0);
  EXPECT_LE(result.slots, config.max_slots);
}

TEST(ContentionTest, DenseInstanceTakesLonger) {
  const LinkFixture sparse(6, 30.0);
  const LinkFixture dense(6, 2.0);
  const sinr::LinkSystem sys_sparse(sparse.space, sparse.links, {2.0, 0.0});
  const sinr::LinkSystem sys_dense(dense.space, dense.links, {2.0, 0.0});
  ContentionConfig config;
  geom::Rng rng_a(6);
  geom::Rng rng_b(6);
  const auto slow = RunContentionResolution(sys_dense, config, rng_a);
  const auto fast = RunContentionResolution(sys_sparse, config, rng_b);
  ASSERT_TRUE(fast.completed);
  if (slow.completed) {
    EXPECT_GE(slow.slots, fast.slots);
  }
}

TEST(RegretGameTest, ConvergesToPositiveThroughput) {
  const LinkFixture fixture(8, 15.0);
  const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
  RegretConfig config;
  geom::Rng rng(7);
  const RegretResult result = RunRegretGame(system, config, rng);
  EXPECT_GT(result.average_successes, 1.0);  // well-separated: most succeed
  EXPECT_LE(result.average_successes, 8.0);
  ASSERT_EQ(result.final_transmit_probability.size(), 8u);
  // Well-separated links should learn to transmit nearly always.
  int eager = 0;
  for (double p : result.final_transmit_probability) {
    if (p > 0.8) ++eager;
  }
  EXPECT_GE(eager, 6);
}

TEST(RegretGameTest, CrowdedLinksBackOff) {
  // All links on top of each other: at most one can succeed per round, so
  // the average throughput must stay near 1 and transmit rates drop.
  std::vector<geom::Vec2> pts;
  std::vector<sinr::Link> links;
  geom::Rng place(8);
  for (int i = 0; i < 6; ++i) {
    const geom::Vec2 s{place.Uniform(0.0, 0.5), place.Uniform(0.0, 0.5)};
    pts.push_back(s);
    pts.push_back(s + geom::Vec2{1.0, 0.0});
    links.push_back({2 * i, 2 * i + 1});
  }
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  const sinr::LinkSystem system(space, links, {2.0, 0.0});
  RegretConfig config;
  config.rounds = 4000;
  config.measure_tail = 1000;
  geom::Rng rng(9);
  const RegretResult result = RunRegretGame(system, config, rng);
  EXPECT_LE(result.average_successes, 2.0);
}

// The cached path must reproduce the naive reference bit-for-bit at a fixed
// seed: identical randomness stream, identical success verdicts, identical
// tail averages and final transmit probabilities.
TEST(RegretGameTest, CachedPathBitIdenticalToNaive) {
  for (const double spread : {2.0, 15.0}) {  // crowded and well-separated
    const LinkFixture fixture(8, spread);
    const sinr::LinkSystem system(fixture.space, fixture.links, {2.0, 0.0});
    const sinr::KernelCache kernel(system, sinr::UniformPower(system));
    RegretConfig config;
    config.rounds = 800;
    config.measure_tail = 200;
    config.failure_penalty = 0.7;

    geom::Rng rng_naive(31);
    const RegretResult naive = RunRegretGameNaive(system, config, rng_naive);
    geom::Rng rng_cached(31);
    const RegretResult cached = RunRegretGame(kernel, config, rng_cached);
    EXPECT_TRUE(naive == cached);  // whole struct, covers future fields
    EXPECT_EQ(naive.average_successes, cached.average_successes);
    EXPECT_EQ(naive.transmit_rate, cached.transmit_rate);
    EXPECT_EQ(naive.final_transmit_probability,
              cached.final_transmit_probability);
    // The historical LinkSystem entry point delegates to the same path.
    geom::Rng rng_entry(31);
    const RegretResult entry = RunRegretGame(system, config, rng_entry);
    EXPECT_EQ(naive.average_successes, entry.average_successes);
    EXPECT_EQ(naive.final_transmit_probability,
              entry.final_transmit_probability);
  }
}

}  // namespace
}  // namespace decaylib::distributed
