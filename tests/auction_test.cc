#include "auction/auction.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/decay_space.h"
#include "geom/rng.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

namespace decaylib::auction {
namespace {

struct Fixture {
  core::DecaySpace space;
  std::vector<sinr::Link> links;
  std::vector<double> bids;

  Fixture(int n, double box, std::uint64_t seed) : space(1) {
    geom::Rng rng(seed);
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < n; ++i) {
      const geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
      pts.push_back(s);
      pts.push_back(s + geom::Vec2{1.0, 0.0}.Rotated(rng.Uniform(0.0, 6.28)));
      links.push_back({2 * i, 2 * i + 1});
      bids.push_back(rng.Uniform(1.0, 9.0));
    }
    space = core::DecaySpace::Geometric(pts, 3.0);
  }
};

TEST(AuctionTest, WinnersFormFeasibleSet) {
  const Fixture fixture(12, 14.0, 1);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.5, 0.0});
  const auto winners = DetermineWinners(system, fixture.bids);
  EXPECT_FALSE(winners.empty());
  EXPECT_TRUE(system.IsFeasible(winners, sinr::UniformPower(system)));
}

TEST(AuctionTest, ZeroBiddersLose) {
  const Fixture fixture(6, 12.0, 2);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.5, 0.0});
  std::vector<double> bids(6, 0.0);
  bids[2] = 3.0;
  const auto winners = DetermineWinners(system, bids);
  EXPECT_EQ(winners, (std::vector<int>{2}));
}

TEST(AuctionTest, PaymentsAreIndividuallyRational) {
  // Winners pay at most their bid; losers pay nothing.
  const Fixture fixture(10, 12.0, 3);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.5, 0.0});
  const auto result = RunAuction(system, fixture.bids, 1e-7);
  std::vector<char> is_winner(10, 0);
  for (int v : result.winners) is_winner[static_cast<std::size_t>(v)] = 1;
  for (int v = 0; v < 10; ++v) {
    if (is_winner[static_cast<std::size_t>(v)]) {
      EXPECT_LE(result.payments[static_cast<std::size_t>(v)],
                fixture.bids[static_cast<std::size_t>(v)] + 1e-4)
          << "winner " << v;
      EXPECT_GE(result.payments[static_cast<std::size_t>(v)], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(result.payments[static_cast<std::size_t>(v)], 0.0);
    }
  }
  EXPECT_LE(result.revenue, result.social_welfare + 1e-6);
}

TEST(AuctionTest, CriticalBidIsPivotal) {
  const Fixture fixture(8, 10.0, 4);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.5, 0.0});
  const auto winners = DetermineWinners(system, fixture.bids);
  ASSERT_FALSE(winners.empty());
  const int v = winners.front();
  const double critical = CriticalBid(system, fixture.bids, v, 1e-8);
  std::vector<double> trial = fixture.bids;

  trial[static_cast<std::size_t>(v)] = critical + 1e-4;
  auto w_hi = DetermineWinners(system, trial);
  EXPECT_TRUE(std::binary_search(w_hi.begin(), w_hi.end(), v));

  if (critical > 1e-4) {
    trial[static_cast<std::size_t>(v)] = critical - 1e-4;
    auto w_lo = DetermineWinners(system, trial);
    EXPECT_FALSE(std::binary_search(w_lo.begin(), w_lo.end(), v));
  }
}

TEST(AuctionTest, IsolatedBidderPaysNothing) {
  // A single link with no competition has critical bid ~ 0.
  core::DecaySpace space(2, 5.0);
  space.SetSymmetric(0, 1, 2.0);
  const sinr::LinkSystem system(space, {{0, 1}}, {1.5, 0.0});
  const std::vector<double> bids{4.0};
  const auto result = RunAuction(system, bids, 1e-8);
  ASSERT_EQ(result.winners, (std::vector<int>{0}));
  EXPECT_NEAR(result.payments[0], 0.0, 1e-6);
}

TEST(AuctionTest, BlockedPairChargesCompetitorsBid) {
  // Two crossed links, only one can win: the winner's critical bid is the
  // loser's bid (second-price flavour).
  core::DecaySpace space(4, 1.0);
  space.SetSymmetric(0, 1, 100.0);
  space.SetSymmetric(2, 3, 100.0);
  const sinr::LinkSystem system(space, {{0, 1}, {2, 3}}, {1.0, 0.0});
  const std::vector<double> bids{7.0, 3.0};
  const auto result = RunAuction(system, bids, 1e-8);
  EXPECT_EQ(result.winners, (std::vector<int>{0}));
  EXPECT_NEAR(result.payments[0], 3.0, 1e-4);
}

// The cached mechanism is bit-exact against the naive reference: winner
// sets, critical bids, payments and revenue are identical doubles, with
// and without ambient noise (noise exercises CanOvercomeNoise and the
// c_v != beta noise factors).
TEST(AuctionTest, CachedPathBitExactVsNaive) {
  for (const double noise : {0.0, 0.02}) {
    for (const std::uint64_t seed : {7ull, 8ull, 9ull, 10ull}) {
      const Fixture fixture(12, 12.0, seed);
      const sinr::LinkSystem system(fixture.space, fixture.links,
                                    {1.5, noise});
      const sinr::KernelCache kernel(system, sinr::UniformPower(system));

      const auto naive_winners =
          DetermineWinnersNaive(system, fixture.bids);
      EXPECT_EQ(DetermineWinners(kernel, fixture.bids), naive_winners)
          << "noise=" << noise << " seed=" << seed;
      EXPECT_EQ(DetermineWinners(system, fixture.bids), naive_winners);

      for (int v = 0; v < 12; v += 5) {
        EXPECT_EQ(CriticalBid(kernel, fixture.bids, v, 1e-7),
                  CriticalBidNaive(system, fixture.bids, v, 1e-7))
            << "noise=" << noise << " seed=" << seed << " link=" << v;
      }

      const AuctionResult cached = RunAuction(kernel, fixture.bids, 1e-6);
      const AuctionResult naive = RunAuctionNaive(system, fixture.bids, 1e-6);
      EXPECT_EQ(cached.winners, naive.winners);
      ASSERT_EQ(cached.payments.size(), naive.payments.size());
      for (std::size_t v = 0; v < cached.payments.size(); ++v) {
        EXPECT_EQ(cached.payments[v], naive.payments[v]) << "link " << v;
      }
      EXPECT_EQ(cached.social_welfare, naive.social_welfare);
      EXPECT_EQ(cached.revenue, naive.revenue);
    }
  }
}

TEST(AuctionTest, ResumedBisectionBitExactVsRescan) {
  // CriticalBid resumes the greedy admission state from the probed link's
  // bid-order position instead of replaying the rule from scratch.  The
  // probe sequence and every admission decision must match the rescanning
  // reference, so the payment is the identical double -- for every link,
  // across noise regimes, seeds, and tolerances.
  for (const double noise : {0.0, 0.02}) {
    for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
      const Fixture fixture(16, 14.0, seed);
      const sinr::LinkSystem system(fixture.space, fixture.links,
                                    {1.5, noise});
      const sinr::KernelCache kernel(system, sinr::UniformPower(system));
      for (const double tol : {1e-4, 1e-7}) {
        for (int v = 0; v < 16; ++v) {
          EXPECT_EQ(CriticalBid(kernel, fixture.bids, v, tol),
                    CriticalBidRescan(kernel, fixture.bids, v, tol))
              << "noise=" << noise << " seed=" << seed << " link=" << v
              << " tol=" << tol;
        }
      }
    }
  }
}

TEST(AuctionTest, ResumedBisectionHandlesTiedBids) {
  // Equal bids stress the insertion-position mapping: the probed link must
  // land at the same position the rescan path's sort gives it, or the two
  // disagree on the admission prefix.
  const Fixture base(10, 12.0, 31);
  std::vector<double> bids = base.bids;
  bids[3] = bids[7];  // exact tie
  bids[1] = bids[5];
  const sinr::LinkSystem system(base.space, base.links, {1.5, 0.0});
  const sinr::KernelCache kernel(system, sinr::UniformPower(system));
  for (int v = 0; v < 10; ++v) {
    EXPECT_EQ(CriticalBid(kernel, bids, v, 1e-7),
              CriticalBidRescan(kernel, bids, v, 1e-7))
        << "link " << v;
  }
}

TEST(AuctionTest, TruthfulnessSpotCheck) {
  // For sampled alternative bids b' != true value v, utility(truth) >=
  // utility(b') under critical payments (monotone allocation + critical
  // pricing => truthful).
  const Fixture fixture(8, 10.0, 5);
  const sinr::LinkSystem system(fixture.space, fixture.links, {1.5, 0.0});
  const int bidder = 2;
  const double value = fixture.bids[static_cast<std::size_t>(bidder)];

  auto utility = [&](double bid) {
    std::vector<double> bids = fixture.bids;
    bids[static_cast<std::size_t>(bidder)] = bid;
    const auto result = RunAuction(system, bids, 1e-8);
    const bool won = std::binary_search(result.winners.begin(),
                                        result.winners.end(), bidder);
    return won ? value - result.payments[static_cast<std::size_t>(bidder)]
               : 0.0;
  };

  const double truthful = utility(value);
  for (const double alt : {0.5, 2.0, 4.0, 8.0, 16.0}) {
    EXPECT_GE(truthful, utility(alt) - 1e-3) << "deviation to " << alt;
  }
}

}  // namespace
}  // namespace decaylib::auction
