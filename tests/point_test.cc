#include "geom/point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace decaylib::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (Vec2{0.5, 1.0}));
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.Cross(a), -1.0);
}

TEST(Vec2Test, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.NormSq(), 25.0);
  const Vec2 unit = v.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-12);
  EXPECT_EQ((Vec2{}.Normalized()), (Vec2{}));
}

TEST(Vec2Test, RotationQuarterTurn) {
  const Vec2 v{1.0, 0.0};
  const Vec2 r = v.Rotated(M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2Test, AngleMeasuredFromXAxis) {
  EXPECT_NEAR((Vec2{1.0, 1.0}).Angle(), M_PI / 4.0, 1e-12);
  EXPECT_NEAR((Vec2{-1.0, 0.0}).Angle(), M_PI, 1e-12);
}

TEST(Vec3Test, BasicOps) {
  const Vec3 a{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(a.Norm(), 3.0);
  EXPECT_DOUBLE_EQ(Distance(Vec3{0, 0, 0}, a), 3.0);
  EXPECT_EQ((a + a), (Vec3{2.0, 4.0, 4.0}));
}

TEST(SegmentTest, LengthAndMidpoint) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.Length(), 4.0);
  EXPECT_EQ(s.Midpoint(), (Vec2{2.0, 0.0}));
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_TRUE(SegmentsIntersect(a, b));
}

TEST(SegmentsIntersectTest, DisjointParallel) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{0.0, 1.0}, {2.0, 1.0}};
  EXPECT_FALSE(SegmentsIntersect(a, b));
}

TEST(SegmentsIntersectTest, TouchingEndpointCounts) {
  const Segment a{{0.0, 0.0}, {1.0, 1.0}};
  const Segment b{{1.0, 1.0}, {2.0, 0.0}};
  EXPECT_TRUE(SegmentsIntersect(a, b));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{1.0, 0.0}, {3.0, 0.0}};
  EXPECT_TRUE(SegmentsIntersect(a, b));
}

TEST(SegmentsIntersectTest, NearMissDoesNotCount) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{0.5, 0.001}, {0.5, 1.0}};
  EXPECT_FALSE(SegmentsIntersect(a, b));
}

TEST(SegmentIntersectionTest, CrossingPoint) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  const auto p = SegmentIntersection(a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(SegmentIntersectionTest, ParallelReturnsNothing) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{0.0, 1.0}, {2.0, 1.0}};
  EXPECT_FALSE(SegmentIntersection(a, b).has_value());
}

TEST(SegmentIntersectionTest, NonOverlappingLinesReturnsNothing) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{3.0, -1.0}, {3.0, 1.0}};
  EXPECT_FALSE(SegmentIntersection(a, b).has_value());
}

TEST(DistancePointSegmentTest, ProjectionInside) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(DistancePointSegment({2.0, 3.0}, s), 3.0);
}

TEST(DistancePointSegmentTest, ClampsToEndpoints) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(DistancePointSegment({-3.0, 4.0}, s), 5.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({7.0, 4.0}, s), 5.0);
}

TEST(DistancePointSegmentTest, DegenerateSegment) {
  const Segment s{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(DistancePointSegment({4.0, 5.0}, s), 5.0);
}

TEST(MirrorAcrossLineTest, MirrorAcrossXAxis) {
  const Segment s{{0.0, 0.0}, {1.0, 0.0}};
  const Vec2 m = MirrorAcrossLine({2.0, 3.0}, s);
  EXPECT_NEAR(m.x, 2.0, 1e-12);
  EXPECT_NEAR(m.y, -3.0, 1e-12);
}

TEST(MirrorAcrossLineTest, PointOnLineIsFixed) {
  const Segment s{{0.0, 0.0}, {2.0, 2.0}};
  const Vec2 m = MirrorAcrossLine({1.0, 1.0}, s);
  EXPECT_NEAR(m.x, 1.0, 1e-12);
  EXPECT_NEAR(m.y, 1.0, 1e-12);
}

TEST(MirrorAcrossLineTest, MirrorTwiceIsIdentity) {
  const Segment s{{0.0, 1.0}, {3.0, 5.0}};
  const Vec2 p{2.0, -1.0};
  const Vec2 twice = MirrorAcrossLine(MirrorAcrossLine(p, s), s);
  EXPECT_NEAR(twice.x, p.x, 1e-12);
  EXPECT_NEAR(twice.y, p.y, 1e-12);
}

}  // namespace
}  // namespace decaylib::geom
