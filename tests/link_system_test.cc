#include "sinr/link_system.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/decay_space.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "sinr/power.h"

namespace decaylib::sinr {
namespace {

// A small hand-built instance: two parallel links on a line.
//   s0 = node0 at 0, r0 = node1 at 1, s1 = node2 at 10, r1 = node3 at 11.
core::DecaySpace TwoLinkSpace(double alpha) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {10, 0}, {11, 0}};
  return core::DecaySpace::Geometric(pts, alpha);
}

std::vector<Link> TwoLinks() { return {{0, 1}, {2, 3}}; }

TEST(LinkSystemTest, LinkAndCrossDecay) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  EXPECT_DOUBLE_EQ(system.LinkDecay(0), 1.0);
  EXPECT_DOUBLE_EQ(system.LinkDecay(1), 1.0);
  EXPECT_DOUBLE_EQ(system.CrossDecay(0, 1), 121.0);  // s0 -> r1 distance 11
  EXPECT_DOUBLE_EQ(system.CrossDecay(1, 0), 81.0);   // s1 -> r0 distance 9
}

TEST(LinkSystemTest, NoiselessNoiseFactorIsBeta) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  EXPECT_DOUBLE_EQ(system.NoiseFactor(0, power), 2.0);
}

TEST(LinkSystemTest, NoiseFactorExceedsBetaWithNoise) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.1});
  const PowerAssignment power = UniformPower(system);
  EXPECT_TRUE(system.CanOvercomeNoise(0, power));
  EXPECT_GT(system.NoiseFactor(0, power), 2.0);
}

TEST(LinkSystemTest, CannotOvercomeHugeNoise) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 10.0});
  const PowerAssignment power = UniformPower(system);
  EXPECT_FALSE(system.CanOvercomeNoise(0, power));
}

TEST(LinkSystemTest, AffectanceSelfIsZero) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  EXPECT_DOUBLE_EQ(system.Affectance(0, 0, power), 0.0);
}

TEST(LinkSystemTest, AffectanceFormula) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  // a_1(0) = min(1, beta * f_00 / f_10) = 2 * 1 / 81.
  EXPECT_NEAR(system.Affectance(1, 0, power), 2.0 / 81.0, 1e-12);
  EXPECT_NEAR(system.Affectance(0, 1, power), 2.0 / 121.0, 1e-12);
}

TEST(LinkSystemTest, AffectanceClampsAtOne) {
  // Two overlapping links: cross decay smaller than link decay.
  core::DecaySpace space(4);
  space.SetSymmetric(0, 1, 100.0);  // long link
  space.SetSymmetric(2, 3, 100.0);
  space.SetSymmetric(0, 3, 1.0);    // s0 right next to r1
  space.SetSymmetric(2, 1, 1.0);
  space.SetSymmetric(0, 2, 50.0);
  space.SetSymmetric(1, 3, 50.0);
  const LinkSystem system(space, TwoLinks(), {1.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  EXPECT_DOUBLE_EQ(system.Affectance(1, 0, power), 1.0);
}

TEST(LinkSystemTest, SinrMatchesHandComputation) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  const std::vector<int> both{0, 1};
  // Signal 1/1; interference from l1 at r0: 1/81.
  EXPECT_NEAR(system.Sinr(0, both, power), 81.0, 1e-9);
}

TEST(LinkSystemTest, SinrInfiniteWhenAlone) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  const std::vector<int> only{0};
  EXPECT_TRUE(std::isinf(system.Sinr(0, only, power)));
}

TEST(LinkSystemTest, FeasibilityBothForms) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  const std::vector<int> both{0, 1};
  EXPECT_TRUE(system.IsFeasible(both, power));
  EXPECT_TRUE(system.IsSinrFeasible(both, power));
}

// Property sweep: the (unclamped) affectance form and the raw SINR form are
// algebraically equivalent whenever every link can overcome noise.
class AffectanceSinrEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AffectanceSinrEquivalence, AgreeOnRandomInstances) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int links = 6;
  const auto pts = geom::SampleUniform(2 * links, 12.0, 12.0, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(pts, 3.0);
  std::vector<Link> link_list;
  for (int i = 0; i < links; ++i) link_list.push_back({2 * i, 2 * i + 1});
  const LinkSystem system(space, link_list, {1.5, 1e-6});
  const PowerAssignment power = UniformPower(system);

  // Random subset.
  std::vector<int> S;
  for (int v = 0; v < links; ++v) {
    if (rng.Chance(0.6)) S.push_back(v);
  }
  bool any_noise_fail = false;
  for (int v : S) {
    if (!system.CanOvercomeNoise(v, power)) any_noise_fail = true;
  }
  if (!any_noise_fail) {
    EXPECT_EQ(system.IsFeasible(S, power), system.IsSinrFeasible(S, power));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffectanceSinrEquivalence,
                         ::testing::Range(1, 26));

TEST(LinkSystemTest, KFeasibilityNests) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const PowerAssignment power = UniformPower(system);
  const std::vector<int> both{0, 1};
  EXPECT_TRUE(system.IsKFeasible(both, 1.0, power));
  // In-affectance is ~2/81 < 1/30, so even 30-feasible.
  EXPECT_TRUE(system.IsKFeasible(both, 30.0, power));
  EXPECT_FALSE(system.IsKFeasible(both, 100.0, power));
}

TEST(LinkSystemTest, LinkLengthAndDistance) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  EXPECT_NEAR(system.LinkLength(0, 2.0), 1.0, 1e-12);
  // min over the 4 endpoint pairs: r0 -> s1 has distance 9 (decay 81).
  EXPECT_NEAR(system.LinkDistance(0, 1, 2.0), 9.0, 1e-12);
}

TEST(LinkSystemTest, SeparationPredicates) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  const std::vector<int> other{1};
  // Link length 1, distance 9: separated for eta <= 9 only.
  EXPECT_TRUE(system.IsSeparatedFrom(0, other, 8.9, 2.0));
  EXPECT_FALSE(system.IsSeparatedFrom(0, other, 9.1, 2.0));
  const std::vector<int> both{0, 1};
  EXPECT_TRUE(system.IsSeparatedSet(both, 5.0, 2.0));
}

TEST(LinkSystemTest, OrderByDecaySorted) {
  core::DecaySpace space(6, 100.0);
  space.Set(0, 1, 9.0);
  space.Set(2, 3, 1.0);
  space.Set(4, 5, 4.0);
  const LinkSystem system(space, {{0, 1}, {2, 3}, {4, 5}}, {1.0, 0.0});
  EXPECT_EQ(system.OrderByDecay(), (std::vector<int>{1, 2, 0}));
}

TEST(LinkSystemTest, AllLinksHelper) {
  const core::DecaySpace space = TwoLinkSpace(2.0);
  const LinkSystem system(space, TwoLinks(), {2.0, 0.0});
  EXPECT_EQ(AllLinks(system), (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace decaylib::sinr
