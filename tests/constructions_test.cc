#include "spaces/constructions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/metricity.h"
#include "geom/rng.h"
#include "geom/samplers.h"
#include "graph/generators.h"
#include "spaces/samplers.h"

namespace decaylib::spaces {
namespace {

TEST(StarSpaceTest, DistancesMatchDefinition) {
  const int k = 5;
  const double r = 2.0;
  const core::DecaySpace space = StarSpace(k, r);
  ASSERT_EQ(space.size(), k + 2);
  EXPECT_DOUBLE_EQ(space(0, 1), r);          // center to near leaf
  EXPECT_DOUBLE_EQ(space(0, 2), 25.0);       // center to far leaf, k^2
  EXPECT_DOUBLE_EQ(space(1, 2), r + 25.0);   // near to far via center
  EXPECT_DOUBLE_EQ(space(2, 3), 50.0);       // far to far via center
  EXPECT_TRUE(space.IsSymmetric());
}

TEST(StarSpaceTest, IsAMetric) {
  // Shortest-path distances on a star form a metric: zeta <= 1.
  const core::DecaySpace space = StarSpace(6, 3.0);
  EXPECT_LE(core::Metricity(space), 1.0 + 1e-9);
}

TEST(WelzlSpaceTest, DistancesMatchDefinition) {
  const double eps = 0.25;
  const core::DecaySpace space = WelzlSpace(4, eps);
  ASSERT_EQ(space.size(), 6);
  EXPECT_DOUBLE_EQ(space(0, 1), 1.0 - eps);   // d(v_{-1}, v_0) = 2^0 - eps
  EXPECT_DOUBLE_EQ(space(0, 5), 16.0 - eps);  // d(v_{-1}, v_4)
  EXPECT_DOUBLE_EQ(space(1, 5), 16.0);        // d(v_0, v_4) = 2^4
  EXPECT_DOUBLE_EQ(space(2, 3), 4.0);         // d(v_1, v_2) = 2^2
  EXPECT_TRUE(space.IsSymmetric());
}

TEST(WelzlSpaceTest, NearMetric) {
  // The construction is a metric (for eps <= 1/4): metricity at most 1.
  EXPECT_LE(core::Metricity(WelzlSpace(6)), 1.0 + 1e-9);
}

TEST(UniformSpaceTest, AllDecaysEqual) {
  const core::DecaySpace space = UniformSpace(4, 3.5);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(space(i, j), 3.5);
      }
    }
  }
}

TEST(Theorem3InstanceTest, GainsMatchConstruction) {
  graph::Graph g(4);
  g.AddEdge(0, 1);
  const LinkInstance instance = Theorem3Instance(g);
  ASSERT_EQ(instance.links.size(), 4u);
  ASSERT_EQ(instance.space.size(), 8);
  const auto [s0, r0] = instance.links[0];
  const auto [s1, r1] = instance.links[1];
  const auto [s2, r2] = instance.links[2];
  EXPECT_DOUBLE_EQ(instance.space(s0, r0), 1.0);   // unit decay link
  EXPECT_DOUBLE_EQ(instance.space(s0, r1), 0.5);   // edge: gain 2
  EXPECT_DOUBLE_EQ(instance.space(s1, r0), 0.5);   // symmetric edge
  EXPECT_DOUBLE_EQ(instance.space(s0, r2), 4.0);   // non-edge: gain 1/n
  EXPECT_DOUBLE_EQ(instance.space(s2, r0), 4.0);
}

TEST(Theorem3InstanceTest, MetricityAtMostLgSpread) {
  geom::Rng rng(1);
  const graph::Graph g = graph::RandomGnp(8, 0.4, rng);
  const LinkInstance instance = Theorem3Instance(g);
  // Decay spread is 2 / (1/n) = 2n; zeta <= lg(2n) (remark in Appendix A).
  const double zeta = core::Metricity(instance.space);
  EXPECT_LE(zeta, std::log2(2.0 * 8.0) + 1e-6);
  EXPECT_GT(zeta, 1.0);  // far from metric
}

TEST(Theorem6InstanceTest, GainsMatchConstruction) {
  graph::Graph g(5);
  g.AddEdge(0, 1);
  const double alpha = 3.0;   // alpha' = 2
  const double delta = 0.25;
  const LinkInstance instance = Theorem6Instance(g, alpha, delta);
  const double n_ap = std::pow(5.0, 2.0);   // n^{alpha'} = 25
  const auto [s0, r0] = instance.links[0];
  const auto [s1, r1] = instance.links[1];
  const auto [s2, r2] = instance.links[2];
  EXPECT_DOUBLE_EQ(instance.space(s0, r0), n_ap);             // same link
  EXPECT_DOUBLE_EQ(instance.space(s0, r1), n_ap - delta);     // edge
  EXPECT_DOUBLE_EQ(instance.space(s0, r2), std::pow(5.0, 3)); // non-edge
  EXPECT_DOUBLE_EQ(instance.space(s0, s1), 1.0);              // within line
  EXPECT_DOUBLE_EQ(instance.space(s0, s2), 4.0);              // |0-2|^2
  EXPECT_DOUBLE_EQ(instance.space(r0, r2), 4.0);
}

TEST(Theorem6InstanceTest, PhiFactorIsOrderN) {
  geom::Rng rng(2);
  const int n = 8;
  const graph::Graph g = graph::RandomGnp(n, 0.5, rng);
  const LinkInstance instance = Theorem6Instance(g, 2.0);
  const core::PhiResult phi = core::ComputePhi(instance.space);
  // Appendix C: f_ac <= 2n * max(f_ab, f_bc) for all triplets used, so the
  // relaxed-triangle factor is O(n).
  EXPECT_LE(phi.phi_factor, 2.0 * n + 1e-9);
  EXPECT_GE(phi.phi_factor, 1.0);
}

TEST(ZetaPhiTripleTest, ValuesMatch) {
  const core::DecaySpace space = ZetaPhiTriple(16.0);
  EXPECT_DOUBLE_EQ(space(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(space(1, 2), 16.0);
  EXPECT_DOUBLE_EQ(space(0, 2), 32.0);
  EXPECT_TRUE(space.IsSymmetric());
}

TEST(LineSpaceTest, DecaysArePowersOfDistance) {
  const core::DecaySpace space = LineSpace(4, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(space(0, 1), 8.0);    // (2)^3
  EXPECT_DOUBLE_EQ(space(0, 3), 216.0);  // (6)^3
}

TEST(SamplersTest, ShadowedGeometricSymmetricMode) {
  geom::Rng rng(3);
  const auto pts = geom::SampleUniform(10, 5.0, 5.0, rng);
  geom::Rng rng2(4);
  const core::DecaySpace space = ShadowedGeometric(pts, 3.0, 6.0, rng2, true);
  EXPECT_TRUE(space.IsSymmetric());
  EXPECT_FALSE(space.Validate().has_value());
}

TEST(SamplersTest, ShadowedGeometricAsymmetricMode) {
  geom::Rng rng(5);
  const auto pts = geom::SampleUniform(10, 5.0, 5.0, rng);
  geom::Rng rng2(6);
  const core::DecaySpace space = ShadowedGeometric(pts, 3.0, 6.0, rng2, false);
  EXPECT_FALSE(space.IsSymmetric(1e-9));
}

TEST(SamplersTest, LogUniformRange) {
  geom::Rng rng(7);
  const core::DecaySpace space = LogUniformSpace(12, 100.0, rng);
  EXPECT_GE(space.MinDecay(), 1.0);
  EXPECT_LE(space.MaxDecay(), 100.0);
}

TEST(SamplersTest, HyperGridMetricity) {
  // A k-dimensional grid with decay d^alpha still has zeta <= alpha
  // (collinear triplets exist along the axes, so it is close to alpha).
  const core::DecaySpace space = HyperGridSpace(3, 2, 2.5);
  ASSERT_EQ(space.size(), 9);
  EXPECT_NEAR(core::Metricity(space), 2.5, 1e-6);
}

}  // namespace
}  // namespace decaylib::spaces
