// decay_lint coverage: every rule firing and staying quiet on committed
// fixtures, the suppression grammar, and -- the gate that matters -- the real
// src/ tree passing clean.  The fixtures under tools/lint/fixtures/ are
// self-describing: a `decay-lint-path:` directive pins the label the
// path-scoped allowlists see, and `// expect: <rule> @ <line>` comments
// enumerate the exact findings the linter must produce (none for good_*).
#include "decay_lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path FixtureDir() {
  return fs::path(DECAYLIB_SOURCE_DIR) / "tools" / "lint" / "fixtures";
}

using RuleLine = std::pair<std::string, int>;

std::multiset<RuleLine> ExpectedFindings(const std::string& content) {
  std::multiset<RuleLine> expected;
  static const std::regex kExpectRe(R"(// expect: (\S+) @ (\d+))");
  for (auto it = std::sregex_iterator(content.begin(), content.end(),
                                      kExpectRe);
       it != std::sregex_iterator(); ++it) {
    expected.insert({(*it)[1].str(), std::stoi((*it)[2].str())});
  }
  return expected;
}

std::multiset<RuleLine> ActualFindings(
    const std::vector<decaylint::Finding>& findings) {
  std::multiset<RuleLine> actual;
  for (const decaylint::Finding& f : findings) actual.insert({f.rule, f.line});
  return actual;
}

std::string Render(const std::vector<decaylint::Finding>& findings) {
  std::string out;
  for (const decaylint::Finding& f : findings) {
    out += decaylint::FormatFinding(f) + "\n";
  }
  return out;
}

// Each fixture's findings must match its expect: manifest exactly -- same
// rules, same lines, nothing extra.  This is the per-rule demonstration the
// CI gate relies on: every rule provably fires, and every suppression
// mechanism provably suppresses.
TEST(DecayLint, FixturesMatchTheirManifests) {
  int fixtures = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(FixtureDir())) {
    if (entry.path().extension() != ".cc") continue;
    ++fixtures;
    const std::string content = ReadFile(entry.path());
    const std::vector<decaylint::Finding> findings =
        decaylint::LintContent(entry.path().filename().string(), content);
    EXPECT_EQ(ActualFindings(findings), ExpectedFindings(content))
        << "fixture " << entry.path().filename() << " produced:\n"
        << Render(findings);
    const bool is_good =
        entry.path().filename().string().rfind("good_", 0) == 0;
    if (is_good) {
      EXPECT_TRUE(findings.empty())
          << entry.path().filename() << " is a good_* fixture but fired:\n"
          << Render(findings);
    } else {
      EXPECT_FALSE(findings.empty())
          << entry.path().filename()
          << " is a bad_* fixture but produced no findings";
    }
  }
  // All five rules are covered by at least one bad_* fixture plus the three
  // good_* suppression/allowlist fixtures.
  EXPECT_GE(fixtures, 8);
}

// The real tree is the product: src/ must lint clean, or the ctest/CI gate
// (decay_lint --root src) would be red.
TEST(DecayLint, RealSourceTreePassesClean) {
  std::vector<decaylint::Finding> findings;
  std::string error;
  ASSERT_TRUE(decaylint::LintTree(
      (fs::path(DECAYLIB_SOURCE_DIR) / "src").string(), &findings, &error))
      << error;
  EXPECT_TRUE(findings.empty()) << Render(findings);
}

// Acceptance demo: deliberately inject an unordered-iteration feeding a
// signature accumulator and verify the gate catches it.  This is the exact
// bug class the determinism discipline exists for -- iteration order of an
// unordered container differing across standard libraries (or runs) would
// silently change SweepSignature.
TEST(DecayLint, InjectedUnorderedIterationIntoSignatureFails) {
  const std::string injected = R"cc(
#include <string>
#include <unordered_map>

std::string SweepSignature(const std::unordered_map<int, double>& cells) {
  std::unordered_map<int, double> acc = cells;
  std::string signature;
  for (const auto& [cell, value] : acc) signature += std::to_string(value);
  return signature;
}
)cc";
  const std::vector<decaylint::Finding> findings =
      decaylint::LintContent("src/sweep/sweep.cc", injected);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
}

// The remaining rules, exercised through an injected violation each, at a
// path where the rule is live.
TEST(DecayLint, InjectedViolationsPerRule) {
  struct Case {
    const char* label;
    const char* code;
    const char* rule;
  };
  const Case cases[] = {
      {"src/capacity/algorithm1.cc", "double f(double d) { return std::pow(d, 2.0); }",
       "exactness-pow"},
      {"src/graph/graph.cc", "void f() { std::printf(\"x\"); }", "status-io"},
      {"src/dynamics/queue_system.cc", "void f() { std::thread t([]{}); }",
       "naked-thread"},
      {"src/io/json.cc",
       "auto f() { return std::chrono::steady_clock::now(); }", "clock-read"},
  };
  for (const Case& c : cases) {
    const std::vector<decaylint::Finding> findings =
        decaylint::LintContent(c.label, c.code);
    ASSERT_EQ(findings.size(), 1u) << c.rule << ":\n" << Render(findings);
    EXPECT_EQ(findings[0].rule, c.rule);
  }
}

// The same constructs at their designated homes do not fire.
TEST(DecayLint, DesignatedHomesStayQuiet) {
  EXPECT_TRUE(decaylint::LintContent(
                  "src/sinr/farfield.cc",
                  "double f(double d, double a) { return std::pow(d, a); }")
                  .empty());
  EXPECT_TRUE(decaylint::LintContent(
                  "src/engine/batch_runner.cc",
                  "void f() { std::thread t([]{}); t.join(); }")
                  .empty());
  EXPECT_TRUE(decaylint::LintContent(
                  "src/obs/trace.cc",
                  "auto f() { return std::chrono::steady_clock::now(); }")
                  .empty());
  EXPECT_TRUE(decaylint::LintContent(
                  "src/engine/report.cc", "void f() { std::printf(\"t\"); }")
                  .empty());
}

// Comments and string literals never trigger rules; suppression comments
// only work as comments.
TEST(DecayLint, LexicalStrippingAndSuppressionGrammar) {
  EXPECT_TRUE(decaylint::LintContent("src/capacity/weighted.cc",
                                     "// std::pow is discussed here only\n"
                                     "/* printf(\"x\") */\n"
                                     "const char* s = \"std::abort()\";\n")
                  .empty());
  // Same-line and previous-line allow.
  EXPECT_TRUE(
      decaylint::LintContent(
          "src/capacity/weighted.cc",
          "double f(double d) { return std::pow(d, 2.0); }  "
          "// decay-lint: allow(exactness-pow) -- reason\n")
          .empty());
  EXPECT_TRUE(decaylint::LintContent(
                  "src/capacity/weighted.cc",
                  "// decay-lint: allow(exactness-pow) -- reason\n"
                  "double f(double d) { return std::pow(d, 2.0); }\n")
                  .empty());
  // An allow() for a different rule does not suppress.
  EXPECT_FALSE(decaylint::LintContent(
                   "src/capacity/weighted.cc",
                   "// decay-lint: allow(clock-read)\n"
                   "double f(double d) { return std::pow(d, 2.0); }\n")
                   .empty());
}

TEST(DecayLint, RuleCatalogueListsAllFiveRules) {
  const std::vector<decaylint::RuleInfo> rules = decaylint::Rules();
  std::set<std::string> ids;
  for (const decaylint::RuleInfo& r : rules) ids.insert(r.id);
  const std::set<std::string> expected = {
      "exactness-pow", "status-io", "unordered-iteration", "naked-thread",
      "clock-read"};
  EXPECT_EQ(ids, expected);
}

TEST(DecayLint, FormatFindingIsGrepAndEditorFriendly) {
  const decaylint::Finding f{"src/a.cc", 7, "status-io", "msg"};
  EXPECT_EQ(decaylint::FormatFinding(f), "src/a.cc:7: [status-io] msg");
}

}  // namespace
