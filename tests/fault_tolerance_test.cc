// Fault-tolerance layer tests: per-cell failure isolation and retry in the
// sweep runner, checkpoint/resume bit-exactness, spec hashing, aggregate
// numeric health, and the DL_CHECK backstops that stay aborts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "engine/batch_runner.h"
#include "engine/report.h"
#include "sweep/checkpoint.h"
#include "sweep/sweep.h"
#include "sweep/sweep_runner.h"

namespace decaylib::sweep {
namespace {

SweepSpec TinyGrid() {
  SweepSpec spec;
  spec.name = "ft";
  spec.base.name = "ft";
  spec.base.topology = "uniform";
  spec.base.links = 12;
  spec.base.instances = 2;
  spec.base.seed = 4242;
  spec.axes = {{"links", {10, 14}}, {"alpha", {2.5, 3.0}}};
  spec.tasks = {engine::TaskKind::kAlgorithm1, engine::TaskKind::kGreedyBaseline};
  return spec;
}

// A transient fault (first attempt of one cell) is absorbed by the retry:
// the sweep ends fully healthy and its signature equals the clean run's.
TEST(FaultToleranceTest, TransientFaultRetriedToCleanSignature) {
  const SweepSpec spec = TinyGrid();
  SweepConfig clean;
  clean.threads = 2;
  const SweepResult reference = SweepRunner(clean).Run(spec);
  const std::string sig = SweepSignature(reference);

  SweepConfig faulty = clean;
  faulty.fault.fail_cell = 1;
  faulty.fault.fail_attempts = 1;  // first attempt throws, second succeeds
  const SweepResult recovered = SweepRunner(faulty).Run(spec);

  EXPECT_EQ(recovered.cells_failed, 0);
  EXPECT_EQ(recovered.cells_retried, 1);
  ASSERT_EQ(recovered.cells.size(), 4u);
  EXPECT_EQ(recovered.cells[1].outcome.attempts, 2);
  EXPECT_TRUE(recovered.cells[1].outcome.ok);
  // Retried state is invisible: warm arenas from the failed attempt do not
  // perturb a single bit of any aggregate.
  EXPECT_EQ(SweepSignature(recovered), sig);
  EXPECT_EQ(SweepViolationCount(recovered), 0);
}

// A cell that fails every attempt is isolated: the rest of the grid
// completes, the failure is recorded with its diagnostic, and the whole
// outcome -- including the failed cell's signature line -- is deterministic
// under the thread count.
TEST(FaultToleranceTest, PermanentFaultIsolatedAndDeterministic) {
  const SweepSpec spec = TinyGrid();
  SweepConfig serial;
  serial.threads = 1;
  serial.fault.fail_cell = 2;
  serial.fault.fail_attempts = -1;  // every attempt fails
  SweepConfig pooled = serial;
  pooled.threads = 4;

  const SweepResult a = SweepRunner(serial).Run(spec);
  const SweepResult b = SweepRunner(pooled).Run(spec);

  ASSERT_EQ(a.cells.size(), 4u);
  EXPECT_EQ(a.cells_failed, 1);
  EXPECT_FALSE(a.cells[2].outcome.ok);
  EXPECT_EQ(a.cells[2].outcome.attempts, 2);  // default max_attempts
  EXPECT_NE(a.cells[2].outcome.error.find("injected fault"), std::string::npos)
      << a.cells[2].outcome.error;
  // The worker pool pins the failure to the instance that tripped it.
  EXPECT_NE(a.cells[2].outcome.error.find("instance 0"), std::string::npos)
      << a.cells[2].outcome.error;
  for (int i : {0, 1, 3}) {
    EXPECT_TRUE(a.cells[static_cast<std::size_t>(i)].outcome.ok) << i;
  }
  const std::string sig = SweepSignature(a);
  EXPECT_EQ(sig, SweepSignature(b));
  EXPECT_NE(sig.find("cell 2 failed"), std::string::npos);
  // Healthy cells are bit-identical to the clean run's cells.
  SweepConfig clean;
  clean.threads = 2;
  const SweepResult reference = SweepRunner(clean).Run(spec);
  for (int i : {0, 1, 3}) {
    const auto one = [](const SweepCellResult& cell) {
      return engine::AggregateSignature(std::span(&cell.result, 1));
    };
    EXPECT_EQ(one(a.cells[static_cast<std::size_t>(i)]),
              one(reference.cells[static_cast<std::size_t>(i)]))
        << i;
  }
}

// Whole-sweep input problems do not get per-cell treatment: an invalid
// spec is rejected up front as StatusError, before any kernel is built.
TEST(FaultToleranceTest, InvalidSweepSpecThrowsBeforeExecution) {
  SweepSpec bad = TinyGrid();
  bad.base.beta = 0.25;
  try {
    SweepRunner(SweepConfig{}).Run(bad);
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& e) {
    EXPECT_EQ(e.status().code(), core::StatusCode::kInvalidArgument);
    EXPECT_NE(e.status().message().find("beta"), std::string::npos)
        << e.status().message();
  }
}

// The sidecar document round-trips bit-exactly through its JSON text --
// including the +/-inf min/max sentinels of a count-0 summary, which is
// why sum/min/max travel as %.17g strings.
TEST(CheckpointTest, JsonRoundTripIsBitExact) {
  SweepCheckpoint doc;
  doc.sweep = "round \"trip\"";
  doc.spec_hash = "00c0ffee00c0ffee";
  doc.grid = 8;
  CheckpointCell cell;
  cell.index = 3;
  cell.attempts = 2;
  cell.instances = 5;
  engine::MetricSummary populated;
  populated.Add(0.1);
  populated.Add(1.0 / 3.0);
  populated.Add(-2.5e-300);
  engine::MetricSummary empty;  // count 0, min=+inf, max=-inf
  cell.aggregate = {{"alg1_size", populated}, {"never_recorded", empty}};
  doc.cells.push_back(cell);

  const std::string text = CheckpointToJson(doc);
  const core::StatusOr<SweepCheckpoint> back = CheckpointFromJson(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sweep, doc.sweep);
  EXPECT_EQ(back->spec_hash, doc.spec_hash);
  EXPECT_EQ(back->grid, doc.grid);
  ASSERT_EQ(back->cells.size(), 1u);
  const CheckpointCell& rc = back->cells[0];
  EXPECT_EQ(rc.index, 3);
  EXPECT_EQ(rc.attempts, 2);
  EXPECT_EQ(rc.instances, 5);
  ASSERT_EQ(rc.aggregate.size(), 2u);
  EXPECT_EQ(rc.aggregate[0].first, "alg1_size");
  EXPECT_EQ(rc.aggregate[0].second, populated);  // bitwise, via ==
  EXPECT_EQ(rc.aggregate[1].second, empty);
  EXPECT_TRUE(std::isinf(rc.aggregate[1].second.min));

  // And the file layer: save, exists, load, identical again.
  const std::string path = "FT_TEST_checkpoint.json";
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(SaveCheckpoint(path, doc).ok());
  EXPECT_TRUE(FileExists(path));
  const core::StatusOr<SweepCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(CheckpointToJson(*loaded), text);
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(CheckpointTest, MalformedSidecarIsIoErrorNotAbort) {
  const char* torn[] = {
      "",                                   // zero-byte file
      R"({"sweep":"x")",                    // truncated by the crash
      R"({"sweep":"x","cells":{}})",        // wrong kind for cells
      R"([1,2,3])",                         // not an object at all
  };
  for (const char* text : torn) {
    const core::StatusOr<SweepCheckpoint> doc = CheckpointFromJson(text);
    EXPECT_FALSE(doc.ok()) << text;
    EXPECT_EQ(doc.status().code(), core::StatusCode::kIoError) << text;
  }
  const core::StatusOr<SweepCheckpoint> missing =
      LoadCheckpoint("FT_TEST_no_such_file.json");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), core::StatusCode::kIoError);
}

// The spec hash pins a checkpoint to its sweep: any change to the base
// spec, the axes, or the task list must change the digest.
TEST(CheckpointTest, SpecHashCoversEveryIdentityField) {
  const SweepSpec spec = TinyGrid();
  const std::string hash = SweepSpecHash(spec);
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash, SweepSpecHash(spec));  // stable

  SweepSpec seed = spec;
  seed.base.seed += 1;
  SweepSpec axis_value = spec;
  axis_value.axes[1].values[0] = 2.75;
  SweepSpec axis_field = spec;
  axis_field.axes[1].field = "beta";
  SweepSpec tasks = spec;
  tasks.tasks.push_back(engine::TaskKind::kSchedule);
  SweepSpec dynamics = spec;
  dynamics.base.dynamics.lambda = 0.4;
  for (const SweepSpec& other :
       {seed, axis_value, axis_field, tasks, dynamics}) {
    EXPECT_NE(SweepSpecHash(other), hash) << other.name;
  }
}

// Halt mid-sweep (the simulated kill), then resume at different thread
// counts: the resumed runs restore the completed cells bit-exactly and the
// final signature equals an uninterrupted run's.
TEST(FaultToleranceTest, HaltThenResumeReproducesFreshSignature) {
  const SweepSpec spec = TinyGrid();
  const std::string path = "FT_TEST_resume_checkpoint.json";

  SweepConfig clean;
  clean.threads = 2;
  const std::string sig = SweepSignature(SweepRunner(clean).Run(spec));

  SweepConfig halted = clean;
  halted.checkpoint_path = path;
  halted.halt_after_cells = 2;
  const SweepResult partial = SweepRunner(halted).Run(spec);
  ASSERT_EQ(partial.cells.size(), 2u);

  // Snapshot the half-grid sidecar: each resume below rewrites the file to
  // the full grid, so it is restored between iterations.
  const core::StatusOr<SweepCheckpoint> half = LoadCheckpoint(path);
  ASSERT_TRUE(half.ok()) << half.status().ToString();
  ASSERT_EQ(half->cells.size(), 2u);

  for (const int threads : {2, 1, 4}) {
    ASSERT_TRUE(SaveCheckpoint(path, *half).ok());
    SweepConfig resume;
    resume.threads = threads;
    resume.checkpoint_path = path;
    resume.resume = true;
    const SweepResult resumed = SweepRunner(resume).Run(spec);
    EXPECT_EQ(resumed.cells_resumed, 2) << threads;
    EXPECT_EQ(resumed.cells_failed, 0) << threads;
    ASSERT_EQ(resumed.cells.size(), 4u) << threads;
    EXPECT_TRUE(resumed.cells[0].outcome.resumed) << threads;
    EXPECT_FALSE(resumed.cells[3].outcome.resumed) << threads;
    EXPECT_EQ(SweepSignature(resumed), sig) << threads;
  }

  // A resume of the now-complete sidecar executes nothing new.
  SweepConfig resume_all;
  resume_all.threads = 1;
  resume_all.checkpoint_path = path;
  resume_all.resume = true;
  const SweepResult replay = SweepRunner(resume_all).Run(spec);
  EXPECT_EQ(replay.cells_resumed, 4);
  EXPECT_EQ(SweepSignature(replay), sig);

  EXPECT_EQ(std::remove(path.c_str()), 0);
}

// Resuming someone else's grid is refused: the hashes differ, so Run
// throws kFailedPrecondition instead of splicing wrong results in.
TEST(FaultToleranceTest, ResumeRejectsCheckpointFromDifferentSpec) {
  const SweepSpec spec = TinyGrid();
  const std::string path = "FT_TEST_foreign_checkpoint.json";
  SweepConfig halted;
  halted.threads = 2;
  halted.checkpoint_path = path;
  halted.halt_after_cells = 1;
  (void)SweepRunner(halted).Run(spec);

  SweepSpec other = spec;
  other.base.seed += 99;
  SweepConfig resume = halted;
  resume.halt_after_cells = 0;
  resume.resume = true;
  try {
    SweepRunner(resume).Run(other);
    FAIL() << "expected StatusError";
  } catch (const core::StatusError& e) {
    EXPECT_EQ(e.status().code(), core::StatusCode::kFailedPrecondition);
    EXPECT_NE(e.status().message().find("different sweep spec"),
              std::string::npos)
        << e.status().message();
  }
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

// AggregateHealth: populated summaries must be finite; the +/-inf
// sentinels of a never-recorded metric are not an error.
TEST(FaultToleranceTest, AggregateHealthFlagsNonFinitePopulatedMetrics) {
  engine::ScenarioResult result;
  engine::MetricSummary good;
  good.Add(1.0);
  good.Add(2.5);
  engine::MetricSummary empty;  // count 0: inf sentinels allowed
  result.aggregate = {{"alg1_size", good}, {"never_recorded", empty}};
  EXPECT_TRUE(engine::AggregateHealth(result).ok());

  engine::MetricSummary poisoned = good;
  poisoned.sum = std::numeric_limits<double>::quiet_NaN();
  result.aggregate.emplace_back("queue_throughput", poisoned);
  const core::Status status = engine::AggregateHealth(result);
  EXPECT_EQ(status.code(), core::StatusCode::kNumericError);
  EXPECT_NE(status.message().find("queue_throughput"), std::string::npos)
      << status.message();
}

// Contract violations stay aborts: the recoverable layer must not soften
// programmer errors into per-cell failures.
TEST(FaultToleranceDeathTest, ProgrammerErrorsStillAbort) {
  // ExpandGrid requires a validated spec; an unknown axis field is API
  // misuse at that layer (ValidateSweepSpec is the input gate).
  SweepSpec bogus = TinyGrid();
  bogus.axes.push_back({"no_such_field", {1.0}});
  EXPECT_DEATH((void)ExpandGrid(bogus), "unknown sweep axis");

  // An arena span shorter than the worker pool is a wiring bug.
  std::vector<sinr::KernelArena> arenas(1);
  engine::BatchConfig config;
  config.threads = 2;
  config.arenas = std::span<sinr::KernelArena>(arenas);
  const engine::BatchRunner runner(config);
  engine::ScenarioSpec spec;
  spec.topology = "uniform";
  spec.links = 6;
  spec.instances = 2;
  EXPECT_DEATH((void)runner.RunOne(spec), "arena span");
}

}  // namespace
}  // namespace decaylib::sweep
