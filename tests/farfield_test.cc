// Property tests for the certified far-field kernel (sinr/farfield.h).
//
// Three contracts under test:
//  * the certificate itself -- for every queried in-affectance sum,
//    AffectanceLower <= exact <= AffectanceUpper with relative width at
//    most epsilon (plus the documented ~3e-9 fp guard), across topologies,
//    seeds, decay exponents and subset shapes;
//  * exactness anchoring -- the far-field exact expressions are
//    bit-identical to the dense KernelCache entries over the same
//    geometry (EXPECT_EQ on doubles, not EXPECT_NEAR), and at epsilon = 0
//    every far-field pipeline reproduces its dense counterpart verbatim;
//  * engine integration -- kernel_mode = kFarField at epsilon = 0 yields
//    the dense batch signature bit-for-bit, and ValidateScenarioSpec
//    rejects far-field specs whose decay is not a pure distance function.
#include "sinr/farfield.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "capacity/algorithm1.h"
#include "capacity/baselines.h"
#include "core/decay_space.h"
#include "engine/batch_runner.h"
#include "engine/scenario.h"
#include "geom/rng.h"
#include "scheduling/scheduler.h"
#include "sinr/kernel.h"
#include "sinr/power.h"

namespace decaylib::sinr {
namespace {

struct Deployment {
  std::vector<geom::Vec2> points;
  std::vector<Link> links;
};

// Planar constant-density deployment: link i = nodes (2i, 2i+1), receiver a
// short random offset from the sender.  `clustered` concentrates senders
// around a few hotspots, the far-field grid's worst case (many occupied
// cells near, few far).
Deployment MakeDeployment(int n, double box, bool clustered, geom::Rng& rng) {
  Deployment dep;
  std::vector<geom::Vec2> hubs;
  if (clustered) {
    for (int h = 0; h < 4; ++h) {
      hubs.push_back({rng.Uniform(0.0, box), rng.Uniform(0.0, box)});
    }
  }
  for (int i = 0; i < n; ++i) {
    geom::Vec2 s{rng.Uniform(0.0, box), rng.Uniform(0.0, box)};
    if (clustered) {
      const geom::Vec2& hub = hubs[static_cast<std::size_t>(i % 4)];
      s = hub + geom::Vec2{rng.Uniform(-1.5, 1.5), rng.Uniform(-1.5, 1.5)};
    }
    const double angle = rng.Uniform(0.0, 6.283185307179586);
    const double len = rng.Uniform(0.5, 1.5);
    dep.points.push_back(s);
    dep.points.push_back(s + geom::Vec2{len, 0.0}.Rotated(angle));
    dep.links.push_back({2 * i, 2 * i + 1});
  }
  return dep;
}

std::vector<int> RandomSubset(int n, double p, geom::Rng& rng) {
  std::vector<int> S;
  for (int v = 0; v < n; ++v) {
    if (rng.Chance(p)) S.push_back(v);
  }
  return S;
}

std::vector<int> AllLinks(int n) {
  std::vector<int> all;
  for (int v = 0; v < n; ++v) all.push_back(v);
  return all;
}

TEST(FarFieldCertificateTest, BoundsBracketExactWithinEpsilon) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    for (const double alpha : {2.5, 3.5}) {
      for (const bool clustered : {false, true}) {
        for (const double eps : {1e-2, 1e-3}) {
          geom::Rng rng(seed);
          const int n = 48;
          Deployment dep = MakeDeployment(n, 28.0, clustered, rng);
          const SinrConfig config{1.0, 0.0};
          const PowerAssignment power(static_cast<std::size_t>(n), 1.0);
          const FarFieldKernel ff(dep.points, dep.links, alpha, config, power,
                                  {eps, 4});
          SCOPED_TRACE("seed=" + std::to_string(seed) +
                       " alpha=" + std::to_string(alpha) +
                       " clustered=" + std::to_string(clustered) +
                       " eps=" + std::to_string(eps));
          geom::Rng sets(seed * 7 + 1);
          for (int round = 0; round < 6; ++round) {
            const std::vector<int> S = RandomSubset(n, 0.5, sets);
            for (int v = 0; v < n; v += 5) {
              const double exact = ff.InAffectanceRawExact(S, v);
              const auto bounds = ff.CertifiedInAffectance(S, v);
              EXPECT_LE(bounds.lower, exact);
              EXPECT_GE(bounds.upper, exact);
              // Relative width target plus the documented fp guard slack.
              EXPECT_LE(bounds.upper - bounds.lower,
                        eps * bounds.lower + 1e-8 * bounds.upper + 1e-300);
            }
          }
        }
      }
    }
  }
}

TEST(FarFieldCertificateTest, ExactExpressionsMatchDenseBitwise) {
  for (const std::uint64_t seed : {21u, 22u}) {
    for (const double alpha : {2.5, 3.0}) {
      geom::Rng rng(seed);
      const int n = 32;
      Deployment dep = MakeDeployment(n, 20.0, false, rng);
      const core::DecaySpace space =
          core::DecaySpace::Geometric(dep.points, alpha);
      const SinrConfig config{1.0, 0.0};
      const LinkSystem system(space, dep.links, config);
      const KernelCache dense(system, UniformPower(system));
      const FarFieldKernel ff(dep.points, dep.links, alpha, config,
                              UniformPower(system), {1e-3, 4});
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " alpha=" + std::to_string(alpha));
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(ff.LinkDecay(v), dense.LinkDecay(v));
        EXPECT_EQ(ff.CanOvercomeNoise(v), dense.CanOvercomeNoise(v));
        for (int w = 0; w < n; ++w) {
          EXPECT_EQ(ff.AffectanceExact(w, v), dense.AffectanceRaw(w, v));
        }
      }
      geom::Rng sets(seed + 100);
      const std::vector<int> S = RandomSubset(n, 0.6, sets);
      for (int v = 0; v < n; ++v) {
        double fold = 0.0;
        for (int w : S) fold += dense.AffectanceRaw(w, v);
        EXPECT_EQ(ff.InAffectanceRawExact(S, v), fold);
      }
    }
  }
}

TEST(FarFieldPipelineTest, EpsilonZeroBitIdenticalToDense) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    for (const double alpha : {2.5, 3.5}) {
      geom::Rng rng(seed);
      const int n = 40;
      Deployment dep = MakeDeployment(n, 24.0, seed % 2 == 1, rng);
      const core::DecaySpace space =
          core::DecaySpace::Geometric(dep.points, alpha);
      const SinrConfig config{1.0, 0.0};
      const LinkSystem system(space, dep.links, config);
      const KernelCache dense(system, UniformPower(system));
      const FarFieldKernel ff(dep.points, dep.links, alpha, config,
                              UniformPower(system), {0.0, 4});
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " alpha=" + std::to_string(alpha));

      const std::vector<int> all = AllLinks(n);
      EXPECT_EQ(FarFieldGreedyFeasible(ff, all),
                capacity::GreedyFeasible(dense, all));

      const double zeta = 3.0;
      const capacity::Algorithm1Result alg1 =
          capacity::RunAlgorithm1(dense, zeta);
      const FarFieldAlg1Result ff_alg1 = FarFieldRunAlgorithm1(ff, zeta);
      EXPECT_EQ(ff_alg1.admitted, alg1.admitted);
      EXPECT_EQ(ff_alg1.selected, alg1.selected);

      const scheduling::Schedule dense_sched = scheduling::ScheduleLinks(
          dense, zeta, scheduling::Extractor::kAlgorithm1, all);
      const FarFieldSchedule ff_sched = FarFieldScheduleLinks(ff, zeta);
      EXPECT_EQ(ff_sched.slots, dense_sched.slots);
      EXPECT_TRUE(FarFieldValidateSchedule(ff, ff_sched, all));
    }
  }
}

TEST(FarFieldPipelineTest, CertifiedDecisionsMatchDenseAtPositiveEpsilon) {
  // Random instances sit nowhere near the 1e-9 decision band, so certified
  // decisions at epsilon > 0 must reproduce the dense sets exactly even
  // though the certified sums are only epsilon-close.
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    geom::Rng rng(seed);
    const int n = 56;
    Deployment dep = MakeDeployment(n, 30.0, false, rng);
    const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
    const SinrConfig config{1.0, 0.0};
    const LinkSystem system(space, dep.links, config);
    const KernelCache dense(system, UniformPower(system));
    const FarFieldKernel ff(dep.points, dep.links, 3.0, config,
                            UniformPower(system), {1e-3, 4});
    SCOPED_TRACE("seed=" + std::to_string(seed));

    const std::vector<int> all = AllLinks(n);
    EXPECT_EQ(FarFieldGreedyFeasible(ff, all),
              capacity::GreedyFeasible(dense, all));
    const FarFieldAlg1Result ff_alg1 = FarFieldRunAlgorithm1(ff, 3.0);
    const capacity::Algorithm1Result alg1 = capacity::RunAlgorithm1(dense, 3.0);
    EXPECT_EQ(ff_alg1.admitted, alg1.admitted);
    EXPECT_EQ(ff_alg1.selected, alg1.selected);

    geom::Rng sets(seed + 5);
    for (int round = 0; round < 8; ++round) {
      const std::vector<int> S = RandomSubset(n, 0.4, sets);
      EXPECT_EQ(ff.IsFeasibleCertified(S), dense.IsFeasible(S));
    }
  }
}

TEST(FarFieldPipelineTest, NonUniformPowerFallsBackToExactPaths) {
  geom::Rng rng(51);
  const int n = 30;
  Deployment dep = MakeDeployment(n, 20.0, false, rng);
  const core::DecaySpace space = core::DecaySpace::Geometric(dep.points, 3.0);
  const SinrConfig config{1.0, 0.0};
  const LinkSystem system(space, dep.links, config);
  const PowerAssignment power = PowerLaw(system, 0.5);
  const KernelCache dense(system, power);
  const FarFieldKernel ff(dep.points, dep.links, 3.0, config, power,
                          {1e-3, 4});
  EXPECT_FALSE(ff.HasUniformPower());
  const std::vector<int> all = AllLinks(n);
  EXPECT_EQ(FarFieldGreedyFeasible(ff, all),
            capacity::GreedyFeasible(dense, all));
  for (int v = 0; v < n; ++v) {
    for (int w = 0; w < n; ++w) {
      EXPECT_EQ(ff.AffectanceExact(w, v), dense.AffectanceRaw(w, v));
    }
  }
}

TEST(FarFieldEngineTest, FarFieldModeAtEpsilonZeroMatchesDenseSignature) {
  engine::ScenarioSpec spec;
  spec.name = "farfield_engine";
  spec.topology = "uniform";
  spec.links = 16;
  spec.instances = 2;
  spec.seed = 777;
  const engine::BatchRunner runner({.threads = 2});

  engine::ScenarioSpec dense_spec = spec;
  dense_spec.kernel_mode = engine::KernelMode::kDense;
  engine::ScenarioSpec ff_spec = spec;
  ff_spec.kernel_mode = engine::KernelMode::kFarField;
  ff_spec.farfield_epsilon = 0.0;

  const std::vector<engine::ScenarioResult> dense =
      runner.Run(std::vector<engine::ScenarioSpec>{dense_spec});
  const std::vector<engine::ScenarioResult> farfield =
      runner.Run(std::vector<engine::ScenarioSpec>{ff_spec});
  EXPECT_EQ(engine::AggregateSignature(farfield),
            engine::AggregateSignature(dense));
}

TEST(FarFieldEngineTest, CertifiedModeAggregatesStayWithinEpsilon) {
  engine::ScenarioSpec spec;
  spec.name = "farfield_engine_eps";
  spec.topology = "uniform";
  spec.links = 20;
  spec.instances = 2;
  spec.seed = 778;
  const engine::BatchRunner runner({.threads = 1});

  engine::ScenarioSpec ff_spec = spec;
  ff_spec.kernel_mode = engine::KernelMode::kFarField;
  ff_spec.farfield_epsilon = 1e-3;

  const std::vector<engine::ScenarioResult> dense =
      runner.Run(std::vector<engine::ScenarioSpec>{spec});
  const std::vector<engine::ScenarioResult> farfield =
      runner.Run(std::vector<engine::ScenarioSpec>{ff_spec});
  ASSERT_EQ(dense.size(), farfield.size());
  ASSERT_EQ(dense[0].aggregate.size(), farfield[0].aggregate.size());
  for (std::size_t i = 0; i < dense[0].aggregate.size(); ++i) {
    const auto& [name, ds] = dense[0].aggregate[i];
    const auto& [fname, fs] = farfield[0].aggregate[i];
    EXPECT_EQ(name, fname);
    EXPECT_EQ(ds.count, fs.count) << name;
    EXPECT_NEAR(ds.sum, fs.sum,
                1e-3 * std::max(std::abs(ds.sum), 1.0))
        << name;
  }
}

TEST(FarFieldEngineTest, ValidationRejectsNonDistanceDecay) {
  engine::ScenarioSpec spec;
  spec.name = "bad_farfield";
  spec.topology = "uniform";
  spec.links = 8;
  spec.instances = 1;
  spec.kernel_mode = engine::KernelMode::kFarField;
  EXPECT_TRUE(engine::ValidateScenarioSpec(spec).ok());

  engine::ScenarioSpec shadowed = spec;
  shadowed.sigma_db = 4.0;
  EXPECT_FALSE(engine::ValidateScenarioSpec(shadowed).ok());

  engine::ScenarioSpec powered = spec;
  powered.power_tau = 0.5;
  EXPECT_FALSE(engine::ValidateScenarioSpec(powered).ok());

  engine::ScenarioSpec bad_eps = spec;
  bad_eps.farfield_epsilon = -1.0;
  EXPECT_FALSE(engine::ValidateScenarioSpec(bad_eps).ok());
}

TEST(FarFieldEngineTest, KernelModeNamesRoundTrip) {
  EXPECT_STREQ(engine::KernelModeName(engine::KernelMode::kDense), "dense");
  EXPECT_STREQ(engine::KernelModeName(engine::KernelMode::kFarField),
               "farfield");
  ASSERT_TRUE(engine::ParseKernelMode("dense").has_value());
  EXPECT_EQ(*engine::ParseKernelMode("dense"), engine::KernelMode::kDense);
  ASSERT_TRUE(engine::ParseKernelMode("farfield").has_value());
  EXPECT_EQ(*engine::ParseKernelMode("farfield"),
            engine::KernelMode::kFarField);
  EXPECT_FALSE(engine::ParseKernelMode("sparse").has_value());
}

}  // namespace
}  // namespace decaylib::sinr
